"""Ablation: the sharing boundary formula vs naive splits.

The paper argues the boundary ``Cg*Fg/(Cg*Fg+Cc*Fc)`` "could guarantee
sufficient data for GPU computation and no extra data transfer".  We
sweep the GPU fraction for two transfer-bound DOALL apps and check that
the formula's value is at or near the sweep's optimum.
"""

from repro.bench import render_table
from repro.workloads import BY_NAME

from conftest import run_once

FRACTIONS = [0.25, 0.5, 0.75, None, 1.0]  # None = the paper formula


def sweep(name):
    w = BY_NAME[name]
    rows = []
    for frac in FRACTIONS:
        ctx = w.make_context()
        ctx.config.boundary_override = frac
        res = w.run(strategy="japonica", context=ctx)
        label = "paper formula" if frac is None else f"{frac:.2f}"
        rows.append((label, res.sim_time_ms, ctx.boundary()))
    return rows


def test_boundary_sweep_vectoradd(benchmark):
    rows = run_once(benchmark, lambda: sweep("VectorAdd"))
    print()
    print(
        render_table(
            ["GPU fraction", "Sharing time (ms)", "effective b"],
            [(l, f"{t:.3f}", f"{b:.3f}") for l, t, b in rows],
        )
    )
    times = {label: t for label, t, _ in rows}
    best = min(times.values())
    # the formula must be within 40% of the sweep's best point
    assert times["paper formula"] <= best * 1.4


def test_boundary_sweep_mvt(benchmark):
    rows = run_once(benchmark, lambda: sweep("MVT"))
    print()
    print(
        render_table(
            ["GPU fraction", "Sharing time (ms)", "effective b"],
            [(l, f"{t:.3f}", f"{b:.3f}") for l, t, b in rows],
        )
    )
    times = {label: t for label, t, _ in rows}
    assert times["paper formula"] <= min(times.values()) * 1.5
