"""Ablation: the DD threshold N (the mode-B / mode-C crossover).

"(Density > N) ? High : Low" — with N below BlackScholes' measured
density (~0.01) the loop is classified high-TD and exiled to the CPU
(mode C); with the default N it speculates on the GPU (mode B).
"""

from repro.bench import render_table
from repro.workloads import BY_NAME

from conftest import run_once

THRESHOLDS = [0.001, 0.005, 0.05, 0.3]


def sweep():
    w = BY_NAME["BlackScholes"]
    rows = []
    for n in THRESHOLDS:
        ctx = w.make_context()
        ctx.config.dd_threshold = n
        res = w.run(strategy="japonica", context=ctx)
        mode = res.loop_results[0][1].mode
        rows.append((n, mode, res.sim_time_ms))
    return rows


def test_dd_threshold_sweep(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(
        render_table(
            ["Threshold N", "Mode", "Time (ms)"],
            [(n, m, f"{t:.3f}") for n, m, t in rows],
        )
    )
    modes = {n: m for n, m, _ in rows}
    assert modes[0.001] == "C"  # density ~0.01 > N: high -> CPU
    assert modes[0.3] == "B"  # default: low -> GPU-TLS
    times = {n: t for n, _, t in rows}
    # speculating (B) must beat sequential exile (C) for this loop
    assert times[0.3] < times[0.001]
