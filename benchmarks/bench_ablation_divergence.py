"""Ablation: lock-step SIMD divergence on irregular loops.

BFS's variable-degree adjacency rows make warps wait for their longest
lane.  This bench compares the same node count with uniform vs highly
skewed degree distributions and reports the measured divergence factor
of the relaxation kernels alongside the GPU-side slowdown.
"""

import numpy as np

from repro.bench import render_table
from repro.gpusim.device import GpuDevice
from repro.ir import ArrayStorage
from repro.lang import annotated_loops, parse_program
from repro.analysis import analyze_loop
from repro.ir.lower import lower_loop_body
from repro.runtime.costmodel import CostModel
from repro.runtime.platform import paper_platform
from repro.workloads.bfs import BFS, INF

from conftest import run_once


def relax_kernel():
    cls = parse_program(BFS.source)
    method = cls.method("run")
    loop = annotated_loops(method)[0]
    analysis = analyze_loop(method, loop)
    return lower_loop_body(loop, analysis.outer_types, analysis.info.index)


def launch_with_degrees(degrees: np.ndarray):
    n = len(degrees)
    row_start = np.zeros(n + 1, dtype=np.int32)
    np.cumsum(degrees, out=row_start[1:])
    rng = np.random.default_rng(0)
    adj = rng.integers(0, n, size=int(row_start[-1]), dtype=np.int32)
    dist = np.full(n, INF, dtype=np.int32)
    dist[0] = 0
    storage = ArrayStorage(
        {
            "rowStart": row_start,
            "adjList": adj,
            "dist": dist,
            "distNew": np.zeros(n, dtype=np.int32),
        }
    )
    platform = paper_platform()
    device = GpuDevice(platform.gpu, CostModel(platform))
    fn = relax_kernel()
    return device.launch(
        fn, range(n), {"n": n}, storage, mode="buffered",
        check_allocations=False,
    )


def sweep():
    n = 2048
    rng = np.random.default_rng(1)
    cases = {
        "uniform (deg 4)": np.full(n, 4, dtype=np.int32),
        "mild skew (1..8)": rng.integers(1, 9, n, dtype=np.int32),
        "heavy skew (1 or 64)": np.where(
            rng.random(n) < 1 / 32, 64, 1
        ).astype(np.int32),
    }
    rows = []
    for label, degrees in cases.items():
        res = launch_with_degrees(degrees)
        rows.append((label, res.divergence, res.sim_time_s * 1e6))
    return rows


def test_divergence_ablation(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(
        render_table(
            ["Degree distribution", "Divergence factor", "Kernel time (us)"],
            [(l, f"{d:.2f}", f"{t:.2f}") for l, d, t in rows],
        )
    )
    factors = {label: d for label, d, _ in rows}
    assert factors["uniform (deg 4)"] == 1.0
    assert factors["mild skew (1..8)"] > 1.1
    assert factors["heavy skew (1 or 64)"] > 3.0
    times = {label: t for label, _, t in rows}
    assert times["heavy skew (1 or 64)"] > times["uniform (deg 4)"]
