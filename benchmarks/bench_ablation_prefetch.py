"""Ablation: asynchronous prefetch (cyclic-communication removal) on/off.

The sharing runtime moves GPU data "in advance and asynchronously with
the kernel execution to avoid cyclic communication and to hide some
latency"; this bench quantifies what that buys on the transfer-bound
DOALL apps.
"""

from repro.bench import render_table
from repro.workloads import BY_NAME

from conftest import run_once


def compare(name):
    w = BY_NAME[name]
    ctx_on = w.make_context()
    on = w.run(strategy="japonica", context=ctx_on).sim_time_ms
    ctx_off = w.make_context()
    ctx_off.config.async_prefetch = False
    off = w.run(strategy="japonica", context=ctx_off).sim_time_ms
    return on, off


def test_prefetch_ablation(benchmark):
    def run():
        return {name: compare(name) for name in ("VectorAdd", "MVT", "BFS")}

    results = run_once(benchmark, run)
    print()
    print(
        render_table(
            ["Benchmark", "Prefetch on (ms)", "Prefetch off (ms)", "Gain"],
            [
                (n, f"{on:.3f}", f"{off:.3f}", f"{off / on:.2f}x")
                for n, (on, off) in results.items()
            ],
        )
    )
    for name, (on, off) in results.items():
        assert on <= off, f"{name}: prefetch must never hurt"
    # on at least one transfer-bound app it must matter substantially
    assert any(off / on > 1.3 for on, off in results.values())
