"""Ablation: GPU-TLS sub-loop size (warps per kernel).

Small sub-loops bound mis-speculation waste but pay more launch/DC
overhead; large sub-loops amortize overhead but risk violations when a
dependence distance falls inside the window.  BlackScholes' audit chain
(distance 1152) flips from clean to violating as the sub-loop grows
past 36 warps.
"""

from repro.bench import render_table
from repro.workloads import BY_NAME

from conftest import run_once

WARPS = [4, 8, 16, 32, 64]


def sweep():
    w = BY_NAME["BlackScholes"]
    rows = []
    for warps in WARPS:
        ctx = w.make_context()
        ctx.config.tls.warps_per_subloop = warps
        res = w.run(strategy="japonica", context=ctx)
        tls = res.loop_results[0][1].detail["tls"]
        rows.append(
            (warps, res.sim_time_ms, tls.subloops, tls.violations,
             tls.cpu_iterations)
        )
    return rows


def test_subloop_sweep(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(
        render_table(
            ["Warps/sub-loop", "Time (ms)", "Sub-loops", "Violations",
             "CPU iters"],
            [
                (w, f"{t:.3f}", s, v, c)
                for w, t, s, v, c in rows
            ],
        )
    )
    by_warps = {w: (t, v) for w, t, s, v, c in rows}
    # the audit distance (1152 = 36 warps) is exceeded at 64 warps:
    # long-range violations appear on top of the short-range ones
    assert by_warps[64][1] > by_warps[8][1]
    # every configuration stays faster than serial
    serial = BY_NAME["BlackScholes"].run(strategy="serial").sim_time_ms
    for w, (t, _v) in by_warps.items():
        assert t < serial, f"warps={w}"
