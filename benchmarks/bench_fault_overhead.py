"""Fault-injection overhead: what resilience costs at realistic rates.

Three fault rates per app: 0 (the plane is disabled — an all-quiet
schedule must be byte-for-byte the fault-free path, zero simulated
overhead), 1e-4 (rare faults, overhead should be negligible) and 1e-2
(a noisy machine, recoveries visibly charged to the simulated clock).
The injected faults must never change the computed results.
"""

import numpy as np

from repro.bench import render_table
from repro.workloads import BY_NAME

from conftest import run_once

RATES = (0.0, 1e-4, 1e-2)
APPS = ("VectorAdd", "BlackScholes")


def measure(name):
    w = BY_NAME[name]
    binds = w.bindings()
    clean = w.run(strategy="japonica")
    rows = {}
    for rate in RATES:
        spec = f"gpu:{rate},transfer:{rate},cpu.worker:{rate}"
        result = w.run(strategy="japonica", faults=spec, fault_seed=97)
        w.verify(result, binds)  # faults must never corrupt results
        rows[rate] = result
    return clean, rows


def test_fault_overhead(benchmark):
    results = run_once(
        benchmark, lambda: {name: measure(name) for name in APPS}
    )
    print()
    table = []
    for name, (clean, rows) in results.items():
        for rate, result in rows.items():
            rep = result.resilience
            table.append((
                name,
                f"{rate:g}",
                f"{result.sim_time_ms:.3f}",
                f"{result.sim_time_s / clean.sim_time_s - 1.0:+.2%}",
                "-" if rep is None else rep.summary(),
            ))
    print(render_table(
        ["Benchmark", "Fault rate", "Time (ms)", "Overhead", "Resilience"],
        table,
    ))
    for name, (clean, rows) in results.items():
        # rate 0 disables the plane: exactly the fault-free path
        zero = rows[0.0]
        assert zero.sim_time_s == clean.sim_time_s, name
        assert zero.resilience is None, name
        # nonzero rates never make the run *faster* than fault-free
        for rate in RATES[1:]:
            assert rows[rate].sim_time_s >= clean.sim_time_s, (name, rate)
        # results stay bit-identical to the clean run at every rate
        for rate, result in rows.items():
            for key, arr in clean.arrays.items():
                assert np.array_equal(result.arrays[key], arr), (name, rate)
