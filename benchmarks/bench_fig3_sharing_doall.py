"""Figure 3: task-sharing speedup of the DOALL apps over 16 CPU threads.

Bars per app: CPU-16 (=1), GPU-only, simple 50/50 cooperative, sharing.
"""

from repro.bench import FIG3_STRATEGIES, figure3, render_figure

from conftest import run_once


def test_figure3(benchmark):
    rows = run_once(benchmark, figure3)
    print()
    print(
        render_figure(
            "Figure 3 - DOALL apps, speedup over 16-thread CPU",
            rows,
            FIG3_STRATEGIES,
        )
    )
    by_name = {r.workload: r.measured for r in rows}

    # GEMM: the GPU dominates; sharing adds nothing over GPU-only
    assert by_name["GEMM"]["gpu"] > 10
    # transfer-bound apps: GPU-alone loses, sharing wins, coop in between
    for name in ("VectorAdd", "BFS", "MVT"):
        m = by_name[name]
        assert m["gpu"] < 1.0, name
        assert m["japonica"] > 1.0, name
        assert m["gpu"] < m["coop50"] < m["japonica"], name
