"""Figure 4: task-sharing speedup of the DOACROSS apps over serial CPU.

Per app the paper plots CPU (multithreaded where legal), GPU-only and
Sharing, normalized to 1-thread CPU.  The four apps exercise all of the
profiled execution modes: Gauss-Seidel -> C, CFD/Sepia -> D
(privatization), BlackScholes -> B (GPU-TLS).
"""

import pytest

from repro.bench import figure4, render_figure

from conftest import run_once


def test_figure4(benchmark):
    rows = run_once(benchmark, figure4)
    print()
    print(
        render_figure(
            "Figure 4 - DOACROSS apps, speedup over serial CPU",
            rows,
            ("cpu16", "gpu", "japonica"),
        )
    )
    by_name = {r.workload: r.measured for r in rows}

    # Gauss-Seidel runs mode C: sharing == serial, GPU-alone loses
    assert by_name["Guass-Seidel"]["japonica"] == pytest.approx(1.0, abs=0.05)
    assert by_name["Guass-Seidel"]["gpu"] < 1.0

    # CFD and Sepia run privatized (mode D): sharing beats GPU-alone
    for name in ("CFD", "Sepia"):
        m = by_name[name]
        assert m["japonica"] > 1.0, name
        assert m["japonica"] > m["gpu"], name

    # BlackScholes runs GPU-TLS (mode B): clear win over serial
    assert by_name["BlackScholes"]["japonica"] > 3.0
