"""Figure 5(a): task-stealing speedups over 16 CPU threads."""

from repro.bench import figure5a, render_figure
from repro.workloads import BY_NAME

from conftest import run_once


def test_figure5a(benchmark):
    rows = run_once(benchmark, figure5a)
    print()
    print(
        render_figure(
            "Figure 5(a) - stealing apps, speedup over 16-thread CPU",
            rows,
            ("gpu", "japonica"),
        )
    )
    by_name = {r.workload: r.measured for r in rows}
    # BICG and Crypt: stealing beats both single-device versions
    for name in ("BICG", "Crypt"):
        m = by_name[name]
        assert m["japonica"] > 1.0, name
        assert m["japonica"] > m["gpu"] or m["gpu"] > 5, name
    # 2MM: the GPU contributes all computations; stealing ~ GPU-only
    m = by_name["2MM"]
    assert 0.7 < m["japonica"] / m["gpu"] < 1.4


def test_bicg_cpu_share(benchmark):
    """Paper: the CPU ends up executing 62.5% of BICG's sub-loops."""

    def run():
        res = BY_NAME["BICG"].run(strategy="japonica")
        return res.loop_results[0][1].detail["stats"]

    stats = run_once(benchmark, run)
    share = stats.share("cpu")
    print(f"\nBICG sub-loops executed by the CPU: {share * 100:.1f}% "
          f"(paper: 62.5%)")
    assert share >= 0.375
