"""Figure 5(b): Crypt execution time, sharing vs stealing, size sweep.

The paper sweeps 1024*1024 .. 5120*1024 text elements and shows stealing
consistently below sharing; we sweep the same multipliers at the scaled
simulation size.
"""

from repro.bench import figure5b, render_sweep

from conftest import run_once


def test_figure5b(benchmark):
    points = run_once(benchmark, lambda: figure5b([1, 2, 3]))
    print()
    print(render_sweep(points))
    for p in points:
        assert p.stealing_ms < p.sharing_ms, p.label
    # times grow with the input size
    assert points[-1].stealing_ms > points[0].stealing_ms
