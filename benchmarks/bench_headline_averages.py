"""Headline averages from the abstract: Japonica vs the three baselines."""

from repro.bench import headline_averages, render_headline

from conftest import run_once


def test_headline_averages(benchmark):
    h = run_once(benchmark, headline_averages)
    print()
    print(render_headline(h))
    # paper: 10x / 2.5x / 2.14x; we assert the directions with headroom
    assert h.vs_serial > 5.0
    assert h.vs_gpu > 1.5
    assert h.vs_cpu > 1.3
