"""Host-performance harness: wall-clock of the host-side pipeline.

Measures the two things the host-performance plane optimizes and writes
them to ``BENCH_HOSTPERF.json`` so the perf trajectory has data:

1. **profiling-phase speedup** — wall-clock of ``profile_loop`` over a
   large straight-line kernel (VectorAdd-shaped, default 256Ki
   iterations, full-window sample) through the columnar/vectorized fast
   path vs. the scalar SE interpreter oracle;
2. **cold vs. warm artifact cache** — wall-clock of compile and run for
   a runtime-profiling workload with a shared on-disk cache: the warm
   pass must hit the cache for both the translation unit and the
   dependency profile;
3. **multi-device scaling** — simulated makespan of saturated DOALL
   workloads at pool sizes 1/2/4: sharding across more devices must
   improve the makespan monotonically (and never change results — the
   identity suite covers that part);
4. **insight summaries** — a per-workload trace-insight report (critical
   path, slack, bottleneck lane) over the full suite, the same numbers
   ``python -m repro report`` emits, so the perf trajectory records
   where the simulated time goes, not just how much of it there is;
5. **kernel tiers** — wall-clock of one hot kernel launch through the
   interpreter vs. the generated-source tier (and the numba tier when
   numba is importable), with the tiers' outputs checked bit-identical.
   The source tier must clear 5x over the interpreter at the full size.

Run standalone (the CI ``perf-smoke`` job uses ``--n 32768``)::

    PYTHONPATH=src python benchmarks/bench_host_perf.py \
        --out BENCH_HOSTPERF.json

``--check BASELINE`` compares the measured warm-cache wall-clock against
a committed baseline and exits nonzero on a >``--tolerance``x
regression, normalized by the cold-run ratio so a slower CI machine does
not trip the gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

SCHEMA = "repro.hostperf/v4"

#: Saturated DOALL workloads whose makespan must improve with pool size.
MULTIDEVICE_WORKLOADS = ("VectorAdd", "BFS", "MVT")
DEVICE_COUNTS = (1, 2, 4)

VECADD_SRC = """
class Vec {
  static void run(double[] a, double[] b, double[] c, int n) {
    /* acc parallel copyin(a[0:n-1], b[0:n-1]) copyout(c[0:n-1]) */
    for (int i = 0; i < n; i++) {
      c[i] = a[i] * 2.0 + b[i];
    }
  }
}
"""

CACHE_WORKLOAD = "Guass-Seidel"  # DOACROSS: profiles at runtime


def measure_profiling(n: int) -> dict:
    """Profile a straight-line kernel through both paths; wall-clock each."""
    import numpy as np

    from repro.api import Japonica
    from repro.ir.interpreter import ArrayStorage
    from repro.profiler.trace import profile_loop
    from repro.scheduler.context import ExecutionContext

    program = Japonica().compile(VECADD_SRC)
    fn = program.unit.methods["run"].loops[0].fn
    rng = np.random.default_rng(42)

    def storage():
        return ArrayStorage({
            "a": rng.standard_normal(n),
            "b": rng.standard_normal(n),
            "c": np.zeros(n),
        })

    env = {"n": n}
    out = {}
    for label, columnar in (("columnar", True), ("scalar", False)):
        ctx = ExecutionContext()
        ctx.device.columnar_profiling = columnar
        stg = storage()
        t0 = time.perf_counter()
        run = profile_loop(
            ctx.device, fn, range(n), env, stg, max_sample=n
        )
        out[f"{label}_s"] = time.perf_counter() - t0
        out[f"{label}_profile_time_s"] = run.profile.profile_time_s
    out["speedup"] = out["scalar_s"] / out["columnar_s"]
    return out


def _timed_pass(workload, cache_dir: str) -> dict:
    """One compile+run pass against the shared on-disk artifact cache."""
    from repro.api import Japonica
    from repro.cache import ArtifactCache

    cache = ArtifactCache(cache_dir=cache_dir)
    japonica = Japonica(cache=cache)
    t0 = time.perf_counter()
    program = japonica.compile(workload.source)
    compile_s = time.perf_counter() - t0

    ctx = workload.make_context(cache=cache)
    binds = workload.bindings()
    t0 = time.perf_counter()
    result = program.run(workload.method, strategy="japonica", context=ctx,
                         **binds)
    run_s = time.perf_counter() - t0
    return {
        "compile_s": compile_s,
        "run_s": run_s,
        "total_s": compile_s + run_s,
        "sim_time_s": result.sim_time_s,
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
    }


def measure_cache() -> dict:
    """Cold then warm pipeline pass sharing one on-disk cache."""
    from repro.workloads import get

    workload = get(CACHE_WORKLOAD)
    with tempfile.TemporaryDirectory() as d:
        cold = _timed_pass(workload, d)
        warm = _timed_pass(workload, d)  # fresh cache object, same dir
    return {"workload": CACHE_WORKLOAD, "cold": cold, "warm": warm}


def measure_multidevice() -> dict:
    """Simulated makespan of DOALL workloads across pool sizes."""
    from repro.workloads import get

    out = {}
    for name in MULTIDEVICE_WORKLOADS:
        w = get(name)
        times = {}
        for devices in DEVICE_COUNTS:
            result = w.run("japonica", devices=devices)
            times[str(devices)] = result.sim_time_s
        ordered = [times[str(d)] for d in DEVICE_COUNTS]
        out[name] = {
            "sim_time_s": times,
            "monotone": all(
                a > b for a, b in zip(ordered, ordered[1:])
            ),
            "speedup_at_max": ordered[0] / ordered[-1],
        }
    return out


def measure_insight() -> dict:
    """Trace-insight summary per workload: where the simulated time goes.

    Runs the full suite traced and reduces each workload's RunReport
    section to the numbers worth trending: simulated time, critical-path
    length and slack, and the bottleneck lane (highest utilization).
    All quantities are simulated, so this section is deterministic.
    """
    from repro.api import Japonica
    from repro.obs import Instrumentation
    from repro.obs.insight import analyze_run
    from repro.workloads import ALL_WORKLOADS

    out = {}
    for workload in ALL_WORKLOADS:
        obs = Instrumentation.recording()
        program = Japonica(obs=obs).compile(workload.source)
        result = program.run(
            workload.method, strategy="japonica", scheme=workload.scheme,
            context=workload.make_context(obs=obs), **workload.bindings(),
        )
        timelines = [
            (f"japonica:{lid}", res.timeline)
            for lid, res in result.loop_results
            if res.timeline is not None
        ]
        section = analyze_run(
            timelines, metrics=obs.metrics, tracer=obs.tracer,
            sim_time_s=result.sim_time_s,
        )
        totals = section["totals"]
        bottleneck = {"lane": "", "utilization": 0.0}
        for doc in section["timelines"].values():
            for lane, row in doc["lanes"].items():
                if row["utilization"] > bottleneck["utilization"]:
                    bottleneck = {
                        "lane": lane, "utilization": row["utilization"],
                    }
        out[workload.name] = {
            "sim_time_s": result.sim_time_s,
            "critical_path_s": totals["critical_path_s"],
            "slack_s": totals["slack_s"],
            "bottleneck": bottleneck,
        }
    return out


def measure_kernel_tiers(n: int) -> dict:
    """One hot launch per tier; wall-clock each and compare outputs.

    The dispatcher is driven directly (policy thresholds at 1) so each
    leg runs entirely in one tier: a warm launch first to pay compiles
    and promotion, then the timed launch.  The numba leg only appears
    when numba is importable and its self-test passes.
    """
    import numpy as np

    from repro.api import Japonica
    from repro.ir.interpreter import ArrayStorage
    from repro.ir.native import KernelCache, KernelDispatcher, TierPolicy
    from repro.ir.native import numba_backend

    program = Japonica().compile(VECADD_SRC)
    fn = program.unit.methods["run"].loops[0].fn
    rng = np.random.default_rng(7)
    a = rng.standard_normal(n)
    b = rng.standard_normal(n)
    env = {"n": n}
    indices = list(range(n))

    def timed(native: bool, policy: TierPolicy) -> tuple[float, object]:
        disp = KernelDispatcher(
            cache=KernelCache(), policy=policy, native=native
        )

        def launch():
            stg = ArrayStorage(
                {"a": a.copy(), "b": b.copy(), "c": np.zeros(n)}
            )
            t0 = time.perf_counter()
            disp.run_direct(fn, indices, env, stg)
            dt = time.perf_counter() - t0
            disp.take_counts(fn)
            return dt, stg.arrays["c"]

        launch()  # warm: compile + cross the promotion threshold
        return launch()

    interp_s, c_interp = timed(False, TierPolicy())
    src_s, c_src = timed(True, TierPolicy(src_threshold=1))
    out = {
        "interp_s": interp_s,
        "src_s": src_s,
        "src_speedup": interp_s / src_s,
        "identical": c_interp.tobytes() == c_src.tobytes(),
        "numba": None,
    }
    if numba_backend.available():
        numba_s, c_numba = timed(
            True, TierPolicy(src_threshold=1, numba_threshold=1)
        )
        out["numba"] = {
            "numba_s": numba_s,
            "numba_speedup": interp_s / numba_s,
            "identical": c_interp.tobytes() == c_numba.tobytes(),
        }
    return out


def check_against(report: dict, baseline_path: str, tolerance: float) -> int:
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base_cold = baseline["cache"]["cold"]["total_s"]
    base_warm = baseline["cache"]["warm"]["total_s"]
    cold = report["cache"]["cold"]["total_s"]
    warm = report["cache"]["warm"]["total_s"]
    # normalize by the cold-pass ratio: a uniformly slower machine scales
    # both passes, only a warm-specific regression should trip the gate
    machine = cold / base_cold if base_cold > 0 else 1.0
    allowed = base_warm * tolerance * machine
    print(f"warm-cache check: measured {warm:.3f}s, "
          f"allowed {allowed:.3f}s "
          f"(baseline {base_warm:.3f}s x {tolerance:g} "
          f"x machine ratio {machine:.2f})")
    if warm > allowed:
        print("FAIL: warm-cache wall-clock regressed", file=sys.stderr)
        return 1
    warm_hits = report["cache"]["warm"]["cache_hits"]
    if warm_hits < 2:
        print(f"FAIL: warm pass hit the cache only {warm_hits} times "
              f"(expected unit + profile)", file=sys.stderr)
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=256 * 1024,
                        help="iterations of the straight-line profiling "
                             "kernel (default 256Ki)")
    parser.add_argument("--out", default="BENCH_HOSTPERF.json",
                        help="output JSON path")
    parser.add_argument("--check", metavar="BASELINE", default=None,
                        help="compare against a baseline JSON and fail on "
                             "a warm-cache regression")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="allowed warm-cache slowdown vs baseline")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the columnar profiling speedup "
                             "reaches this factor (default: 5 when n is "
                             "the full 256Ki size, off otherwise)")
    parser.add_argument("--min-kernel-speedup", type=float, default=None,
                        help="fail unless the generated-source kernel "
                             "tier reaches this speedup over the "
                             "interpreter (default: 5 when n is the "
                             "full 256Ki size, off otherwise)")
    args = parser.parse_args(argv)

    print(f"profiling phase: straight-line kernel, n={args.n} ...")
    profiling = measure_profiling(args.n)
    print(f"  scalar   {profiling['scalar_s']:8.3f}s")
    print(f"  columnar {profiling['columnar_s']:8.3f}s")
    print(f"  speedup  {profiling['speedup']:8.1f}x")

    print(f"artifact cache: {CACHE_WORKLOAD} cold vs warm ...")
    cache = measure_cache()
    for label in ("cold", "warm"):
        row = cache[label]
        print(f"  {label:4s} compile {row['compile_s']:6.3f}s  "
              f"run {row['run_s']:6.3f}s  "
              f"cache {row['cache_hits']} hits / "
              f"{row['cache_misses']} misses")

    print("multi-device scaling: DOALL makespan at pool sizes "
          + "/".join(str(d) for d in DEVICE_COUNTS) + " ...")
    multidevice = measure_multidevice()
    for name, row in multidevice.items():
        times = "  ".join(
            f"d={d} {row['sim_time_s'][str(d)] * 1e3:8.3f}ms"
            for d in DEVICE_COUNTS
        )
        flag = "" if row["monotone"] else "  NOT MONOTONE"
        print(f"  {name:10s} {times}  "
              f"({row['speedup_at_max']:.2f}x at {DEVICE_COUNTS[-1]} "
              f"devices){flag}")

    print(f"kernel tiers: hot launch, n={args.n} ...")
    kernel_tiers = measure_kernel_tiers(args.n)
    print(f"  interp   {kernel_tiers['interp_s']:8.3f}s")
    print(f"  src      {kernel_tiers['src_s']:8.3f}s  "
          f"({kernel_tiers['src_speedup']:.1f}x, "
          f"identical={kernel_tiers['identical']})")
    if kernel_tiers["numba"] is not None:
        nb = kernel_tiers["numba"]
        print(f"  numba    {nb['numba_s']:8.3f}s  "
              f"({nb['numba_speedup']:.1f}x, "
              f"identical={nb['identical']})")
    else:
        print("  numba    (not importable; tier skipped)")

    print("trace insight: critical path and bottleneck lane per workload ...")
    insight = measure_insight()
    print(f"  {'workload':14s} {'sim':>12s} {'crit-path':>12s} "
          f"{'slack':>10s}  bottleneck")
    for name, row in insight.items():
        b = row["bottleneck"]
        print(f"  {name:14s} {row['sim_time_s'] * 1e3:10.3f}ms "
              f"{row['critical_path_s'] * 1e3:10.3f}ms "
              f"{row['slack_s'] * 1e3:8.3f}ms  "
              f"{b['lane']} at {b['utilization'] * 100:.1f}%")

    report = {
        "schema": SCHEMA,
        "n": args.n,
        "profiling": profiling,
        "cache": cache,
        "multidevice": multidevice,
        "kernel_tiers": kernel_tiers,
        "insight": insight,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"report written to {args.out}")

    min_speedup = args.min_speedup
    if min_speedup is None and args.n >= 256 * 1024:
        min_speedup = 5.0
    if min_speedup is not None and profiling["speedup"] < min_speedup:
        print(f"FAIL: profiling speedup {profiling['speedup']:.1f}x "
              f"< required {min_speedup:g}x", file=sys.stderr)
        return 1
    if not kernel_tiers["identical"] or (
        kernel_tiers["numba"] is not None
        and not kernel_tiers["numba"]["identical"]
    ):
        print("FAIL: kernel tiers disagree on results", file=sys.stderr)
        return 1
    min_kernel = args.min_kernel_speedup
    if min_kernel is None and args.n >= 256 * 1024:
        min_kernel = 5.0
    if min_kernel is not None and kernel_tiers["src_speedup"] < min_kernel:
        print(f"FAIL: kernel src-tier speedup "
              f"{kernel_tiers['src_speedup']:.1f}x "
              f"< required {min_kernel:g}x", file=sys.stderr)
        return 1
    if cache["warm"]["cache_misses"] != 0:
        print("FAIL: warm pass missed the cache", file=sys.stderr)
        return 1
    bad = [n for n, row in multidevice.items() if not row["monotone"]]
    if bad:
        print(f"FAIL: makespan not monotone with device count for "
              f"{', '.join(bad)}", file=sys.stderr)
        return 1
    if args.check:
        return check_against(report, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
