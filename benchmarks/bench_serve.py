"""Serve-plane load generator: throughput, tail latency, shed behavior.

Boots a real ``repro serve`` HTTP server in-process, then drives it with
a deterministic zipfian tenant mix from concurrent client threads —
a few tenants send most of the traffic, the tail of tenants sends the
rest, mirroring the multi-tenant skew the admission controller and the
shedding ladder exist for.  Measured:

* requests/s and wall-clock of the whole run;
* p50/p99 client-observed latency of completed jobs;
* shed rate and reject rate (the overload answers);
* artifact-cache hit rate across tenants;
* the exactly-once ledger: lost (admitted, never settled) and
  duplicated settlements — both must be zero, always, even in chaos
  mode.

Chaos mode (``--faults serve.worker:0.05 --fault-seed 7``) kills workers
before a deterministic subset of dispatches; the CI ``serve-chaos`` job
runs that and gates on the ledger staying clean.

``--check BASELINE`` gates a run against a committed ``BENCH_SERVE.json``:
structural invariants (zero lost, zero duplicated, completions happened)
plus the tail-amplification ratio p99/p50, which is machine-speed
independent, within ``--tolerance``x of the baseline's.

The observability leg (``repro.benchserve/v2``) runs a paired mix —
tracing off, then tracing on — on otherwise identical servers and
reports the p99 ratio in the ``obs`` section.  Tracing is gated to cost
at most ``--trace-tolerance``x (default 1.10) of the untraced p99, with
a small absolute slack so sub-millisecond jitter cannot fail the gate.
``--skip-obs`` drops the leg (the section is then ``null``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import queue as queue_mod
import random
import sys
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

SCHEMA = "repro.benchserve/v2"

#: Job shapes the generator draws from (cheap Table-II runs; repeats are
#: common, so the shared artifact cache and pooled contexts get hits).
JOB_SHAPES = (
    {"kind": "run", "workload": "VectorAdd", "n": 1, "seed": 0},
    {"kind": "run", "workload": "VectorAdd", "n": 1, "seed": 1},
    {"kind": "run", "workload": "MVT", "n": 1, "seed": 0},
    {"kind": "run", "workload": "BFS", "n": 1, "seed": 0},
    {"kind": "run", "workload": "Sepia", "n": 1, "seed": 0},
)

#: Priority mix: mostly normal, some high, a shed-able low tail.
PRIORITY_WEIGHTS = ((0, 0.15), (1, 0.55), (2, 0.30))


def zipf_weights(n: int, s: float) -> list[float]:
    w = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(w)
    return [x / total for x in w]


def build_requests(args) -> list[dict]:
    """The deterministic request list (seeded rng, no wall clock)."""
    rng = random.Random(args.seed)
    tenants = [f"tenant-{i}" for i in range(args.tenants)]
    tweights = zipf_weights(args.tenants, args.zipf_s)
    pvals = [p for p, _ in PRIORITY_WEIGHTS]
    pweights = [w for _, w in PRIORITY_WEIGHTS]
    out = []
    for _ in range(args.requests):
        shape = dict(rng.choice(JOB_SHAPES))
        shape["tenant"] = rng.choices(tenants, weights=tweights)[0]
        shape["priority"] = rng.choices(pvals, weights=pweights)[0]
        shape["deadline_ms"] = args.deadline_s * 1e3
        out.append(shape)
    return out


def start_server(args, trace: bool = False):
    """Run the serve stack on its own event loop in a daemon thread."""
    from repro.serve import CompilationService, ServeConfig, ServeServer

    config = ServeConfig(
        workers=args.workers,
        backend=args.backend,
        max_queue=args.max_queue,
        quota_rate=args.rate,
        quota_burst=args.burst,
        default_deadline_s=args.deadline_s,
        faults=args.faults,
        fault_seed=args.fault_seed,
        trace=trace,
    )
    server = ServeServer(CompilationService(config), port=0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, name="serve-loop", daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("serve did not start")
    return server, loop, thread


def stop_server(server, loop, thread) -> None:
    asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=60)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)


def percentile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * len(sorted_vals)))
    return sorted_vals[idx]


def drive(args, port: int, requests: list[dict]) -> list[dict]:
    """Fire the request list from ``--clients`` threads; per-request rows."""
    from repro.serve.client import ServeClient

    work: queue_mod.Queue = queue_mod.Queue()
    for i, job in enumerate(requests):
        work.put((i, job))
    rows: list[dict] = [None] * len(requests)  # type: ignore[list-item]

    def client_main():
        client = ServeClient(port=port, timeout=args.deadline_s * 4)
        while True:
            try:
                i, job = work.get_nowait()
            except queue_mod.Empty:
                return
            t0 = time.perf_counter()
            try:
                http, doc = client.submit(job)
            except OSError as exc:
                http, doc = 0, {"status": "transport_error", "error": str(exc)}
            rows[i] = {
                "latency_s": time.perf_counter() - t0,
                "http": http,
                "status": doc.get("status", "?"),
                "attempts": doc.get("attempts", 0),
                "served_from_cache": doc.get("served_from_cache", False),
            }

    threads = [
        threading.Thread(target=client_main, name=f"client-{c}")
        for c in range(args.clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return rows


def run_leg(args, requests: list[dict], trace: bool):
    """One full boot→warm→drive→stop cycle; returns (rows, wall_s, stats)."""
    from repro.serve.client import ServeClient

    server, loop, thread = start_server(args, trace=trace)
    try:
        warm = ServeClient(port=server.port, timeout=args.deadline_s * 4)
        for shape in JOB_SHAPES:
            warm.submit({**shape, "tenant": "warmup", "priority": 0})
        t0 = time.perf_counter()
        rows = drive(args, server.port, requests)
        wall_s = time.perf_counter() - t0
        stats = warm.stats()
    finally:
        stop_server(server, loop, thread)
    return rows, wall_s, stats


def measure_tracing_overhead(args) -> dict:
    """Paired leg: the same seeded mix, tracing off then on.

    Both sides run on fresh servers so neither inherits the other's warm
    caches beyond the explicit warmup, and the p99 ratio isolates what
    the tracing plane itself costs.
    """
    obs_args = argparse.Namespace(**vars(args))
    obs_args.requests = args.obs_requests
    obs_args.faults = None  # overhead measured on the clean path
    requests = build_requests(obs_args)

    legs = {}
    for label, trace in (("off", False), ("on", True)):
        rows, wall_s, _stats = run_leg(obs_args, requests, trace=trace)
        ok_lat = sorted(r["latency_s"] for r in rows if r["status"] == "ok")
        legs[label] = {
            "ok": len(ok_lat),
            "wall_s": wall_s,
            "p50_s": percentile(ok_lat, 0.50),
            "p99_s": percentile(ok_lat, 0.99),
        }
    off_p99, on_p99 = legs["off"]["p99_s"], legs["on"]["p99_s"]
    return {
        "requests": len(requests),
        "off": legs["off"],
        "on": legs["on"],
        "p99_ratio": on_p99 / off_p99 if off_p99 > 0 else 0.0,
    }


def check_tracing_overhead(obs: dict, tolerance: float,
                           slack_s: float) -> int:
    """Gate: tracing on costs at most ``tolerance``x the untraced p99.

    The absolute ``slack_s`` floor keeps sub-millisecond jitter on fast
    machines from tripping a purely relative gate.
    """
    off_p99, on_p99 = obs["off"]["p99_s"], obs["on"]["p99_s"]
    allowed = max(off_p99 * tolerance, off_p99 + slack_s)
    print(f"tracing overhead: p99 on {on_p99 * 1e3:.1f}ms vs "
          f"off {off_p99 * 1e3:.1f}ms "
          f"(ratio {obs['p99_ratio']:.2f}, allowed {allowed * 1e3:.1f}ms)")
    if on_p99 > allowed:
        print(f"FAIL: tracing p99 {on_p99 * 1e3:.1f}ms exceeds allowed "
              f"{allowed * 1e3:.1f}ms", file=sys.stderr)
        return 1
    return 0


def summarize(args, rows: list[dict], wall_s: float, stats: dict,
              obs: dict | None = None) -> dict:
    counts: dict[str, int] = {}
    for row in rows:
        counts[row["status"]] = counts.get(row["status"], 0) + 1
    ok_lat = sorted(r["latency_s"] for r in rows if r["status"] == "ok")
    n = len(rows)
    ledger = stats["ledger"]
    return {
        "schema": SCHEMA,
        "params": {
            "requests": n,
            "tenants": args.tenants,
            "zipf_s": args.zipf_s,
            "clients": args.clients,
            "workers": args.workers,
            "backend": args.backend,
            "max_queue": args.max_queue,
            "rate": args.rate,
            "burst": args.burst,
            "faults": args.faults,
            "fault_seed": args.fault_seed,
            "seed": args.seed,
        },
        "wall_s": wall_s,
        "requests_per_s": n / wall_s if wall_s > 0 else 0.0,
        "latency": {
            "p50_s": percentile(ok_lat, 0.50),
            "p99_s": percentile(ok_lat, 0.99),
            "mean_s": sum(ok_lat) / len(ok_lat) if ok_lat else 0.0,
        },
        "statuses": counts,
        "ok_rate": counts.get("ok", 0) / n,
        "shed_rate": counts.get("shed", 0) / n,
        "reject_rate": counts.get("rejected", 0) / n,
        "cache_hit_rate": stats["cache_hit_rate"],
        "retries": {
            "worker_deaths": stats["pool"]["worker_deaths"],
            "max_attempts": max((r["attempts"] for r in rows), default=0),
        },
        "ledger": {
            "admitted": ledger["admitted"],
            "lost": ledger["unsettled"],
            "duplicated": ledger["duplicate_settlements"],
        },
        "degradation": stats["degradation"],
        "breakers": {
            "trips": stats["breakers"]["trips"],
            "recoveries": stats["breakers"]["recoveries"],
        },
        "obs": obs,
    }


def check_against(report: dict, baseline_path: str, tolerance: float) -> int:
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures = []
    # structural invariants: absolute, no tolerance
    if report["ledger"]["lost"] != 0:
        failures.append(f"{report['ledger']['lost']} admitted job(s) lost")
    if report["ledger"]["duplicated"] != 0:
        failures.append(
            f"{report['ledger']['duplicated']} duplicated settlement(s)"
        )
    if report["statuses"].get("ok", 0) == 0:
        failures.append("no job completed at all")
    if report["statuses"].get("transport_error", 0) != 0:
        failures.append("client transport errors")
    # tail amplification (p99/p50) is machine-speed independent
    lat, base_lat = report["latency"], baseline["latency"]
    amp = lat["p99_s"] / lat["p50_s"] if lat["p50_s"] > 0 else 0.0
    base_amp = (
        base_lat["p99_s"] / base_lat["p50_s"] if base_lat["p50_s"] > 0 else 0.0
    )
    allowed = max(base_amp, 1.0) * tolerance
    print(f"tail check: p99/p50 {amp:.2f} vs allowed {allowed:.2f} "
          f"(baseline {base_amp:.2f} x {tolerance:g})")
    if amp > allowed:
        failures.append(f"tail amplification {amp:.2f} > {allowed:.2f}")
    # the shared cache must keep working across tenants
    if baseline["cache_hit_rate"] > 0 and report["cache_hit_rate"] == 0:
        failures.append("artifact cache hit rate collapsed to 0")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=120)
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument("--zipf-s", type=float, default=1.2,
                        help="zipf skew of the tenant mix (default 1.2)")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads (default 8)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--backend", choices=("thread", "process"),
                        default="thread")
    parser.add_argument("--max-queue", type=int, default=16)
    parser.add_argument("--rate", type=float, default=200.0)
    parser.add_argument("--burst", type=float, default=32.0)
    parser.add_argument("--deadline-s", type=float, default=30.0)
    parser.add_argument("--faults", default=None,
                        help="chaos schedule, e.g. 'serve.worker:0.05'")
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument("--seed", type=int, default=42,
                        help="request-mix seed")
    parser.add_argument("--out", default="BENCH_SERVE.json")
    parser.add_argument("--check", metavar="BASELINE", default=None)
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="allowed p99/p50 amplification vs baseline")
    parser.add_argument("--obs-requests", type=int, default=60,
                        help="requests per side of the tracing-overhead "
                             "leg (default 60)")
    parser.add_argument("--trace-tolerance", type=float, default=1.10,
                        help="allowed tracing-on/off p99 ratio "
                             "(default 1.10)")
    parser.add_argument("--trace-slack-s", type=float, default=0.05,
                        help="absolute p99 slack for the tracing gate")
    parser.add_argument("--skip-obs", action="store_true",
                        help="skip the tracing-overhead leg")
    args = parser.parse_args(argv)

    requests = build_requests(args)
    print(f"serve bench: {len(requests)} requests, {args.tenants} tenants "
          f"(zipf s={args.zipf_s}), {args.clients} clients -> "
          f"{args.workers} {args.backend} workers, queue {args.max_queue}"
          + (f", chaos {args.faults!r}" if args.faults else ""))

    # primary leg: tracing off (warm each distinct shape once through a
    # dedicated tenant — compile + profile paid up front, untimed)
    rows, wall_s, stats = run_leg(args, requests, trace=False)

    obs = None
    if not args.skip_obs:
        print(f"tracing-overhead leg: {args.obs_requests} requests "
              f"per side (off, then on)")
        obs = measure_tracing_overhead(args)

    report = summarize(args, rows, wall_s, stats, obs=obs)
    lat = report["latency"]
    print(f"  wall {wall_s:8.2f}s   {report['requests_per_s']:7.1f} req/s")
    print(f"  latency p50 {lat['p50_s'] * 1e3:8.1f}ms   "
          f"p99 {lat['p99_s'] * 1e3:8.1f}ms")
    print(f"  statuses {report['statuses']}")
    print(f"  shed {report['shed_rate'] * 100:5.1f}%   "
          f"reject {report['reject_rate'] * 100:5.1f}%   "
          f"cache hit {report['cache_hit_rate'] * 100:5.1f}%")
    print(f"  worker deaths {report['retries']['worker_deaths']}   "
          f"breaker trips {report['breakers']['trips']}")
    print(f"  ledger: {report['ledger']['admitted']} admitted, "
          f"{report['ledger']['lost']} lost, "
          f"{report['ledger']['duplicated']} duplicated")

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"report written to {args.out}")

    # the invariants hold unconditionally, baseline or not
    if report["ledger"]["lost"] or report["ledger"]["duplicated"]:
        print("FAIL: exactly-once ledger violated", file=sys.stderr)
        return 1
    if obs is not None and check_tracing_overhead(
        obs, args.trace_tolerance, args.trace_slack_s
    ):
        return 1
    if args.check:
        return check_against(report, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
