"""Table II: benchmark suite with paper-vs-modelled serial times."""

from repro.bench import render_table2, table2

from conftest import run_once


def test_table2_serial_times(benchmark):
    rows = run_once(benchmark, table2)
    print()
    print(render_table2(rows))
    # the per-app Java efficiencies are calibrated against this column:
    # every modelled serial time must land within 20% of the paper's
    for row in rows:
        ratio = row.measured_serial_ms / row.paper_serial_ms
        assert 0.8 < ratio < 1.25, (row.name, ratio)
