"""Shared helpers for the benchmark suite.

Every bench regenerates one table or figure of the paper: it executes
the relevant workloads under the relevant strategies on the calibrated
platform model, prints the paper-vs-measured rows, and asserts the
orderings the paper's evaluation reports.  ``pytest benchmarks/
--benchmark-only -s`` shows the rendered tables.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run a harness function exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(autouse=True, scope="session")
def _fresh_cache():
    from repro.bench import clear_cache

    clear_cache()
    yield
