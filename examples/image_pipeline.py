"""Privatization (mode D) on an image pipeline.

The Sepia filter stages each pixel's tone through a small shared scratch
buffer.  Static analysis cannot resolve the scratch subscripts, so the
loop is profiled on the (simulated) GPU: the profile shows *false*
dependencies only — every iteration overwrites the same scratch cells —
and the scheduler runs the loop privatized: each GPU thread gets its own
scratch copy, and the sequentially-last values are copied back.

Run:  python examples/image_pipeline.py
"""

import numpy as np

from repro.workloads import SEPIA


def main() -> None:
    pixels = 16_384
    binds = SEPIA.bindings(size=pixels)
    expected = SEPIA.reference(binds)

    result = SEPIA.run(strategy="japonica", size=pixels)
    loop_id, loop_res = result.loop_results[0]

    print("=== Sepia under Japonica ===")
    print(f"loop: {loop_id}, execution mode: {loop_res.mode} "
          f"(D = privatized parallel execution, PE(V))")

    profile = loop_res.detail["profile"]
    print()
    print("=== What the profiler saw ===")
    print(f"iterations profiled : {profile.iterations}")
    print(f"true-dep density    : {profile.td_density:.4f}")
    print(f"false-dep pairs     : {profile.fd_pairs}")
    print(f"privatizable arrays : {sorted(profile.privatizable_arrays)}")
    print(f"uniform write sets  : {sorted(profile.uniform_write_arrays)}")
    print(f"coalescing estimate : {profile.coalescing:.2f}")

    print()
    print("=== Split and correctness ===")
    print(f"GPU pixels (privatized): {loop_res.detail['gpu_iterations']}")
    print(f"CPU pixels (sequential): {loop_res.detail['cpu_iterations']}")
    for name in ("r", "g", "b"):
        assert np.array_equal(result.arrays[name], expected[name]), name
    # the scratch ends with the *last* pixel's tone, as sequential code would
    assert np.array_equal(result.arrays["tone"], expected["tone"])
    print("results match the sequential reference bit-for-bit")

    print()
    print("=== Against the baselines (simulated) ===")
    for strategy in ("serial", "cpu", "gpu"):
        other = SEPIA.run(strategy=strategy, size=pixels)
        print(
            f"{strategy:8s} {other.sim_time_ms:9.3f} ms  "
            f"(japonica is {other.sim_time_s / result.sim_time_s:.2f}x faster)"
        )
    print(f"japonica {result.sim_time_ms:9.3f} ms")


if __name__ == "__main__":
    main()
