"""Dot product through ``@repro.jit``: a reduction with a return value.

The accumulator ``s`` is carried across iterations, so annotation
inference classifies the loop as a reduction rather than a DOALL; the
tail ``return s`` comes back as the call's return value, bit-identical
to the plain Python sum order.

Run directly or via ``python -m repro run --jit examples/jit_dot.py``.
"""

import numpy as np

import repro


@repro.jit
def dot(x, y, n):
    s = 0.0
    for i in range(n):
        s = s + x[i] * y[i]
    return s


def make_inputs(n=1, seed=0):
    """Per-function argument tuples (the CLI/test convention)."""
    rng = np.random.default_rng(seed)
    size = 4096 * n
    return {"dot": (rng.standard_normal(size), rng.standard_normal(size), size)}


if __name__ == "__main__":
    (args,) = make_inputs().values()
    print("dot =", dot(*args))
    rep = dot.last_report
    print(f"lifted={rep.lifted} loops={rep.loops_annotated}/{rep.loops_total}")
