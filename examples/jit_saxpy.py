"""SAXPY through the ``@repro.jit`` Python frontend.

The decorated function is a plain Python loop over NumPy arrays.  At
the first call per argument-type signature the bytecode is lifted into
the Japonica pipeline (classify -> infer -> profile -> schedule); the
result is bitwise-identical to running the undecorated function.

Run directly (``python examples/jit_saxpy.py``) or through the CLI
(``python -m repro run --jit examples/jit_saxpy.py``).
"""

import numpy as np

import repro


@repro.jit
def saxpy(a, x, y, out, n):
    for i in range(n):
        out[i] = a * x[i] + y[i]


def make_inputs(n=1, seed=0):
    """Per-function argument tuples (the CLI/test convention)."""
    rng = np.random.default_rng(seed)
    size = 4096 * n
    x = rng.standard_normal(size)
    y = rng.standard_normal(size)
    return {"saxpy": (2.5, x, y, np.zeros(size), size)}


if __name__ == "__main__":
    (args,) = make_inputs().values()
    saxpy(*args)
    rep = saxpy.last_report
    print(f"lifted={rep.lifted} loops={rep.loops_annotated}/{rep.loops_total}")
    print("out[:4] =", args[3][:4])
