"""A 2-D five-point stencil through ``@repro.jit``.

Exercises the lifter's heavier features in one workload: nested loops
bounded by ``a.shape[k]`` expressions, tuple subscripts with arithmetic
index expressions (``a[i - 1, j]``), and a guard over the whole nest.

Run directly or via ``python -m repro run --jit examples/jit_stencil2d.py``.
"""

import numpy as np

import repro


@repro.jit
def stencil2d(a, b):
    for i in range(1, a.shape[0] - 1):
        for j in range(1, a.shape[1] - 1):
            b[i, j] = 0.25 * (
                a[i - 1, j] + a[i + 1, j] + a[i, j - 1] + a[i, j + 1]
            )


def make_inputs(n=1, seed=0):
    """Per-function argument tuples (the CLI/test convention)."""
    rng = np.random.default_rng(seed)
    side = 64 * n
    a = rng.standard_normal((side, side))
    return {"stencil2d": (a, np.zeros((side, side)))}


if __name__ == "__main__":
    (args,) = make_inputs().values()
    stencil2d(*args)
    rep = stencil2d.last_report
    print(f"lifted={rep.lifted} loops={rep.loops_annotated}/{rep.loops_total}")
    print("b[1, 1:5] =", args[1][1, 1:5])
