"""Quickstart: compile annotated Java, run it under every strategy.

Japonica's promise: annotate a loop, keep writing Java, and the runtime
spreads the work over the CPU and the GPU.  This example compiles a
small saxpy-like program, shows the generated CUDA and multithreaded
Java, and compares the simulated execution time of every strategy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Japonica

SOURCE = """
class Poly {
  static void run(double[] x, double[] y, double[] out, double a, int n) {
    /* acc parallel copyin(x[0:n-1], y[0:n-1]) copyout(out[0:n-1]) threads(256) */
    for (int i = 0; i < n; i++) {
      double t = x[i] * 0.5;
      double p = ((((((t * a + 1.1) * t + 2.3) * t + 3.1) * t + 1.7)
                  * t + 0.9) * t + 4.2) * t + 0.3;
      double q = ((((((p * a + 2.1) * p + 0.3) * p + 1.9) * p + 2.7)
                  * p + 1.3) * p + 0.2) * p + 1.1;
      out[i] = q + y[i];
    }
  }
}
"""


def main() -> None:
    japonica = Japonica()
    program = japonica.compile(SOURCE)

    print("=== Generated CUDA kernel ===")
    print(program.cuda_source("run"))
    print()
    print("=== Generated multithreaded Java (first lines) ===")
    print("\n".join(program.java_source("run").splitlines()[:12]))
    print()

    n = 262_144
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    args = dict(x=x, y=y, out=np.zeros(n), a=0.25, n=n)

    def reference():
        a = 0.25
        t = x * 0.5
        p = ((((((t * a + 1.1) * t + 2.3) * t + 3.1) * t + 1.7)
             * t + 0.9) * t + 4.2) * t + 0.3
        q = ((((((p * a + 2.1) * p + 0.3) * p + 1.9) * p + 2.7)
             * p + 1.3) * p + 0.2) * p + 1.1
        return q + y

    expected = reference()
    results = {}
    for strategy in ("serial", "cpu", "gpu", "coop50", "japonica"):
        results[strategy] = program.run(strategy=strategy, **args)
        assert np.array_equal(results[strategy].arrays["out"], expected)

    serial = results["serial"].sim_time_s
    print("=== Simulated execution times (calibrated platform model) ===")
    print(f"{'strategy':10s} {'time':>12s} {'speedup':>9s}  notes")
    notes = {
        "serial": "1 CPU thread",
        "cpu": "16 CPU threads",
        "gpu": "GPU-alone, synchronous JNI transfers",
        "coop50": "naive 50/50 split",
        "japonica": "task sharing, mode "
        + results["japonica"].loop_results[0][1].mode,
    }
    for strategy, res in results.items():
        print(
            f"{strategy:10s} {res.sim_time_ms:10.3f}ms "
            f"{serial / res.sim_time_s:8.2f}x  {notes[strategy]}"
        )

    japo = results["japonica"].loop_results[0][1]
    print()
    print("=== Task-sharing split (boundary = Cg*Fg / (Cg*Fg + Cc*Fc)) ===")
    print(f"GPU iterations: {japo.detail['gpu_iterations']}")
    print(f"CPU iterations: {japo.detail['cpu_iterations']}")


if __name__ == "__main__":
    main()
