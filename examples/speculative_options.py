"""GPU-TLS (mode B) on an option-pricing loop with a sparse dependence.

BlackScholes prices options independently, but every iteration publishes
into an audit buffer that a sparse subset of later iterations reads back
through an index table.  Static analysis cannot resolve the indirection;
the profiler measures a true-dependence density of ~0.01 — low enough to
speculate.  The loop then runs on the GPU under GPU-TLS: sub-loop
kernels speculate, the DC phase checks the access metadata, clean
prefixes commit, and the few real conflicts trigger recovery (relaunch
or CPU handoff, guided by the profile).

Run:  python examples/speculative_options.py
"""

from repro.workloads import BLACKSCHOLES


def main() -> None:
    binds = BLACKSCHOLES.bindings()
    result = BLACKSCHOLES.run(strategy="japonica")
    BLACKSCHOLES.verify(result, binds)
    loop_id, loop_res = result.loop_results[0]

    print("=== BlackScholes under Japonica ===")
    print(f"loop: {loop_id}, execution mode: {loop_res.mode} (B = GPU-TLS)")

    profile = loop_res.detail["profile"]
    print()
    print("=== Dependency profile ===")
    print(f"TD density        : {profile.td_density:.4f} "
          f"(paper measured ~0.012)")
    print(f"classification    : {profile.density_class()} "
          f"(threshold N = 0.30)")
    print(f"TD pairs          : {profile.td_pairs} "
          f"({profile.intra_warp_td} intra-warp, "
          f"{profile.inter_warp_td} inter-warp)")
    print(f"distance histogram: {dict(sorted(profile.td_distances.items()))}")

    tls = loop_res.detail["tls"]
    print()
    print("=== GPU-TLS execution ===")
    print(f"sub-loop kernels    : {tls.subloops}")
    print(f"violations          : {tls.violations}")
    print(f"GPU relaunches      : {tls.relaunches}")
    print(f"CPU handoffs        : {tls.cpu_handoffs} "
          f"({tls.cpu_iterations} iterations run sequentially)")
    print(f"iterations committed: {tls.committed_iterations}")
    print(f"iterations squashed : {tls.squashed_iterations}")
    print(f"event log           : {tls.events}")

    print()
    print("=== Speedups (simulated) ===")
    serial = BLACKSCHOLES.run(strategy="serial")
    gpu = BLACKSCHOLES.run(strategy="gpu")
    print(f"serial  : {serial.sim_time_ms:9.3f} ms")
    print(f"gpu-TLS-alone: {gpu.sim_time_ms:6.3f} ms")
    print(f"japonica: {result.sim_time_ms:9.3f} ms "
          f"({serial.sim_time_s / result.sim_time_s:.1f}x over serial; "
          f"paper reports 5.1x)")
    print()
    print("results verified against the sequential reference.")


if __name__ == "__main__":
    main()
