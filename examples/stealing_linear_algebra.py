"""Task stealing (Algorithm 1) on BICG's 2x4 sub-loops.

BICG computes q = A p and s = A^T r — two independent DOALL loops that
the paper splits into four sub-loops each.  The section-aware PDG proves
all eight sub-loops independent; the distribution rules put every DOALL
task in the GPU queue; the idle CPU steals.  In the paper the CPU ends
up executing 62.5 % of the sub-loops; this run reproduces that split.

Run:  python examples/stealing_linear_algebra.py
"""

from repro.workloads import BICG


def main() -> None:
    binds = BICG.bindings()
    result = BICG.run(strategy="japonica")
    BICG.verify(result, binds)
    batch_id, batch_res = result.loop_results[0]

    print("=== BICG under the task-stealing scheme ===")
    print(f"tasks in the batch set: {batch_id}")

    stats = batch_res.detail["stats"]
    print()
    print("=== Placements (simulated timeline) ===")
    print(f"{'task':12s} {'worker':6s} {'start':>10s} {'duration':>10s} stolen")
    for p in sorted(stats.placements, key=lambda p: (p.worker, p.start_s)):
        print(
            f"{p.task_id:12s} {p.worker:6s} {p.start_s * 1e3:9.3f}ms "
            f"{p.duration_s * 1e3:9.3f}ms {'yes' if p.stolen else ''}"
        )
    print()
    print(f"batches (PDG topological layers): {stats.batches}")
    print(f"steals: {stats.steals}")
    print(f"CPU share of sub-loops: {stats.share('cpu') * 100:.1f}% "
          f"(paper: 62.5%)")

    print()
    print("=== Section-aware PDG (Graphviz DOT) ===")
    from repro.pdg import to_dot
    from repro.scheduler.stealing import TaskStealingScheduler
    from repro.scheduler.task import Task

    program = BICG.compile()
    loops = program.unit.methods["run"].loops
    ctx = BICG.make_context()
    tasks = [Task(tl) for tl in loops]
    from repro.ir import ArrayStorage
    import numpy as np

    storage = ArrayStorage(
        {k: np.asarray(v) for k, v in binds.items() if not np.isscalar(v)}
    )
    env = {"n": binds["n"]}
    pdg = TaskStealingScheduler(ctx).build_task_pdg(tasks, storage, env)
    dot = to_dot(pdg, name="bicg")
    print("\n".join(dot.splitlines()[:6] + ["  ..."]))
    print(f"(edges: {pdg.g.number_of_edges()} — the eight sub-loops are "
          f"mutually independent)")

    print()
    print("=== Speedups (simulated) ===")
    for strategy in ("serial", "cpu", "gpu"):
        other = BICG.run(strategy=strategy)
        print(
            f"{strategy:8s} {other.sim_time_ms:8.3f} ms  "
            f"(stealing is {other.sim_time_s / result.sim_time_s:.2f}x faster)"
        )
    print(f"stealing {result.sim_time_ms:8.3f} ms")
    print()
    print("results verified against the sequential reference.")


if __name__ == "__main__":
    main()
