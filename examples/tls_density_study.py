"""A TLS study with the synthetic workload generator.

How does Japonica's scheduler react as a loop's true-dependence density
rises from zero to one?  This sweep generates loops whose dependence
structure is controlled exactly (period + distance of reads through an
index table), runs each through the full pipeline, and prints the
profiled density, the chosen execution mode, and the speedup over the
serial baseline — the Figure-2 workflow, observed end to end.

Run:  python examples/tls_density_study.py
"""

import numpy as np

from repro.workloads.synthetic import SyntheticSpec, reference, run_synthetic

#: (label, spec) — densities from 0 to ~1
SWEEP = [
    ("none", SyntheticSpec(n=2048, td_period=0, work=6)),
    ("1/512", SyntheticSpec(n=2048, td_period=512, td_distance=1200, work=6)),
    ("1/64", SyntheticSpec(n=2048, td_period=64, td_distance=1200, work=6)),
    ("1/16", SyntheticSpec(n=2048, td_period=16, td_distance=1200, work=6)),
    ("1/4", SyntheticSpec(n=2048, td_period=4, td_distance=8, work=6)),
    ("every", SyntheticSpec(n=2048, td_period=1, td_distance=1, work=6)),
]


def main() -> None:
    print("TD density sweep on a generated loop (n=2048)")
    print(f"{'target':8s} {'profiled':>9s} {'mode':>5s} "
          f"{'time':>11s} {'vs serial':>10s}  notes")
    for label, spec in SWEEP:
        result, binds = run_synthetic(spec, "japonica")
        expected = reference(spec, binds)
        for name, want in expected.items():
            assert np.array_equal(result.arrays[name], want), name

        serial, _ = run_synthetic(spec, "serial")
        loop_res = result.loop_results[0][1]
        profile = loop_res.detail.get("profile")
        density = profile.td_density if profile else 0.0
        mode = loop_res.mode
        notes = {
            "A": "statically DOALL",
            "B": "GPU-TLS speculation",
            "C": "CPU sequential (density above N)",
            "D": "privatized",
            "D'": "profiled clean",
        }[mode]
        tls = loop_res.detail.get("tls")
        if tls is not None:
            notes += (f"; {tls.subloops} sub-loops, "
                      f"{tls.violations} violations")
        print(
            f"{label:8s} {density:9.4f} {mode:>5s} "
            f"{result.sim_time_ms:9.3f}ms "
            f"{serial.sim_time_s / result.sim_time_s:9.2f}x  {notes}"
        )

    print()
    print("The workflow diagram in action: zero density stays mode A,")
    print("sparse dependencies speculate (B), dense ones fall back to the")
    print("CPU (C) — and every run is verified against sequential output.")


if __name__ == "__main__":
    main()
