"""Japonica reproduction: Java auto-parallelization on a heterogeneous
CPU+GPU architecture (Han, Zhang, Lam, Wang - ICPP 2013), in simulation.

The package implements the full pipeline of the paper: an annotated
mini-Java frontend, static dependence analysis, translation to kernel IR
(with generated CUDA/Java source artifacts), GPU-side dependency-density
profiling, DOALL parallelization, GPU-TLS speculation with privatization,
and the profile-guided task-sharing and task-stealing schedulers - all
over functional CPU/GPU simulators with a calibrated performance model.
"""

from .api import CompiledProgram, Japonica, ProgramResult, STRATEGIES
from .errors import JaponicaError
from .frontend.pyjit import JitFunction, LiftReport, jit
from .runtime.platform import Platform, paper_platform, symmetric_platform
from .scheduler.context import ExecutionContext, JaponicaConfig

__version__ = "1.0.0"

__all__ = [
    "CompiledProgram",
    "ExecutionContext",
    "Japonica",
    "JaponicaConfig",
    "JaponicaError",
    "JitFunction",
    "LiftReport",
    "Platform",
    "ProgramResult",
    "STRATEGIES",
    "jit",
    "paper_platform",
    "symmetric_platform",
    "__version__",
]
