"""Static analysis: symbols, canonical loops, affine accesses, dependences."""

from .affine import CONST_ZERO, LinForm, compress, forms_key
from .classify import (
    LoopAnalysis,
    LoopStatus,
    VariableClasses,
    analyze_loop,
    analyze_method,
)
from .consteval import eval_int, eval_invariant
from .deps import (
    Access,
    DepKind,
    PairOutcome,
    PairVerdict,
    StaticDep,
    collect_accesses,
    pair_test,
)
from .infer import (
    InferenceReport,
    LoopProposal,
    MethodInference,
    infer_class,
    infer_method,
    propose_loop,
    synthesize_annotation,
)
from .loopinfo import LoopInfo, extract_loop_info
from .symbols import (
    MethodScope,
    declared_inside,
    method_types,
    outer_scope_at_loop,
)

__all__ = [
    "Access",
    "CONST_ZERO",
    "DepKind",
    "InferenceReport",
    "LinForm",
    "LoopAnalysis",
    "LoopInfo",
    "LoopProposal",
    "LoopStatus",
    "MethodInference",
    "MethodScope",
    "PairOutcome",
    "PairVerdict",
    "StaticDep",
    "VariableClasses",
    "analyze_loop",
    "analyze_method",
    "collect_accesses",
    "compress",
    "declared_inside",
    "eval_int",
    "eval_invariant",
    "extract_loop_info",
    "forms_key",
    "infer_class",
    "infer_method",
    "method_types",
    "outer_scope_at_loop",
    "pair_test",
    "propose_loop",
    "synthesize_annotation",
]
