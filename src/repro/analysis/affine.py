"""Affine compression of array subscripts.

Rule (1) of the paper's static analysis: "we compress the memory accesses
into a linear constraint in terms of loop iteration ID".  A subscript is
compressed to::

    coeff * i + (sum of sym terms) + const

where ``i`` is the loop induction variable and sym terms are
loop-invariant scalars.  Subscripts that cannot be compressed (indirect
accesses ``a[idx[i]]``, products of the index, modulo patterns) return
``None`` and are "marked for profiling".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang import ast_nodes as A


@dataclass(frozen=True)
class LinForm:
    """``coeff * i + syms + const`` with syms a sorted tuple of (name, k)."""

    coeff: int
    syms: tuple[tuple[str, int], ...]
    const: int

    @property
    def invariant(self) -> bool:
        """True when the form does not involve the loop index."""
        return self.coeff == 0

    def __add__(self, other: "LinForm") -> "LinForm":
        return LinForm(
            self.coeff + other.coeff,
            _merge(self.syms, other.syms, 1),
            self.const + other.const,
        )

    def __sub__(self, other: "LinForm") -> "LinForm":
        return LinForm(
            self.coeff - other.coeff,
            _merge(self.syms, other.syms, -1),
            self.const - other.const,
        )

    def scale(self, factor: int) -> "LinForm":
        return LinForm(
            self.coeff * factor,
            tuple((n, k * factor) for n, k in self.syms if k * factor != 0),
            self.const * factor,
        )

    def same_syms(self, other: "LinForm") -> bool:
        return self.syms == other.syms

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        if self.coeff:
            parts.append(f"{self.coeff}*i")
        parts.extend(f"{k}*{n}" for n, k in self.syms)
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


def _merge(a, b, sign: int) -> tuple[tuple[str, int], ...]:
    out: dict[str, int] = dict(a)
    for name, k in b:
        out[name] = out.get(name, 0) + sign * k
    return tuple(sorted((n, k) for n, k in out.items() if k != 0))


CONST_ZERO = LinForm(0, (), 0)


def compress(
    expr: A.Expr,
    index: str,
    temps: frozenset[str] | set[str],
) -> Optional[LinForm]:
    """Compress ``expr`` into a :class:`LinForm`, or None if irresolvable.

    ``temps`` are variables declared inside the loop: references to them
    (other than the induction variable itself) defeat compression because
    their values are not loop-invariant.
    """
    if isinstance(expr, A.IntLit):
        return LinForm(0, (), expr.value)
    if isinstance(expr, A.VarRef):
        if expr.name == index:
            return LinForm(1, (), 0)
        if expr.name in temps:
            return None
        return LinForm(0, ((expr.name, 1),), 0)
    if isinstance(expr, A.Length):
        from ..ir.lower import length_param

        return LinForm(0, ((length_param(expr.array.name, expr.axis), 1),), 0)
    if isinstance(expr, A.Unary) and expr.op == "-":
        inner = compress(expr.operand, index, temps)
        return None if inner is None else inner.scale(-1)
    if isinstance(expr, A.Cast) and expr.target.name in ("int", "long"):
        # Width-changing casts are treated as identity for subscripts,
        # which are assumed in-range (checked dynamically anyway).
        return compress(expr.operand, index, temps)
    if isinstance(expr, A.Binary):
        if expr.op == "+":
            a = compress(expr.left, index, temps)
            b = compress(expr.right, index, temps)
            return None if a is None or b is None else a + b
        if expr.op == "-":
            a = compress(expr.left, index, temps)
            b = compress(expr.right, index, temps)
            return None if a is None or b is None else a - b
        if expr.op == "*":
            a = compress(expr.left, index, temps)
            b = compress(expr.right, index, temps)
            if a is None or b is None:
                return None
            if not a.syms and a.coeff == 0:
                return b.scale(a.const)
            if not b.syms and b.coeff == 0:
                return a.scale(b.const)
            return None  # symbolic coefficient: not linear in a testable way
    return None


def forms_key(forms: tuple[Optional[LinForm], ...]) -> Optional[tuple]:
    """Hashable identity of a fully-affine subscript tuple (else None)."""
    if any(f is None for f in forms):
        return None
    return tuple((f.coeff, f.syms, f.const) for f in forms)
