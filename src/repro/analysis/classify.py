"""Variable and loop classification (paper §III-A).

Each variable in an annotated loop is classified as:

* ``temp`` — declared inside the loop, invisible outside;
* ``live-in`` — declared outside, only read in the loop;
* ``live-out`` — declared outside and updated in the loop.

The loop itself is classified as deterministically DOALL, deterministically
dependent, or *uncertain* (carrying irresolvable accesses that must be
profiled on the GPU).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import AnalysisError
from ..lang import ast_nodes as A
from .deps import (
    Access,
    DepKind,
    PairVerdict,
    StaticDep,
    collect_accesses,
    pair_test,
)
from .loopinfo import LoopInfo, extract_loop_info
from .symbols import MethodScope, declared_inside, outer_scope_at_loop


class LoopStatus(enum.Enum):
    DOALL = "doall"  # deterministically no loop-carried dependence
    STATIC_DEP = "static-dep"  # deterministic loop-carried dependence(s)
    UNCERTAIN = "uncertain"  # needs dynamic profiling


@dataclass
class VariableClasses:
    """The paper's three-way variable classification."""

    temp: set[str] = field(default_factory=set)
    live_in: set[str] = field(default_factory=set)
    live_out: set[str] = field(default_factory=set)


@dataclass
class LoopAnalysis:
    """Full static-analysis result for one annotated loop."""

    info: LoopInfo
    variables: VariableClasses
    accesses: list[Access]
    status: LoopStatus
    static_deps: list[StaticDep]
    profile_pairs: list[tuple[Access, Access]]
    scalar_live_outs: set[str]
    outer_types: dict[str, A.Type]

    @property
    def has_static_true(self) -> bool:
        return any(d.kind is DepKind.TRUE for d in self.static_deps)

    @property
    def has_static_false(self) -> bool:
        return any(d.kind.is_false for d in self.static_deps)

    @property
    def needs_profiling(self) -> bool:
        return self.status is LoopStatus.UNCERTAIN

    def arrays_written(self) -> set[str]:
        return {a.array for a in self.accesses if a.kind == "W"}

    def arrays_read(self) -> set[str]:
        return {a.array for a in self.accesses if a.kind == "R"}


def analyze_loop(method: A.Method, loop: A.For) -> LoopAnalysis:
    """Run the full static analysis of one annotated loop."""
    info = extract_loop_info(loop)
    scope = outer_scope_at_loop(method, loop)
    temps = declared_inside(loop)
    if info.index not in temps:
        # canonical loops declare the index in the init clause; an index
        # declared outside would be a scalar live-out
        temps = set(temps) | {info.index}

    variables = _classify_variables(loop, scope, temps, info.index)
    scalar_live_outs = {
        name
        for name in variables.live_out
        if not isinstance(scope.types.get(name), A.ArrayType)
    }
    accesses = collect_accesses(loop, info.index, set(temps))

    trip = _const_trip_count(info)
    static_deps: list[StaticDep] = []
    profile_pairs: list[tuple[Access, Access]] = []
    writes = [a for a in accesses if a.kind == "W"]
    by_array: dict[str, list[Access]] = {}
    for acc in accesses:
        by_array.setdefault(acc.array, []).append(acc)

    seen_pairs: set[tuple[int, int]] = set()
    for w in writes:
        for other in by_array[w.array]:
            # A write is also tested against itself: a subscript that can
            # repeat across iterations (constant, or irresolvable like
            # out[idx[i]]) conflicts with its own earlier instances.
            if other.kind == "W" and (
                (other.order, w.order) in seen_pairs
                or (w.order, other.order) in seen_pairs
            ):
                continue
            seen_pairs.add((w.order, other.order))
            outcome = pair_test(w, other, trip=trip, step=info.step)
            if outcome.verdict is PairVerdict.DEP:
                static_deps.extend(outcome.deps)
            elif outcome.verdict is PairVerdict.UNKNOWN:
                profile_pairs.append((w, other))

    static_deps = _dedup_deps(static_deps)

    if scalar_live_outs:
        # a scalar updated every iteration is a loop-carried dependence
        status = LoopStatus.STATIC_DEP
    elif profile_pairs:
        status = LoopStatus.UNCERTAIN
    elif static_deps:
        status = LoopStatus.STATIC_DEP
    else:
        status = LoopStatus.DOALL

    return LoopAnalysis(
        info=info,
        variables=variables,
        accesses=accesses,
        status=status,
        static_deps=static_deps,
        profile_pairs=profile_pairs,
        scalar_live_outs=scalar_live_outs,
        outer_types=dict(scope.types),
    )


def _const_trip_count(info: LoopInfo) -> Optional[int]:
    """Trip count when both loop bounds constant-evaluate, else None.

    Constant bounds let the pairwise tests prune dependence distances
    the iteration space cannot realize (see :func:`..deps.pair_test`).
    """
    try:
        return info.trip_count({})
    except AnalysisError:
        return None


def _dedup_deps(deps: list[StaticDep]) -> list[StaticDep]:
    seen = set()
    out = []
    for d in deps:
        key = (d.array, d.kind, d.distance, d.src_order, d.dst_order)
        if key not in seen:
            seen.add(key)
            out.append(d)
    return out


def _classify_variables(
    loop: A.For,
    scope: MethodScope,
    temps: set[str],
    index: str,
) -> VariableClasses:
    """AST-traversal variable classification.

    (The paper's prose swaps the live-in/live-out definitions mid-
    sentence; we implement the consistent reading it states first:
    live-in and live-out are declared outside the loop and differ in
    whether the loop *updates* them.)
    """
    classes = VariableClasses(temp=set(temps))
    read: set[str] = set()
    written: set[str] = set()

    for node in A.walk(loop.body):
        if isinstance(node, A.Assign):
            if isinstance(node.target, A.VarRef):
                written.add(node.target.name)
                if node.op:
                    read.add(node.target.name)
            else:
                written.add(node.target.base.name)
                if node.op:
                    read.add(node.target.base.name)
        elif isinstance(node, A.IncDec):
            name = (
                node.target.name
                if isinstance(node.target, A.VarRef)
                else node.target.base.name
            )
            written.add(name)
            read.add(name)
        elif isinstance(node, A.VarRef):
            read.add(node.name)
        elif isinstance(node, A.Length):
            read.add(node.array.name)

    outside = set(scope.types) - temps - {index}
    for name in outside:
        if name in written:
            classes.live_out.add(name)
        elif name in read:
            classes.live_in.add(name)
    return classes


def analyze_method(method: A.Method) -> dict[int, LoopAnalysis]:
    """Analyze every annotated loop in a method, keyed by order of
    appearance."""
    from ..lang import annotated_loops

    out: dict[int, LoopAnalysis] = {}
    for k, loop in enumerate(annotated_loops(method)):
        out[k] = analyze_loop(method, loop)
    if not out:
        raise AnalysisError(f"method {method.name!r} has no annotated loops")
    return out
