"""Evaluation of loop-invariant integer expressions.

Loop bounds, annotation array-section bounds, and affine subscript offsets
are expressions over loop-invariant scalars.  This evaluator computes them
against the host scalar environment at loop entry, with Java integer
semantics.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import AnalysisError
from ..ir import java_ops
from ..lang import ast_nodes as A


def eval_invariant(expr: A.Expr, env: Mapping[str, object]):
    """Evaluate a loop-invariant expression against ``env``.

    Supports the scalar expression subset (no array loads).  Raises
    :class:`AnalysisError` when the expression references an unknown
    variable or an unsupported construct.
    """
    if isinstance(expr, A.IntLit):
        return java_ops.wrap_int(expr.value)
    if isinstance(expr, A.LongLit):
        return java_ops.wrap_long(expr.value)
    if isinstance(expr, (A.DoubleLit, A.FloatLit)):
        return float(expr.value)
    if isinstance(expr, A.BoolLit):
        return bool(expr.value)
    if isinstance(expr, A.VarRef):
        try:
            return env[expr.name]
        except KeyError:
            raise AnalysisError(
                f"expression references unknown scalar {expr.name!r}"
            ) from None
    if isinstance(expr, A.Length):
        from ..ir.lower import length_param

        key = length_param(expr.array.name, expr.axis)
        try:
            return env[key]
        except KeyError:
            raise AnalysisError(
                f"expression references unknown length {key!r}"
            ) from None
    if isinstance(expr, A.Unary):
        value = eval_invariant(expr.operand, env)
        if expr.op == "-":
            return -value if isinstance(value, float) else java_ops.wrap_int(-value)
        if expr.op == "!":
            return not value
        if expr.op == "~":
            return java_ops.wrap_int(~value)
    if isinstance(expr, A.Cast):
        value = eval_invariant(expr.operand, env)
        from ..ir.instructions import jtype_of_prim, JType

        src = JType.DOUBLE if isinstance(value, float) else JType.LONG
        return java_ops.cast(value, src, jtype_of_prim(expr.target.name))
    if isinstance(expr, A.Binary):
        a = eval_invariant(expr.left, env)
        b = eval_invariant(expr.right, env)
        if expr.op in ("&&", "||"):
            return (a and b) if expr.op == "&&" else (a or b)
        if expr.op in ("<", "<=", ">", ">=", "==", "!="):
            import operator

            return {
                "<": operator.lt,
                "<=": operator.le,
                ">": operator.gt,
                ">=": operator.ge,
                "==": operator.eq,
                "!=": operator.ne,
            }[expr.op](a, b)
        if isinstance(a, float) or isinstance(b, float):
            from ..ir.instructions import JType

            return java_ops.binop(expr.op, float(a), float(b), JType.DOUBLE)
        from ..ir.instructions import JType

        return java_ops.binop(expr.op, int(a), int(b), JType.LONG)
    if isinstance(expr, A.Ternary):
        return (
            eval_invariant(expr.then, env)
            if eval_invariant(expr.cond, env)
            else eval_invariant(expr.other, env)
        )
    raise AnalysisError(
        f"cannot evaluate {type(expr).__name__} as a loop-invariant expression"
    )


def eval_int(expr: A.Expr, env: Mapping[str, object]) -> int:
    """Evaluate to an int, rejecting non-integral results."""
    value = eval_invariant(expr, env)
    if isinstance(value, bool) or not isinstance(value, int):
        raise AnalysisError(f"expected an integer, got {value!r}")
    return value
