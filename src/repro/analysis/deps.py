"""Static data-dependence tests over compressed (affine) accesses.

Implements rules (2)-(4) of the paper's static analysis: all pairs of
conflicting accesses to the same array are examined — write/write pairs
for output (WAW) conflicts, write/read pairs for flow/anti (RAW/WAR)
conflicts — and pairs that cannot be resolved statically are marked for
the dynamic profiling phase.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

from ..lang import ast_nodes as A
from .affine import LinForm, compress


class DepKind(enum.Enum):
    TRUE = "true"  # RAW: a later iteration reads an earlier one's write
    ANTI = "anti"  # WAR
    OUTPUT = "output"  # WAW

    @property
    def is_false(self) -> bool:
        """ANTI and OUTPUT are 'false' dependencies (removable by
        privatization); TRUE dependencies require ordering."""
        return self is not DepKind.TRUE


class PairVerdict(enum.Enum):
    NO_DEP = "no-dep"
    DEP = "dep"
    UNKNOWN = "unknown"  # needs profiling


@dataclass
class Access:
    """One static array access site inside the loop body."""

    array: str
    kind: str  # 'R' or 'W'
    subs: tuple[A.Expr, ...]
    forms: tuple[Optional[LinForm], ...]
    order: int  # lexical position within the body
    guard_depth: int  # nesting depth under if/while/inner-for
    covered: bool = False  # read preceded by an unguarded same-cell write

    @property
    def affine(self) -> bool:
        return all(f is not None for f in self.forms)


@dataclass(frozen=True)
class StaticDep:
    """A statically proven loop-carried dependence."""

    array: str
    kind: DepKind
    distance: Optional[int]  # None = holds at every iteration distance
    src_order: int
    dst_order: int


@dataclass
class PairOutcome:
    verdict: PairVerdict
    deps: list[StaticDep] = field(default_factory=list)


def collect_accesses(
    loop: A.For, index: str, temps: set[str]
) -> list[Access]:
    """All array accesses in the loop body, in lexical order.

    Reads are the ArrayRef loads in expressions; writes are assignment
    targets.  A compound assignment ``a[i] op= v`` contributes both a read
    and a write of the same cell.
    """
    accesses: list[Access] = []
    counter = [0]

    def add(array: str, kind: str, subs, depth: int) -> None:
        forms = tuple(compress(s, index, temps) for s in subs)
        accesses.append(
            Access(array, kind, tuple(subs), forms, counter[0], depth)
        )
        counter[0] += 1

    def scan_expr(e: A.Expr, depth: int) -> None:
        if isinstance(e, A.ArrayRef):
            for s in e.indices:
                scan_expr(s, depth)
            add(e.base.name, "R", e.indices, depth)
            return
        for child in e.children():
            if isinstance(child, A.Expr):
                scan_expr(child, depth)

    def scan_stmt(s: A.Stmt, depth: int) -> None:
        if isinstance(s, A.Block):
            for sub in s.stmts:
                scan_stmt(sub, depth)
        elif isinstance(s, A.VarDecl):
            if s.init is not None:
                scan_expr(s.init, depth)
        elif isinstance(s, A.Assign):
            scan_expr(s.value, depth)
            if isinstance(s.target, A.ArrayRef):
                for sub in s.target.indices:
                    scan_expr(sub, depth)
                if s.op:  # compound: reads the old value too
                    add(s.target.base.name, "R", s.target.indices, depth)
                add(s.target.base.name, "W", s.target.indices, depth)
        elif isinstance(s, A.IncDec):
            if isinstance(s.target, A.ArrayRef):
                for sub in s.target.indices:
                    scan_expr(sub, depth)
                add(s.target.base.name, "R", s.target.indices, depth)
                add(s.target.base.name, "W", s.target.indices, depth)
        elif isinstance(s, A.ExprStmt):
            scan_expr(s.expr, depth)
        elif isinstance(s, A.If):
            scan_expr(s.cond, depth)
            scan_stmt(s.then, depth + 1)
            if s.els is not None:
                scan_stmt(s.els, depth + 1)
        elif isinstance(s, A.While):
            scan_expr(s.cond, depth + 1)
            scan_stmt(s.body, depth + 1)
        elif isinstance(s, A.For):
            if s.init is not None:
                scan_stmt(s.init, depth)
            if s.cond is not None:
                scan_expr(s.cond, depth + 1)
            scan_stmt(s.body, depth + 1)
            if s.update is not None:
                scan_stmt(s.update, depth + 1)
        elif isinstance(s, A.Return):
            if s.value is not None:
                scan_expr(s.value, depth)

    scan_stmt(loop.body, 0)
    _mark_covered_reads(accesses)
    return accesses


def _mark_covered_reads(accesses: list[Access]) -> None:
    """Mark reads whose cell was definitely written earlier this iteration.

    Only *unguarded* writes (guard depth 0, i.e. executed on every
    iteration) with a fully affine, identical subscript form cover a read.
    Covered reads always observe the current iteration's own value, so
    they cannot participate in a cross-iteration flow dependence.
    """
    from .affine import forms_key

    written: dict[tuple, int] = {}
    for acc in accesses:
        key = forms_key(acc.forms)
        if key is None:
            continue
        full_key = (acc.array, key)
        if acc.kind == "W" and acc.guard_depth == 0:
            written.setdefault(full_key, acc.order)
        elif acc.kind == "R" and full_key in written:
            if written[full_key] < acc.order:
                acc.covered = True


def _solve_dim(fw: LinForm, fo: LinForm) -> tuple[str, Optional[int]]:
    """Can ``fw`` at iteration i equal ``fo`` at iteration j?

    Returns one of:
      ('never', None)      — no solution,
      ('dist', d)          — solutions require j - i == d,
      ('any', None)        — holds for every (i, j),
      ('unknown', None)    — not statically resolvable.
    """
    diff = fo - fw  # (fo const parts) - (fw const parts)
    if diff.syms:
        return ("unknown", None)
    a1, a2, c = fw.coeff, fo.coeff, diff.const
    if a1 == 0 and a2 == 0:
        return ("any", None) if c == 0 else ("never", None)
    if a1 == a2:
        # fw(i) = a*i + kw ; fo(j) = a*j + kw + c ; equal => a*(i - j) = c,
        # so the distance d = j - i = -c / a.
        if c % a1 != 0:
            return ("never", None)
        return ("dist", -(c // a1))
    g = math.gcd(abs(a1), abs(a2))
    if g and c % g != 0:
        return ("never", None)
    return ("unknown", None)


def pair_test(
    w: Access,
    o: Access,
    trip: Optional[int] = None,
    step: int = 1,
) -> PairOutcome:
    """Dependence test between a write ``w`` and another access ``o``.

    The distance convention: a dependence with distance ``d > 0`` means
    the access ``o`` at index value ``i + d`` touches the cell ``w``
    wrote at index value ``i``.

    Dimensions that cannot be compressed (inner-loop indices, indirect
    subscripts) are treated as unconstrained, but affine dimensions still
    prune the pair: in particular, a dimension that pins the iteration
    distance to 0 proves any conflict is intra-iteration — e.g.
    ``C[i][j]`` in a GEMM body cannot carry an outer-loop dependence no
    matter what ``j`` does.

    ``trip`` / ``step``, when the loop bounds constant-evaluate, prune
    distances the iteration space cannot realize: a pinned distance that
    is not a multiple of the step, or whose magnitude exceeds the index
    span ``(trip - 1) * step``, proves the pair independent — without
    this, ``a[i + 8] = a[i]`` in an 8-iteration loop is misreported as
    loop-carried and demotes a DOALL loop.
    """
    if trip is not None and trip <= 1:
        # at most one iteration runs: nothing to carry a dependence to
        return PairOutcome(PairVerdict.NO_DEP)
    if len(w.forms) != len(o.forms):
        return PairOutcome(PairVerdict.UNKNOWN)

    distance: Optional[int] = None
    constrained = False
    has_unknown = False
    for fw, fo in zip(w.forms, o.forms):
        if fw is None or fo is None:
            has_unknown = True
            continue
        how, d = _solve_dim(fw, fo)
        if how == "never":
            return PairOutcome(PairVerdict.NO_DEP)
        if how == "unknown":
            has_unknown = True
            continue
        if how == "dist":
            if constrained and distance != d:
                return PairOutcome(PairVerdict.NO_DEP)
            distance = d
            constrained = True
        # 'any' adds no constraint

    if constrained and distance == 0:
        # conflicts, if any, are within one iteration: not loop-carried
        return PairOutcome(PairVerdict.NO_DEP)
    if constrained and step > 1 and distance % step != 0:
        # the index only ever advances in multiples of the step, so a
        # distance that is not such a multiple can never be realized
        return PairOutcome(PairVerdict.NO_DEP)
    if constrained and trip is not None and abs(distance) > (trip - 1) * step:
        # the pinned distance exceeds the whole index span of the loop
        return PairOutcome(PairVerdict.NO_DEP)
    if has_unknown:
        return PairOutcome(PairVerdict.UNKNOWN)

    deps = _deps_for(w, o, distance if constrained else None)
    if not deps:
        return PairOutcome(PairVerdict.NO_DEP)  # only intra-iteration
    return PairOutcome(PairVerdict.DEP, deps)


def _deps_for(
    w: Access, o: Access, distance: Optional[int]
) -> list[StaticDep]:
    """Classify the loop-carried dependencies implied by a solved pair."""
    deps: list[StaticDep] = []
    if o.kind == "W":
        if distance is None or distance != 0:
            deps.append(
                StaticDep(w.array, DepKind.OUTPUT, distance, w.order, o.order)
            )
        return deps
    # write/read pair
    if distance is None:
        # conflicts at every distance: both flow and anti directions exist
        if not o.covered:
            deps.append(StaticDep(w.array, DepKind.TRUE, None, w.order, o.order))
        deps.append(StaticDep(w.array, DepKind.ANTI, None, o.order, w.order))
        return deps
    if distance > 0:
        if not o.covered:
            deps.append(
                StaticDep(w.array, DepKind.TRUE, distance, w.order, o.order)
            )
    elif distance < 0:
        deps.append(
            StaticDep(w.array, DepKind.ANTI, -distance, o.order, w.order)
        )
    return deps
