"""Annotation inference for bare loops (ROADMAP item 2).

Japonica's front end (§III-A) classifies, profiles and schedules only
loops the user annotated with ``/* acc parallel ... */``.  The TornadoVM
"Can We Run in Parallel?" and J-Parallelio lines of work show the same
directive can be *inferred*: run the static machinery this repo already
owns — variable classification (:mod:`.classify` / :mod:`.symbols`),
affine compression (:mod:`.affine`) and the pairwise WAW/RAW tests
(:mod:`.deps`) — over every bare canonical loop, then decide which loop
of each nest to annotate and synthesize the directive.

The pass has three parts:

* :func:`propose_loop` analyzes one bare loop and produces a
  :class:`LoopProposal`: a parallelism tag (``doall`` / ``static-dep`` /
  ``uncertain``), a placement score, and — when the loop is eligible — a
  synthesized :class:`~repro.lang.annotations.Annotation` whose data
  clauses carry *tight* array sections computed from the affine access
  ranges (falling back to whole-array sections when an access is not
  affine, the loop is strided, or ranges are not statically comparable).

* :func:`infer_method` runs the placement recursion: annotate a loop
  outright when it is statically DOALL; descend when a strictly better
  (or equally promising) loop exists deeper in the nest; otherwise
  annotate at the current level.  The policy reproduces the hand
  placement of all Table-II workloads without any profiling.

* uncertain proposals are *confirmed or rejected* by the existing DD
  profiler: the scheduler already profiles every uncertain loop before
  dispatch, and :meth:`InferenceReport.absorb_profiles` folds the
  resulting :class:`~repro.profiler.report.DependencyProfile` back into
  the proposal (``confirmed-doall`` / ``confirmed-privatizable`` /
  ``rejected``).

Soundness rules (see DESIGN §5.7): inference only ever *adds* an
annotation to a loop that has none; loops that are hand-annotated, or
that contain or sit inside a hand-annotated loop, are left untouched.
Synthesized sections always cover every cell the loop can touch —
widening to the whole array whenever the static range is not provably
tight — so an inferred clause can be wider, never narrower, than the
accesses it describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..errors import AnalysisError
from ..lang import ast_nodes as A
from ..lang.annotations import Annotation, ArraySection
from ..lang.pretty import format_annotation
from .classify import LoopAnalysis, LoopStatus, analyze_loop

#: Placement scores (higher = better loop to annotate).
SCORE_DOALL = 3.0       # statically proven DOALL
SCORE_UNCERTAIN = 2.0   # needs profiling; may turn out clean
SCORE_FALSE_DEP = 2.0   # static deps, but all privatizable (ANTI/OUTPUT)
SCORE_DEP = 1.0         # static TRUE dep or scalar live-out: last resort
SCORE_NONE = 0.0        # non-canonical: cannot be annotated at all

#: Tags the inference attaches to a proposal.
TAG_DOALL = "doall"
TAG_STATIC_DEP = "static-dep"
TAG_UNCERTAIN = "uncertain"
TAG_NON_CANONICAL = "non-canonical"
TAG_HAND = "hand-annotated"
TAG_CONTAINER = "contains-annotated"


@dataclass
class LoopProposal:
    """Inference verdict for one ``for`` loop of a method."""

    method: str
    loop: A.For
    index: int          # pre-order position among the method's loops
    depth: int          # loop-nest depth (0 = outermost)
    tag: str
    score: float
    reason: str
    chosen: bool = False
    annotation: Optional[Annotation] = None
    analysis: Optional[LoopAnalysis] = None
    #: translated loop id (``method#ordinal``) once the program compiles
    loop_id: Optional[str] = None
    #: DD-profiler verdict for uncertain proposals (set after a run)
    confirmation: Optional[str] = None

    @property
    def directive(self) -> str:
        """The proposed ``acc`` directive as re-parseable text."""
        if self.annotation is None:
            return ""
        return format_annotation(self.annotation)

    def pos_str(self) -> str:
        return str(self.loop.pos)


@dataclass
class MethodInference:
    """All proposals of one method, in loop pre-order."""

    method: str
    proposals: list[LoopProposal] = field(default_factory=list)

    @property
    def chosen(self) -> list[LoopProposal]:
        return [p for p in self.proposals if p.chosen]


@dataclass
class InferenceReport:
    """Whole-class inference outcome, one entry per method with loops."""

    methods: dict[str, MethodInference] = field(default_factory=dict)

    @property
    def proposals(self) -> list[LoopProposal]:
        return [p for mi in self.methods.values() for p in mi.proposals]

    @property
    def chosen(self) -> list[LoopProposal]:
        return [p for p in self.proposals if p.chosen]

    def absorb_profiles(self, profiles: Mapping[str, object]) -> None:
        """Fold DD-profiler results back into uncertain proposals.

        ``profiles`` maps translated loop ids to
        :class:`~repro.profiler.report.DependencyProfile`; the scheduler
        fills :attr:`ExecutionContext.profiles` as it dispatches, so
        calling this after a run closes the confirmation loop.
        """
        for p in self.proposals:
            if p.loop_id is None or p.loop_id not in profiles:
                continue
            if p.tag != TAG_UNCERTAIN:
                continue
            prof = profiles[p.loop_id]
            if prof.has_true:
                p.confirmation = "rejected"
            elif prof.has_false:
                p.confirmation = "confirmed-privatizable"
            else:
                p.confirmation = "confirmed-doall"

    def summary_lines(self) -> list[str]:
        """Human-readable one-line-per-loop summary (CLI output)."""
        lines: list[str] = []
        for mi in self.methods.values():
            for p in mi.proposals:
                mark = "+" if p.chosen else " "
                head = (
                    f"{mark} {p.method} loop#{p.index} (depth {p.depth}, "
                    f"{p.pos_str()}): {p.tag}"
                )
                if p.confirmation:
                    head += f" [{p.confirmation}]"
                if p.chosen and p.annotation is not None:
                    head += f" -> /* {p.directive} */"
                elif p.reason:
                    head += f" — {p.reason}"
                lines.append(head)
        return lines


# ---------------------------------------------------------------------------
# Per-loop proposal
# ---------------------------------------------------------------------------


def propose_loop(method: A.Method, loop: A.For, index: int, depth: int) -> LoopProposal:
    """Analyze one bare loop and score it for placement."""
    try:
        analysis = analyze_loop(method, loop)
    except AnalysisError as exc:
        return LoopProposal(
            method=method.name,
            loop=loop,
            index=index,
            depth=depth,
            tag=TAG_NON_CANONICAL,
            score=SCORE_NONE,
            reason=str(exc),
        )

    if analysis.status is LoopStatus.DOALL:
        tag, score = TAG_DOALL, SCORE_DOALL
        reason = "no loop-carried dependence (statically proven)"
    elif analysis.status is LoopStatus.UNCERTAIN:
        tag, score = TAG_UNCERTAIN, SCORE_UNCERTAIN
        reason = (
            f"{len(analysis.profile_pairs)} access pair(s) need dynamic "
            f"profiling"
        )
    elif analysis.scalar_live_outs:
        tag, score = TAG_STATIC_DEP, SCORE_DEP
        reason = (
            "scalar live-out(s) "
            f"{sorted(analysis.scalar_live_outs)} carry a dependence"
        )
    elif analysis.has_static_true:
        tag, score = TAG_STATIC_DEP, SCORE_DEP
        reason = "static TRUE dependence(s); ordering required"
    else:
        tag, score = TAG_STATIC_DEP, SCORE_FALSE_DEP
        reason = "only false (privatizable) static dependences"

    return LoopProposal(
        method=method.name,
        loop=loop,
        index=index,
        depth=depth,
        tag=tag,
        score=score,
        reason=reason,
        analysis=analysis,
    )


# ---------------------------------------------------------------------------
# Annotation synthesis
# ---------------------------------------------------------------------------


def synthesize_annotation(analysis: LoopAnalysis) -> Annotation:
    """Build the executable directive for a proposal.

    ``private`` lists the loop's temps (redundant but explicit — the
    paper's ``temp`` class is implicitly private); the data clauses
    mirror the directions the auto data plan would pick (read ⇒ copyin,
    written-never-read ⇒ create, written ⇒ copyout), with tight dim-0
    sections from the affine access ranges where provable.
    """
    loop = analysis.info.loop
    ann = Annotation(pos=loop.pos, parallel=True)
    index = analysis.info.index
    ann.private = sorted(analysis.variables.temp - {index})

    arrays_read = analysis.arrays_read()
    arrays_written = analysis.arrays_written()
    array_vars = {
        name
        for name, t in analysis.outer_types.items()
        if isinstance(t, A.ArrayType)
    }
    for name in sorted((arrays_read | arrays_written) & array_vars):
        if name in arrays_read:
            # copyin must cover every cell the device touches (reads and,
            # for a mixed array, the written cells it will hold)
            kinds = ("R", "W") if name in arrays_written else ("R",)
            ann.copyin.append(_synthesize_section(analysis, name, kinds))
        else:
            ann.create.append(_synthesize_section(analysis, name, ("W",)))
        if name in arrays_written:
            ann.copyout.append(_synthesize_section(analysis, name, ("W",)))
    return ann


def _synthesize_section(
    analysis: LoopAnalysis, name: str, kinds: tuple[str, ...]
) -> ArraySection:
    """Tight dim-0 section covering the selected accesses, else whole.

    The range is provable only when every relevant access's leading
    subscript compresses to the *same* ``coeff*i + syms`` shape (so the
    forms differ by constants and their endpoints are comparable), the
    loop has unit step, and every symbolic term is a plain outer scalar
    that an annotation bound may reference.
    """
    info = analysis.info
    accs = [
        a for a in analysis.accesses if a.array == name and a.kind in kinds
    ]
    forms = [a.forms[0] for a in accs]
    if not forms or any(f is None for f in forms):
        return ArraySection(name)
    if info.step != 1:
        return ArraySection(name)  # endpoint needs a trip-count expression
    shapes = {(f.coeff, f.syms) for f in forms}
    if len(shapes) != 1:
        return ArraySection(name)  # ranges not statically comparable
    coeff, syms = next(iter(shapes))
    scalars = {
        n
        for n, t in analysis.outer_types.items()
        if not isinstance(t, A.ArrayType)
    }
    if any(n not in scalars for n, _ in syms):
        return ArraySection(name)  # e.g. a synthetic length symbol
    consts = [f.const for f in forms]
    k_min, k_max = min(consts), max(consts)

    pos = info.loop.pos
    first = info.lower
    last = (
        info.upper
        if info.upper_inclusive
        else _sub(info.upper, A.IntLit(pos, 1), pos)
    )
    if coeff > 0:
        low = _affine_expr(coeff, syms, k_min, first, pos)
        high = _affine_expr(coeff, syms, k_max, last, pos)
    elif coeff < 0:
        low = _affine_expr(coeff, syms, k_min, last, pos)
        high = _affine_expr(coeff, syms, k_max, first, pos)
    else:
        low = _affine_expr(0, syms, k_min, None, pos)
        high = _affine_expr(0, syms, k_max, None, pos)
    return ArraySection(name, low, high)


def _affine_expr(
    coeff: int,
    syms: tuple[tuple[str, int], ...],
    const: int,
    point: Optional[A.Expr],
    pos,
) -> A.Expr:
    """Build ``coeff*point + syms + const`` as a bound expression."""
    expr: Optional[A.Expr] = None
    if coeff != 0 and point is not None:
        expr = _mul(coeff, point, pos)
    for name, k in syms:
        term = _mul(k, A.VarRef(pos, name), pos)
        expr = term if expr is None else _add(expr, term, pos)
    if expr is None:
        return A.IntLit(pos, const)
    if const > 0:
        expr = _add(expr, A.IntLit(pos, const), pos)
    elif const < 0:
        expr = _sub(expr, A.IntLit(pos, -const), pos)
    return expr


def _mul(k: int, e: A.Expr, pos) -> A.Expr:
    if isinstance(e, A.IntLit):
        return A.IntLit(pos, k * e.value)
    if k == 1:
        return e
    if k == -1:
        return A.Unary(pos, "-", e)
    return A.Binary(pos, "*", A.IntLit(pos, k), e)


def _add(a: A.Expr, b: A.Expr, pos) -> A.Expr:
    if isinstance(b, A.IntLit):
        return _offset(a, b.value, pos)
    if isinstance(a, A.IntLit):
        return _offset(b, a.value, pos)
    return A.Binary(pos, "+", a, b)


def _sub(a: A.Expr, b: A.Expr, pos) -> A.Expr:
    if isinstance(b, A.IntLit):
        return _offset(a, -b.value, pos)
    return A.Binary(pos, "-", a, b)


def _offset(e: A.Expr, k: int, pos) -> A.Expr:
    """``e + k`` with constant folding through trailing ``± literal``.

    Keeps synthesized bounds readable: the upper bound of an inclusive
    section over ``i < n - 1`` with a ``+1`` access offset folds to
    ``n - 1``, not ``n - 1 - 1 + 1``.
    """
    if isinstance(e, A.IntLit):
        return A.IntLit(pos, e.value + k)
    if (
        isinstance(e, A.Binary)
        and e.op in ("+", "-")
        and isinstance(e.right, A.IntLit)
    ):
        inner = e.right.value if e.op == "+" else -e.right.value
        return _offset(e.left, inner + k, pos)
    if k == 0:
        return e
    if k > 0:
        return A.Binary(pos, "+", e, A.IntLit(pos, k))
    return A.Binary(pos, "-", e, A.IntLit(pos, -k))


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------


def _outermost_loops(node: A.Node) -> list[A.For]:
    """Outermost ``for`` loops under ``node`` (not descending into them)."""
    out: list[A.For] = []

    def scan(n: A.Node) -> None:
        if isinstance(n, A.For):
            out.append(n)
            return
        for child in n.children():
            scan(child)

    for child in node.children():
        scan(child)
    return out


def _contains_annotated(loop: A.For) -> bool:
    return any(l.annotation is not None for l in A.find_loops(loop.body))


def infer_method(method: A.Method) -> MethodInference:
    """Run inference over one method's bare loops.

    Placement policy: annotate a statically DOALL loop where it stands;
    for anything weaker, descend while some loop deeper in the nest is at
    least as promising (and at least plausibly parallel), otherwise
    annotate at the current level.  Loops that are hand-annotated, or
    contain a hand annotation, are never touched.
    """
    mi = MethodInference(method.name)
    order = {id(l): k for k, l in enumerate(A.find_loops(method.body))}
    props: dict[int, LoopProposal] = {}

    def propose(loop: A.For, depth: int) -> LoopProposal:
        p = props.get(id(loop))
        if p is None:
            p = propose_loop(method, loop, order[id(loop)], depth)
            props[id(loop)] = p
            mi.proposals.append(p)
        return p

    def subtree_best(loop: A.For, depth: int) -> float:
        best = SCORE_NONE
        for child in _outermost_loops(loop.body):
            if child.annotation is not None:
                continue
            best = max(
                best,
                propose(child, depth + 1).score,
                subtree_best(child, depth + 1),
            )
        return best

    def descend(loop: A.For, depth: int) -> None:
        for child in _outermost_loops(loop.body):
            decide(child, depth + 1)

    def decide(loop: A.For, depth: int) -> None:
        if loop.annotation is not None:
            mi.proposals.append(
                LoopProposal(
                    method=method.name,
                    loop=loop,
                    index=order[id(loop)],
                    depth=depth,
                    tag=TAG_HAND,
                    score=SCORE_NONE,
                    reason="already annotated; left untouched",
                )
            )
            return  # its interior belongs to the hand annotation
        if _contains_annotated(loop):
            mi.proposals.append(
                LoopProposal(
                    method=method.name,
                    loop=loop,
                    index=order[id(loop)],
                    depth=depth,
                    tag=TAG_CONTAINER,
                    score=SCORE_NONE,
                    reason="contains a hand-annotated loop; left untouched",
                )
            )
            descend(loop, depth)
            return
        p = propose(loop, depth)
        if p.score <= SCORE_NONE:
            descend(loop, depth)
            return
        best_below = subtree_best(loop, depth)
        if p.score >= SCORE_DOALL or best_below < max(p.score, SCORE_UNCERTAIN):
            p.chosen = True
            p.annotation = synthesize_annotation(p.analysis)
            return  # chosen: inner loops stay bare (the kernel owns them)
        descend(loop, depth)

    for loop in _outermost_loops(method.body):
        decide(loop, 0)
    mi.proposals.sort(key=lambda p: p.index)
    return mi


def infer_class(cls: A.ClassDecl) -> InferenceReport:
    """Infer annotations for every method of ``cls``, applying them.

    Chosen proposals are attached to their loops in place (so the class
    can be translated directly afterwards); the report records every
    loop's verdict and, once compiled, the translated loop ids so
    profiler confirmations can be folded back in.
    """
    report = InferenceReport()
    for method in cls.methods:
        mi = infer_method(method)
        if mi.proposals:
            report.methods[method.name] = mi
        for p in mi.chosen:
            p.loop.annotation = p.annotation
        by_node = {id(p.loop): p for p in mi.proposals}
        for ordinal, loop in enumerate(A.annotated_loops(method)):
            p = by_node.get(id(loop))
            if p is not None:
                p.loop_id = f"{method.name}#{ordinal}"
    return report
