"""Canonical loop recognition.

An annotated loop must have the canonical counted form the paper's
translator handles::

    for (int i = <lo>; i < <hi>; i++)        // or <=, or i += c

with loop-invariant bounds.  :class:`LoopInfo` captures the induction
variable and symbolic bounds, and evaluates the concrete iteration range
against the host environment at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..errors import AnalysisError
from ..lang import ast_nodes as A
from .consteval import eval_int


@dataclass
class LoopInfo:
    """Canonical description of a counted loop."""

    loop: A.For
    index: str
    lower: A.Expr
    upper: A.Expr
    upper_inclusive: bool
    step: int

    def bounds(self, env: Mapping[str, object]) -> tuple[int, int, int]:
        """Concrete ``(start, stop_exclusive, step)`` for ``env``."""
        start = eval_int(self.lower, env)
        stop = eval_int(self.upper, env)
        if self.upper_inclusive:
            stop += 1
        return start, stop, self.step

    def indices(self, env: Mapping[str, object]) -> range:
        start, stop, step = self.bounds(env)
        return range(start, stop, step)

    def trip_count(self, env: Mapping[str, object]) -> int:
        return len(self.indices(env))


def extract_loop_info(loop: A.For) -> LoopInfo:
    """Recognize the canonical loop form; raise AnalysisError otherwise."""
    # init: 'int i = <expr>' or 'i = <expr>'
    if isinstance(loop.init, A.VarDecl):
        if not (
            isinstance(loop.init.type, A.PrimType)
            and loop.init.type.name == "int"
        ):
            raise AnalysisError(
                f"loop at {loop.pos}: induction variable must be int"
            )
        index = loop.init.name
        if loop.init.init is None:
            raise AnalysisError(f"loop at {loop.pos}: missing lower bound")
        lower = loop.init.init
    elif isinstance(loop.init, A.Assign) and isinstance(
        loop.init.target, A.VarRef
    ):
        if loop.init.op:
            raise AnalysisError(f"loop at {loop.pos}: compound init")
        index = loop.init.target.name
        lower = loop.init.value
    else:
        raise AnalysisError(
            f"loop at {loop.pos}: initializer must set the induction variable"
        )

    # condition: 'i < <expr>' or 'i <= <expr>'
    cond = loop.cond
    if not (
        isinstance(cond, A.Binary)
        and cond.op in ("<", "<=")
        and isinstance(cond.left, A.VarRef)
        and cond.left.name == index
    ):
        raise AnalysisError(
            f"loop at {loop.pos}: condition must be '{index} < bound' or "
            f"'{index} <= bound'"
        )
    upper = cond.right
    upper_inclusive = cond.op == "<="

    # update: i++, i += c
    update = loop.update
    step: Optional[int] = None
    if isinstance(update, A.IncDec) and isinstance(update.target, A.VarRef):
        if update.target.name == index and update.op == "++":
            step = 1
    elif isinstance(update, A.Assign) and isinstance(update.target, A.VarRef):
        if update.target.name == index and update.op == "+":
            if isinstance(update.value, A.IntLit) and update.value.value > 0:
                step = update.value.value
        elif (
            update.target.name == index
            and update.op == ""
            and isinstance(update.value, A.Binary)
            and update.value.op == "+"
            and isinstance(update.value.left, A.VarRef)
            and update.value.left.name == index
            and isinstance(update.value.right, A.IntLit)
            and update.value.right.value > 0
        ):
            step = update.value.right.value
    if step is None:
        raise AnalysisError(
            f"loop at {loop.pos}: update must be '{index}++' or "
            f"'{index} += c' with positive constant c"
        )

    _check_invariance(lower, index, loop)
    _check_invariance(upper, index, loop)
    return LoopInfo(loop, index, lower, upper, upper_inclusive, step)


def _check_invariance(expr: A.Expr, index: str, loop: A.For) -> None:
    """Bounds must not reference the induction variable or array loads."""
    for node in A.walk(expr):
        if isinstance(node, A.VarRef) and node.name == index:
            raise AnalysisError(
                f"loop at {loop.pos}: bound depends on the induction variable"
            )
        if isinstance(node, A.ArrayRef):
            raise AnalysisError(
                f"loop at {loop.pos}: bound reads an array element; "
                f"hoist it to a scalar first"
            )
