"""Symbol tables: variable -> type environments per method and loop.

Japonica analyzes one static method at a time (JavaR's unit).  For each
annotated loop we need the types of every variable declared *outside* the
loop (method parameters plus locals declared earlier in the body) — those
are the candidates for live-in/live-out classification — while variables
declared inside the loop (including the induction variable) are ``temp``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import AnalysisError
from ..lang import ast_nodes as A


@dataclass
class MethodScope:
    """Types of variables visible at some point in a method body."""

    types: dict[str, A.Type] = field(default_factory=dict)

    def copy(self) -> "MethodScope":
        return MethodScope(dict(self.types))

    def declare(self, name: str, vtype: A.Type) -> None:
        if name in self.types:
            raise AnalysisError(f"redeclaration of {name!r}")
        self.types[name] = vtype


def outer_scope_at_loop(method: A.Method, loop: A.For) -> MethodScope:
    """The scope visible to ``loop``: everything declared before it.

    Walks the method body tracking declarations; stops when the loop is
    reached.  Declarations in sibling branches that cannot reach the loop
    are still conservatively included only if they lexically precede it in
    the same block chain (mini-Java has no shadowing, so this is safe).
    """
    scope = MethodScope()
    for p in method.params:
        scope.declare(p.name, p.type)
    found = _collect_until(method.body, loop, scope)
    if not found:
        raise AnalysisError(
            f"loop at {loop.pos} is not part of method {method.name!r}"
        )
    return scope


def _collect_until(stmt: A.Stmt, target: A.For, scope: MethodScope) -> bool:
    """Record declarations in pre-order until ``target``; True if found.

    Declarations inside a compound statement (block, branch, loop) are
    scoped to it: when the target is not found within, they are rolled
    back, matching Java's block scoping — so two sibling loops may both
    declare ``int i``.
    """
    if stmt is target:
        return True
    if isinstance(stmt, A.VarDecl):
        scope.declare(stmt.name, stmt.type)
        return False

    def scoped(*parts: A.Stmt) -> bool:
        before = set(scope.types)
        for part in parts:
            if part is not None and _collect_until(part, target, scope):
                return True
        for name in set(scope.types) - before:
            del scope.types[name]
        return False

    if isinstance(stmt, A.Block):
        return scoped(*stmt.stmts)
    if isinstance(stmt, A.If):
        return scoped(stmt.then, stmt.els)
    if isinstance(stmt, A.While):
        return scoped(stmt.body)
    if isinstance(stmt, A.For):
        return scoped(stmt.init, stmt.body)
    return False


def declared_inside(loop: A.For) -> set[str]:
    """Names declared inside the loop (``temp`` class), incl. the index."""
    names: set[str] = set()
    if isinstance(loop.init, A.VarDecl):
        names.add(loop.init.name)
    for node in A.walk(loop.body):
        if isinstance(node, A.VarDecl):
            names.add(node.name)
    return names


def method_types(method: A.Method) -> dict[str, A.Type]:
    """All declarations in a method (params + every local).

    Distinct block scopes may reuse a name (e.g. two loops declaring
    ``int i``) as long as the types agree; a conflicting redeclaration is
    rejected because this flat map cannot represent it.
    """
    types: dict[str, A.Type] = {p.name: p.type for p in method.params}
    for node in A.walk(method.body):
        if isinstance(node, A.VarDecl):
            if node.name in types and types[node.name] != node.type:
                raise AnalysisError(
                    f"conflicting redeclaration of {node.name!r}"
                )
            types[node.name] = node.type
    return types
