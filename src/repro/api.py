"""Public API of the Japonica reproduction.

Typical use::

    from repro import Japonica
    import numpy as np

    src = '''
    class VecAdd {
      static void run(double[] a, double[] b, double[] c, int n) {
        /* acc parallel copyin(a[0:n-1], b[0:n-1]) copyout(c[0:n-1]) */
        for (int i = 0; i < n; i++) { c[i] = a[i] + b[i]; }
      }
    }
    '''
    program = Japonica().compile(src)
    result = program.run("run", a=a, b=b, c=np.zeros_like(a), n=len(a))
    print(result.sim_time_ms, result.arrays["c"])

Execution strategies:

``japonica``
    the full system — profiling, mode dispatch, task sharing/stealing;
``serial``
    best serial version (1 CPU thread);
``cpu``
    CPU-alone multithreaded (16 threads);
``gpu``
    GPU-alone (synchronous JNI transfers, cyclic communication);
``coop50``
    simple cooperative version (50 % CPU / 50 % GPU).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .cache.artifacts import ArtifactCache, unit_key
from .errors import JaponicaError
from .faults.resilience import ResilienceReport
from .faults.schedule import FaultSchedule
from .ir.interpreter import ArrayStorage
from .ir.lower import length_param
from .lang import ast_nodes as A
from .lang.ast_nodes import ClassDecl
from .obs.metrics import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    record_resilience,
)
from .obs.tracer import PHASE_EXECUTE
from .runtime.hosteval import run_method_host
from .runtime.platform import Platform
from .runtime.result import ExecutionResult
from .scheduler.baselines import (
    CooperativeExecutor,
    CpuParallelExecutor,
    GpuOnlyExecutor,
    SerialExecutor,
)
from .scheduler.context import ExecutionContext, JaponicaConfig
from .scheduler.select import effective_scheme
from .scheduler.sharing import TaskSharingScheduler
from .scheduler.stealing import TaskStealingScheduler
from .scheduler.task import Task
from .translate.translator import TranslationUnit, Translator

STRATEGIES = ("japonica", "serial", "cpu", "gpu", "coop50")

_DTYPES = {
    "int": np.int32,
    "long": np.int64,
    "float": np.float32,
    "double": np.float64,
    "boolean": np.bool_,
}


@dataclass
class ProgramResult:
    """Outcome of running one method end to end."""

    arrays: dict[str, np.ndarray]
    scalars: dict[str, object]
    sim_time_s: float
    host_time_s: float
    loop_results: list[tuple[str, ExecutionResult]] = field(default_factory=list)
    strategy: str = ""
    scheme: str = ""
    #: what the resilience layer did (None unless fault injection was on)
    resilience: Optional[ResilienceReport] = None

    @property
    def sim_time_ms(self) -> float:
        return self.sim_time_s * 1e3

    def loop_result(self, loop_id: str) -> ExecutionResult:
        for lid, res in self.loop_results:
            if lid == loop_id:
                return res
        raise KeyError(f"no result for loop {loop_id!r}")

    def speedup_over(self, other: "ProgramResult") -> float:
        return other.sim_time_s / self.sim_time_s if self.sim_time_s > 0 else (
            float("inf")
        )


class CompiledProgram:
    """A translated class, ready to run under any strategy."""

    def __init__(
        self,
        unit: TranslationUnit,
        platform: Optional[Platform] = None,
        config: Optional[JaponicaConfig] = None,
        obs: Optional[Instrumentation] = None,
        cache: Optional[ArtifactCache] = None,
        inference=None,
    ):
        self.unit = unit
        self.platform = platform
        self.config = config
        self.obs = obs or NULL_INSTRUMENTATION
        self.cache = cache
        #: annotation-inference report when the program was compiled with
        #: ``infer_annotations=True`` (see :mod:`repro.analysis.infer`);
        #: ``None`` for ordinary hand-annotated compiles
        self.inference = inference

    # -- introspection ----------------------------------------------------

    @property
    def methods(self) -> list[str]:
        return list(self.unit.methods)

    def cuda_source(self, method: str) -> str:
        return "\n\n".join(
            tl.cuda_source for tl in self.unit.methods[method].loops
        )

    def java_source(self, method: str) -> str:
        return "\n\n".join(
            tl.java_source for tl in self.unit.methods[method].loops
        )

    # -- execution -------------------------------------------------------

    def run(
        self,
        method: Optional[str] = None,
        strategy: str = "japonica",
        scheme: Optional[str] = None,
        context: Optional[ExecutionContext] = None,
        faults: Optional[object] = None,
        fault_seed: int = 0,
        devices: Optional[int] = None,
        **bindings,
    ) -> ProgramResult:
        """Execute a method under a strategy.

        ``bindings`` supplies every parameter by name; array arguments
        are copied (the caller's data is never mutated) and coerced to
        the declared element type.

        ``faults`` turns on deterministic fault injection: either a
        :class:`FaultSchedule` or a spec string like
        ``"gpu.launch:0.01,transfer@3"`` (see ``FaultSchedule.parse``),
        seeded by ``fault_seed``.  The run then either produces results
        bit-identical to a fault-free run or raises a typed
        :class:`UnrecoverableFaultError`; what the resilience layer did
        is attached as ``result.resilience``.

        ``devices`` sizes the simulated GPU pool for this run (DOALL /
        profiled-clean loops shard across it); results stay bit-identical
        to the single-device run.  It cannot be combined with an explicit
        ``context`` (size the context's config instead).
        """
        if strategy not in STRATEGIES:
            raise JaponicaError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if method is None:
            if len(self.unit.methods) != 1:
                raise JaponicaError(
                    f"program has {len(self.unit.methods)} methods with "
                    f"annotated loops; pass method= explicitly"
                )
            method = next(iter(self.unit.methods))
        if method not in self.unit.methods:
            raise JaponicaError(f"no annotated method {method!r}")

        mt = self.unit.methods[method]
        decl = mt.method
        storage, scalars = self._bind(decl, bindings)
        if context is not None and devices is not None:
            raise JaponicaError(
                "pass devices= through the context's JaponicaConfig when "
                "supplying an explicit context"
            )
        config = self.config
        if devices is not None:
            if devices < 1:
                raise JaponicaError(f"devices must be >= 1, got {devices}")
            from dataclasses import replace as _replace

            config = _replace(config or JaponicaConfig(), devices=devices)
        ctx = context or ExecutionContext(
            self.platform, config, obs=self.obs, cache=self.cache
        )
        ctx.reset_device()
        if faults is not None:
            if isinstance(faults, FaultSchedule):
                schedule = faults  # carries its own seed
            else:
                schedule = FaultSchedule.parse(str(faults), seed=fault_seed)
            ctx.faults.install(schedule)

        use_scheme = effective_scheme(mt.loops, scheme)
        by_node = {id(tl.analysis.info.loop): tl for tl in mt.loops}
        loop_results: list[tuple[str, ExecutionResult]] = []

        sharing = TaskSharingScheduler(ctx)
        stealing = TaskStealingScheduler(ctx)
        baselines = {
            "serial": SerialExecutor(ctx),
            "cpu": CpuParallelExecutor(ctx),
            "gpu": GpuOnlyExecutor(ctx),
            "coop50": CooperativeExecutor(ctx),
        }

        def loop_env() -> dict[str, object]:
            env = dict(scalars)
            for name, shape in storage.shapes.items():
                for axis, size in enumerate(shape):
                    env[length_param(name, axis)] = int(size)
            return env

        def write_back_scalars(env: dict[str, object]) -> None:
            for key in scalars:
                if key in env and env[key] != scalars[key]:
                    scalars[key] = env[key]

        def record(label: str, result: ExecutionResult) -> None:
            loop_results.append((label, result))
            mode = result.mode or strategy
            ctx.obs.metrics.counter(f"scheduler.mode.{mode}").inc()

        def dispatch(loop_node: A.For, following: list[A.Stmt]) -> int:
            tl = by_node.get(id(loop_node))
            if tl is None:
                raise JaponicaError("annotated loop missing from translation")
            ctx.check_deadline(f"execute:{tl.id}")
            env = loop_env()
            if tl.analysis.info.trip_count(env) <= 0:
                # zero-trip loop: nothing to schedule, and the inferred
                # copy sections (e.g. a[0:n-1] with n == 0) would be
                # empty/negative — skip before evaluating them
                ctx.obs.metrics.counter("scheduler.zero_trip").inc()
                return 0
            if strategy == "japonica" and use_scheme == "stealing":
                run_loops = [tl]
                consumed = 0
                for stmt in following:
                    if isinstance(stmt, A.For) and stmt.annotation is not None:
                        nxt = by_node.get(id(stmt))
                        if nxt is None:
                            break
                        run_loops.append(nxt)
                        consumed += 1
                    else:
                        break
                tasks = [Task(lp) for lp in run_loops]
                label = "+".join(lp.id for lp in run_loops)
                with ctx.obs.tracer.span(
                    f"dispatch:{label}", PHASE_EXECUTE,
                    strategy=strategy, scheme=use_scheme,
                ) as sp:
                    result = stealing.execute(tasks, storage, env)
                    sp.annotate(mode=result.mode)
                    sp.set_sim(0.0, result.sim_time_s)
                record(label, result)
                write_back_scalars(env)
                return consumed
            with ctx.obs.tracer.span(
                f"dispatch:{tl.id}", PHASE_EXECUTE, strategy=strategy,
            ) as sp:
                if strategy == "japonica":
                    result = sharing.execute(Task(tl), storage, env)
                else:
                    result = baselines[strategy].execute(Task(tl), storage, env)
                sp.annotate(mode=result.mode)
                sp.set_sim(0.0, result.sim_time_s)
            record(tl.id, result)
            write_back_scalars(env)
            return 0

        host_cost = run_method_host(decl, storage, scalars, dispatch)
        host_time = ctx.cost.cpu_serial_time(host_cost.as_counts())
        total = host_time + sum(res.sim_time_s for _, res in loop_results)

        if self.inference is not None and ctx.profiles:
            # the scheduler profiled every uncertain loop it dispatched;
            # fold the DD verdicts back into the inference proposals
            # (confirm-or-reject loop of the inference pass)
            self.inference.absorb_profiles(ctx.profiles)

        report = ctx.faults.recorder.report() if ctx.faults.enabled else None
        if report is not None:
            record_resilience(ctx.obs.metrics, report)
        return ProgramResult(
            arrays=storage.arrays,
            scalars=scalars,
            sim_time_s=total,
            host_time_s=host_time,
            loop_results=loop_results,
            strategy=strategy,
            scheme=use_scheme if strategy == "japonica" else "",
            resilience=report,
        )

    # -- binding -------------------------------------------------------------

    @staticmethod
    def _bind(
        decl: A.Method, bindings: dict[str, object]
    ) -> tuple[ArrayStorage, dict[str, object]]:
        arrays: dict[str, np.ndarray] = {}
        scalars: dict[str, object] = {}
        missing = [p.name for p in decl.params if p.name not in bindings]
        if missing:
            raise JaponicaError(
                f"method {decl.name!r} missing bindings for {missing}"
            )
        extra = set(bindings) - {p.name for p in decl.params}
        if extra:
            raise JaponicaError(f"unknown bindings {sorted(extra)}")
        for p in decl.params:
            value = bindings[p.name]
            if isinstance(p.type, A.ArrayType):
                arr = np.array(value, dtype=_DTYPES[p.type.elem.name], copy=True)
                if arr.ndim != p.type.dims:
                    raise JaponicaError(
                        f"parameter {p.name!r} expects a {p.type.dims}-D "
                        f"array, got {arr.ndim}-D"
                    )
                arrays[p.name] = arr
            else:
                if p.type.name == "boolean":
                    scalars[p.name] = bool(value)
                elif p.type.name in ("float", "double"):
                    scalars[p.name] = float(value)
                else:
                    scalars[p.name] = int(value)
        return ArrayStorage(arrays), scalars


class Japonica:
    """Compiler + runtime entry point."""

    def __init__(
        self,
        platform: Optional[Platform] = None,
        config: Optional[JaponicaConfig] = None,
        cpu_threads: int = 16,
        obs: Optional[Instrumentation] = None,
        cache: Optional[ArtifactCache] = None,
        infer_annotations: bool = False,
        native: Optional[bool] = None,
        native_crosscheck: Optional[bool] = None,
    ):
        self.platform = platform
        # native tier knobs ride on the config; only materialize one when
        # the caller overrides a default, so config=None stays None (and
        # downstream default-construction paths are untouched)
        if native is not None or native_crosscheck is not None:
            from dataclasses import replace as _replace

            config = _replace(
                config or JaponicaConfig(),
                **({} if native is None else {"native": native}),
                **({} if native_crosscheck is None
                   else {"native_crosscheck": native_crosscheck}),
            )
        self.config = config
        self.obs = obs or NULL_INSTRUMENTATION
        self.cache = cache
        self._cpu_threads = cpu_threads
        #: infer ``acc`` directives for bare loops at compile time (loops
        #: that are already annotated are always left untouched)
        self.infer_annotations = infer_annotations
        self.translator = Translator(cpu_threads=cpu_threads, obs=self.obs)

    def compile(self, source: str, infer: Optional[bool] = None) -> CompiledProgram:
        """Translate annotated Java source into a runnable program.

        With a ``cache``, the parse→analyze→translate result is memoized
        by source content: an unchanged source skips the front end
        entirely on the second compile.

        ``infer`` overrides the instance's ``infer_annotations`` setting
        for this compile: with inference on, bare canonical loops get
        synthesized ``acc`` directives (see :mod:`repro.analysis.infer`)
        and the result carries a :class:`~repro.analysis.infer.
        InferenceReport` as ``program.inference``.
        """
        do_infer = self.infer_annotations if infer is None else infer
        unit = None
        report = None
        key = None
        if self.cache is not None:
            key = unit_key(source, self._cpu_threads, infer=do_infer)
            cached = self.cache.get(key, "unit", obs=self.obs)
            if cached is not None:
                unit, report = cached if do_infer else (cached, None)
        if unit is None:
            if do_infer:
                from .analysis.infer import infer_class
                from .lang.parser import parse_program
                from .obs.tracer import PHASE_PARSE

                with self.obs.tracer.span(
                    "parse", PHASE_PARSE, chars=len(source)
                ) as sp:
                    cls = parse_program(source)
                    sp.annotate(cls=cls.name, methods=len(cls.methods))
                report = infer_class(cls)
                unit = self.translator.translate(cls)
            else:
                unit = self.translator.translate_source(source)
            if key is not None:
                self.cache.put(key, (unit, report) if do_infer else unit)
        if not unit.methods:
            if do_infer:
                raise JaponicaError(
                    "no annotated loops found in the source and "
                    "annotation inference proposed none"
                )
            raise JaponicaError("no annotated loops found in the source")
        return CompiledProgram(
            unit,
            self.platform,
            self.config,
            obs=self.obs,
            cache=self.cache,
            inference=report,
        )

    def jit(
        self,
        fn=None,
        *,
        strategy: str = "japonica",
        scheme: Optional[str] = None,
        devices: Optional[int] = None,
        enabled: bool = True,
    ):
        """``@engine.jit``: lift a Python function onto this instance.

        Same contract as the module-level :func:`repro.jit`, but the
        lifted program compiles and runs with this engine's platform,
        config, observability, and artifact cache.
        """
        from .frontend.pyjit import jit as _jit

        return _jit(
            fn,
            japonica=self,
            strategy=strategy,
            scheme=scheme,
            devices=devices,
            enabled=enabled,
        )

    def compile_class(self, cls: ClassDecl) -> CompiledProgram:
        unit = self.translator.translate(cls)
        if not unit.methods:
            raise JaponicaError("no annotated loops found in the class")
        return CompiledProgram(
            unit, self.platform, self.config, obs=self.obs, cache=self.cache
        )
