"""Benchmark harness: regenerates every table and figure of the paper.

Each ``figure_*``/``table_*`` function executes the relevant workloads
under the relevant strategies on the calibrated platform model and
returns structured rows; :mod:`repro.bench.reporting` renders them the
way the paper presents them (speedup bars / time series), side by side
with the paper's reported values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..runtime.clock import LANE_CPU, LANE_DMA, LANE_GPU
from ..workloads import BY_NAME, Workload
from ..workloads.registry import (
    ALL_WORKLOADS,
    FIG3_WORKLOADS,
    FIG4_WORKLOADS,
    FIG5_WORKLOADS,
)


@dataclass
class StrategyTimes:
    """Simulated seconds per strategy for one workload."""

    workload: str
    times_s: dict[str, float] = field(default_factory=dict)

    def speedup(self, strategy: str, over: str) -> float:
        return self.times_s[over] / self.times_s[strategy]


_CACHE: dict[tuple, StrategyTimes] = {}


def measure(
    workload: Workload,
    strategies: tuple[str, ...],
    **overrides,
) -> StrategyTimes:
    """Run a workload under several strategies (cached per config)."""
    key = (workload.name, strategies, tuple(sorted(overrides.items())))
    if key in _CACHE:
        return _CACHE[key]
    out = StrategyTimes(workload.name)
    for strategy in strategies:
        result = workload.run(strategy=strategy, **overrides)
        out.times_s[strategy] = result.sim_time_s
    _CACHE[key] = out
    return out


def clear_cache() -> None:
    _CACHE.clear()


# ---------------------------------------------------------------------------
# Per-phase breakdown (observability surface)
# ---------------------------------------------------------------------------


@dataclass
class PhaseRow:
    """Simulated-time breakdown of one loop dispatch, by phase and lane.

    Lane-busy columns can overlap in time (that is the point of the
    prefetch pipeline), so they need not sum to ``total_ms``; each is
    bounded by it.
    """

    label: str
    mode: str
    profile_ms: float
    gpu_ms: float
    dma_ms: float
    cpu_ms: float
    total_ms: float


def phase_breakdown(result, strategy: str = "") -> list[PhaseRow]:
    """Break a :class:`~repro.api.ProgramResult` into per-loop phase rows.

    Uses each loop result's :class:`~repro.runtime.clock.Timeline`;
    loop results without a timeline contribute a total-only row.
    """
    rows = []
    for lid, res in result.loop_results:
        label = f"{strategy}:{lid}" if strategy else lid
        tl = res.timeline
        if tl is None:
            rows.append(
                PhaseRow(label, res.mode, 0.0, 0.0, 0.0, 0.0, res.sim_time_ms)
            )
            continue
        profile_ms = 1e3 * sum(
            e.duration for e in tl.events if e.label == "profiling"
        )
        rows.append(
            PhaseRow(
                label,
                res.mode,
                profile_ms=profile_ms,
                gpu_ms=tl.lane_busy(LANE_GPU) * 1e3,
                dma_ms=tl.lane_busy(LANE_DMA) * 1e3,
                cpu_ms=tl.lane_busy(LANE_CPU) * 1e3,
                total_ms=res.sim_time_ms,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------

#: Paper serial times (ms), Table II column 5.
PAPER_SERIAL_MS = {
    "GEMM": 80597.8,
    "VectorAdd": 3548.6,
    "BFS": 1423.7,
    "MVT": 379.7,
    "Guass-Seidel": 1139.37,
    "CFD": 199.411,
    "Sepia": 334.8,
    "BlackScholes": 121.3,
    "BICG": 19.2,
    "2MM": 26414.0,
    "Crypt": 2231.5,
}


@dataclass
class Table2Row:
    name: str
    origin: str
    description: str
    paper_problem: str
    scheme: str
    paper_serial_ms: float
    measured_serial_ms: float


def table2() -> list[Table2Row]:
    """Regenerate Table II: suite summary + serial-time column."""
    rows = []
    for w in ALL_WORKLOADS:
        t = measure(w, ("serial",))
        rows.append(
            Table2Row(
                name=w.name,
                origin=w.origin,
                description=w.description,
                paper_problem=w.paper_problem,
                scheme=w.scheme,
                paper_serial_ms=PAPER_SERIAL_MS[w.name],
                measured_serial_ms=t.times_s["serial"] * 1e3,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 3 — DOALL apps, task sharing, speedup over 16-thread CPU
# ---------------------------------------------------------------------------

#: Paper bar readings (speedup over CPU-16); GEMM bars are approximate
#: reads of Figure 3's left panel, the rest follow the §VI-B text.
PAPER_FIG3 = {
    "GEMM": {"cpu": 1.0, "gpu": 25.0, "japonica": 25.0, "coop50": 12.0},
    "VectorAdd": {"cpu": 1.0, "gpu": 0.59, "japonica": 1.56, "coop50": 1.18},
    "BFS": {"cpu": 1.0, "gpu": 0.21, "japonica": 1.12, "coop50": 0.44},
    "MVT": {"cpu": 1.0, "gpu": 0.53, "japonica": 1.47, "coop50": 1.0},
}

FIG3_STRATEGIES = ("cpu", "gpu", "coop50", "japonica")


@dataclass
class FigureRow:
    workload: str
    baseline: str
    paper: dict[str, float]
    measured: dict[str, float]


def figure3() -> list[FigureRow]:
    rows = []
    for w in FIG3_WORKLOADS:
        t = measure(w, FIG3_STRATEGIES)
        measured = {
            s: t.speedup(s, over="cpu") for s in FIG3_STRATEGIES
        }
        rows.append(FigureRow(w.name, "cpu-16", PAPER_FIG3[w.name], measured))
    return rows


# ---------------------------------------------------------------------------
# Figure 4 — DOACROSS apps, task sharing, speedup over serial CPU
# ---------------------------------------------------------------------------

#: From §VI-B text (CFD 3.55x serial / 1.86x GPU; Sepia 2.59x / 1.64x;
#: BlackScholes 5.1x serial) and approximate Figure-4 bar reads.
PAPER_FIG4 = {
    "Guass-Seidel": {"cpu16": 1.0, "gpu": 0.55, "japonica": 1.0},
    "CFD": {"cpu16": 11.8, "gpu": 1.91, "japonica": 3.55},
    "Sepia": {"cpu16": 4.4, "gpu": 1.58, "japonica": 2.59},
    "BlackScholes": {"cpu16": 1.0, "gpu": 4.0, "japonica": 5.1},
}

FIG4_STRATEGIES = ("serial", "cpu", "gpu", "japonica")


def figure4() -> list[FigureRow]:
    rows = []
    for w in FIG4_WORKLOADS:
        t = measure(w, FIG4_STRATEGIES)
        measured = {
            "cpu16": t.speedup("cpu", over="serial"),
            "gpu": t.speedup("gpu", over="serial"),
            "japonica": t.speedup("japonica", over="serial"),
        }
        rows.append(FigureRow(w.name, "serial", PAPER_FIG4[w.name], measured))
    return rows


# ---------------------------------------------------------------------------
# Figure 5(a) — stealing apps, speedup over 16-thread CPU
# ---------------------------------------------------------------------------

PAPER_FIG5A = {
    "BICG": {"cpu": 1.0, "gpu": 1.03, "japonica": 1.88},
    "2MM": {"cpu": 1.0, "gpu": 12.0, "japonica": 12.0},
    "Crypt": {"cpu": 1.0, "gpu": 1.11, "japonica": 2.32},
}

FIG5A_STRATEGIES = ("cpu", "gpu", "japonica")


def figure5a() -> list[FigureRow]:
    rows = []
    for w in FIG5_WORKLOADS:
        t = measure(w, FIG5A_STRATEGIES)
        measured = {s: t.speedup(s, over="cpu") for s in FIG5A_STRATEGIES}
        rows.append(FigureRow(w.name, "cpu-16", PAPER_FIG5A[w.name], measured))
    return rows


# ---------------------------------------------------------------------------
# Figure 5(b) — Crypt execution time, sharing vs stealing, size sweep
# ---------------------------------------------------------------------------


@dataclass
class SweepPoint:
    label: str
    sharing_ms: float
    stealing_ms: float


def figure5b(sizes: Optional[list[int]] = None) -> list[SweepPoint]:
    """Crypt, sharing vs stealing, text sizes n*1024*1024 (scaled)."""
    w = BY_NAME["Crypt"]
    out = []
    for n in sizes or [1, 2, 3, 4, 5]:
        sharing = w.run(strategy="japonica", scheme="sharing", n=n)
        stealing = w.run(strategy="japonica", scheme="stealing", n=n)
        out.append(
            SweepPoint(
                label=f"{n * 1024}*1024",
                sharing_ms=sharing.sim_time_ms,
                stealing_ms=stealing.sim_time_ms,
            )
        )
    return out


# ---------------------------------------------------------------------------
# Headline averages (abstract)
# ---------------------------------------------------------------------------


@dataclass
class Headline:
    vs_serial: float
    vs_gpu: float
    vs_cpu: float
    paper_vs_serial: float = 10.0
    paper_vs_gpu: float = 2.5
    paper_vs_cpu: float = 2.14


def headline_averages() -> Headline:
    """Geometric-mean speedups of Japonica over the three baselines.

    Gauss-Seidel is excluded from the serial mean exactly because its
    Japonica execution *is* serial (mode C) — including it only dilutes
    all systems equally.
    """
    names = [w.name for w in ALL_WORKLOADS if w.name != "Guass-Seidel"]

    def gmean(values):
        return math.exp(sum(math.log(v) for v in values) / len(values))

    ratios_serial, ratios_gpu, ratios_cpu = [], [], []
    for name in names:
        t = measure(BY_NAME[name], ("serial", "cpu", "gpu", "japonica"))
        ratios_serial.append(t.speedup("japonica", over="serial"))
        ratios_gpu.append(t.speedup("japonica", over="gpu"))
        ratios_cpu.append(t.speedup("japonica", over="cpu"))
    return Headline(
        vs_serial=gmean(ratios_serial),
        vs_gpu=gmean(ratios_gpu),
        vs_cpu=gmean(ratios_cpu),
    )
