"""ASCII rendering of regenerated tables and figures."""

from __future__ import annotations

from typing import Sequence

from .harness import FigureRow, Headline, PhaseRow, SweepPoint, Table2Row


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    widths = [len(h) for h in headers]
    texts = [[str(c) for c in row] for row in rows]
    for row in texts:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    def line(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))
    sep = "-+-".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in texts])


def render_table2(rows: list[Table2Row]) -> str:
    body = [
        (
            r.name,
            r.origin,
            r.scheme,
            r.paper_problem.split(",")[0],
            f"{r.paper_serial_ms:.1f}",
            f"{r.measured_serial_ms:.1f}",
        )
        for r in rows
    ]
    return "Table II - benchmark suite (serial times, paper vs measured)\n" + (
        render_table(
            ["Benchmark", "Origin", "Scheme", "Input", "Paper ms", "Model ms"],
            body,
        )
    )


def render_figure(
    title: str, rows: list[FigureRow], series: Sequence[str]
) -> str:
    body = []
    for row in rows:
        cells = [row.workload]
        for s in series:
            paper = row.paper.get(s)
            got = row.measured.get(s)
            cells.append(
                f"{paper:.2f} / {got:.2f}" if paper is not None else f"{got:.2f}"
            )
        body.append(tuple(cells))
    headers = ["Benchmark"] + [f"{s} (paper/ours)" for s in series]
    return f"{title}\n" + render_table(headers, body)


def _steal_advantage(p: SweepPoint) -> str:
    """Sharing/stealing ratio; a degenerate point must not divide by 0."""
    if p.stealing_ms == 0:
        return "n/a" if p.sharing_ms == 0 else "inf"
    return f"{p.sharing_ms / p.stealing_ms:.2f}x"


def render_sweep(points: list[SweepPoint]) -> str:
    body = [
        (
            p.label,
            f"{p.sharing_ms:.2f}",
            f"{p.stealing_ms:.2f}",
            _steal_advantage(p),
        )
        for p in points
    ]
    return (
        "Figure 5(b) - Crypt execution time, sharing vs stealing\n"
        + render_table(
            ["Input size", "Sharing ms", "Stealing ms", "Steal advantage"],
            body,
        )
    )


def render_phases(rows: list[PhaseRow]) -> str:
    """Per-loop phase/lane breakdown table (simulated milliseconds).

    Lanes overlap in time under the prefetch pipeline, so the busy
    columns are each bounded by — but need not sum to — the total.
    """
    body = [
        (
            r.label,
            r.mode,
            f"{r.profile_ms:.3f}",
            f"{r.gpu_ms:.3f}",
            f"{r.dma_ms:.3f}",
            f"{r.cpu_ms:.3f}",
            f"{r.total_ms:.3f}",
        )
        for r in rows
    ]
    return "Per-phase breakdown (simulated ms; lanes overlap)\n" + render_table(
        ["Loop", "Mode", "Profile", "GPU busy", "DMA busy", "CPU busy",
         "Total"],
        body,
    )


def render_headline(h: Headline) -> str:
    body = [
        ("vs best serial", f"{h.paper_vs_serial:.2f}x", f"{h.vs_serial:.2f}x"),
        ("vs GPU-alone", f"{h.paper_vs_gpu:.2f}x", f"{h.vs_gpu:.2f}x"),
        ("vs CPU-alone", f"{h.paper_vs_cpu:.2f}x", f"{h.vs_cpu:.2f}x"),
    ]
    return "Headline average speedups of Japonica (abstract)\n" + render_table(
        ["Comparison", "Paper", "Ours (geomean)"], body
    )


def render_bars(
    title: str,
    rows: list[FigureRow],
    series: Sequence[str],
    width: int = 44,
) -> str:
    """ASCII bar chart of a figure: one bar per (workload, series).

    The paper presents these as grouped speedup bars; this renders the
    same visual at the terminal, with the paper's value marked by '|'
    on each measured bar when available.
    """
    peak = 0.0
    for row in rows:
        for s in series:
            peak = max(peak, row.measured.get(s, 0.0), row.paper.get(s, 0.0))
    if peak <= 0:
        peak = 1.0
    scale = width / peak

    lines = [title, "=" * len(title)]
    for row in rows:
        lines.append(f"{row.workload} (vs {row.baseline})")
        for s in series:
            got = row.measured.get(s)
            if got is None:
                continue
            bar = "#" * max(1, int(round(got * scale)))
            paper = row.paper.get(s)
            if paper is not None:
                mark = min(width - 1, int(round(paper * scale)))
                bar = bar.ljust(mark) if len(bar) <= mark else bar
                bar = bar[:mark] + "|" + bar[mark + 1 :]
            label = f"{got:6.2f}"
            if paper is not None:
                label += f" (paper {paper:.2f})"
            lines.append(f"  {s:10s} {bar.ljust(width)} {label}")
        lines.append("")
    lines.append(f"scale: {width} cols = {peak:.2f}x; '|' marks the paper's bar")
    return "\n".join(lines)
