"""Content-keyed compile/profile artifact cache (see :mod:`artifacts`)."""

from .artifacts import CACHE_SCHEMA, ArtifactCache, profile_key, unit_key

__all__ = ["ArtifactCache", "CACHE_SCHEMA", "profile_key", "unit_key"]
