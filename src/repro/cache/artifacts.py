"""Content-keyed artifact cache for compile and profile results.

The pipeline's two expensive host-side phases — parse→analyze→translate
and dependency profiling — are pure functions of their inputs, so their
outputs memoize by content:

* **translation units** key on ``(schema, cpu_threads, source sha256)``;
* **dependency profiles** key on ``(schema, kernel fingerprint, warp
  size, platform signature, sampled indices, scalar env, array contents)``
  — array *contents* matter because irregular kernels (BFS, CFD) compute
  addresses from loaded values.

Two layers: an in-process LRU (always on) and an optional on-disk pickle
layer (``cache_dir``) that survives across processes — the TornadoVM
lesson that persisted compile/profile artifacts are what make a
managed-runtime GPU pipeline production-viable.  Lookups report
``cache.hit`` / ``cache.miss`` counters through the observability plane
when an :class:`Instrumentation` is supplied.

Correctness notes: profile lookups must be *bypassed* while fault
injection is on (profiling launches consume fault-schedule probes — the
caller guards this); memory-layer hits return a deep copy so one run's
consumer can never mutate another run's artifact; disk entries that fail
to read or unpickle are treated as misses.

Crash safety (the serve plane shares one directory across worker
processes, any of which may be killed mid-write): writes go to a private
temp file, are fsync'd, then atomically renamed into place, so a reader
can never observe a torn entry; a corrupt entry (e.g. from a pre-fsync
power cut) is *quarantined* — renamed aside to ``*.corrupt`` and counted
— instead of raised or endlessly re-read, so one bad file can never
poison cross-tenant hits.  All in-process state is behind a lock so the
serve plane's worker threads can share one cache object.
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from typing import Optional, Sequence

import numpy as np

#: Bump to invalidate every previously persisted artifact.
CACHE_SCHEMA = 1


class ArtifactCache:
    """Two-layer (memory + optional disk) content-keyed artifact store."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_memory_entries: int = 256,
        enabled: bool = True,
    ):
        self.cache_dir = cache_dir
        self.max_memory_entries = max_memory_entries
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self._mem: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)

    # -- generic get/put --------------------------------------------------

    def get(self, key: str, kind: str, obs=None, copy_value: bool = False):
        """Look up ``key``; returns the artifact or None.

        ``kind`` labels the metrics (``cache.hit.profile`` etc.).  With
        ``copy_value`` a memory-layer hit returns a deep copy (disk hits
        are fresh unpickles already).
        """
        if not self.enabled:
            return None
        with self._lock:
            value = self._mem.get(key)
            if value is not None:
                self._mem.move_to_end(key)
                self._record(True, kind, obs)
                return copy.deepcopy(value) if copy_value else value
        value = self._disk_get(key, obs)
        if value is not None:
            with self._lock:
                self._mem_put(key, value)
                self._record(True, kind, obs)
            return value
        with self._lock:
            self._record(False, kind, obs)
        return None

    def put(self, key: str, value: object) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._mem_put(key, value)
        self._disk_put(key, value)

    def _record(self, hit: bool, kind: str, obs) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if obs is not None:
            word = "hit" if hit else "miss"
            obs.metrics.counter(f"cache.{word}").inc()
            obs.metrics.counter(f"cache.{word}.{kind}").inc()

    # -- layers -----------------------------------------------------------

    def _mem_put(self, key: str, value: object) -> None:
        self._mem[key] = value
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_memory_entries:
            self._mem.popitem(last=False)

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.pkl")

    def _disk_get(self, key: str, obs=None):
        if self.cache_dir is None:
            return None
        try:
            with open(self._path(key), "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None  # plain miss
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # corrupt entry (e.g. a worker was killed mid-write on a
            # filesystem without atomic rename durability): quarantine it
            # so it is never re-read, and report a miss — never an error
            self._quarantine(key, obs)
            return None

    def _quarantine(self, key: str, obs=None) -> None:
        path = self._path(key)
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            try:  # rename failed (permissions?): drop it instead
                os.unlink(path)
            except OSError:
                pass
        with self._lock:
            self.quarantined += 1
        if obs is not None:
            obs.metrics.counter("cache.quarantined").inc()

    def _disk_put(self, key: str, value: object) -> None:
        if self.cache_dir is None:
            return
        try:
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                    fh.flush()
                    os.fsync(fh.fileno())  # durable before the rename
                os.replace(tmp, self._path(key))  # atomic publish
            except BaseException:
                os.unlink(tmp)
                raise
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            pass  # disk layer is best-effort; the memory layer still has it

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "quarantined": self.quarantined,
                "memory_entries": len(self._mem)}


# ---------------------------------------------------------------------------
# Key derivation
# ---------------------------------------------------------------------------


def unit_key(source: str, cpu_threads: int, infer: bool = False) -> str:
    """Cache key of a translation unit (parse→analyze→translate output).

    ``infer`` marks units compiled with annotation inference: the same
    source compiled with and without inference produces different units
    (and an inference report), so the two must never alias in the cache.
    """
    h = hashlib.sha256()
    h.update(f"unit/{CACHE_SCHEMA}/{cpu_threads}/{int(infer)}\n".encode())
    h.update(source.encode())
    return "unit-" + h.hexdigest()


def jit_unit_key(
    code_fingerprint: str, signature: str, cpu_threads: int
) -> str:
    """Cache key of a translation unit lifted from CPython bytecode.

    ``code_fingerprint`` must already include the Python version tag —
    the same source file compiles to different bytecode across 3.10–3.12,
    so a version upgrade must miss rather than replay a stale lift.
    ``signature`` is the call-site type signature the unit was
    specialized against.
    """
    h = hashlib.sha256()
    h.update(f"jit/{CACHE_SCHEMA}/{cpu_threads}\n".encode())
    h.update(code_fingerprint.encode())
    h.update(b"\n")
    h.update(signature.encode())
    return "jit-" + h.hexdigest()


def profile_key(
    fn,
    sample_indices: Sequence[int],
    scalar_env: dict[str, object],
    storage,
    warp_size: int,
    platform_sig: str,
) -> str:
    """Cache key of a dependency profile.

    ``fn`` is the kernel IRFunction (content-fingerprinted), ``storage``
    the bound :class:`ArrayStorage` whose array contents feed the
    sampled address streams.
    """
    h = hashlib.sha256()
    h.update(f"profile/{CACHE_SCHEMA}/{fn.fingerprint()}/{warp_size}\n".encode())
    h.update(platform_sig.encode())
    h.update(b"\nindices\n")
    h.update(np.asarray(sample_indices, dtype=np.int64).tobytes())
    h.update(b"\nscalars\n")
    for name in sorted(scalar_env):
        h.update(f"{name}={scalar_env[name]!r};".encode())
    for name in sorted(storage.arrays):
        arr = storage.arrays[name]
        h.update(
            f"\narray {name} {arr.dtype.str} {arr.shape}\n".encode()
        )
        h.update(np.ascontiguousarray(arr).tobytes())
    return "profile-" + h.hexdigest()
