"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    show the Table-II workloads and their calibration;
``run WORKLOAD``
    execute one workload under one or more strategies and print the
    simulated times and execution modes;
``table2`` / ``fig3`` / ``fig4`` / ``fig5a`` / ``fig5b`` / ``headline``
    regenerate a table/figure of the paper (paper-vs-ours columns);
``report [WORKLOAD ...]``
    run workloads traced and write a trace-insight RunReport (critical
    paths, per-lane utilization attribution, speculation waterfall) as
    schema-versioned JSON plus an optional single-file HTML dashboard;
    ``--diff BASELINE`` turns it into a regression gate;
``translate FILE``
    compile an annotated mini-Java file and print the analysis verdicts
    and generated CUDA/Java sources.
"""

from __future__ import annotations

import argparse
import sys

from .api import Japonica, STRATEGIES
from .errors import (
    AnalysisError,
    AnnotationError,
    JaponicaError,
    LexError,
    LoweringError,
    ParseError,
    RuntimeFaultError,
    TypeCheckError,
)

#: Process exit codes.  Argparse's own usage errors exit with 2.
EXIT_OK = 0
EXIT_ERROR = 1          # any other Japonica error
EXIT_USAGE = 2          # bad command-line arguments
EXIT_FRONTEND = 3       # source could not be parsed/analyzed/lowered
EXIT_RUNTIME_FAULT = 4  # an (injected) runtime fault was not recovered

_FRONTEND_ERRORS = (
    LexError,
    ParseError,
    AnnotationError,
    AnalysisError,
    TypeCheckError,
    LoweringError,
)


def _cmd_list(_args) -> int:
    from .workloads import ALL_WORKLOADS

    print(f"{'name':14s} {'origin':12s} {'scheme':9s} {'paper problem'}")
    for w in ALL_WORKLOADS:
        print(f"{w.name:14s} {w.origin:12s} {w.scheme:9s} {w.paper_problem}")
    return 0


def _run_jit_file(args) -> int:
    """``run --jit FILE``: drive a @repro.jit example module.

    The module convention: decorated functions at module top level plus
    ``make_inputs(n, seed)`` returning ``{function_name: args_tuple}``.
    Every function runs once jitted and once as the plain Python
    original on an identical fresh input set; the two must agree
    bitwise (arrays and return value) unless --no-verify.
    """
    import importlib.util
    import os

    import numpy as np

    from .frontend.pyjit import JitFunction

    path = args.workload
    if not os.path.exists(path):
        print(f"no such file: {path}", file=sys.stderr)
        return EXIT_USAGE
    name = os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        print(f"cannot import {path}: {exc}", file=sys.stderr)
        return EXIT_FRONTEND
    make_inputs = getattr(module, "make_inputs", None)
    if make_inputs is None:
        print(f"{path} defines no make_inputs(n, seed)", file=sys.stderr)
        return EXIT_USAGE
    inputs = make_inputs(n=args.n, seed=args.seed)
    failed = False
    fallbacks = 0
    for fname, fargs in inputs.items():
        fn = getattr(module, fname, None)
        if not isinstance(fn, JitFunction):
            print(f"{fname}: not a @repro.jit function", file=sys.stderr)
            return EXIT_USAGE
        if args.devices != 1:
            fn._devices = args.devices
        if args.scheme:
            fn._scheme = args.scheme
        ret = fn(*fargs)
        rep = fn.last_report
        status = ""
        if args.verify:
            oracle_args = tuple(
                a.copy() if isinstance(a, np.ndarray) else a
                for a in make_inputs(n=args.n, seed=args.seed)[fname]
            )
            oracle_ret = fn.__wrapped__(*oracle_args)
            arrays_eq = all(
                np.array_equal(a.view(np.uint8), b.view(np.uint8))
                for a, b in zip(fargs, oracle_args)
                if isinstance(a, np.ndarray)
            )
            ret_eq = ret == oracle_ret or (ret is None and oracle_ret is None)
            status = "verified" if arrays_eq and ret_eq else "MISMATCH"
            failed = failed or status == "MISMATCH"
        if rep.lifted:
            detail = f"loops={rep.loops_annotated}/{rep.loops_total}"
        else:
            fallbacks += 1
            detail = f"fallback reason={rep.reason}"
        print(f"{fname}: lifted={rep.lifted} {detail} {status}".rstrip())
    if failed:
        return EXIT_ERROR
    if args.require_lift and fallbacks:
        print(f"{fallbacks} function(s) fell back to plain Python",
              file=sys.stderr)
        return EXIT_FRONTEND
    return EXIT_OK


def _cmd_run(args) -> int:
    if args.jit:
        return _run_jit_file(args)
    from .workloads import get

    try:
        workload = get(args.workload)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return EXIT_USAGE
    if args.devices < 1:
        print(f"--devices must be >= 1, got {args.devices}", file=sys.stderr)
        return EXIT_USAGE
    if args.faults:
        # validate the schedule grammar before any work: a typo'd spec
        # must be a pointed usage error, never a mid-run traceback
        from .faults.schedule import FaultSchedule

        try:
            FaultSchedule.parse(args.faults, seed=args.fault_seed)
        except JaponicaError as exc:
            print(f"bad --faults spec: {exc}", file=sys.stderr)
            return EXIT_USAGE
    strategies = args.strategies.split(",") if args.strategies else ["japonica"]
    binds = workload.bindings(n=args.n, seed=args.seed)
    reference = workload.reference(binds) if args.verify else None

    # content-keyed artifact cache: in-memory within this process (so a
    # multi-strategy run front-ends once), plus an on-disk layer with
    # --cache-dir so a repeated invocation skips compile and profiling
    cache = None
    if args.cache:
        from .cache import ArtifactCache

        cache = ArtifactCache(cache_dir=args.cache_dir)

    # --trace / --metrics / --report turn on the observability plane.
    # The traced path compiles once with a recording Instrumentation
    # (parse/analyze/translate spans) and gives every strategy a fresh
    # context — sharing one would share the profile cache and change the
    # simulated times.
    observing = bool(args.trace or args.metrics or args.report)
    obs = None
    program = None
    timelines: list[tuple[str, object]] = []
    phase_rows = []
    if observing:
        from .obs import Instrumentation

        obs = Instrumentation.recording()
        program = Japonica(
            obs=obs, cache=cache, infer_annotations=args.infer
        ).compile(workload.source)

    print(f"== {workload.name} ({workload.description}) ==")
    times = {}
    for strategy in strategies:
        if strategy not in STRATEGIES:
            print(f"unknown strategy {strategy!r}; choose from {STRATEGIES}",
                  file=sys.stderr)
            return EXIT_USAGE
        if observing:
            result = program.run(
                workload.method,
                strategy=strategy,
                scheme=args.scheme or workload.scheme,
                context=workload.make_context(
                    obs=obs, cache=cache, devices=args.devices,
                    native=args.native,
                    native_crosscheck=args.native_crosscheck,
                ),
                faults=args.faults, fault_seed=args.fault_seed,
                **binds,
            )
            from .bench import phase_breakdown

            phase_rows.extend(phase_breakdown(result, strategy))
            for lid, res in result.loop_results:
                if res.timeline is not None:
                    timelines.append((f"{strategy}:{lid}", res.timeline))
        else:
            japonica = (
                Japonica(cache=cache, infer_annotations=args.infer)
                if cache is not None or args.infer
                else None
            )
            result = workload.run(
                strategy=strategy, n=args.n, seed=args.seed,
                japonica=japonica,
                scheme=args.scheme,
                faults=args.faults, fault_seed=args.fault_seed,
                cache=cache, devices=args.devices,
                native=args.native,
                native_crosscheck=args.native_crosscheck,
            )
        times[strategy] = result.sim_time_s
        modes = ",".join(sorted({r.mode for _, r in result.loop_results}))
        status = ""
        if reference is not None:
            try:
                workload.verify(result, binds)
                status = "verified"
            except AssertionError as exc:
                status = f"MISMATCH: {exc}"
        print(f"{strategy:10s} {result.sim_time_ms:12.3f} ms  "
              f"mode={modes:10s} {status}")
        if result.resilience is not None:
            print(f"           resilience: {result.resilience.summary()}")
    if "serial" in times:
        base = times["serial"]
        for strategy, t in times.items():
            if strategy != "serial":
                print(f"speedup {strategy} over serial: {base / t:.2f}x")
    if phase_rows:
        from .bench import render_phases

        print()
        print(render_phases(phase_rows))
    if args.trace:
        from .obs import write_chrome_trace

        write_chrome_trace(
            args.trace, obs.tracer.finished_spans(), timelines,
            metadata={
                "workload": workload.name,
                "strategies": ",".join(strategies),
            },
        )
        print(f"trace written to {args.trace} "
              f"(load at https://ui.perfetto.dev)")
    if args.metrics:
        from .obs import write_metrics_json

        write_metrics_json(
            args.metrics, obs.metrics, extra={"workload": workload.name}
        )
        print(f"metrics written to {args.metrics}")
    if args.report:
        from .obs.insight import analyze_run, run_report, write_report_json

        section = analyze_run(
            timelines, metrics=obs.metrics, tracer=obs.tracer,
            sim_time_s=sum(times.values()),
        )
        write_report_json(
            args.report,
            run_report(
                {workload.name: section},
                meta={
                    "devices": args.devices,
                    "n": args.n,
                    "seed": args.seed,
                    "strategies": ",".join(strategies),
                },
            ),
        )
        print(f"insight report written to {args.report}")
    if cache is not None and args.cache_dir:
        s = cache.stats()
        print(f"cache: {s['hits']} hits, {s['misses']} misses "
              f"({args.cache_dir})")
    return 0


def _cmd_report(args) -> int:
    """Run workloads traced and emit the trace-insight RunReport."""
    import json

    from .obs import Instrumentation
    from .obs.insight import (
        analyze_run,
        diff_reports,
        render_diff,
        run_report,
        write_html,
        write_report_json,
    )
    from .workloads import ALL_WORKLOADS, get

    if args.devices < 1:
        print(f"--devices must be >= 1, got {args.devices}", file=sys.stderr)
        return EXIT_USAGE
    strategies = args.strategies.split(",") if args.strategies else ["japonica"]
    for strategy in strategies:
        if strategy not in STRATEGIES:
            print(f"unknown strategy {strategy!r}; choose from {STRATEGIES}",
                  file=sys.stderr)
            return EXIT_USAGE
    names = args.workloads or [w.name for w in ALL_WORKLOADS]
    sections = {}
    for name in names:
        try:
            workload = get(name)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return EXIT_USAGE
        obs = Instrumentation.recording()
        program = Japonica(obs=obs).compile(workload.source)
        binds = workload.bindings(n=args.n, seed=args.seed)
        timelines: list[tuple[str, object]] = []
        sim_total = 0.0
        for strategy in strategies:
            result = program.run(
                workload.method,
                strategy=strategy,
                scheme=args.scheme or workload.scheme,
                context=workload.make_context(
                    obs=obs, devices=args.devices, native=args.native
                ),
                **binds,
            )
            sim_total += result.sim_time_s
            for lid, res in result.loop_results:
                if res.timeline is not None:
                    timelines.append((f"{strategy}:{lid}", res.timeline))
        section = analyze_run(
            timelines, metrics=obs.metrics, tracer=obs.tracer,
            sim_time_s=sim_total,
        )
        sections[workload.name] = section
        t = section["totals"]
        print(f"{workload.name:14s} sim {sim_total * 1e3:10.3f} ms  "
              f"critical-path {t['critical_path_s'] * 1e3:10.3f} ms  "
              f"slack {t['slack_s'] * 1e3:10.3f} ms")

    meta = {
        "devices": args.devices,
        "n": args.n,
        "seed": args.seed,
        "strategies": ",".join(strategies),
    }
    if args.scheme:
        meta["scheme"] = args.scheme
    report = run_report(sections, meta)
    write_report_json(args.out, report)
    print(f"insight report written to {args.out}")
    if args.html:
        write_html(args.html, report)
        print(f"dashboard written to {args.html}")
    if args.diff:
        try:
            with open(args.diff) as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {args.diff}: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
        diff = diff_reports(baseline, report, threshold=args.threshold)
        print(render_diff(diff))
        if diff["verdict"] != "ok":
            print(f"FAIL: {len(diff['regressions'])} regression(s) beyond "
                  f"{args.threshold:g}x vs {args.diff}", file=sys.stderr)
            return EXIT_ERROR
    return 0


def _cmd_figure(which):
    def run(_args) -> int:
        from . import bench

        render = bench.render_bars if getattr(_args, "bars", False) else (
            bench.render_figure
        )
        if which == "table2":
            print(bench.render_table2(bench.table2()))
        elif which == "fig3":
            print(render(
                "Figure 3 - DOALL apps, speedup over 16-thread CPU",
                bench.figure3(), bench.FIG3_STRATEGIES,
            ))
        elif which == "fig4":
            print(render(
                "Figure 4 - DOACROSS apps, speedup over serial CPU",
                bench.figure4(), ("cpu16", "gpu", "japonica"),
            ))
        elif which == "fig5a":
            print(render(
                "Figure 5(a) - stealing apps, speedup over 16-thread CPU",
                bench.figure5a(), ("gpu", "japonica"),
            ))
        elif which == "fig5b":
            print(bench.render_sweep(bench.figure5b([1, 2, 3])))
        elif which == "headline":
            print(bench.render_headline(bench.headline_averages()))
        return 0

    return run


def _cmd_serve(args) -> int:
    """Run the long-lived compilation service until interrupted."""
    import asyncio

    from .serve import CompilationService, ServeConfig, ServeServer

    if args.faults:
        from .faults.schedule import FaultSchedule

        try:
            FaultSchedule.parse(args.faults, seed=args.fault_seed)
        except JaponicaError as exc:
            print(f"bad --faults spec: {exc}", file=sys.stderr)
            return EXIT_USAGE
    try:
        config = ServeConfig(
            workers=args.workers,
            backend=args.backend,
            cache_dir=args.cache_dir,
            max_queue=args.max_queue,
            quota_rate=args.rate,
            quota_burst=args.burst,
            default_deadline_s=args.deadline,
            faults=args.faults,
            fault_seed=args.fault_seed,
            trace=args.trace,
            slo_wall_ms=args.slo_ms,
            flight_events=args.flight_events,
            dump_on_shed=args.dump_on_shed,
            dump_dir=args.dump_dir,
        )
        server = ServeServer(
            CompilationService(config), host=args.host, port=args.port
        )
    except JaponicaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    async def run() -> None:
        await server.start()
        print(f"repro serve on http://{server.host}:{server.port} "
              f"({args.workers} {args.backend} workers, "
              f"queue {args.max_queue}"
              + (", tracing on" if args.trace else "") + ")")
        print("POST /v1/jobs | GET /healthz | GET /v1/stats | "
              "GET /v1/metrics | GET /v1/trace/<job> | GET /v1/flight  "
              "(Ctrl-C stops)")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nserve: stopped")
    return 0


def _cmd_tail(args) -> int:
    """Render a flight-recorder dump (file or a serve URL) for humans."""
    import json as _json

    from .obs.distrib import FLIGHT_SCHEMA, render_flight

    source = args.source
    if source.startswith(("http://", "https://")):
        import urllib.error
        import urllib.request

        url = source.rstrip("/") + "/v1/flight"
        try:
            with urllib.request.urlopen(url, timeout=10.0) as resp:
                raw = resp.read()
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                print(f"{source}: no flight dump recorded yet",
                      file=sys.stderr)
                return 1
            print(f"tail: HTTP {exc.code} from {url}", file=sys.stderr)
            return 1
        except (urllib.error.URLError, OSError) as exc:
            print(f"tail: cannot reach {url}: {exc}", file=sys.stderr)
            return 1
    else:
        try:
            with open(source, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            print(f"tail: {exc}", file=sys.stderr)
            return 1
    try:
        doc = _json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        print(f"tail: not JSON: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(doc, indent=1, sort_keys=True))
        return 0
    try:
        sys.stdout.write(render_flight(doc))
    except ValueError as exc:
        print(f"tail: {exc} (expected schema {FLIGHT_SCHEMA})",
              file=sys.stderr)
        return 1
    return 0


def _cmd_infer(args) -> int:
    """Infer ``acc`` directives for bare loops and print the result.

    The per-loop proposal table goes to stderr; the annotated source —
    re-parseable mini-Java with the synthesized directives in place —
    goes to stdout, so the output can be piped straight back into
    ``repro translate``.
    """
    from .analysis.infer import infer_class
    from .lang import fmt_class, parse_program, strip_annotations
    from .workloads import get

    workload = None
    try:
        workload = get(args.target)
        source = workload.source
    except KeyError:
        try:
            source = open(args.target).read()
        except OSError as exc:
            print(
                f"{args.target!r} is neither a workload name nor a "
                f"readable file: {exc}",
                file=sys.stderr,
            )
            return EXIT_USAGE

    if args.confirm:
        if workload is None:
            print("--confirm needs a workload target (inputs are required "
                  "to profile)", file=sys.stderr)
            return EXIT_USAGE
        # inference from scratch, then one japonica run: the scheduler
        # routes every uncertain proposal through the DD profiler and the
        # verdicts land back in the report
        program = Japonica(infer_annotations=True).compile(
            workload.stripped_source()
        )
        binds = workload.bindings(n=args.n, seed=args.seed)
        program.run(
            workload.method,
            strategy="japonica",
            scheme=workload.scheme,
            context=workload.make_context(),
            **binds,
        )
        report = program.inference
        cls = program.unit.class_decl
    else:
        cls = parse_program(source)
        if args.strip or workload is not None:
            strip_annotations(cls)
        report = infer_class(cls)

    for line in report.summary_lines():
        print(line, file=sys.stderr)
    if not report.chosen:
        print("no loop qualified for an acc directive", file=sys.stderr)
    print(fmt_class(cls))
    return 0


def _cmd_translate(args) -> int:
    try:
        source = open(args.file).read()
    except OSError as exc:
        print(exc, file=sys.stderr)
        return 2
    program = Japonica().compile(source)
    for method in program.methods:
        mt = program.unit.methods[method]
        print(f"== method {method} ==")
        for tl in mt.loops:
            print(f"loop {tl.id}: {tl.analysis.status.value}"
                  + (f" ({tl.cpu_only_reason})" if tl.cpu_only else ""))
            print(f"  live-in : {sorted(tl.analysis.variables.live_in)}")
            print(f"  live-out: {sorted(tl.analysis.variables.live_out)}")
            print(f"  copyin  : {tl.data_plan.arrays_in()}")
            print(f"  copyout : {tl.data_plan.arrays_out()}")
        if args.cuda:
            print("\n-- generated CUDA --")
            print(program.cuda_source(method))
        if args.java:
            print("\n-- generated Java --")
            print(program.java_source(method))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Japonica reproduction (ICPP 2013) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table-II workloads").set_defaults(
        fn=_cmd_list
    )

    run_p = sub.add_parser("run", help="run one workload")
    run_p.add_argument("workload")
    run_p.add_argument(
        "--strategies",
        default="serial,cpu,gpu,japonica",
        help="comma-separated subset of " + ",".join(STRATEGIES),
    )
    run_p.add_argument("--n", type=int, default=1, help="problem multiplier")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--no-verify", dest="verify", action="store_false",
        help="skip checking against the sequential reference",
    )
    run_p.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-injection schedule, e.g. 'gpu.launch:0.01,transfer@3' "
             "(site:rate for probabilistic, site@n+m for exact probes)",
    )
    run_p.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the deterministic fault schedule",
    )
    run_p.add_argument(
        "--scheme", choices=("sharing", "stealing"), default=None,
        help="override the workload's japonica scheduling scheme",
    )
    run_p.add_argument(
        "--infer", action="store_true",
        help="infer acc directives for bare loops at compile time "
             "(hand-annotated loops are left untouched, so annotated "
             "sources run identically)",
    )
    run_p.add_argument(
        "--jit", action="store_true",
        help="WORKLOAD is a Python file using @repro.jit; run each "
             "decorated function on its make_inputs(n, seed) arguments, "
             "print the lift report, and verify bitwise against the "
             "undecorated function",
    )
    run_p.add_argument(
        "--require-lift", action="store_true",
        help="with --jit: fail (exit 3) if any decorated function falls "
             "back to plain Python instead of lifting",
    )
    run_p.add_argument(
        "--devices", type=int, default=1, metavar="N",
        help="size of the simulated GPU pool; DOALL loops shard across "
             "the devices (results stay bit-identical to --devices 1)",
    )
    run_p.add_argument(
        "--native", action=argparse.BooleanOptionalAction, default=True,
        help="tiered native kernel backend: hot kernels are promoted "
             "from the IR interpreter to generated type-specialized "
             "source (results stay bit-identical; --no-native forces "
             "the interpreter everywhere)",
    )
    run_p.add_argument(
        "--native-crosscheck", action="store_true",
        help="run every native launch against the interpreter oracle "
             "and fail on any divergence (slow; for debugging the tier)",
    )
    run_p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persist compile/profile artifacts to DIR; a repeated run "
             "with unchanged inputs skips the front end and profiling",
    )
    run_p.add_argument(
        "--no-cache", dest="cache", action="store_false", default=True,
        help="disable the in-process compile/profile artifact cache",
    )
    run_p.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a Chrome trace-event JSON (Perfetto-loadable) of the "
             "pipeline spans and per-lane execution timelines",
    )
    run_p.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write runtime metrics (counters/gauges/histograms) as JSON",
    )
    run_p.add_argument(
        "--report", metavar="FILE", default=None,
        help="write a trace-insight RunReport (critical path, per-lane "
             "utilization attribution, speculation waterfall) as JSON",
    )
    run_p.set_defaults(fn=_cmd_run)

    rep_p = sub.add_parser(
        "report",
        help="run workloads traced and write a trace-insight RunReport",
    )
    rep_p.add_argument(
        "workloads", nargs="*", metavar="WORKLOAD",
        help="workloads to analyze (default: the whole Table-II suite)",
    )
    rep_p.add_argument(
        "--strategies", default="japonica",
        help="comma-separated subset of " + ",".join(STRATEGIES),
    )
    rep_p.add_argument("--n", type=int, default=1, help="problem multiplier")
    rep_p.add_argument("--seed", type=int, default=0)
    rep_p.add_argument(
        "--scheme", choices=("sharing", "stealing"), default=None,
        help="override every workload's japonica scheduling scheme",
    )
    rep_p.add_argument(
        "--devices", type=int, default=1, metavar="N",
        help="size of the simulated GPU pool",
    )
    rep_p.add_argument(
        "--native", action=argparse.BooleanOptionalAction, default=True,
        help="tiered native kernel backend (--no-native forces the "
             "interpreter everywhere; reports stay byte-identical)",
    )
    rep_p.add_argument(
        "--out", metavar="FILE", default="RUN_REPORT.json",
        help="output JSON path (default RUN_REPORT.json)",
    )
    rep_p.add_argument(
        "--html", metavar="FILE", default=None,
        help="also write a self-contained single-file HTML dashboard",
    )
    rep_p.add_argument(
        "--diff", metavar="BASELINE", default=None,
        help="diff against a baseline RunReport and exit nonzero on a "
             "critical-path/makespan regression beyond --threshold",
    )
    rep_p.add_argument(
        "--threshold", type=float, default=2.0,
        help="relative regression threshold for --diff (default 2.0)",
    )
    rep_p.set_defaults(fn=_cmd_report)

    for which in ("table2", "fig3", "fig4", "fig5a", "fig5b", "headline"):
        fig_p = sub.add_parser(
            which, help=f"regenerate {which} (paper vs ours)"
        )
        fig_p.add_argument(
            "--bars", action="store_true",
            help="render as ASCII bars instead of a table",
        )
        fig_p.set_defaults(fn=_cmd_figure(which))

    srv = sub.add_parser(
        "serve",
        help="run the compilation service (admission control, deadlines, "
             "circuit breakers, load-shedding degradation)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8642,
                     help="listen port (0 = ephemeral; default 8642)")
    srv.add_argument("--workers", type=int, default=2,
                     help="worker pool size (default 2)")
    srv.add_argument("--backend", choices=("thread", "process"),
                     default="thread",
                     help="worker backend (default thread)")
    srv.add_argument("--max-queue", type=int, default=32,
                     help="bounded job queue capacity (default 32)")
    srv.add_argument("--rate", type=float, default=50.0,
                     help="default per-tenant admission rate, jobs/s")
    srv.add_argument("--burst", type=float, default=16.0,
                     help="default per-tenant burst allowance")
    srv.add_argument("--deadline", type=float, default=30.0,
                     help="default per-job wall-clock budget, seconds")
    srv.add_argument("--cache-dir", metavar="DIR", default=None,
                     help="shared on-disk artifact cache directory")
    srv.add_argument("--faults", default=None, metavar="SPEC",
                     help="serve-level chaos schedule, e.g. "
                          "'serve.worker:0.05' kills a worker before 5%% "
                          "of dispatches")
    srv.add_argument("--fault-seed", type=int, default=0)
    srv.add_argument("--trace", action="store_true",
                     help="request-scoped distributed tracing + worker "
                          "metric shipping (GET /v1/trace/<job_id>, "
                          "richer /v1/metrics)")
    srv.add_argument("--slo-ms", type=float, default=30000.0,
                     help="latency SLO target feeding the burn-rate "
                          "counters (default 30000)")
    srv.add_argument("--flight-events", type=int, default=64,
                     help="flight-recorder ring capacity per lane "
                          "(default 64)")
    srv.add_argument("--dump-on-shed", action="store_true",
                     help="also dump the flight recorder when a job "
                          "is shed")
    srv.add_argument("--dump-dir", metavar="DIR", default=None,
                     help="write flight dumps as JSON files here "
                          "(default: in-memory only, GET /v1/flight)")
    srv.set_defaults(fn=_cmd_serve)

    tail_p = sub.add_parser(
        "tail",
        help="render a flight-recorder dump (a repro.flight/v1 JSON "
             "file or a running server's URL) for humans",
    )
    tail_p.add_argument(
        "source",
        help="path to a flight-dump JSON file, or a server base URL "
             "(http://host:port) to fetch its latest dump from",
    )
    tail_p.add_argument("--json", action="store_true",
                        help="print the raw JSON bundle instead of the "
                             "rendered table")
    tail_p.set_defaults(fn=_cmd_tail)

    inf = sub.add_parser(
        "infer",
        help="infer acc directives for bare loops and print the "
             "annotated source (proposal table on stderr)",
    )
    inf.add_argument(
        "target",
        help="a Table-II workload name (its directives are stripped "
             "first) or a mini-Java source file",
    )
    inf.add_argument(
        "--strip", action="store_true",
        help="for file targets: drop existing annotations before "
             "inferring (workload targets are always stripped)",
    )
    inf.add_argument(
        "--confirm", action="store_true",
        help="run the inferred program once under japonica so the DD "
             "profiler confirms or rejects every uncertain proposal "
             "(workload targets only)",
    )
    inf.add_argument("--n", type=int, default=1, help="problem multiplier")
    inf.add_argument("--seed", type=int, default=0)
    inf.set_defaults(fn=_cmd_infer)

    tr = sub.add_parser("translate", help="translate an annotated Java file")
    tr.add_argument("file")
    tr.add_argument("--cuda", action="store_true", help="print CUDA text")
    tr.add_argument("--java", action="store_true", help="print Java text")
    tr.set_defaults(fn=_cmd_translate)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except _FRONTEND_ERRORS as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FRONTEND
    except RuntimeFaultError as exc:
        print(f"runtime fault: {exc}", file=sys.stderr)
        return EXIT_RUNTIME_FAULT
    except JaponicaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
