"""CPU executor model (the multithreaded-Java half of the dual executable)."""

from .executor import CpuExecutor, CpuRunResult
from .threads import block_partition, descending, uniform_chunks

__all__ = [
    "CpuExecutor",
    "CpuRunResult",
    "block_partition",
    "descending",
    "uniform_chunks",
]
