"""CPU-side execution: the "multiple Java threads" half of the dual
executable.

Functionally, CPU execution writes host arrays directly (DOALL chunks are
independent; sequential modes run in iteration order).  Simulated time
comes from the cost model: work divided over the worker threads with a
fork/join overhead, memory-bandwidth roofline applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..ir.instructions import IRFunction
from ..ir.interpreter import (
    ArrayStorage,
    CompiledKernel,
    Counts,
    DirectBackend,
)
from ..ir.vectorizer import VectorizedKernel, can_vectorize
from ..runtime.costmodel import CostModel
from ..runtime.platform import CpuSpec


@dataclass
class CpuRunResult:
    """Outcome of executing an index set on the CPU side."""

    counts: Counts
    sim_time_s: float
    threads: int


class CpuExecutor:
    """Executes kernel IR on the modelled multicore CPU."""

    def __init__(self, spec: CpuSpec, cost: CostModel):
        self.spec = spec
        self.cost = cost
        self._compiled: dict[int, CompiledKernel] = {}
        self._vectorized: dict[int, VectorizedKernel] = {}

    def _kernel(self, fn: IRFunction) -> CompiledKernel:
        key = id(fn)
        if key not in self._compiled:
            self._compiled[key] = CompiledKernel(fn)
        return self._compiled[key]

    def _vector_kernel(self, fn: IRFunction) -> VectorizedKernel:
        key = id(fn)
        if key not in self._vectorized:
            self._vectorized[key] = VectorizedKernel(fn)
        return self._vectorized[key]

    def run_parallel(
        self,
        fn: IRFunction,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
        indices: Sequence[int],
        threads: Optional[int] = None,
        elem_bytes: float = 8.0,
        allow_vectorized: bool = True,
    ) -> CpuRunResult:
        """Run a DOALL index set with the CPU thread pool.

        ``allow_vectorized`` lets callers force the scalar interpreter
        (needed when iteration order must be respected).
        """
        threads = threads if threads is not None else self.spec.worker_threads
        counts = self._execute(
            fn, storage, scalar_env, list(indices), allow_vectorized
        )
        sim_time = self.cost.cpu_time(counts, threads=threads, elem_bytes=elem_bytes)
        return CpuRunResult(counts, sim_time, threads)

    def run_serial(
        self,
        fn: IRFunction,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
        indices: Sequence[int],
        elem_bytes: float = 8.0,
    ) -> CpuRunResult:
        """Run iterations sequentially, in the given order, on one thread.

        Sequential execution must respect iteration order (it is the mode
        C fallback for loops carrying true dependencies), so the scalar
        interpreter is always used for correctness... unless the kernel is
        straight-line, in which case ascending-order vectorized execution
        coincides with sequential semantics only for DOALL loops — hence
        no vectorization here.
        """
        counts = self._execute(
            fn, storage, scalar_env, list(indices), allow_vectorized=False
        )
        sim_time = self.cost.cpu_time(counts, threads=1, elem_bytes=elem_bytes)
        return CpuRunResult(counts, sim_time, 1)

    def _execute(
        self,
        fn: IRFunction,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
        indices: list[int],
        allow_vectorized: bool,
    ) -> Counts:
        if allow_vectorized and can_vectorize(fn) and indices:
            return self._vector_kernel(fn).run_range(
                storage, scalar_env, np.asarray(indices, dtype=np.int64)
            )
        kern = self._kernel(fn)
        backend = DirectBackend(storage)
        for i in indices:
            kern.run_index(i, scalar_env, backend)
        return kern.take_counts()
