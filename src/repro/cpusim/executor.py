"""CPU-side execution: the "multiple Java threads" half of the dual
executable.

Functionally, CPU execution writes host arrays directly (DOALL chunks are
independent; sequential modes run in iteration order).  Simulated time
comes from the cost model: work divided over the worker threads with a
fork/join overhead, memory-bandwidth roofline applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import WorkerFault
from ..faults.plane import SITE_CPU_WORKER
from ..faults.resilience import (
    FaultRuntime,
    restore_arrays,
    snapshot_arrays,
)
from ..ir.instructions import IRFunction, stored_arrays
from ..ir.interpreter import (
    ArrayStorage,
    Counts,
)
from ..ir.native import KernelDispatcher
from ..ir.vectorizer import can_vectorize
from ..obs.metrics import NULL_INSTRUMENTATION, Instrumentation
from ..runtime.costmodel import CostModel
from ..runtime.platform import CpuSpec


@dataclass
class CpuRunResult:
    """Outcome of executing an index set on the CPU side."""

    counts: Counts
    sim_time_s: float
    threads: int


class CpuExecutor:
    """Executes kernel IR on the modelled multicore CPU."""

    def __init__(
        self,
        spec: CpuSpec,
        cost: CostModel,
        faults: Optional[FaultRuntime] = None,
        obs: Optional[Instrumentation] = None,
        kernels: Optional[KernelDispatcher] = None,
    ):
        self.spec = spec
        self.cost = cost
        self.faults = faults
        self.obs = obs or NULL_INSTRUMENTATION
        #: tiered kernel backend, shared with the GPU devices of the
        #: same context; artifacts are cached process-wide by content
        #: fingerprint, not id(fn)
        self.kernels = kernels or KernelDispatcher(obs=self.obs)

    def run_parallel(
        self,
        fn: IRFunction,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
        indices: Sequence[int],
        threads: Optional[int] = None,
        elem_bytes: float = 8.0,
        allow_vectorized: bool = True,
    ) -> CpuRunResult:
        """Run a DOALL index set with the CPU thread pool.

        ``allow_vectorized`` lets callers force the scalar interpreter
        (needed when iteration order must be respected).
        """
        threads = threads if threads is not None else self.spec.worker_threads
        indices = list(indices)
        counts, extra_s = self._execute(
            fn, storage, scalar_env, indices, allow_vectorized
        )
        sim_time = extra_s + self.cost.cpu_time(
            counts, threads=threads, elem_bytes=elem_bytes
        )
        self._record_run("parallel", len(indices), threads, sim_time)
        return CpuRunResult(counts, sim_time, threads)

    def run_serial(
        self,
        fn: IRFunction,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
        indices: Sequence[int],
        elem_bytes: float = 8.0,
    ) -> CpuRunResult:
        """Run iterations sequentially, in the given order, on one thread.

        Sequential execution must respect iteration order (it is the mode
        C fallback for loops carrying true dependencies), so the scalar
        interpreter is always used for correctness... unless the kernel is
        straight-line, in which case ascending-order vectorized execution
        coincides with sequential semantics only for DOALL loops — hence
        no vectorization here.
        """
        indices = list(indices)
        counts, extra_s = self._execute(
            fn, storage, scalar_env, indices, allow_vectorized=False
        )
        sim_time = extra_s + self.cost.cpu_time(
            counts, threads=1, elem_bytes=elem_bytes
        )
        self._record_run("serial", len(indices), 1, sim_time)
        return CpuRunResult(counts, sim_time, 1)

    def _record_run(
        self, kind: str, n: int, threads: int, sim_time: float
    ) -> None:
        m = self.obs.metrics
        m.counter("cpu.chunks").inc()
        m.counter(f"cpu.chunks.{kind}").inc()
        m.counter("cpu.iterations").inc(n)
        m.counter("cpu.time_s").inc(sim_time)
        m.histogram("cpu.threads").observe(threads)

    def _execute(
        self,
        fn: IRFunction,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
        indices: list[int],
        allow_vectorized: bool,
    ) -> tuple[Counts, float]:
        """Run the index set; returns (counts, extra simulated seconds).

        Under fault injection a chunk may die mid-flight (an injected
        :class:`WorkerFault`).  The chunk's written arrays are restored
        from a pre-chunk snapshot and the chunk restarts, bounded by the
        resilience policy; the dead worker's partial iterations stay in
        the dynamic counts (wasted work costs real simulated time) and
        each restart adds a backoff window.  Exhausting the budget raises
        a typed :class:`WorkerFault` for the schedulers to degrade on.
        """
        faults = self.faults
        if faults is None or not faults.enabled:
            return self._execute_once(fn, storage, scalar_env, indices,
                                      allow_vectorized, None), 0.0
        policy = faults.policy
        written = stored_arrays(fn)
        extra_s = 0.0
        retries = 0
        while True:
            snapshot = snapshot_arrays(storage, written)
            try:
                counts = self._execute_once(
                    fn, storage, scalar_env, indices, allow_vectorized, faults
                )
                return counts, extra_s
            except WorkerFault as err:
                if not err.injected:
                    raise
                restore_arrays(storage, snapshot)
                if retries >= policy.max_retries:
                    # drain the partial counts so they are not double
                    # charged by a later run of the same kernel
                    self.kernels.take_counts(fn)
                    raise WorkerFault(
                        f"CPU worker kept dying after {retries + 1} attempts",
                        completed=err.completed,
                        site=SITE_CPU_WORKER,
                        at_s=faults.recorder.clock_s,
                        retries=retries + 1,
                    )
                backoff = faults.backoff_for(SITE_CPU_WORKER, retries)
                extra_s += backoff
                faults.recovered(
                    SITE_CPU_WORKER, "worker-restart",
                    penalty_s=backoff, retries=retries + 1,
                    detail=f"completed={err.completed}/{len(indices)}",
                )
                m = self.obs.metrics
                m.counter("resilience.retry.attempts").inc()
                m.counter("resilience.backoff_s").inc(backoff)
                retries += 1

    def _execute_once(
        self,
        fn: IRFunction,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
        indices: list[int],
        allow_vectorized: bool,
        faults: Optional[FaultRuntime],
    ) -> Counts:
        directive = (
            faults.probe(SITE_CPU_WORKER) if faults is not None else None
        )
        if allow_vectorized and can_vectorize(fn) and indices:
            if directive is not None:
                # the worker dies before the chunk starts: nothing ran
                raise WorkerFault(
                    "injected worker failure (before chunk)",
                    completed=0,
                    site=SITE_CPU_WORKER,
                    injected=True,
                )
            return self.kernels.cache.vectorized(fn).run_range(
                storage, scalar_env, np.asarray(indices, dtype=np.int64)
            )
        dies_at = (
            int(directive.fraction * len(indices))
            if directive is not None
            else None
        )
        if dies_at is not None and dies_at < len(indices):
            # the worker executes its prefix, then dies mid-chunk; the
            # partial counts stay accumulated (wasted work costs time)
            self.kernels.run_direct(
                fn, indices[:dies_at], scalar_env, storage
            )
            raise WorkerFault(
                f"injected worker failure mid-chunk at "
                f"{dies_at}/{len(indices)}",
                completed=dies_at,
                site=SITE_CPU_WORKER,
                injected=True,
            )
        self.kernels.run_direct(fn, indices, scalar_env, storage)
        if dies_at is not None:
            # fraction rounded to the chunk end: the worker died right
            # after its last iteration, before reporting completion
            raise WorkerFault(
                "injected worker failure at chunk end",
                completed=len(indices),
                site=SITE_CPU_WORKER,
                injected=True,
            )
        return self.kernels.take_counts(fn)
