"""Chunking helpers for the CPU thread pool and the sharing scheme."""

from __future__ import annotations

from typing import Sequence


def block_partition(indices: Sequence[int], parts: int) -> list[list[int]]:
    """Split an index list into ``parts`` contiguous, near-equal blocks."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    n = len(indices)
    out: list[list[int]] = []
    base, extra = divmod(n, parts)
    pos = 0
    for k in range(parts):
        size = base + (1 if k < extra else 0)
        out.append(list(indices[pos : pos + size]))
        pos += size
    return out


def uniform_chunks(indices: Sequence[int], chunk_size: int) -> list[list[int]]:
    """Split into uniform chunks of ``chunk_size`` (last may be short)."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [
        list(indices[k : k + chunk_size])
        for k in range(0, len(indices), chunk_size)
    ]


def descending(indices: Sequence[int]) -> list[int]:
    """Iteration order for the CPU side of the sharing scheme (the right
    part of the data set is "executed on CPU in a descending order")."""
    return list(reversed(list(indices)))
