"""Exception hierarchy for the Japonica reproduction."""

from __future__ import annotations


class JaponicaError(Exception):
    """Base class for all errors raised by this package."""


class LexError(JaponicaError):
    """Raised when the lexer encounters malformed source text."""


class ParseError(JaponicaError):
    """Raised when the parser encounters a syntactically invalid program."""


class AnnotationError(JaponicaError):
    """Raised when an ``/* acc ... */`` directive is malformed (Table I)."""


class AnalysisError(JaponicaError):
    """Raised when static analysis cannot process a loop nest."""


class TypeCheckError(JaponicaError):
    """Raised on type mismatches while lowering the AST to kernel IR."""


class LoweringError(JaponicaError):
    """Raised when an AST construct cannot be lowered to the kernel IR."""


class DeviceError(JaponicaError):
    """Raised by the GPU simulator on invalid device operations."""


class MemoryFault(DeviceError):
    """Raised on out-of-bounds or unmapped simulated-device memory access."""


class LaunchError(DeviceError):
    """Raised for invalid kernel-launch configurations."""


class SchedulerError(JaponicaError):
    """Raised on invalid scheduling requests (unknown scheme, empty plan...)."""


class SpeculationError(JaponicaError):
    """Raised when the TLS engine is driven through an illegal state."""


class WorkloadError(JaponicaError):
    """Raised by benchmark workloads on invalid parameters."""
