"""Exception hierarchy for the Japonica reproduction."""

from __future__ import annotations


class JaponicaError(Exception):
    """Base class for all errors raised by this package."""


class LexError(JaponicaError):
    """Raised when the lexer encounters malformed source text."""


class ParseError(JaponicaError):
    """Raised when the parser encounters a syntactically invalid program."""


class AnnotationError(JaponicaError):
    """Raised when an ``/* acc ... */`` directive is malformed (Table I)."""


class AnalysisError(JaponicaError):
    """Raised when static analysis cannot process a loop nest."""


class TypeCheckError(JaponicaError):
    """Raised on type mismatches while lowering the AST to kernel IR."""


class LoweringError(JaponicaError):
    """Raised when an AST construct cannot be lowered to the kernel IR."""


class DeviceError(JaponicaError):
    """Raised by the GPU simulator on invalid device operations."""


class MemoryFault(DeviceError):
    """Raised on out-of-bounds or unmapped simulated-device memory access."""


class LaunchError(DeviceError):
    """Raised for invalid kernel-launch configurations."""


class SchedulerError(JaponicaError):
    """Raised on invalid scheduling requests (unknown scheme, empty plan...)."""


class SpeculationError(JaponicaError):
    """Raised when the TLS engine is driven through an illegal state."""


class WorkloadError(JaponicaError):
    """Raised by benchmark workloads on invalid parameters."""


class RuntimeFaultError(JaponicaError):
    """Base of the fault-plane hierarchy: a runtime fault with context.

    ``site`` is the fault-plane probe site that produced the error,
    ``at_s`` the simulated-clock timestamp when it was raised, and
    ``retries`` how many recovery attempts preceded it.  ``injected`` is
    True for errors raised directly by the fault plane (as opposed to
    typed escalations after recovery gave up).
    """

    def __init__(
        self,
        message: str = "",
        site: str = "",
        at_s: float = 0.0,
        retries: int = 0,
        injected: bool = False,
    ):
        super().__init__(message)
        self.site = site
        self.at_s = at_s
        self.retries = retries
        self.injected = injected

    def __str__(self) -> str:  # pragma: no cover - formatting
        base = super().__str__()
        ctx = []
        if self.site:
            ctx.append(f"site={self.site}")
        if self.retries:
            ctx.append(f"retries={self.retries}")
        if self.at_s:
            ctx.append(f"at={self.at_s * 1e3:.3f}ms")
        return f"{base} [{', '.join(ctx)}]" if ctx else base


class LaunchFault(RuntimeFaultError):
    """A kernel launch failed at the device (transient driver fault)."""


class WatchdogTimeout(RuntimeFaultError):
    """A kernel hung; the watchdog killed it after its timeout."""


class TransferError(RuntimeFaultError):
    """A host<->device transfer failed and may be re-issued."""


class DeviceMemoryFault(RuntimeFaultError, MemoryFault):
    """A device allocation-table entry was corrupted (injected)."""


class WorkerFault(RuntimeFaultError):
    """A CPU worker died mid-chunk; ``completed`` iterations finished."""

    def __init__(self, message: str = "", completed: int = 0, **context):
        super().__init__(message, **context)
        self.completed = completed


class UnrecoverableFaultError(RuntimeFaultError):
    """Every rung of the degradation ladder failed; the run is aborted.

    This is the *only* way a fault schedule may surface to the caller:
    either a run commits bit-identical results or it raises this error.
    """


class NativeMismatch(JaponicaError):
    """A native kernel tier diverged from the interpreter oracle.

    Raised only in ``native_crosscheck`` mode, where every promoted
    kernel execution is replayed through the scalar interpreter and the
    two results are compared bitwise (arrays, work counts, per-lane
    totals, speculative lane state, address traces).  The interpreter's
    result always wins; this error names what diverged.
    """


class DeadlineExceeded(JaponicaError):
    """A request's wall-clock budget ran out at a pipeline phase boundary.

    Raised by :meth:`ExecutionContext.check_deadline` *before* a phase
    starts, never mid-phase, so a cancelled run leaves no partial writes
    behind: array state is exactly what the last completed phase left.
    """

    def __init__(self, message: str = "", phase: str = "",
                 budget_s: float = 0.0, overrun_s: float = 0.0):
        super().__init__(message)
        self.phase = phase
        self.budget_s = budget_s
        self.overrun_s = overrun_s


class WorkerDied(JaponicaError):
    """A serve-pool worker died before acknowledging its job.

    The job itself is pure (results travel in-band), so the service may
    retry it on another worker without risking duplicated side effects;
    the ledger still enforces at-most-one settlement per job id.

    Carries the job's identity (``job_id``, ``tenant``, ``trace_id``)
    so a worker-death fault in a log or flight dump is never anonymous:
    the message names exactly whose dispatch was lost.
    """

    def __init__(self, message: str = "", worker: str = "",
                 job_id: str = "", tenant: str = "", trace_id: str = ""):
        super().__init__(message)
        self.worker = worker
        self.job_id = job_id
        self.tenant = tenant
        self.trace_id = trace_id
