"""Deterministic fault-injection plane + resilience layer.

The fault plane injects *simulated* hardware/runtime faults (kernel
launch failures, device hangs, transfer errors, memory-table corruption,
CPU worker failures) at registered probe sites, driven by a seedable
schedule.  The resilience layer consumes those faults: bounded retry
with backoff charged to the simulated clock, a kernel watchdog,
transfer re-issue with allocation-table re-validation, and a graceful
mode-degradation ladder in the schedulers.  Every recovery action is
recorded in a structured :class:`ResilienceReport`.

The correctness contract is an extension of the repo-wide invariant:
under *any* injected fault schedule, an execution either commits
bit-identical arrays to the sequential interpreter or raises a typed
:class:`~repro.errors.UnrecoverableFaultError` — never silent
corruption.  With no schedule installed every hook is a no-op and adds
zero simulated time.
"""

from .plane import SITES, FaultDirective, FaultPlane
from .resilience import (
    FaultRuntime,
    RecoveryEvent,
    ResiliencePolicy,
    ResilienceRecorder,
    ResilienceReport,
    is_recoverable_fault,
    restore_arrays,
    snapshot_arrays,
)
from .schedule import FaultSchedule, SiteRule

__all__ = [
    "SITES",
    "FaultDirective",
    "FaultPlane",
    "FaultRuntime",
    "FaultSchedule",
    "RecoveryEvent",
    "ResiliencePolicy",
    "ResilienceRecorder",
    "ResilienceReport",
    "SiteRule",
    "is_recoverable_fault",
    "restore_arrays",
    "snapshot_arrays",
]
