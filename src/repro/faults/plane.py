"""Fault plane: the site registry and the injector.

Components that can fault probe the plane at named *sites*; the plane
consults its schedule and answers with a :class:`FaultDirective` when a
fault must be injected.  The plane also keeps the ground-truth ledger of
every injected fault (``injected``), which the chaos suite reconciles
against the :class:`~repro.faults.resilience.ResilienceReport` — a fault
the resilience layer failed to observe and account is itself a bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .schedule import FaultSchedule

#: Registered probe sites.
SITE_GPU_LAUNCH = "gpu.launch"      #: kernel launch fails outright
SITE_GPU_HANG = "gpu.hang"          #: kernel hangs; the watchdog kills it
SITE_GPU_MEMORY = "gpu.memory"      #: allocation-table entry corrupted
SITE_TRANSFER_H2D = "transfer.h2d"  #: host->device transfer error
SITE_TRANSFER_D2H = "transfer.d2h"  #: device->host transfer error
SITE_CPU_WORKER = "cpu.worker"      #: CPU worker dies mid-chunk
SITE_SERVE_WORKER = "serve.worker"  #: serve-pool worker dies before ack

SITES = (
    SITE_GPU_LAUNCH,
    SITE_GPU_HANG,
    SITE_GPU_MEMORY,
    SITE_TRANSFER_H2D,
    SITE_TRANSFER_D2H,
    SITE_CPU_WORKER,
    SITE_SERVE_WORKER,
)


@dataclass(frozen=True)
class FaultDirective:
    """One injected fault, as decided by the schedule."""

    site: str
    #: 1-based injection sequence number across the whole plane
    seq: int
    #: 1-based probe index at this site
    probe_index: int
    #: deterministic parameter in [0, 1) (e.g. where in a chunk a worker
    #: dies)
    fraction: float = 0.0
    #: pool device that issued the probe (None = no device context)
    device: Optional[int] = None


class FaultPlane:
    """Injects faults at probe sites according to a schedule."""

    def __init__(self, schedule: Optional[FaultSchedule] = None):
        self.schedule = schedule
        self.injected: list[FaultDirective] = []
        self._probe_counts: dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return self.schedule is not None and bool(self.schedule)

    def probes(self, site: str) -> int:
        """How many times ``site`` has been probed."""
        return self._probe_counts.get(site, 0)

    def probe(
        self, site: str, device: Optional[int] = None
    ) -> Optional[FaultDirective]:
        """One probe of ``site``; returns a directive when a fault fires.

        ``device`` identifies the pool device issuing the probe (when
        any) so device-targeted rules can single it out.  Probe indices
        stay global per site — the deterministic draws of untargeted
        rules are therefore unchanged by device threading.
        """
        if self.schedule is None:
            return None
        n = self._probe_counts.get(site, 0) + 1
        self._probe_counts[site] = n
        fraction = self.schedule.decide(site, n, device)
        if fraction is None:
            return None
        directive = FaultDirective(
            site=site,
            seq=len(self.injected) + 1,
            probe_index=n,
            fraction=fraction,
            device=device,
        )
        self.injected.append(directive)
        return directive
