"""Resilience layer: policy, recovery accounting, and shared helpers.

Recovery from injected faults happens at three levels:

1. **Component level** — the GPU device retries failed launches with
   exponential backoff, the watchdog kills hung kernels, transfers are
   re-issued with allocation-table re-validation, and the CPU executor
   restarts a dead worker's chunk from a pre-chunk snapshot.  All the
   wasted time (backoff, watchdog windows, re-transferred bytes,
   re-executed iterations) is charged to the simulated clock.
2. **Engine level** — the TLS engine relaunches with a smaller sub-loop
   when a speculative kernel keeps faulting.
3. **Scheduler level** — the mode-degradation ladder: a side that keeps
   failing is abandoned and the loop re-runs on the next-safer mode
   (GPU -> CPU-MT -> CPU-sequential), restoring array state from a
   snapshot first so no partial writes survive.

Every fault observed and every recovery action taken is recorded as a
:class:`RecoveryEvent`; the :class:`ResilienceReport` is attached to
execution results and reconciled against the plane's injection ledger by
the chaos suite.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from ..errors import RuntimeFaultError, TransferError, UnrecoverableFaultError
from .plane import FaultPlane
from .schedule import FaultSchedule

#: Event kinds.
KIND_FAULT = "fault"        #: a fault fired at a probe site
KIND_RECOVERY = "recovery"  #: a bounded, same-level recovery action
KIND_DEGRADE = "degrade"    #: a rung change on the degradation ladder


@dataclass
class ResiliencePolicy:
    """Tuning knobs of the resilience layer."""

    #: bounded retries per component-level operation
    max_retries: int = 3
    #: first backoff window (simulated seconds); doubles per retry
    backoff_base_s: float = 2e-5
    backoff_factor: float = 2.0
    #: jitter fraction applied to each backoff window: the window is
    #: scaled by a factor in [1-jitter, 1+jitter), drawn deterministically
    #: from the fault-schedule seed so replays stay bit-identical
    jitter: float = 0.25
    #: how long the watchdog waits before killing a hung kernel
    watchdog_timeout_s: float = 5e-4

    def backoff(self, attempt: int) -> float:
        """Un-jittered exponential backoff window for ``attempt``."""
        return self.backoff_base_s * self.backoff_factor**attempt

    def jittered_backoff(
        self, attempt: int, seed: int, *key: object
    ) -> float:
        """Backoff with seeded jitter: deterministic in (seed, key).

        The draw is keyed off the fault-schedule seed (plus a caller key,
        typically the fault site) so two runs with the same ``--fault-seed``
        charge identical backoff while distinct sites decorrelate.
        """
        base = self.backoff(attempt)
        if self.jitter <= 0:
            return base
        digest = hashlib.sha256(
            repr((seed, "backoff", attempt) + key).encode()
        ).digest()
        u = int.from_bytes(digest[:8], "big") / 2**64
        return base * (1.0 + self.jitter * (2.0 * u - 1.0))


@dataclass(frozen=True)
class RecoveryEvent:
    """One fault observation or recovery action."""

    kind: str  # KIND_FAULT | KIND_RECOVERY | KIND_DEGRADE
    site: str
    action: str
    at_s: float = 0.0
    penalty_s: float = 0.0
    retries: int = 0
    detail: str = ""


@dataclass
class ResilienceReport:
    """Structured account of what the resilience layer did."""

    events: list[RecoveryEvent] = field(default_factory=list)

    @property
    def faults_seen(self) -> int:
        return sum(1 for e in self.events if e.kind == KIND_FAULT)

    @property
    def recoveries(self) -> int:
        return sum(1 for e in self.events if e.kind == KIND_RECOVERY)

    @property
    def degradations(self) -> int:
        return sum(1 for e in self.events if e.kind == KIND_DEGRADE)

    @property
    def penalty_s(self) -> float:
        return sum(e.penalty_s for e in self.events)

    def by_site(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            if e.kind == KIND_FAULT:
                out[e.site] = out.get(e.site, 0) + 1
        return out

    def summary(self) -> str:
        sites = ", ".join(
            f"{site}:{n}" for site, n in sorted(self.by_site().items())
        )
        return (
            f"faults={self.faults_seen} ({sites or 'none'}) "
            f"recoveries={self.recoveries} degradations={self.degradations} "
            f"penalty={self.penalty_s * 1e3:.3f}ms"
        )


class ResilienceRecorder:
    """Accumulates recovery events; supports per-execution slices."""

    def __init__(self):
        self.events: list[RecoveryEvent] = []
        #: best-effort simulated-clock hint, advanced by the schedulers
        self.clock_s: float = 0.0

    def record(
        self,
        kind: str,
        site: str,
        action: str,
        penalty_s: float = 0.0,
        retries: int = 0,
        detail: str = "",
    ) -> RecoveryEvent:
        event = RecoveryEvent(
            kind=kind,
            site=site,
            action=action,
            at_s=self.clock_s,
            penalty_s=penalty_s,
            retries=retries,
            detail=detail,
        )
        self.events.append(event)
        return event

    def mark(self) -> int:
        return len(self.events)

    def report(self, since: int = 0) -> ResilienceReport:
        return ResilienceReport(events=list(self.events[since:]))


@dataclass
class FaultRuntime:
    """The bundle components share: plane + policy + recorder.

    A single instance is created per :class:`ExecutionContext` and handed
    to the GPU device, the device memory, and the CPU executor, so a
    schedule installed mid-flight (``install``) is visible everywhere.
    """

    plane: FaultPlane = field(default_factory=FaultPlane)
    policy: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    recorder: ResilienceRecorder = field(default_factory=ResilienceRecorder)

    @property
    def enabled(self) -> bool:
        return self.plane.enabled

    def install(self, schedule: Optional[FaultSchedule]) -> None:
        """Install a fault schedule (fresh plane + ledger)."""
        self.plane = FaultPlane(schedule)
        self.recorder = ResilienceRecorder()

    # -- probing -----------------------------------------------------------

    def probe(self, site: str, device: Optional[int] = None):
        """Probe a site; record the fault event when one fires.

        The fault event is recorded *here*, co-located with the
        injection, so the report accounts every directive the plane ever
        issued no matter which layer handles (or mishandles) it.
        """
        directive = self.plane.probe(site, device)
        if directive is not None:
            where = "" if device is None else f" d{device}"
            self.recorder.record(
                KIND_FAULT, site, "inject",
                detail=f"probe#{directive.probe_index}{where}",
            )
        return directive

    def recovered(
        self,
        site: str,
        action: str,
        penalty_s: float = 0.0,
        retries: int = 0,
        detail: str = "",
    ) -> None:
        self.recorder.record(
            KIND_RECOVERY, site, action,
            penalty_s=penalty_s, retries=retries, detail=detail,
        )

    def degraded(self, site: str, action: str, detail: str = "") -> None:
        self.recorder.record(KIND_DEGRADE, site, action, detail=detail)

    def backoff_for(self, site: str, attempt: int) -> float:
        """Seeded-jitter backoff window for retry ``attempt`` at ``site``.

        Keyed off the installed fault schedule's seed so a chaos run
        replayed with the same ``--fault-seed`` charges identical
        backoff; with no schedule installed the seed degenerates to 0
        and the windows are still deterministic.
        """
        schedule = self.plane.schedule
        seed = schedule.seed if schedule is not None else 0
        return self.policy.jittered_backoff(attempt, seed, site)

    # -- shared recovery primitives ---------------------------------------

    def charge_transfer(
        self, site: str, nbytes: float, device: Optional[int] = None
    ) -> float:
        """Byte cost of one transfer under injection, with re-issue.

        Returns the total bytes to charge (the nominal amount plus one
        full re-issue per injected transfer error).  Raises
        :class:`TransferError` when the retry budget is exhausted.
        """
        if not self.enabled or nbytes <= 0:
            return nbytes
        total = float(nbytes)
        retries = 0
        while self.probe(site, device) is not None:
            if retries >= self.policy.max_retries:
                raise TransferError(
                    f"transfer at {site} failed after {retries + 1} attempts",
                    site=site,
                    at_s=self.recorder.clock_s,
                    retries=retries + 1,
                )
            total += float(nbytes)
            self.recovered(
                site, "reissue", penalty_s=0.0, retries=retries + 1,
                detail=f"+{nbytes:.0f}B",
            )
            retries += 1
        return total


def is_recoverable_fault(err: BaseException) -> bool:
    """True for typed faults the degradation ladder may absorb."""
    return isinstance(err, RuntimeFaultError) and not isinstance(
        err, UnrecoverableFaultError
    )


def snapshot_arrays(storage, names: Iterable[str]) -> dict[str, np.ndarray]:
    """Copy the named arrays (pre-execution state for rollback)."""
    return {
        name: storage.arrays[name].copy()
        for name in names
        if name in storage.arrays
    }


def restore_arrays(storage, snapshot: dict[str, np.ndarray]) -> None:
    """Roll the named arrays back to their snapshot, in place."""
    for name, saved in snapshot.items():
        np.copyto(storage.arrays[name], saved)
