"""Seedable, deterministic fault schedules.

A schedule is a set of :class:`SiteRule` entries.  Each rule targets a
probe site (or a whole site family by prefix) and fires either
probabilistically (``rate``) or at explicit probe indices (``at``).
Decisions are a pure function of ``(seed, site, probe_index)``: replaying
a run with the same seed and the same probe order injects the identical
faults, which is what makes chaos failures reproducible.

CLI spec grammar (comma-separated entries)::

    SPEC  := ENTRY ("," ENTRY)*
    ENTRY := TARGET ":" RATE        probabilistic, e.g.  gpu.launch:0.01
           | TARGET "@" N ("+" N)*  explicit 1-based probe indices,
                                    e.g.  transfer.h2d@2+5
    TARGET := SITE ["#" DEVICE]     e.g.  gpu.hang#1 targets device 1

``SITE`` may be a full site name or a family prefix (``gpu`` covers
``gpu.launch``, ``gpu.hang`` and ``gpu.memory``; ``transfer`` covers
both directions).  A ``#k`` suffix restricts the rule to probes from
GPU device ``k`` of the device pool; without it the rule covers every
device.  Draws are keyed by ``(seed, site, probe_index)`` only, so
adding device targeting never perturbs the decisions of untargeted
rules.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from ..errors import JaponicaError


@dataclass(frozen=True)
class SiteRule:
    """One injection rule: where and how often to fault.

    ``device`` restricts the rule to probes issued by one GPU device of
    the pool (``None`` = any device, including probes with no device
    context at all).
    """

    site: str
    rate: float = 0.0
    at: frozenset[int] = frozenset()
    device: int | None = None

    def matches(self, site: str, device: int | None = None) -> bool:
        if self.device is not None and device != self.device:
            return False
        return site == self.site or site.startswith(self.site + ".")


class FaultSchedule:
    """Deterministic decision source for the fault plane."""

    def __init__(self, rules: list[SiteRule] | None = None, seed: int = 0):
        self.rules = list(rules or [])
        self.seed = seed

    def __bool__(self) -> bool:
        return any(r.rate > 0 or r.at for r in self.rules)

    def decide(
        self, site: str, probe_index: int, device: int | None = None
    ) -> float | None:
        """Should probe number ``probe_index`` (1-based) of ``site`` fault?

        Returns ``None`` for no fault, else a deterministic fraction in
        [0, 1) that parameterizes the fault (e.g. how far into a chunk a
        worker dies).  ``device`` is the pool device issuing the probe
        (when any); device-targeted rules only fire for their device.
        """
        for rule in self.rules:
            if not rule.matches(site, device):
                continue
            if probe_index in rule.at:
                return self._fraction(site, probe_index)
            if rule.rate > 0:
                u = self._uniform(site, probe_index)
                if u < rule.rate:
                    return u / rule.rate
        return None

    # -- deterministic draws ---------------------------------------------
    # Seeded through a digest, not hash(): str hashes are randomized per
    # process, and the same (seed, spec) must replay identically.

    def _draw(self, *key: object) -> float:
        text = repr((self.seed,) + key).encode()
        digest = hashlib.sha256(text).digest()
        return random.Random(int.from_bytes(digest[:8], "big")).random()

    def _uniform(self, site: str, probe_index: int) -> float:
        return self._draw(site, probe_index)

    def _fraction(self, site: str, probe_index: int) -> float:
        return self._draw(site, probe_index, "frac")

    # -- CLI spec --------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultSchedule":
        """Parse the ``--faults`` CLI grammar into a schedule."""
        from .plane import SITES  # deferred: plane imports this module

        def check_site(site: str) -> str:
            if not any(t == site or t.startswith(site + ".") for t in SITES):
                raise JaponicaError(
                    f"unknown fault site {site!r}; known sites: "
                    + ", ".join(SITES)
                )
            return site

        def split_target(target: str, entry: str) -> tuple[str, int | None]:
            """``site#dev`` -> (site, device); bare sites get device None."""
            site, sep, dev_text = target.partition("#")
            if not sep:
                return check_site(site.strip()), None
            try:
                device = int(dev_text)
            except ValueError:
                raise JaponicaError(
                    f"bad fault spec entry {entry!r}: device must be an "
                    f"integer like 'gpu.hang#1'"
                ) from None
            if device < 0:
                raise JaponicaError(
                    f"bad fault spec entry {entry!r}: device ids are >= 0"
                )
            return check_site(site.strip()), device

        rules: list[SiteRule] = []
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            if "@" in entry:
                target, _, points = entry.partition("@")
                try:
                    at = frozenset(int(p) for p in points.split("+"))
                except ValueError:
                    raise JaponicaError(
                        f"bad fault spec entry {entry!r}: probe indices "
                        f"must be integers like 'site@2+5'"
                    ) from None
                if any(p < 1 for p in at):
                    raise JaponicaError(
                        f"bad fault spec entry {entry!r}: probe indices "
                        f"are 1-based"
                    )
                site, device = split_target(target, entry)
                rules.append(SiteRule(site, at=at, device=device))
            elif ":" in entry:
                target, _, rate_text = entry.partition(":")
                try:
                    rate = float(rate_text)
                except ValueError:
                    raise JaponicaError(
                        f"bad fault spec entry {entry!r}: rate must be a "
                        f"float like 'site:0.01'"
                    ) from None
                if not 0.0 <= rate <= 1.0:
                    raise JaponicaError(
                        f"bad fault spec entry {entry!r}: rate must be "
                        f"in [0, 1]"
                    )
                site, device = split_target(target, entry)
                rules.append(SiteRule(site, rate=rate, device=device))
            else:
                raise JaponicaError(
                    f"bad fault spec entry {entry!r}: expected 'site:rate' "
                    f"or 'site@n+m'"
                )
        return cls(rules, seed=seed)
