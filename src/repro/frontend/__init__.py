"""Alternative frontends that feed the mini-Java middle-end.

The classic frontend is the mini-Java parser in ``repro.lang``; packages
under here lift other program representations (CPython bytecode, for
now) into the same typed AST so classify -> infer -> profile -> schedule
run unchanged.
"""
