"""``@repro.jit``: lift plain Python functions into the Japonica pipeline.

The decorator disassembles a function's code object, recovers structured
control flow from the stack-machine bytecode, and emits a synthetic
mini-Java class that flows through annotation inference, translation,
profiling and scheduling exactly like hand-written source.  Anything the
lifter cannot prove equivalent falls back to the original Python
function with a structured :class:`LiftReport` reason.
"""

from .bytecode import (
    SUPPORTED_BY_VERSION,
    python_version_tag,
    supported_opnames,
)
from .errors import FALLBACK_REASONS, LiftError
from .jit import JitFunction, LiftReport, jit
from .lifter import lift_function

__all__ = [
    "FALLBACK_REASONS",
    "JitFunction",
    "LiftError",
    "LiftReport",
    "SUPPORTED_BY_VERSION",
    "jit",
    "lift_function",
    "python_version_tag",
    "supported_opnames",
]
