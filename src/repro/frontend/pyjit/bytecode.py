"""Version-normalized view of CPython bytecode (3.10 / 3.11 / 3.12).

The lifter never looks at raw opnames: this module rewrites each
supported interpreter's instruction stream into one small canonical
vocabulary (NInstr) so the structural decompiler in ``lifter.py`` is
version-independent.  The per-version supported-opcode tables double as
the committed coverage fixture (`tests/fixtures/jit_opcodes.json`) —
bytecode drift on a Python upgrade fails the drift gate instead of
miscompiling.
"""

from __future__ import annotations

import dis
import sys
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from .errors import LiftError

#: Interpreter versions whose bytecode shapes the lifter understands.
SUPPORTED_VERSIONS = ("3.10", "3.11", "3.12")


def python_version_tag() -> str:
    """``"3.11"``-style tag for the running interpreter."""
    return f"{sys.version_info[0]}.{sys.version_info[1]}"


# --------------------------------------------------------------------------
# Canonical instruction model
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class NInstr:
    """One canonical instruction.

    op is one of: LOAD_CONST LOAD_FAST STORE_FAST LOAD_GLOBAL LOAD_ATTR
    BINOP UNARY COMPARE SUBSCR STORE_SUBSCR BUILD_TUPLE GET_ITER
    FOR_ITER JUMP PJIF PJIT CALL RETURN POP_TOP COPY SWAP ROT NOP
    END_FOR.

    ``arg`` meaning by op: operator symbol (BINOP/UNARY/COMPARE), name
    (loads/stores), element/argument count (BUILD_TUPLE/CALL), depth
    (COPY/SWAP/ROT), constant value (LOAD_CONST, RETURN with inline
    const).  ``target`` is a bytecode offset for jumps/FOR_ITER.
    ``flag`` is True when a LOAD_GLOBAL/LOAD_ATTR also pushes a NULL
    (3.11+ call convention) and when a CALL must pop that NULL pad.
    """

    op: str
    arg: object = None
    target: Optional[int] = None
    flag: bool = False
    offset: int = 0
    lineno: Optional[int] = None


#: NB_* numeric codes of BINARY_OP (3.11+) -> operator symbol.  The
#: inplace variants are the same table shifted by 13.
_NB_SYMBOL = {
    0: "+", 1: "&", 2: "//", 3: "<<", 4: "@", 5: "*", 6: "%",
    7: "|", 8: "**", 9: ">>", 10: "-", 11: "/", 12: "^",
}

#: 3.10 dedicated binary/inplace opcodes -> operator symbol.
_LEGACY_BINOP = {
    "BINARY_ADD": "+", "BINARY_SUBTRACT": "-", "BINARY_MULTIPLY": "*",
    "BINARY_TRUE_DIVIDE": "/", "BINARY_FLOOR_DIVIDE": "//",
    "BINARY_MODULO": "%", "BINARY_POWER": "**", "BINARY_LSHIFT": "<<",
    "BINARY_RSHIFT": ">>", "BINARY_AND": "&", "BINARY_OR": "|",
    "BINARY_XOR": "^", "BINARY_MATRIX_MULTIPLY": "@",
    "INPLACE_ADD": "+", "INPLACE_SUBTRACT": "-", "INPLACE_MULTIPLY": "*",
    "INPLACE_TRUE_DIVIDE": "/", "INPLACE_FLOOR_DIVIDE": "//",
    "INPLACE_MODULO": "%", "INPLACE_POWER": "**", "INPLACE_LSHIFT": "<<",
    "INPLACE_RSHIFT": ">>", "INPLACE_AND": "&", "INPLACE_OR": "|",
    "INPLACE_XOR": "^", "INPLACE_MATRIX_MULTIPLY": "@",
}

_UNARY = {
    "UNARY_NEGATIVE": "-", "UNARY_NOT": "!", "UNARY_INVERT": "~",
    "UNARY_POSITIVE": "+",
}

#: Exact raw opnames each interpreter may emit for liftable functions.
#: This is the committed coverage surface: anything outside the running
#: version's set is an `unsupported-opcode` fallback, and the fixture
#: drift gate pins these sets byte-for-byte.
SUPPORTED_BY_VERSION: Dict[str, Tuple[str, ...]] = {
    "3.10": tuple(sorted(
        {
            "LOAD_CONST", "LOAD_FAST", "STORE_FAST", "LOAD_GLOBAL",
            "LOAD_ATTR", "LOAD_METHOD", "CALL_FUNCTION", "CALL_METHOD",
            "COMPARE_OP", "BINARY_SUBSCR", "STORE_SUBSCR", "BUILD_TUPLE",
            "GET_ITER", "FOR_ITER", "JUMP_FORWARD", "JUMP_ABSOLUTE",
            "POP_JUMP_IF_FALSE", "POP_JUMP_IF_TRUE", "RETURN_VALUE",
            "POP_TOP", "NOP", "DUP_TOP", "DUP_TOP_TWO", "ROT_TWO",
            "ROT_THREE", "ROT_FOUR",
            "UNARY_NEGATIVE", "UNARY_POSITIVE", "UNARY_NOT",
            "UNARY_INVERT",
        }
        | set(_LEGACY_BINOP)
    )),
    "3.11": tuple(sorted({
        "RESUME", "PUSH_NULL", "PRECALL", "CALL",
        "LOAD_CONST", "LOAD_FAST", "STORE_FAST", "LOAD_GLOBAL",
        "LOAD_ATTR", "LOAD_METHOD", "BINARY_OP", "COMPARE_OP",
        "UNARY_NEGATIVE", "UNARY_POSITIVE", "UNARY_NOT", "UNARY_INVERT",
        "BINARY_SUBSCR", "STORE_SUBSCR", "BUILD_TUPLE", "GET_ITER",
        "FOR_ITER", "JUMP_FORWARD", "JUMP_BACKWARD",
        "JUMP_BACKWARD_NO_INTERRUPT",
        "POP_JUMP_FORWARD_IF_FALSE", "POP_JUMP_FORWARD_IF_TRUE",
        "POP_JUMP_BACKWARD_IF_FALSE", "POP_JUMP_BACKWARD_IF_TRUE",
        "RETURN_VALUE", "POP_TOP", "NOP", "COPY", "SWAP", "CACHE",
    })),
    "3.12": tuple(sorted({
        "RESUME", "PUSH_NULL", "CALL",
        "LOAD_CONST", "LOAD_FAST", "LOAD_FAST_CHECK",
        "LOAD_FAST_AND_CLEAR", "STORE_FAST", "LOAD_GLOBAL", "LOAD_ATTR",
        "BINARY_OP", "COMPARE_OP",
        "UNARY_NEGATIVE", "UNARY_NOT", "UNARY_INVERT",
        "CALL_INTRINSIC_1",
        "BINARY_SUBSCR", "STORE_SUBSCR", "BUILD_TUPLE", "GET_ITER",
        "FOR_ITER", "END_FOR", "JUMP_FORWARD", "JUMP_BACKWARD",
        "JUMP_BACKWARD_NO_INTERRUPT",
        "POP_JUMP_IF_FALSE", "POP_JUMP_IF_TRUE",
        "RETURN_VALUE", "RETURN_CONST", "POP_TOP", "NOP", "COPY",
        "SWAP", "CACHE",
    })),
}


def supported_opnames(version: Optional[str] = None) -> Tuple[str, ...]:
    """Supported raw opnames for ``version`` (default: running one)."""
    tag = version or python_version_tag()
    if tag not in SUPPORTED_BY_VERSION:
        raise LiftError("python-version", f"Python {tag} bytecode is not supported")
    return SUPPORTED_BY_VERSION[tag]


#: Raw opnames dropped during normalization (no stack/control effect we
#: model; CACHE entries are already hidden by dis).
_DROP = {"RESUME", "PRECALL", "CACHE", "NOP"}

#: Unconditional jumps by version (direction normalized via offsets).
_UNCOND_JUMPS = {
    "JUMP_FORWARD", "JUMP_ABSOLUTE", "JUMP_BACKWARD",
    "JUMP_BACKWARD_NO_INTERRUPT",
}

_COND_FALSE = {
    "POP_JUMP_IF_FALSE", "POP_JUMP_FORWARD_IF_FALSE",
    "POP_JUMP_BACKWARD_IF_FALSE",
}
_COND_TRUE = {
    "POP_JUMP_IF_TRUE", "POP_JUMP_FORWARD_IF_TRUE",
    "POP_JUMP_BACKWARD_IF_TRUE",
}

#: CALL_INTRINSIC_1 operand for INTRINSIC_UNARY_POSITIVE (3.12).
_INTRINSIC_UNARY_POSITIVE = 5


def normalize(code, version: Optional[str] = None) -> List[NInstr]:
    """Disassemble ``code`` and rewrite it into canonical NInstr form.

    Raises LiftError("unsupported-opcode") on any raw opname outside the
    version's supported set, LiftError("python-version") off-matrix.
    """
    tag = version or python_version_tag()
    allowed = set(supported_opnames(tag))
    out: List[NInstr] = []
    pending_null = 0  # PUSH_NULL instructions awaiting their load

    for ins in dis.get_instructions(code):
        name = ins.opname
        if name not in allowed:
            raise LiftError("unsupported-opcode", f"{name} (offset {ins.offset})")
        if name in _DROP:
            continue
        off, line = ins.offset, ins.starts_line
        if name == "PUSH_NULL":
            pending_null += 1
            continue

        if name == "LOAD_CONST":
            out.append(NInstr("LOAD_CONST", ins.argval, offset=off, lineno=line))
        elif name in ("LOAD_FAST", "LOAD_FAST_CHECK", "LOAD_FAST_AND_CLEAR"):
            out.append(NInstr("LOAD_FAST", ins.argval, offset=off, lineno=line))
        elif name == "STORE_FAST":
            out.append(NInstr("STORE_FAST", ins.argval, offset=off, lineno=line))
        elif name == "LOAD_GLOBAL":
            null = pending_null > 0
            if null:
                pending_null -= 1
            if tag in ("3.11", "3.12") and ins.arg is not None and ins.arg & 1:
                null = True
            out.append(NInstr("LOAD_GLOBAL", ins.argval, flag=null,
                              offset=off, lineno=line))
        elif name == "LOAD_METHOD":
            out.append(NInstr("LOAD_ATTR", ins.argval, flag=True,
                              offset=off, lineno=line))
        elif name == "LOAD_ATTR":
            null = bool(tag == "3.12" and ins.arg is not None and ins.arg & 1)
            out.append(NInstr("LOAD_ATTR", ins.argval, flag=null,
                              offset=off, lineno=line))
        elif name == "BINARY_OP":
            nb = ins.arg if ins.arg < 13 else ins.arg - 13
            sym = _NB_SYMBOL.get(nb)
            if sym is None or sym == "@":
                raise LiftError("unsupported-opcode", f"BINARY_OP {ins.argrepr}")
            out.append(NInstr("BINOP", sym, offset=off, lineno=line))
        elif name in _LEGACY_BINOP:
            sym = _LEGACY_BINOP[name]
            if sym == "@":
                raise LiftError("unsupported-opcode", name)
            out.append(NInstr("BINOP", sym, offset=off, lineno=line))
        elif name in _UNARY:
            out.append(NInstr("UNARY", _UNARY[name], offset=off, lineno=line))
        elif name == "CALL_INTRINSIC_1":
            if ins.arg == _INTRINSIC_UNARY_POSITIVE:
                out.append(NInstr("UNARY", "+", offset=off, lineno=line))
            else:
                raise LiftError("unsupported-opcode",
                                f"CALL_INTRINSIC_1 {ins.argrepr}")
        elif name == "COMPARE_OP":
            sym = ins.argval
            if not isinstance(sym, str):
                sym = str(ins.argrepr)
            if sym not in ("<", "<=", ">", ">=", "==", "!="):
                raise LiftError("unsupported-opcode", f"COMPARE_OP {sym}")
            out.append(NInstr("COMPARE", sym, offset=off, lineno=line))
        elif name == "BINARY_SUBSCR":
            out.append(NInstr("SUBSCR", offset=off, lineno=line))
        elif name == "STORE_SUBSCR":
            out.append(NInstr("STORE_SUBSCR", offset=off, lineno=line))
        elif name == "BUILD_TUPLE":
            out.append(NInstr("BUILD_TUPLE", ins.arg, offset=off, lineno=line))
        elif name == "GET_ITER":
            out.append(NInstr("GET_ITER", offset=off, lineno=line))
        elif name == "FOR_ITER":
            out.append(NInstr("FOR_ITER", target=ins.argval,
                              offset=off, lineno=line))
        elif name == "END_FOR":
            out.append(NInstr("END_FOR", offset=off, lineno=line))
        elif name in _UNCOND_JUMPS:
            out.append(NInstr("JUMP", target=ins.argval, offset=off, lineno=line))
        elif name in _COND_FALSE:
            out.append(NInstr("PJIF", target=ins.argval, offset=off, lineno=line))
        elif name in _COND_TRUE:
            out.append(NInstr("PJIT", target=ins.argval, offset=off, lineno=line))
        elif name in ("CALL_FUNCTION", "CALL", "CALL_METHOD"):
            pad = name in ("CALL", "CALL_METHOD")
            out.append(NInstr("CALL", ins.arg, flag=pad, offset=off, lineno=line))
        elif name == "RETURN_VALUE":
            out.append(NInstr("RETURN", offset=off, lineno=line))
        elif name == "RETURN_CONST":
            out.append(NInstr("LOAD_CONST", ins.argval, offset=off, lineno=line))
            out.append(NInstr("RETURN", offset=off, lineno=line))
        elif name == "POP_TOP":
            out.append(NInstr("POP_TOP", offset=off, lineno=line))
        elif name == "COPY":
            out.append(NInstr("COPY", ins.arg, offset=off, lineno=line))
        elif name == "SWAP":
            out.append(NInstr("SWAP", ins.arg, offset=off, lineno=line))
        elif name == "DUP_TOP":
            out.append(NInstr("COPY", 1, offset=off, lineno=line))
        elif name == "DUP_TOP_TWO":
            out.append(NInstr("COPY", 2, offset=off, lineno=line))
            out.append(NInstr("COPY", 2, offset=off, lineno=line))
        elif name == "ROT_TWO":
            out.append(NInstr("SWAP", 2, offset=off, lineno=line))
        elif name == "ROT_THREE":
            out.append(NInstr("ROT", 3, offset=off, lineno=line))
        elif name == "ROT_FOUR":
            out.append(NInstr("ROT", 4, offset=off, lineno=line))
        else:  # pragma: no cover - the allowed set above is exhaustive
            raise LiftError("unsupported-opcode", name)

    if pending_null:
        raise LiftError("stack-imbalance", "unconsumed PUSH_NULL")
    return _dedup_none_tails(out)


def _dedup_none_tails(instrs: List[NInstr]) -> List[NInstr]:
    """Merge a trailing run of duplicated ``return None`` epilogues.

    CPython duplicates ``LOAD_CONST None; RETURN`` once per exit path
    (if-false edge, loop exhaustion, ...), which breaks the nesting of
    index regions the structural lifter relies on.  Keeping only the
    first trailing pair and retargeting every jump into the dropped ones
    restores a single function epilogue.
    """
    k = len(instrs)
    while (
        k >= 2
        and instrs[k - 1].op == "RETURN"
        and instrs[k - 2].op == "LOAD_CONST"
        and instrs[k - 2].arg is None
    ):
        k -= 2
    first = k  # index of the first trailing pair's LOAD_CONST
    if first + 2 >= len(instrs):
        return instrs
    keep_off = instrs[first].offset
    cut_off = instrs[first + 2].offset
    kept = instrs[: first + 2]
    return [
        replace(ins, target=keep_off)
        if ins.target is not None and ins.target >= cut_off
        else ins
        for ins in kept
    ]


def index_by_offset(instrs: List[NInstr]) -> Dict[int, int]:
    """Map bytecode offset -> index in the canonical stream.

    Jump targets may land on dropped instructions (RESUME/CACHE/NOP);
    those resolve to the next surviving instruction, so the map is built
    from the canonical list plus a fill pass handled by the caller via
    :func:`resolve_target`.
    """
    return {ins.offset: i for i, ins in enumerate(instrs)}


def resolve_target(instrs: List[NInstr], off2idx: Dict[int, int],
                   target: int) -> int:
    """Index of the instruction at bytecode offset ``target``.

    Falls forward to the next canonical instruction when the exact
    offset was normalized away; ``len(instrs)`` when the target is past
    the end of the stream.
    """
    if target in off2idx:
        return off2idx[target]
    for i, ins in enumerate(instrs):
        if ins.offset >= target:
            return i
    return len(instrs)
