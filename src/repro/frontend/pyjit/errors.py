"""Structured lift failure: every fallback carries a stable reason code.

The reason codes are part of the ``@repro.jit`` contract — the
differential suite asserts that fallback *decisions* (not just results)
are deterministic, and the coverage fixture pins the taxonomy so a new
code path cannot silently invent an undocumented reason.
"""

from __future__ import annotations

#: Every reason a function (or one specialization of it) may decline the
#: jit path.  Codes are stable identifiers; ``LiftReport.reason`` is
#: always one of these (or None when lifted).
FALLBACK_REASONS = frozenset(
    {
        "analysis-error",        # middle-end rejected the lifted AST
        "array-alias",           # whole-array assignment creates an alias
        "complex-condition",     # boolean operators beyond and/or chains
        "disabled",              # jit disabled via option/environment
        "early-return",          # return before the function tail
        "generator",             # generator/coroutine/async code object
        "closure",               # free/cell variables captured
        "varargs",               # *args/**kwargs/kw-only parameters
        "inexact-intrinsic",     # numpy ufunc not bit-identical to libm
        "irreducible-control-flow",  # jump structure we cannot re-nest
        "loop-var-escapes",      # loop counter read after its loop
        "mixed-types",           # no Java type joins the operand types
        "nonbool-condition",     # truthiness test on a non-boolean
        "no-parallel-loops",     # lifted fine but nothing to offload
        "pow-operator",          # ** has no bit-exact Java counterpart
        "float-floordiv",        # // on floats (math.floor of a quotient)
        "float-mod",             # % on floats (sign-adjust can re-round)
        "bound-mutated",         # range() bound reassigned inside the loop
        "index-assigned",        # loop counter reassigned inside the body
        "python-version",        # interpreter outside the 3.10-3.12 set
        "shift-on-float",        # << / >> on non-integral operands
        "stack-imbalance",       # leftover operands at a region boundary
        "unsupported-argument",  # call-site value has no Java type
        "unsupported-call",      # call target outside the intrinsic set
        "unsupported-constant",  # constant with no mini-Java literal
        "unsupported-global",    # global other than range/len/math/...
        "unsupported-opcode",    # opcode outside the supported set
        "unsupported-subscript", # subscript shape we cannot type
        "use-before-def",        # local read before any assignment
        "while-loop",            # while loops are not lifted (host-only)
        "opaque-store",          # STORE_FAST of a non-liftable value
        "dynamic-step",          # range() step not a positive constant
    }
)


class LiftError(Exception):
    """Raised internally when a function cannot be lifted.

    Carries a machine-readable ``code`` (member of FALLBACK_REASONS) and
    a human ``detail``; the decorator converts it into a fallback, never
    into a user-visible exception.
    """

    def __init__(self, code: str, detail: str = ""):
        assert code in FALLBACK_REASONS, f"unknown lift reason: {code}"
        self.code = code
        self.detail = detail
        super().__init__(f"{code}: {detail}" if detail else code)
