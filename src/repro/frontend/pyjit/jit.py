"""The ``@repro.jit`` decorator: Python functions on the Japonica pipeline.

Per call-site type signature, the function's bytecode is lifted once
(lifter + typing), pushed through annotation inference and translation,
and cached as a :class:`_Specialization`; later calls with the same
signature reuse it.  Any :class:`LiftError` converts the specialization
into a *permanent, deterministic* fallback to the original function —
same inputs, same decision, every run — recorded as a
:class:`LiftReport`.

Observability rides the host plane (``jit.lift.*`` counters, ``jit``
span category) and is filtered from insight reports like the PR-8
``kernel.*`` metrics: whether a function was jitted is not simulated
behavior.
"""

from __future__ import annotations

import hashlib
import inspect
import os
import sys
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ...errors import JaponicaError
from ...lang import ast_nodes as A
from .bytecode import SUPPORTED_VERSIONS, python_version_tag
from .errors import LiftError
from .lifter import RET_NAME, check_code_shape, lift_function
from .typing import build_class, java_type_of_value, signature_tag

#: Span category / metric prefix of the lift plane (host-side, filtered
#: from insight reports).
JIT_SPAN_CATEGORY = "jit"


def code_fingerprint(fn) -> str:
    """Stable fingerprint of a function's bytecode + Python version.

    Opcodes differ across 3.10–3.12, so the version tag is part of the
    identity: an interpreter upgrade misses the artifact cache instead
    of replaying a lift produced from different bytecode.
    """
    code = fn.__code__
    h = hashlib.sha256()
    h.update(f"pyjit/{python_version_tag()}\n".encode())
    h.update(code.co_code)
    h.update(repr((
        code.co_consts,
        code.co_names,
        code.co_varnames,
        code.co_argcount,
        code.co_flags & 0x2AC,  # generator/coroutine/varargs bits
    )).encode())
    return h.hexdigest()


@dataclass
class LiftReport:
    """What happened when one signature of one function was lifted."""

    function: str
    lifted: bool
    reason: Optional[str] = None       # FALLBACK_REASONS code, or None
    detail: str = ""
    signature: str = ""
    python_version: str = ""
    fingerprint: str = ""
    loops_total: int = 0
    loops_annotated: int = 0
    cache_hit: bool = False

    def decision(self) -> tuple:
        """The repeat-determinism contract: what must never vary."""
        return (self.function, self.lifted, self.reason, self.signature)


@dataclass
class _Specialization:
    ok: bool
    report: LiftReport
    program: object = None             # CompiledProgram when ok
    method: str = ""
    ret_type: Optional[A.PrimType] = None
    array_params: list = field(default_factory=list)


class JitFunction:
    """Callable wrapper produced by :func:`jit`."""

    def __init__(
        self,
        fn,
        japonica=None,
        strategy: str = "japonica",
        scheme: Optional[str] = None,
        devices: Optional[int] = None,
        enabled: bool = True,
    ):
        self._fn = fn
        self._japonica = japonica
        self._strategy = strategy
        self._scheme = scheme
        self._devices = devices
        self._enabled = enabled and os.environ.get("REPRO_JIT_DISABLE") != "1"
        self._signature = inspect.signature(fn)
        self._fingerprint = code_fingerprint(fn)
        self._specs: dict[str, _Specialization] = {}
        self.last_report: Optional[LiftReport] = None
        self.last_result = None  # ProgramResult of the last jitted call
        self.__name__ = fn.__name__
        self.__doc__ = fn.__doc__
        self.__wrapped__ = fn

    # -- lazy Japonica (decorating must work without one) -----------------

    def _engine(self):
        if self._japonica is None:
            from ...api import Japonica

            self._japonica = Japonica()
        return self._japonica

    # -- specialization ----------------------------------------------------

    def specialize(self, *args, **kwargs) -> LiftReport:
        """Lift + compile for these argument types without executing."""
        bound = self._signature.bind(*args, **kwargs)
        bound.apply_defaults()
        return self._specialization(bound.arguments).report

    def _specialization(self, arguments) -> _Specialization:
        try:
            check_code_shape(self._fn)
            params = [
                (name, java_type_of_value(value))
                for name, value in arguments.items()
            ]
            sig = signature_tag(params)
        except LiftError as err:
            # untypeable arguments: key the decision on the value types
            sig = "untypeable:" + ",".join(
                type(v).__name__ for v in arguments.values()
            )
            spec = self._specs.get(sig)
            if spec is None:
                spec = self._fallback_spec(sig, err)
                self._specs[sig] = spec
            return spec
        spec = self._specs.get(sig)
        if spec is None:
            spec = self._compile_spec(params, sig)
            self._specs[sig] = spec
        return spec

    def _fallback_spec(self, sig: str, err: LiftError) -> _Specialization:
        eng = self._engine()
        eng.obs.metrics.counter("jit.lift.fallback").inc()
        eng.obs.metrics.counter(f"jit.lift.fallback.{err.code}").inc()
        return _Specialization(
            ok=False,
            report=LiftReport(
                function=self._fn.__name__,
                lifted=False,
                reason=err.code,
                detail=err.detail,
                signature=sig,
                python_version=python_version_tag(),
                fingerprint=self._fingerprint,
            ),
        )

    def _compile_spec(self, params, sig: str) -> _Specialization:
        eng = self._engine()
        name = self._fn.__name__
        if not self._enabled:
            return self._fallback_spec(sig, LiftError("disabled", name))
        if python_version_tag() not in SUPPORTED_VERSIONS:
            return self._fallback_spec(
                sig, LiftError("python-version", sys.version.split()[0])
            )
        cache = eng.cache
        key = None
        cached = None
        if cache is not None:
            from ...cache.artifacts import jit_unit_key

            key = jit_unit_key(self._fingerprint, sig, eng._cpu_threads)
            cached = cache.get(key, "unit", obs=eng.obs)
        with eng.obs.tracer.span(
            f"jit.lift:{name}", JIT_SPAN_CATEGORY, signature=sig
        ):
            try:
                if cached is not None:
                    unit, inference, ret_t, n_loops = cached
                    eng.obs.metrics.counter("jit.lift.cache_hit").inc()
                else:
                    lifted = lift_function(self._fn)
                    cls, ret_t = build_class(name, params, lifted)
                    n_loops = lifted.n_loops
                    from ...analysis.infer import infer_class
                    from ...translate.translator import Translator

                    inference = infer_class(cls)
                    # a host-plane translator: lifting is not simulated
                    # behavior, so its analyze/translate spans and the
                    # translate.loops counter must stay out of reports
                    unit = Translator(
                        cpu_threads=eng.translator.cpu_threads
                    ).translate(cls)
                    if key is not None:
                        cache.put(key, (unit, inference, ret_t, n_loops))
                if not unit.methods:
                    raise LiftError(
                        "no-parallel-loops",
                        "no loop was annotated by inference",
                    )
            except LiftError as err:
                spec = self._fallback_spec(sig, err)
                spec.report.loops_total = getattr(err, "n_loops", 0)
                spec.report.cache_hit = cached is not None
                return spec
            except JaponicaError as err:
                spec = self._fallback_spec(sig, LiftError("analysis-error", str(err)))
                spec.report.cache_hit = cached is not None
                return spec

        from ...api import CompiledProgram

        program = CompiledProgram(
            unit,
            eng.platform,
            eng.config,
            obs=eng.obs,
            cache=eng.cache,
            inference=inference,
        )
        eng.obs.metrics.counter("jit.lift.ok").inc()
        eng.obs.metrics.counter("jit.lift.loops").inc(
            sum(len(mt.loops) for mt in unit.methods.values())
        )
        report = LiftReport(
            function=name,
            lifted=True,
            signature=sig,
            python_version=python_version_tag(),
            fingerprint=self._fingerprint,
            loops_total=n_loops,
            loops_annotated=sum(len(mt.loops) for mt in unit.methods.values()),
            cache_hit=cached is not None,
        )
        return _Specialization(
            ok=True,
            report=report,
            program=program,
            method=name,
            ret_type=ret_t,
            array_params=[n for n, t in params if isinstance(t, A.ArrayType)],
        )

    # -- call --------------------------------------------------------------

    def __call__(self, *args, **kwargs):
        bound = self._signature.bind(*args, **kwargs)
        bound.apply_defaults()
        spec = self._specialization(bound.arguments)
        self.last_report = spec.report
        eng = self._engine()
        if not spec.ok:
            eng.obs.metrics.counter("jit.call.fallback").inc()
            return self._fn(*args, **kwargs)
        eng.obs.metrics.counter("jit.call.jit").inc()
        try:
            result = spec.program.run(
                spec.method,
                strategy=self._strategy,
                scheme=self._scheme,
                devices=self._devices,
                **dict(bound.arguments),
            )
        except JaponicaError:
            # value-dependent runtime rejection (the lift itself was
            # sound).  ``run`` works on copies, so nothing was mutated:
            # the plain function on the untouched arguments is safe.
            eng.obs.metrics.counter("jit.call.runtime_fallback").inc()
            return self._fn(*args, **kwargs)
        self.last_result = result
        # arrays are in/out: mirror Python's in-place mutation semantics
        for pname in spec.array_params:
            dest = bound.arguments[pname]
            np.copyto(dest, result.arrays[pname], casting="no")
        if spec.ret_type is not None:
            return result.scalars.get(RET_NAME)
        return None


def jit(
    fn=None,
    *,
    japonica=None,
    strategy: str = "japonica",
    scheme: Optional[str] = None,
    devices: Optional[int] = None,
    enabled: bool = True,
):
    """Decorate a plain Python function for the Japonica pipeline.

    Usable bare (``@repro.jit``) or configured
    (``@repro.jit(devices=4)``).  The wrapped function behaves exactly
    like the original: lifted loops run through classify -> infer ->
    profile -> schedule, argument arrays are mutated in place, a tail
    ``return`` value is returned; anything unliftable falls back to the
    original function (see ``fn.last_report.reason``).
    """
    def wrap(f):
        return JitFunction(
            f,
            japonica=japonica,
            strategy=strategy,
            scheme=scheme,
            devices=devices,
            enabled=enabled,
        )

    if fn is not None:
        return wrap(fn)
    return wrap
