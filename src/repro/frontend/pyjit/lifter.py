"""Structural decompiler: canonical bytecode -> mini-Java statements.

The lifter is a recursive-descent parser over the normalized instruction
stream (``bytecode.normalize``): it simulates the value stack with AST
expression fragments and re-nests control flow by following the exact
jump shapes CPython emits for ``for range(...)`` loops, ``if``/``else``
chains and ``and``/``or`` conditions.  Anything outside those shapes
raises :class:`LiftError` with a stable reason code — the decorator
turns that into a fallback, never a crash.

The output is *untyped* mini-Java (markers like ``/t`` for Python true
division survive in ``Binary.op``); ``typing.py`` resolves types against
the call-site signature and rewrites the markers into exact Java
equivalents.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ...lang import ast_nodes as A
from ...lang.tokens import Pos
from .bytecode import NInstr, index_by_offset, normalize, resolve_target
from .errors import LiftError

#: Synthetic scalar holding a tail ``return <expr>`` value.
RET_NAME = "_jit_ret"

#: Globals a liftable function may reference.
_SUPPORTED_GLOBALS = {"range", "len", "math", "abs", "min", "max", "int", "float"}

#: ``math.<name>`` -> intrinsic (floor/ceil handled separately: Python
#: returns an int where Java returns a double, so they lift as a cast).
#: Only bitwise-safe intrinsics lift: the vectorized kernel tier
#: evaluates through numpy ufuncs, and numpy's exp/log/tan/pow are not
#: bit-identical to the ``math`` module's libm calls, which would break
#: the differential oracle.  Those fall back as ``inexact-intrinsic``.
_MATH_INTRINSICS = {
    "sqrt": "Math.sqrt",
    "sin": "Math.sin",
    "cos": "Math.cos",
    "fabs": "Math.abs",
}

# Opaque stack markers (never valid as mini-Java expressions).


class _Marker:
    pass


class _GlobalVal(_Marker):
    def __init__(self, name: str):
        self.name = name


class _MathFn(_Marker):
    def __init__(self, name: str):
        self.name = name


class _ShapeVal(_Marker):
    def __init__(self, var: A.VarRef):
        self.var = var


class _RangeVal(_Marker):
    def __init__(self, args: list):
        self.args = args


class _NoneVal(_Marker):
    pass


class _ConstTuple(_Marker):
    def __init__(self, values: tuple):
        self.values = values


class _TupleIdx(_Marker):
    def __init__(self, items: list):
        self.items = items


_INT32_MIN, _INT32_MAX = -(2**31), 2**31 - 1
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1

#: Expression-only canonical ops handled by :meth:`_Lifter._step`.
_EXPR_OPS = frozenset({
    "LOAD_CONST", "LOAD_FAST", "LOAD_GLOBAL", "LOAD_ATTR", "BINOP",
    "UNARY", "COMPARE", "SUBSCR", "BUILD_TUPLE", "CALL", "COPY",
    "SWAP", "ROT",
})


@dataclass
class LiftedBody:
    """Untyped lift result for one function body."""

    stmts: List[A.Stmt]
    has_ret: bool
    loop_vars: Set[str] = field(default_factory=set)
    n_loops: int = 0


def _pos(ins: Optional[NInstr]) -> Pos:
    line = ins.lineno if ins is not None and ins.lineno else 0
    return Pos(line or 0, 0)


class _Lifter:
    def __init__(self, instrs: List[NInstr]):
        self.instrs = instrs
        self.off2idx = index_by_offset(instrs)
        self.has_ret = False
        self.loop_vars: Set[str] = set()
        self.active_vars: List[str] = []  # counters of enclosing loops
        self.n_loops = 0

    # -- stack helpers ---------------------------------------------------

    def _pop(self, stack: list, ins: NInstr):
        if not stack:
            raise LiftError("stack-imbalance", f"pop on empty stack at {ins.op}")
        return stack.pop()

    def _pop_expr(self, stack: list, ins: NInstr) -> A.Expr:
        v = self._pop(stack, ins)
        if isinstance(v, _Marker):
            raise LiftError(
                "opaque-store", f"{type(v).__name__} used as a value at {ins.op}"
            )
        return v

    # -- expression simulation -------------------------------------------

    def _step(self, ins: NInstr, stack: list) -> None:
        """Apply one expression op to the simulated stack."""
        op = ins.op
        p = _pos(ins)
        if op == "LOAD_CONST":
            stack.append(self._const(ins.arg, p))
        elif op == "LOAD_FAST":
            stack.append(A.VarRef(p, ins.arg))
        elif op == "LOAD_GLOBAL":
            name = ins.arg
            if name not in _SUPPORTED_GLOBALS:
                raise LiftError("unsupported-global", repr(name))
            stack.append(_GlobalVal(name))
        elif op == "LOAD_ATTR":
            base = self._pop(stack, ins)
            if isinstance(base, _GlobalVal) and base.name == "math":
                stack.append(_MathFn(ins.arg))
            elif isinstance(base, A.VarRef) and ins.arg == "shape":
                stack.append(_ShapeVal(base))
            else:
                raise LiftError("unsupported-global", f"attribute {ins.arg!r}")
        elif op == "BINOP":
            r = self._pop_expr(stack, ins)
            l = self._pop_expr(stack, ins)
            stack.append(self._binop(ins.arg, l, r, p))
        elif op == "UNARY":
            v = self._pop_expr(stack, ins)
            stack.append(v if ins.arg == "+" else A.Unary(p, ins.arg, v))
        elif op == "COMPARE":
            r = self._pop_expr(stack, ins)
            l = self._pop_expr(stack, ins)
            stack.append(A.Binary(p, ins.arg, l, r))
        elif op == "SUBSCR":
            idx = self._pop(stack, ins)
            base = self._pop(stack, ins)
            stack.append(self._subscript(base, idx, p))
        elif op == "BUILD_TUPLE":
            n = ins.arg
            if n < 1 or n > 2:
                raise LiftError("unsupported-subscript", f"{n}-tuple")
            items = [self._pop_expr(stack, ins) for _ in range(n)][::-1]
            stack.append(_TupleIdx(items))
        elif op == "CALL":
            argc = ins.arg
            args = [self._pop(stack, ins) for _ in range(argc)][::-1]
            fn = self._pop(stack, ins)
            stack.append(self._call(fn, args, p))
        elif op == "COPY":
            k = ins.arg
            if k < 1 or k > len(stack):
                raise LiftError("stack-imbalance", f"COPY {k}")
            stack.append(copy.deepcopy(stack[-k]))
        elif op == "SWAP":
            k = ins.arg
            if k < 2 or k > len(stack):
                raise LiftError("stack-imbalance", f"SWAP {k}")
            stack[-1], stack[-k] = stack[-k], stack[-1]
        elif op == "ROT":
            k = ins.arg
            if k < 2 or k > len(stack):
                raise LiftError("stack-imbalance", f"ROT {k}")
            stack[-k:] = [stack[-1]] + stack[-k:-1]
        else:  # pragma: no cover - guarded by _EXPR_OPS
            raise LiftError("unsupported-opcode", op)

    def _const(self, value, p: Pos):
        if value is None:
            return _NoneVal()
        if isinstance(value, bool):
            return A.BoolLit(p, value)
        if isinstance(value, int):
            if _INT32_MIN <= value <= _INT32_MAX:
                return A.IntLit(p, value)
            if _INT64_MIN <= value <= _INT64_MAX:
                return A.LongLit(p, value)
            raise LiftError("unsupported-constant", f"int {value} overflows long")
        if isinstance(value, float):
            return A.DoubleLit(p, value)
        if isinstance(value, tuple) and all(
            isinstance(v, int) and not isinstance(v, bool) for v in value
        ):
            return _ConstTuple(value)
        raise LiftError("unsupported-constant", repr(value))

    def _binop(self, sym: str, l: A.Expr, r: A.Expr, p: Pos) -> A.Expr:
        # Markers survive in Binary.op for ops whose Java spelling depends
        # on operand types; typing.py rewrites them.
        if sym == "**":
            raise LiftError("pow-operator", "use math.pow for a bit-exact lift")
        if sym == "/":
            return A.Binary(p, "/t", l, r)
        if sym == "//":
            return A.Binary(p, "/f", l, r)
        if sym == "%":
            return A.Binary(p, "%p", l, r)
        return A.Binary(p, sym, l, r)

    def _subscript(self, base, idx, p: Pos) -> A.Expr:
        if isinstance(base, _ShapeVal):
            if isinstance(idx, A.IntLit) and idx.value in (0, 1):
                return A.Length(p, base.var, axis=idx.value)
            raise LiftError("unsupported-subscript", "shape[<non-const>]")
        if isinstance(idx, _TupleIdx):
            indices = idx.items
        elif isinstance(idx, _ConstTuple):
            indices = [A.IntLit(p, v) for v in idx.values]
        elif isinstance(idx, _Marker):
            raise LiftError("unsupported-subscript", type(idx).__name__)
        else:
            indices = [idx]
        if len(indices) > 2:
            raise LiftError("unsupported-subscript", f"{len(indices)} indices")
        if isinstance(base, A.VarRef):
            return A.ArrayRef(p, base, indices)
        if isinstance(base, A.ArrayRef):
            if len(base.indices) + len(indices) > 2:
                raise LiftError("unsupported-subscript", ">2 chained indices")
            return A.ArrayRef(p, base.base, base.indices + indices)
        raise LiftError("unsupported-subscript", type(base).__name__)

    def _call(self, fn, args: list, p: Pos):
        if isinstance(fn, _GlobalVal):
            name = fn.name
            if name == "range":
                if not 1 <= len(args) <= 3:
                    raise LiftError("unsupported-call", f"range/{len(args)}")
                for a in args:
                    if isinstance(a, _Marker):
                        raise LiftError("unsupported-call", "opaque range bound")
                return _RangeVal(args)
            if name == "len":
                if len(args) == 1 and isinstance(args[0], A.VarRef):
                    return A.Length(p, args[0], axis=0)
                raise LiftError("unsupported-call", "len of non-array")
            if name == "int":
                return A.Cast(p, A.LONG, self._expr_arg(args, 1, name)[0])
            if name == "float":
                return A.Cast(p, A.DOUBLE, self._expr_arg(args, 1, name)[0])
            if name == "abs":
                return A.Call(p, "Math.abs", self._expr_arg(args, 1, name))
            if name in ("min", "max"):
                return A.Call(p, f"Math.{name}", self._expr_arg(args, 2, name))
            raise LiftError("unsupported-call", name)
        if isinstance(fn, _MathFn):
            if fn.name in ("floor", "ceil"):
                arg = self._expr_arg(args, 1, fn.name)
                # Python math.floor/ceil return int; Java's return double.
                return A.Cast(p, A.LONG, A.Call(p, f"Math.{fn.name}", arg))
            intr = _MATH_INTRINSICS.get(fn.name)
            if intr is None:
                if fn.name in ("exp", "log", "tan", "pow"):
                    raise LiftError("inexact-intrinsic", f"math.{fn.name}")
                raise LiftError("unsupported-call", f"math.{fn.name}")
            return A.Call(p, intr, self._expr_arg(args, 1, fn.name))
        raise LiftError("unsupported-call", type(fn).__name__)

    def _expr_arg(self, args: list, n: int, name: str) -> List[A.Expr]:
        if len(args) != n:
            raise LiftError("unsupported-call", f"{name}/{len(args)}")
        for a in args:
            if isinstance(a, _Marker):
                raise LiftError("unsupported-call", f"opaque argument to {name}")
        return args

    # -- control-flow recovery -------------------------------------------

    def _resolve(self, target: int) -> int:
        return resolve_target(self.instrs, self.off2idx, target)

    def lift(self) -> List[A.Stmt]:
        return self._lift_range(0, len(self.instrs), [], tail=True, outer=True)

    def _fold_ors(self, ors: list, cond: A.Expr, then_start_idx: int,
                  ins: NInstr) -> A.Expr:
        """Fold a pending ``or``-chain into the final condition."""
        for c, target in ors:
            if self._resolve(target) != then_start_idx:
                raise LiftError("complex-condition", "or-chain jump shape")
            cond = A.Binary(_pos(ins), "||", c, cond)
        del ors[:]
        return cond

    def _lift_range(self, lo: int, hi: int, loop_heads: List[int],
                    tail: bool, outer: bool = False) -> List[A.Stmt]:
        """Lift instrs[lo:hi) into a statement list.

        ``loop_heads`` holds the FOR_ITER offsets of enclosing lifted
        loops (innermost last); ``tail`` is True when the region ends at
        function exit on every path (where CPython duplicates ``return``
        instead of jumping); ``outer`` marks the function's top region,
        the only place a value ``return`` is representable.
        """
        instrs = self.instrs
        stmts: List[A.Stmt] = []
        stack: list = []
        ors: list = []  # pending (cond, PJIT target) of an or-chain
        i = lo
        while i < hi:
            ins = instrs[i]
            op = ins.op
            if op in _EXPR_OPS:
                if op == "LOAD_FAST" and ins.arg in self.loop_vars:
                    # reads are legal inside the owning loop; the escape
                    # check in lift_function rejects the rest.
                    pass
                self._step(ins, stack)
                i += 1
                continue
            if ors and op not in ("PJIF", "PJIT"):
                raise LiftError("complex-condition", f"{op} inside or-chain")

            if op == "STORE_FAST":
                val = self._pop(stack, ins)
                if isinstance(val, _Marker):
                    raise LiftError("opaque-store", f"{ins.arg} = {type(val).__name__}")
                stmts.append(A.Assign(_pos(ins), A.VarRef(_pos(ins), ins.arg), "", val))
                i += 1
            elif op == "STORE_SUBSCR":
                key = self._pop(stack, ins)
                container = self._pop(stack, ins)
                val = self._pop_expr(stack, ins)
                target = self._subscript(container, key, _pos(ins))
                if not isinstance(target, A.ArrayRef):
                    raise LiftError("unsupported-subscript", "store to non-array")
                stmts.append(A.Assign(_pos(ins), target, "", val))
                i += 1
            elif op == "POP_TOP":
                val = self._pop(stack, ins)
                if isinstance(val, A.Call):
                    stmts.append(A.ExprStmt(_pos(ins), val))
                i += 1
            elif op == "GET_ITER":
                i = self._lift_loop(i, hi, stack, stmts, loop_heads)
            elif op in ("PJIF", "PJIT"):
                i = self._lift_cond(i, hi, stack, stmts, ors, loop_heads, tail)
            elif op == "JUMP":
                if ins.target < ins.offset:
                    raise LiftError("while-loop", "backward jump outside for-range")
                raise LiftError("irreducible-control-flow", "break/continue")
            elif op == "RETURN":
                val = self._pop(stack, ins)
                if stack:
                    raise LiftError("stack-imbalance", "operands live at return")
                if isinstance(val, _NoneVal):
                    if loop_heads or not tail:
                        raise LiftError("early-return", "return inside a branch")
                    i += 1
                    if i != hi:
                        raise LiftError("irreducible-control-flow", "code after return")
                elif isinstance(val, _Marker):
                    raise LiftError("unsupported-constant", "return of opaque value")
                else:
                    if not (outer and tail) or loop_heads or i != hi - 1:
                        raise LiftError("early-return", "value return before tail")
                    stmts.append(
                        A.Assign(_pos(ins), A.VarRef(_pos(ins), RET_NAME), "", val)
                    )
                    self.has_ret = True
                    i += 1
            else:
                raise LiftError("irreducible-control-flow", f"unexpected {op}")
        if ors:
            raise LiftError("complex-condition", "dangling or-chain")
        if stack:
            raise LiftError("stack-imbalance", f"{len(stack)} operands at region end")
        return stmts

    def _lift_loop(self, i: int, hi: int, stack: list, stmts: List[A.Stmt],
                   loop_heads: List[int]) -> int:
        """GET_ITER at ``i``: recognize ``for <v> in range(...)``."""
        instrs = self.instrs
        ins = instrs[i]
        rng = self._pop(stack, ins)
        if not isinstance(rng, _RangeVal):
            raise LiftError("unsupported-call", "for over a non-range iterable")
        if stack:
            raise LiftError("stack-imbalance", "operands live at loop entry")
        fi = i + 1
        if fi >= hi or instrs[fi].op != "FOR_ITER":
            raise LiftError("irreducible-control-flow", "GET_ITER without FOR_ITER")
        head_off = instrs[fi].offset
        exit_idx = self._resolve(instrs[fi].target)
        if exit_idx > hi or exit_idx <= fi:
            raise LiftError("irreducible-control-flow", "loop exit leaves region")
        cont_idx = exit_idx
        if exit_idx < len(instrs) and instrs[exit_idx].op == "END_FOR":
            cont_idx = exit_idx + 1  # 3.12 epilogue
        body_end = exit_idx - 1
        back = instrs[body_end]
        if not (back.op == "JUMP" and back.target == head_off):
            raise LiftError("irreducible-control-flow", "missing loop back-edge")
        sv = instrs[fi + 1]
        if sv.op != "STORE_FAST":
            raise LiftError("irreducible-control-flow", "loop target is not a name")
        var = sv.arg
        if var in self.active_vars:
            raise LiftError(
                "irreducible-control-flow",
                f"loop counter {var!r} reused by a nested loop",
            )
        self.loop_vars.add(var)
        self.n_loops += 1

        p = _pos(instrs[fi])
        args = rng.args
        for bound in args:
            if isinstance(bound, A.Expr):
                for sub in A.walk(bound):
                    if isinstance(sub, A.VarRef) and sub.name == var:
                        # range(i) over a prior loop's final counter: the
                        # lifted VarDecl would shadow the value read here.
                        raise LiftError(
                            "loop-var-escapes", f"{var} used in its own bounds"
                        )
        if len(args) == 1:
            lo_e, hi_e, step = A.IntLit(p, 0), args[0], 1
        elif len(args) == 2:
            lo_e, hi_e, step = args[0], args[1], 1
        else:
            lo_e, hi_e = args[0], args[1]
            st = args[2]
            if not (isinstance(st, A.IntLit) and st.value > 0):
                raise LiftError("dynamic-step", "range step must be a positive const")
            step = st.value

        self.active_vars.append(var)
        try:
            body = self._lift_range(fi + 2, body_end, loop_heads + [head_off],
                                    tail=False)
        finally:
            self.active_vars.pop()
        init = A.VarDecl(p, A.INT, var, lo_e)
        cond = A.Binary(p, "<", A.VarRef(p, var), hi_e)
        if step == 1:
            update: A.Stmt = A.IncDec(p, A.VarRef(p, var), "++")
        else:
            update = A.Assign(p, A.VarRef(p, var), "+", A.IntLit(p, step))
        stmts.append(A.For(p, init, cond, update, A.Block(p, body), None))
        return cont_idx

    def _lift_cond(self, i: int, hi: int, stack: list, stmts: List[A.Stmt],
                   ors: list, loop_heads: List[int], tail: bool) -> int:
        """PJIF/PJIT at ``i``: if/else, or-chains, loop-tail conditionals."""
        instrs = self.instrs
        ins = instrs[i]
        cond = self._pop_expr(stack, ins)
        if ins.op == "PJIT":
            if ins.target > ins.offset:
                ors.append((cond, ins.target))
                return i + 1
            # `if c: continue`-style: true jumps back to the loop head,
            # so the rest of the body runs under !c.
            if ors:
                raise LiftError("complex-condition", "or-chain into backward jump")
            if not (loop_heads and ins.target == loop_heads[-1]):
                raise LiftError("while-loop", "conditional backward jump")
            if stack:
                raise LiftError("stack-imbalance", "operands live at branch")
            rest = self._lift_range(i + 1, hi, loop_heads, tail)
            p = _pos(ins)
            stmts.append(A.If(p, A.Unary(p, "!", cond), A.Block(p, rest), None))
            return hi

        # PJIF: false-jump to the else/merge point.
        if ins.target < ins.offset:
            if ors:
                raise LiftError("complex-condition", "or-chain into backward jump")
            if not (loop_heads and ins.target == loop_heads[-1]):
                raise LiftError("while-loop", "conditional backward jump")
            if stack:
                raise LiftError("stack-imbalance", "operands live at branch")
            rest = self._lift_range(i + 1, hi, loop_heads, tail)
            p = _pos(ins)
            stmts.append(A.If(p, cond, A.Block(p, rest), None))
            return hi

        cond = self._fold_ors(ors, cond, i + 1, ins)
        if stack:
            raise LiftError("stack-imbalance", "operands live at branch")
        t_idx = self._resolve(ins.target)
        if t_idx > hi:
            raise LiftError("irreducible-control-flow", "branch leaves region")
        p = _pos(ins)
        last = instrs[t_idx - 1] if t_idx - 1 > i else None
        if (
            last is not None
            and last.op == "JUMP"
            and last.target < last.offset
            and i < self._resolve(last.target) < t_idx
        ):
            # back-edge of a loop nested inside the then-branch; the
            # branch falls through to the merge -> plain if, no else.
            last = None
        if last is not None and last.op == "JUMP":
            if last.target < last.offset:
                # then-branch ends with the loop back-edge: if/else at the
                # bottom of a loop body; the else is the rest of the body.
                if not (loop_heads and last.target == loop_heads[-1]):
                    raise LiftError("while-loop", "backward jump outside for-range")
                then = self._lift_range(i + 1, t_idx - 1, loop_heads, False)
                els = self._lift_range(t_idx, hi, loop_heads, tail)
                stmts.append(A.If(p, cond, A.Block(p, then), A.Block(p, els)))
                return hi
            m_idx = self._resolve(last.target)
            if not (t_idx <= m_idx <= hi):
                raise LiftError("irreducible-control-flow", "if/else merge shape")
            branch_tail = tail and m_idx == hi
            then = self._lift_range(i + 1, t_idx - 1, loop_heads, branch_tail)
            els = self._lift_range(t_idx, m_idx, loop_heads, branch_tail)
            stmts.append(A.If(p, cond, A.Block(p, then), A.Block(p, els)))
            return m_idx
        if (
            tail
            and not loop_heads
            and t_idx < hi
            and t_idx - 2 > i
            and instrs[t_idx - 1].op == "RETURN"
            and instrs[t_idx - 2].op == "LOAD_CONST"
            and instrs[t_idx - 2].arg is None
        ):
            # the then-branch ends with its own duplicated ``return
            # None`` epilogue and the false-edge target starts the else
            # side; both run to function exit, so this is an if/else.
            then = self._lift_range(i + 1, t_idx - 2, loop_heads, False)
            els = self._lift_range(t_idx, hi, loop_heads, tail)
            stmts.append(A.If(p, cond, A.Block(p, then), A.Block(p, els)))
            return hi
        branch_tail = tail and t_idx == hi
        then = self._lift_range(i + 1, t_idx, loop_heads, branch_tail)
        stmts.append(A.If(p, cond, A.Block(p, then), None))
        return t_idx


# -- function-level entry ------------------------------------------------

_CO_GENERATOR = 0x20
_CO_COROUTINE = 0x80
_CO_ASYNC_GENERATOR = 0x200
_CO_VARARGS = 0x04
_CO_VARKEYWORDS = 0x08


def check_code_shape(fn) -> None:
    """Structural gates that need no bytecode walk.

    Raised before call-site argument typing so a ``*args`` function
    reports ``varargs`` (its real problem), not the type of whatever
    tuple happened to bind to the star parameter.
    """
    code = fn.__code__
    if code.co_flags & (_CO_GENERATOR | _CO_COROUTINE | _CO_ASYNC_GENERATOR):
        raise LiftError("generator", fn.__qualname__)
    if code.co_freevars or fn.__closure__:
        raise LiftError("closure", f"captures {code.co_freevars!r}")
    if code.co_cellvars:
        raise LiftError("closure", f"cells {code.co_cellvars!r}")
    if code.co_flags & (_CO_VARARGS | _CO_VARKEYWORDS) or code.co_kwonlyargcount:
        raise LiftError("varargs", fn.__qualname__)


def lift_function(fn) -> LiftedBody:
    """Lift ``fn``'s bytecode into untyped mini-Java statements.

    Raises :class:`LiftError` (with a FALLBACK_REASONS code) when the
    function is outside the liftable subset.
    """
    check_code_shape(fn)
    instrs = normalize(fn.__code__)
    lifter = _Lifter(instrs)
    stmts = lifter.lift()
    body = LiftedBody(
        stmts=stmts,
        has_ret=lifter.has_ret,
        loop_vars=set(lifter.loop_vars),
        n_loops=lifter.n_loops,
    )
    _check_loop_var_escapes(stmts, body.loop_vars)
    _check_bound_mutation(stmts)
    return body


def _check_bound_mutation(stmts: List[A.Stmt]) -> None:
    """Reject loops whose range() bounds are reassigned in the body.

    Python evaluates ``range(lo, hi, step)`` once at loop entry; the
    lifted ``for`` re-evaluates its condition every iteration, so a body
    write to a bound variable would change the trip count.
    """
    root = A.Block(Pos(0, 0), list(stmts))
    for node in A.walk(root):
        if not isinstance(node, A.For):
            continue
        bound_names = set()
        for e in (node.init.init if isinstance(node.init, A.VarDecl) else None,
                  node.cond.right if isinstance(node.cond, A.Binary) else None):
            if e is not None:
                for sub in A.walk(e):
                    if isinstance(sub, A.VarRef):
                        bound_names.add(sub.name)
                    elif isinstance(sub, A.Length):
                        bound_names.add(sub.array.name)
        if not bound_names:
            continue
        for sub in A.walk(node.body):
            if isinstance(sub, A.Assign) and isinstance(sub.target, A.VarRef) \
                    and sub.target.name in bound_names:
                raise LiftError("bound-mutated", sub.target.name)


def _check_loop_var_escapes(stmts: List[A.Stmt], loop_vars: Set[str]) -> None:
    """Reject any use of a loop counter outside its owning loop.

    Python keeps the counter's final value after the loop; the lifted
    ``for (int i = ...)`` scopes it inside, so an outside use (read *or*
    write — writes inside the body also diverge, since FOR_ITER would
    overwrite them) cannot be represented.
    """
    root = A.Block(Pos(0, 0), list(stmts))
    owned: Dict[str, Set[int]] = {v: set() for v in loop_vars}
    for node in A.walk(root):
        if isinstance(node, A.For) and isinstance(node.init, A.VarDecl):
            v = node.init.name
            if v in owned:
                inner = {id(n) for n in A.walk(node)}
                owned[v] |= inner
                # a write to the counter inside the body still diverges
                for sub in A.walk(node.body):
                    if isinstance(sub, A.Assign) and isinstance(sub.target, A.VarRef) \
                            and sub.target.name == v:
                        raise LiftError("index-assigned", v)
    for node in A.walk(root):
        if isinstance(node, A.VarRef) and node.name in owned:
            if id(node) not in owned[node.name]:
                raise LiftError("loop-var-escapes", node.name)
