"""Call-site typing of lifted bodies: Python values -> mini-Java types.

``lifter.py`` produces untyped statements with marker operators for the
Python ops whose Java spelling depends on operand types (``/t`` true
division, ``/f`` floor division, ``%p`` floor modulo).  This module:

1. maps the call-site NumPy dtypes / Python scalars onto Java types,
2. runs a fixpoint inference over the locals (join = Java numeric
   promotion, with NEP-50-style weak literals against float32),
3. rewrites the markers into bit-exact Java compositions
   (``a // b`` -> ``(a - (((a % b) + b) % b)) / b`` etc.),
4. proves definite assignment on every path (a lifted function must
   never read a default where Python would raise UnboundLocalError),
5. places each local's declaration: inside the innermost loop body
   where no iteration reads it before writing it (a parallelizable
   temp), else at method top (a carried value / reduction),
6. emits the synthetic ``ClassDecl`` the middle-end consumes.

Any rule violation raises :class:`LiftError` with a taxonomy code.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...lang import ast_nodes as A
from ...lang.tokens import Pos
from .errors import LiftError
from .lifter import RET_NAME, LiftedBody

_P0 = Pos(0, 0)

_ORDER = {"int": 0, "long": 1, "float": 2, "double": 3}

#: NumPy dtype -> Java element type.
_DTYPE_TO_PRIM = {
    np.dtype(np.int32): A.INT,
    np.dtype(np.int64): A.LONG,
    np.dtype(np.float32): A.FLOAT,
    np.dtype(np.float64): A.DOUBLE,
    np.dtype(np.bool_): A.BOOLEAN,
}

_LITERALS = (A.IntLit, A.LongLit, A.DoubleLit, A.FloatLit)


def java_type_of_value(value) -> A.Type:
    """Java type of one call-site argument; LiftError if none fits."""
    if isinstance(value, np.ndarray):
        elem = _DTYPE_TO_PRIM.get(value.dtype)
        if elem is None:
            raise LiftError("unsupported-argument", f"dtype {value.dtype}")
        if value.ndim not in (1, 2):
            raise LiftError("unsupported-argument", f"{value.ndim}-D array")
        return A.ArrayType(elem, value.ndim)
    if isinstance(value, (bool, np.bool_)):
        return A.BOOLEAN
    if isinstance(value, (int, np.int32)) and not isinstance(value, np.int64):
        if isinstance(value, int) and not (-(2**31) <= value < 2**31):
            if -(2**63) <= value < 2**63:
                return A.LONG
            raise LiftError("unsupported-argument", "int overflows long")
        return A.INT
    if isinstance(value, np.int64):
        return A.LONG
    if isinstance(value, np.float32):
        return A.FLOAT
    if isinstance(value, (float, np.float64)):
        return A.DOUBLE
    raise LiftError("unsupported-argument", type(value).__name__)


def signature_tag(params: List[Tuple[str, A.Type]]) -> str:
    """Stable text form of a typed signature (cache / report key)."""
    return ",".join(f"{n}:{t}" for n, t in params)


def _join(a: Optional[A.PrimType], b: Optional[A.PrimType]) -> Optional[A.PrimType]:
    if a is None:
        return b
    if b is None:
        return a
    if a == b:
        return a
    if A.BOOLEAN in (a, b):
        raise LiftError("mixed-types", "boolean with numeric")
    return a if _ORDER[a.name] >= _ORDER[b.name] else b


def _is_integral(t: Optional[A.PrimType]) -> bool:
    return t is not None and t.name in ("int", "long")


class _Typer:
    def __init__(self, params: List[Tuple[str, A.Type]], lifted: LiftedBody):
        self.arrays: Dict[str, A.ArrayType] = {
            n: t for n, t in params if isinstance(t, A.ArrayType)
        }
        self.scalars: Dict[str, A.PrimType] = {
            n: t for n, t in params if isinstance(t, A.PrimType)
        }
        self.lifted = lifted
        self.env: Dict[str, Optional[A.PrimType]] = dict(self.scalars)
        for v in lifted.loop_vars:
            if v in self.arrays or v in self.scalars:
                raise LiftError("loop-var-escapes", f"{v} shadows a parameter")
            self.env[v] = A.INT
        self.locals_order: List[str] = []  # first-assignment order

    # -- expression typing (fixpoint phase) ------------------------------

    def _arith_join(self, l: A.Expr, lt, r: A.Expr, rt) -> Optional[A.PrimType]:
        """Join for arithmetic, honoring weak literals against float32."""
        if lt == A.FLOAT and isinstance(r, _LITERALS):
            return A.FLOAT if not isinstance(r, A.FloatLit) else A.FLOAT
        if rt == A.FLOAT and isinstance(l, _LITERALS):
            return A.FLOAT
        if (lt == A.FLOAT and _is_integral(rt)) or (rt == A.FLOAT and _is_integral(lt)):
            # NumPy (NEP 50) promotes int32 op float32 to float64; Java
            # would compute in float32 — no type reproduces both.
            raise LiftError("mixed-types", "integer array value with float32")
        return _join(lt, rt)

    def etype(self, e: A.Expr) -> Optional[A.PrimType]:
        if isinstance(e, A.IntLit):
            return A.INT
        if isinstance(e, A.LongLit):
            return A.LONG
        if isinstance(e, A.FloatLit):
            return A.FLOAT
        if isinstance(e, A.DoubleLit):
            return A.DOUBLE
        if isinstance(e, A.BoolLit):
            return A.BOOLEAN
        if isinstance(e, A.VarRef):
            if e.name in self.arrays:
                raise LiftError("array-alias", f"array {e.name} used as a value")
            if e.name in self.env:
                return self.env[e.name]
            raise LiftError("use-before-def", e.name)
        if isinstance(e, A.Length):
            at = self.arrays.get(e.array.name)
            if at is None or e.axis >= at.dims:
                raise LiftError("unsupported-subscript",
                                f"len/shape of {e.array.name}")
            return A.INT
        if isinstance(e, A.ArrayRef):
            at = self.arrays.get(e.base.name)
            if at is None:
                raise LiftError("unsupported-subscript",
                                f"{e.base.name} is not an array")
            if len(e.indices) != at.dims:
                raise LiftError("unsupported-subscript",
                                f"{e.base.name}: {len(e.indices)} indices on "
                                f"{at.dims}-D array")
            for ix in e.indices:
                it = self.etype(ix)
                if it is not None and not _is_integral(it):
                    raise LiftError("unsupported-subscript", "non-integral index")
            return at.elem
        if isinstance(e, A.Unary):
            ot = self.etype(e.operand)
            if e.op == "!":
                if ot is not None and ot != A.BOOLEAN:
                    raise LiftError("nonbool-condition", "not on a non-boolean")
                return A.BOOLEAN
            if ot == A.BOOLEAN:
                raise LiftError("mixed-types", f"{e.op} on boolean")
            if e.op == "~" and ot is not None and not _is_integral(ot):
                raise LiftError("shift-on-float", "~ on a float")
            return ot
        if isinstance(e, A.Cast):
            self.etype(e.operand)
            return e.target
        if isinstance(e, A.Call):
            ats = [self.etype(a) for a in e.args]
            if e.name in ("Math.abs", "Math.min", "Math.max"):
                out = ats[0]
                for i, t in enumerate(ats[1:], 1):
                    out = self._arith_join(e.args[0], out, e.args[i], t)
                return out
            return A.DOUBLE
        if isinstance(e, A.Binary):
            return self._btype(e)
        if isinstance(e, A.Ternary):
            ct = self.etype(e.cond)
            if ct is not None and ct != A.BOOLEAN:
                raise LiftError("nonbool-condition", "?: condition")
            return _join(self.etype(e.then), self.etype(e.other))
        raise LiftError("analysis-error", f"untypable {type(e).__name__}")

    def _btype(self, e: A.Binary) -> Optional[A.PrimType]:
        op = e.op
        lt = self.etype(e.left)
        rt = self.etype(e.right)
        if op in ("<", "<=", ">", ">=", "==", "!="):
            if A.BOOLEAN in (lt, rt):
                raise LiftError("mixed-types", "comparison on boolean")
            return A.BOOLEAN
        if op in ("&&", "||"):
            for t in (lt, rt):
                if t is not None and t != A.BOOLEAN:
                    raise LiftError("nonbool-condition", f"{op} operand")
            return A.BOOLEAN
        if op in ("&", "|", "^"):
            if lt == A.BOOLEAN and rt == A.BOOLEAN:
                return A.BOOLEAN
            if (lt is None or _is_integral(lt)) and (rt is None or _is_integral(rt)):
                return _join(lt, rt)
            raise LiftError("mixed-types", f"{op} operands")
        if op in ("<<", ">>"):
            for t in (lt, rt):
                if t is not None and not _is_integral(t):
                    raise LiftError("shift-on-float", f"{op} operand")
            return lt
        if op == "/t":
            if _is_integral(lt) and _is_integral(rt):
                return A.DOUBLE
            if lt is None or rt is None:
                return None
            return self._arith_join(e.left, lt, e.right, rt)
        if op == "/f":
            if (lt is not None and not _is_integral(lt)) or (
                rt is not None and not _is_integral(rt)
            ):
                raise LiftError("float-floordiv", "// on floats")
            return _join(lt, rt)
        if op == "%p":
            if (lt is not None and not _is_integral(lt)) or (
                rt is not None and not _is_integral(rt)
            ):
                raise LiftError("float-mod", "% on floats")
            return _join(lt, rt)
        if op in ("+", "-", "*", "/", "%"):
            if A.BOOLEAN in (lt, rt):
                raise LiftError("mixed-types", f"{op} on boolean")
            return self._arith_join(e.left, lt, e.right, rt)
        raise LiftError("analysis-error", f"operator {op!r}")

    # -- fixpoint over assignments ---------------------------------------

    def infer(self) -> None:
        for _ in range(16):
            changed = self._infer_pass(self.lifted.stmts)
            if not changed:
                break
        else:
            raise LiftError("mixed-types", "type inference did not converge")
        # every local must have resolved
        for v, t in self.env.items():
            if t is None:
                raise LiftError("use-before-def", v)
        # assignments to scalar params must preserve the param type
        for st in self._walk_stmts(self.lifted.stmts):
            if isinstance(st, A.Assign) and isinstance(st.target, A.VarRef):
                name = st.target.name
                if name in self.scalars and self.env[name] != self.scalars[name]:
                    raise LiftError("mixed-types",
                                    f"param {name} widened by assignment")

    def _walk_stmts(self, stmts: List[A.Stmt]):
        for st in stmts:
            yield st
            if isinstance(st, A.If):
                yield from self._walk_stmts(st.then.stmts)
                if st.els is not None:
                    yield from self._walk_stmts(st.els.stmts)
            elif isinstance(st, A.For):
                yield from self._walk_stmts(st.body.stmts)

    def _infer_pass(self, stmts: List[A.Stmt]) -> bool:
        changed = False
        for st in self._walk_stmts(stmts):
            if isinstance(st, A.Assign) and isinstance(st.target, A.VarRef):
                name = st.target.name
                if name in self.arrays:
                    raise LiftError("array-alias", f"assignment to array {name}")
                try:
                    vt = self.etype(st.value)
                except LiftError as err:
                    if err.code == "use-before-def":
                        vt = None  # not yet resolved this round
                    else:
                        raise
                if name not in self.env:
                    self.env[name] = None
                    self.locals_order.append(name)
                if vt is not None:
                    joined = _join(self.env[name], vt)
                    if joined != self.env[name]:
                        self.env[name] = joined
                        changed = True
        return changed

    # -- verification (full typing with complete env) --------------------

    def verify(self) -> None:
        for st in self._walk_stmts(self.lifted.stmts):
            if isinstance(st, A.Assign):
                self.etype(st.value)
                if isinstance(st.target, A.ArrayRef):
                    self.etype(st.target)
                    vt = self.etype(st.value)
                    at = self.arrays[st.target.base.name].elem
                    if A.BOOLEAN in (vt, at) and vt != at:
                        raise LiftError("mixed-types", "boolean array store")
            elif isinstance(st, A.If):
                if self.etype(st.cond) != A.BOOLEAN:
                    raise LiftError("nonbool-condition", "if condition")
            elif isinstance(st, A.For):
                for b in (st.init.init, st.cond.right):
                    bt = self.etype(b)
                    if not _is_integral(bt):
                        raise LiftError("dynamic-step", "non-integral range bound")
            elif isinstance(st, A.ExprStmt):
                self.etype(st.expr)

    # -- definite assignment ----------------------------------------------

    def check_defassign(self) -> None:
        assigned = set(self.scalars) | set(self.arrays)
        self._da_seq(self.lifted.stmts, assigned)

    def _da_reads(self, e: A.Expr, assigned: set) -> None:
        for n in A.walk(e):
            if isinstance(n, A.VarRef) and n.name not in self.arrays:
                if n.name not in assigned:
                    raise LiftError("use-before-def", n.name)

    def _da_seq(self, stmts: List[A.Stmt], assigned: set) -> set:
        for st in stmts:
            if isinstance(st, A.Assign):
                self._da_reads(st.value, assigned)
                if isinstance(st.target, A.ArrayRef):
                    for ix in st.target.indices:
                        self._da_reads(ix, assigned)
                else:
                    assigned.add(st.target.name)
            elif isinstance(st, A.ExprStmt):
                self._da_reads(st.expr, assigned)
            elif isinstance(st, A.If):
                self._da_reads(st.cond, assigned)
                a1 = self._da_seq(st.then.stmts, set(assigned))
                a2 = (
                    self._da_seq(st.els.stmts, set(assigned))
                    if st.els is not None
                    else set(assigned)
                )
                assigned = a1 & a2
            elif isinstance(st, A.For):
                self._da_reads(st.init.init, assigned)
                self._da_reads(st.cond.right, assigned)
                body_in = set(assigned) | {st.init.name}
                self._da_seq(st.body.stmts, body_in)
                # zero-trip loops contribute nothing definite
        return assigned

    # -- marker rewriting --------------------------------------------------

    def _weaken(self, e: A.Expr, other_t: Optional[A.PrimType]) -> A.Expr:
        if other_t == A.FLOAT and isinstance(e, _LITERALS) and not isinstance(e, A.FloatLit):
            return A.FloatLit(e.pos, float(e.value))
        return e

    def _pymod(self, l: A.Expr, r: A.Expr, p: Pos) -> A.Expr:
        """Python floor-mod from Java truncation: ((l % r) + r) % r."""
        inner = A.Binary(p, "%", l, r)
        plus = A.Binary(p, "+", inner, copy.deepcopy(r))
        return A.Binary(p, "%", plus, copy.deepcopy(r))

    def rewrite_expr(self, e: A.Expr) -> A.Expr:
        for name in ("operand",):
            if hasattr(e, name):
                setattr(e, name, self.rewrite_expr(getattr(e, name)))
        if isinstance(e, A.Binary):
            e.left = self.rewrite_expr(e.left)
            e.right = self.rewrite_expr(e.right)
            lt = self.etype(e.left)
            rt = self.etype(e.right)
            p = e.pos
            if e.op == "/t":
                if _is_integral(lt) and _is_integral(rt):
                    return A.Binary(
                        p, "/", A.Cast(p, A.DOUBLE, e.left),
                        A.Cast(p, A.DOUBLE, e.right),
                    )
                e.op = "/"
                e.left = self._weaken(e.left, rt)
                e.right = self._weaken(e.right, lt)
                return e
            if e.op == "/f":
                if (lt is not None and not _is_integral(lt)) or (
                    rt is not None and not _is_integral(rt)
                ):
                    raise LiftError("float-floordiv", "// on floats")
                pm = self._pymod(copy.deepcopy(e.left), copy.deepcopy(e.right), p)
                return A.Binary(
                    p, "/", A.Binary(p, "-", e.left, pm), copy.deepcopy(e.right)
                )
            if e.op == "%p":
                if (lt is not None and not _is_integral(lt)) or (
                    rt is not None and not _is_integral(rt)
                ):
                    raise LiftError("float-mod", "% on floats")
                return self._pymod(e.left, e.right, p)
            if e.op in ("+", "-", "*", "<", "<=", ">", ">=", "==", "!="):
                e.left = self._weaken(e.left, rt)
                e.right = self._weaken(e.right, lt)
            return e
        if isinstance(e, A.ArrayRef):
            e.indices = [self.rewrite_expr(ix) for ix in e.indices]
            return e
        if isinstance(e, A.Call):
            e.args = [self.rewrite_expr(a) for a in e.args]
            return e
        if isinstance(e, A.Ternary):
            e.cond = self.rewrite_expr(e.cond)
            e.then = self.rewrite_expr(e.then)
            e.other = self.rewrite_expr(e.other)
            return e
        return e

    def rewrite(self, stmts: List[A.Stmt]) -> None:
        for st in stmts:
            if isinstance(st, A.Assign):
                st.value = self.rewrite_expr(st.value)
                if isinstance(st.target, A.ArrayRef):
                    st.target = self.rewrite_expr(st.target)
            elif isinstance(st, A.ExprStmt):
                st.expr = self.rewrite_expr(st.expr)
            elif isinstance(st, A.If):
                st.cond = self.rewrite_expr(st.cond)
                self.rewrite(st.then.stmts)
                if st.els is not None:
                    self.rewrite(st.els.stmts)
            elif isinstance(st, A.For):
                st.init.init = self.rewrite_expr(st.init.init)
                st.cond.right = self.rewrite_expr(st.cond.right)
                self.rewrite(st.body.stmts)

    # -- declaration placement --------------------------------------------

    def place_decls(self) -> List[A.Stmt]:
        """Insert VarDecls; return the final top-level statement list."""
        chains: Dict[str, List[List[A.For]]] = {v: [] for v in self.locals_order}
        self._collect_chains(self.lifted.stmts, [], chains)
        top_decls: List[A.Stmt] = []
        for v in self.locals_order:
            t = self.env[v]
            occ = chains[v]
            prefix = self._common_prefix(occ)
            placed = False
            while prefix:
                loop = prefix[-1]
                if self._iteration_fresh(v, loop.body.stmts):
                    loop.body.stmts.insert(0, A.VarDecl(_P0, t, v, None))
                    placed = True
                    break
                prefix = prefix[:-1]
            if not placed:
                top_decls.append(A.VarDecl(_P0, t, v, None))
        return top_decls + list(self.lifted.stmts)

    def _collect_chains(self, stmts, forstack, chains) -> None:
        for st in stmts:
            if isinstance(st, A.For):
                self._collect_chains(st.body.stmts, forstack + [st], chains)
                for e in (st.init.init, st.cond.right):
                    self._note_chain(e, forstack, chains)
            elif isinstance(st, A.If):
                self._note_chain(st.cond, forstack, chains)
                self._collect_chains(st.then.stmts, forstack, chains)
                if st.els is not None:
                    self._collect_chains(st.els.stmts, forstack, chains)
            elif isinstance(st, A.Assign):
                self._note_chain(st.value, forstack, chains)
                if isinstance(st.target, A.ArrayRef):
                    self._note_chain(st.target, forstack, chains)
                elif st.target.name in chains:
                    chains[st.target.name].append(list(forstack))
            elif isinstance(st, A.ExprStmt):
                self._note_chain(st.expr, forstack, chains)

    def _note_chain(self, e: A.Expr, forstack, chains) -> None:
        for n in A.walk(e):
            if isinstance(n, A.VarRef) and n.name in chains:
                chains[n.name].append(list(forstack))

    @staticmethod
    def _common_prefix(chains: List[List[A.For]]) -> List[A.For]:
        if not chains:
            return []
        prefix = list(chains[0])
        for c in chains[1:]:
            k = 0
            while k < len(prefix) and k < len(c) and prefix[k] is c[k]:
                k += 1
            prefix = prefix[:k]
        return prefix

    def _iteration_fresh(self, v: str, body: List[A.Stmt]) -> bool:
        """True when no path through one iteration reads ``v`` first."""
        return self._fresh_seq(v, body, written=False)[0]

    def _fresh_seq(self, v, stmts, written) -> Tuple[bool, bool]:
        """-> (ok, definitely-written-after)."""
        for st in stmts:
            if isinstance(st, A.Assign):
                if not written and self._reads(v, st.value):
                    return False, written
                if isinstance(st.target, A.ArrayRef):
                    if not written and any(
                        self._reads(v, ix) for ix in st.target.indices
                    ):
                        return False, written
                elif st.target.name == v:
                    written = True
            elif isinstance(st, A.ExprStmt):
                if not written and self._reads(v, st.expr):
                    return False, written
            elif isinstance(st, A.If):
                if not written and self._reads(v, st.cond):
                    return False, written
                ok1, w1 = self._fresh_seq(v, st.then.stmts, written)
                ok2, w2 = (
                    self._fresh_seq(v, st.els.stmts, written)
                    if st.els is not None
                    else (True, written)
                )
                if not (ok1 and ok2):
                    return False, written
                written = w1 and w2
            elif isinstance(st, A.For):
                if not written and (
                    self._reads(v, st.init.init) or self._reads(v, st.cond.right)
                ):
                    return False, written
                ok, _ = self._fresh_seq(v, st.body.stmts, written)
                if not ok:
                    return False, written
                # the nested loop may run zero times: no definite write
        return True, written

    @staticmethod
    def _reads(v: str, e: A.Expr) -> bool:
        return any(isinstance(n, A.VarRef) and n.name == v for n in A.walk(e))


def build_class(
    fn_name: str, params: List[Tuple[str, A.Type]], lifted: LiftedBody
) -> Tuple[A.ClassDecl, Optional[A.PrimType]]:
    """Type a lifted body against a signature; emit the synthetic class.

    Returns ``(class_decl, return_type)`` where return_type is None for
    functions without a tail ``return expr``.
    """
    typer = _Typer(params, lifted)
    typer.infer()
    typer.check_defassign()
    typer.rewrite(lifted.stmts)
    typer.verify()
    body = typer.place_decls()
    method = A.Method(
        _P0,
        fn_name,
        A.VOID,
        [A.Param(_P0, t, n) for n, t in params],
        A.Block(_P0, body),
    )
    cls = A.ClassDecl(_P0, f"Jit_{fn_name}", [method])
    ret_t = typer.env.get(RET_NAME) if lifted.has_ret else None
    return cls, ret_t
