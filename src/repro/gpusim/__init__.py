"""Simulated GPU: device memory, warps, kernel launch engine."""

from .device import GpuDevice, LaunchResult
from .memory import DeviceAllocation, DeviceMemory, TransferStats
from .warp import Warp, iter_warp_spans, partition_warps, warp_of

__all__ = [
    "DeviceAllocation",
    "DeviceMemory",
    "GpuDevice",
    "LaunchResult",
    "TransferStats",
    "Warp",
    "iter_warp_spans",
    "partition_warps",
    "warp_of",
]
