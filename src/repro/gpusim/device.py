"""The simulated GPU device: kernel launches over warps of lanes.

A launch executes the kernel IR once per iteration index ("the loop index
is remapped to the CUDA thread ID").  Execution is *functional* — lanes
really compute — and *metered* — dynamic work counts are converted to
simulated kernel time by the cost model.  Three launch modes correspond
to the three device-side execution styles in the paper:

``buffered``
    SE-phase style: per-lane write buffers + read/write logs
    (:class:`SpeculativeBackend`).  Used by GPU-TLS, privatization, and
    by DOALL execution (whose commit is trivially safe).
``tracing``
    Profiling instrumentation: direct writes plus a full address trace
    (:class:`TracingBackend`) — but against a scratch copy of memory, as
    the profiler must not perturb program state.
``direct``
    Straight execution; uses the vectorized fast path when the kernel is
    straight-line.  Only safe for loops proven DOALL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from ..errors import (
    DeviceMemoryFault,
    LaunchError,
    LaunchFault,
    WatchdogTimeout,
)
from ..faults.plane import SITE_GPU_HANG, SITE_GPU_LAUNCH
from ..faults.resilience import FaultRuntime
from ..ir.instructions import IRFunction, stored_arrays
from ..ir.interpreter import (
    ArrayStorage,
    Counts,
    LaneSpecState,
)
from ..ir.columnar import ColumnarLanes
from ..ir.native import KernelDispatcher
from ..ir.vectorizer import can_vectorize
from ..obs.metrics import NULL_INSTRUMENTATION, Instrumentation
from ..runtime.costmodel import CostModel
from ..runtime.platform import GpuSpec
from .memory import DeviceMemory
from .warp import Warp, divergence_factor, partition_warps


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    counts: Counts
    sim_time_s: float
    n_threads: int
    warps: list[Warp]
    #: lock-step SIMD divergence penalty measured for this launch
    divergence: float = 1.0
    #: per-iteration speculative state (buffered mode only); either a
    #: plain dict or a :class:`ColumnarLanes` view (same Mapping protocol)
    lanes: Mapping[int, LaneSpecState] = field(default_factory=dict)
    #: per-iteration address traces (tracing mode only)
    traces: dict[int, list] = field(default_factory=dict)
    vectorized: bool = False


class GpuDevice:
    """One simulated GPU with its allocation table and launch engine."""

    def __init__(
        self,
        spec: GpuSpec,
        cost: CostModel,
        faults: Optional[FaultRuntime] = None,
        obs: Optional[Instrumentation] = None,
        device_id: int = 0,
        kernels: Optional[KernelDispatcher] = None,
    ):
        self.spec = spec
        self.cost = cost
        self.faults = faults
        self.obs = obs or NULL_INSTRUMENTATION
        self.device_id = device_id
        self.memory = DeviceMemory(
            faults=faults, obs=self.obs, device_id=device_id
        )
        #: tiered kernel backend; every device of a pool and the CPU
        #: executor share one dispatcher (compile once per process), and
        #: all artifacts are keyed by content fingerprint, not id(fn)
        self.kernels = kernels or KernelDispatcher(obs=self.obs)
        #: columnar fast path for buffered launches; tests/benches flip
        #: this off to exercise the scalar oracle end to end
        self.columnar_profiling: bool = True

    @property
    def native_crosscheck(self) -> bool:
        """Replay native-tier executions through the interpreter oracle.

        Same pattern as the ``*_scalar`` cross-checks: tests/benches flip
        this on to verify the generated tiers bit-for-bit end to end.
        The flag lives on the shared dispatcher, so setting it on any
        device of a pool covers the whole context.
        """
        return self.kernels.crosscheck

    @native_crosscheck.setter
    def native_crosscheck(self, value: bool) -> None:
        self.kernels.crosscheck = bool(value)

    # -- launches -------------------------------------------------------

    def launch(
        self,
        fn: IRFunction,
        indices: Sequence[int],
        scalar_env: dict[str, object],
        storage: ArrayStorage,
        mode: str = "buffered",
        coalescing: float = 1.0,
        elem_bytes: float = 8.0,
        check_allocations: bool = True,
        block_size: Optional[int] = None,
    ) -> LaunchResult:
        """Execute ``fn`` for every index in ``indices`` as one kernel.

        ``block_size`` is the CUDA threads-per-block of the launch (the
        annotation's ``threads(n)`` clause); a block size that is not a
        multiple of the warp size wastes the padding lanes of its last
        warp, modelled as a compute inflation factor.
        """
        indices = list(indices)
        if block_size is not None and block_size <= 0:
            raise LaunchError(f"invalid block size {block_size}")
        penalty_s = self._fault_preamble(fn, check_allocations)
        warps = partition_warps(indices, self.spec.warp_size)

        if mode == "direct":
            return self._launch_direct(
                fn, indices, scalar_env, storage, warps, coalescing,
                elem_bytes, mark_writes=check_allocations,
                block_size=block_size, penalty_s=penalty_s,
            )
        if mode == "buffered":
            if self.columnar_profiling and can_vectorize(fn) and indices:
                return self._launch_buffered_vectorized(
                    fn, indices, scalar_env, storage, warps, coalescing,
                    elem_bytes, check_allocations, block_size, penalty_s,
                )
            per_lane, aux = self.kernels.run_buffered(
                fn, indices, scalar_env, storage
            )
        elif mode == "tracing":
            per_lane, aux = self.kernels.run_tracing(
                fn, indices, scalar_env, storage
            )
        else:
            raise LaunchError(f"unknown launch mode {mode!r}")

        counts = self.kernels.take_counts(fn)
        div = divergence_factor(per_lane, self.spec.warp_size)
        div *= self._block_padding(block_size)
        sim_time = penalty_s + self.cost.gpu_kernel_time(
            counts, len(indices), coalescing=coalescing,
            elem_bytes=elem_bytes, divergence=div,
        )
        result = LaunchResult(counts, sim_time, len(indices), warps, divergence=div)
        if mode == "buffered":
            result.lanes = (
                ColumnarLanes.from_states(aux, indices)
                if self.columnar_profiling
                else aux
            )
        else:
            result.traces = aux
        if check_allocations:
            self._mark_writes(fn)
        self._record_launch(mode, len(indices), div, sim_time, False)
        return result

    def _launch_buffered_vectorized(
        self,
        fn: IRFunction,
        indices: list[int],
        scalar_env: dict[str, object],
        storage: ArrayStorage,
        warps: list[Warp],
        coalescing: float,
        elem_bytes: float,
        check_allocations: bool,
        block_size: Optional[int],
        penalty_s: float,
    ) -> LaunchResult:
        """Speculative (SE-phase) launch of a straight-line kernel, all
        lanes at once.  Straight-line bodies have uniform per-lane work,
        so the measured divergence factor is exactly 1."""
        counts, lanes = self.kernels.cache.specvec(fn).run_buffered(
            storage, scalar_env, np.asarray(indices, dtype=np.int64)
        )
        div = self._block_padding(block_size)
        sim_time = penalty_s + self.cost.gpu_kernel_time(
            counts, len(indices), coalescing=coalescing,
            elem_bytes=elem_bytes, divergence=div,
        )
        result = LaunchResult(
            counts, sim_time, len(indices), warps, divergence=div,
            vectorized=True,
        )
        result.lanes = lanes
        if check_allocations:
            self._mark_writes(fn)
        self._record_launch("buffered", len(indices), div, sim_time, True)
        return result

    def _launch_direct(
        self,
        fn: IRFunction,
        indices: list[int],
        scalar_env: dict[str, object],
        storage: ArrayStorage,
        warps: list[Warp],
        coalescing: float,
        elem_bytes: float,
        mark_writes: bool = True,
        block_size: Optional[int] = None,
        penalty_s: float = 0.0,
    ) -> LaunchResult:
        div = self._block_padding(block_size)
        if can_vectorize(fn) and indices:
            # straight-line bodies have uniform lanes: divergence = 1
            counts = self.kernels.cache.vectorized(fn).run_range(
                storage, scalar_env, np.asarray(indices, dtype=np.int64)
            )
            vectorized = True
        else:
            per_lane = self.kernels.run_direct(
                fn, indices, scalar_env, storage
            )
            counts = self.kernels.take_counts(fn)
            div *= divergence_factor(per_lane, self.spec.warp_size)
            vectorized = False
        sim_time = penalty_s + self.cost.gpu_kernel_time(
            counts, len(indices), coalescing=coalescing,
            elem_bytes=elem_bytes, divergence=div,
        )
        if mark_writes:
            self._mark_writes(fn)
        self._record_launch("direct", len(indices), div, sim_time, vectorized)
        return LaunchResult(
            counts, sim_time, len(indices), warps, vectorized=vectorized,
            divergence=div,
        )

    def _record_launch(
        self, mode: str, n: int, div: float, sim_time: float, vectorized: bool
    ) -> None:
        m = self.obs.metrics
        m.counter("gpu.launches").inc()
        m.counter(f"gpu.launches.{mode}").inc()
        m.counter(f"gpu.launches.d{self.device_id}").inc()
        m.counter("gpu.threads").inc(n)
        m.counter("gpu.kernel_s").inc(sim_time)
        m.histogram("gpu.divergence").observe(div)
        if vectorized:
            m.counter("gpu.vectorized_launches").inc()

    # -- resilience --------------------------------------------------------

    def _fault_preamble(self, fn: IRFunction, check_allocations: bool) -> float:
        """Allocation checks + injected-fault gate before a launch.

        With no fault plane this reduces to the original allocation check
        and returns 0.  Under injection the gate retries transient launch
        faults with exponential backoff, charges the watchdog window for
        hung kernels, and re-validates corrupted allocation-table entries
        (a full re-transfer of the affected arrays).  Returns the
        simulated seconds consumed before the kernel finally ran; raises
        the last typed error once the retry budget is exhausted.

        Faults are injected strictly *before* any lane executes, so a
        failed launch never leaves partial writes behind.
        """
        faults = self.faults
        if faults is None or not faults.enabled:
            if check_allocations:
                self._check_allocations(fn)
            return 0.0
        policy = faults.policy
        penalty = 0.0
        retries = 0
        while True:
            try:
                if check_allocations:
                    self._check_allocations(fn)
                if faults.probe(SITE_GPU_LAUNCH, self.device_id) is not None:
                    raise LaunchFault(
                        "injected kernel launch failure",
                        site=SITE_GPU_LAUNCH,
                        at_s=faults.recorder.clock_s,
                        injected=True,
                    )
                if faults.probe(SITE_GPU_HANG, self.device_id) is not None:
                    raise WatchdogTimeout(
                        "injected kernel hang",
                        site=SITE_GPU_HANG,
                        at_s=faults.recorder.clock_s,
                        injected=True,
                    )
                return penalty
            except (LaunchFault, WatchdogTimeout, DeviceMemoryFault) as err:
                if not err.injected:
                    raise
                if isinstance(err, WatchdogTimeout):
                    # the kernel sat hung for the whole watchdog window
                    penalty += policy.watchdog_timeout_s
                    action = "watchdog-kill"
                elif isinstance(err, DeviceMemoryFault):
                    moved = self.memory.revalidate(
                        arr.name for arr in fn.arrays
                    )
                    penalty += self.cost.transfer_time(moved, asynchronous=False)
                    action = "revalidate"
                else:
                    action = "relaunch"
                if retries >= policy.max_retries:
                    raise type(err)(
                        f"GPU gave up after {retries + 1} attempts: {err}",
                        site=err.site,
                        at_s=faults.recorder.clock_s,
                        retries=retries + 1,
                    )
                backoff = faults.backoff_for(err.site, retries)
                penalty += backoff
                faults.recovered(
                    err.site, action, penalty_s=backoff, retries=retries + 1,
                )
                m = self.obs.metrics
                m.counter("resilience.retry.attempts").inc()
                m.counter("resilience.backoff_s").inc(backoff)
                retries += 1

    # -- helpers -----------------------------------------------------------

    def _block_padding(self, block_size: Optional[int]) -> float:
        """Compute inflation from a block size that pads its last warp."""
        if block_size is None:
            return 1.0
        wsize = self.spec.warp_size
        padded = -(-block_size // wsize) * wsize
        return padded / block_size

    def _check_allocations(self, fn: IRFunction) -> None:
        written = stored_arrays(fn)
        for arr in fn.arrays:
            self.memory.require(arr.name, for_read=arr.name not in written)

    def _mark_writes(self, fn: IRFunction) -> None:
        for name in stored_arrays(fn):
            self.memory.mark_written(name)

    def commit_lanes(
        self,
        lanes: Mapping[int, LaneSpecState],
        storage: ArrayStorage,
        iterations: Sequence[int],
    ) -> int:
        """Commit buffered writes to memory in iteration order.

        Returns the number of cells written.  Iteration-order commit makes
        last-writer-wins match sequential semantics for overlapping writes
        (the privatization copy-back rule).
        """
        if isinstance(lanes, ColumnarLanes):
            cells, _nbytes = lanes.commit(storage, sorted(iterations))
            return cells
        written = 0
        for i in sorted(iterations):
            state = lanes.get(i)
            if state is None:
                continue
            for (name, flat), value in state.buffer.items():
                storage.write_flat(name, flat, value)
                written += 1
        return written


