"""Simulated device global memory.

Tracks allocations, validity and transfer byte counts for the simulated
GPU.  Functional array state lives in the host :class:`ArrayStorage`
(kernels read host data through buffered backends and commit write sets
back), but every kernel launch is checked against this allocation table —
a kernel touching an array that was never ``copyin``'d or ``create``'d
faults, exactly like dereferencing an unallocated device pointer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import DeviceMemoryFault, MemoryFault
from ..faults.plane import (
    SITE_GPU_MEMORY,
    SITE_TRANSFER_D2H,
    SITE_TRANSFER_H2D,
)
from ..faults.resilience import FaultRuntime
from ..obs.metrics import NULL_INSTRUMENTATION, Instrumentation


@dataclass
class DeviceAllocation:
    """One device-resident array."""

    name: str
    shape: tuple[int, ...]
    dtype: np.dtype
    #: True once host data has been copied in (reads are meaningful).
    valid: bool = False
    #: Fraction of the device copy that is out of date w.r.t. the host
    #: (1.0 = all of it).  The sharing runtime's communication optimizer
    #: transfers only the stale fraction on re-entry, which is how it
    #: "removes cyclic communication" across repeated loop dispatches.
    stale_fraction: float = 1.0

    @property
    def nbytes(self) -> int:
        size = 1
        for d in self.shape:
            size *= d
        return size * self.dtype.itemsize


@dataclass
class TransferStats:
    """Accumulated host<->device traffic."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_count: int = 0
    d2h_count: int = 0


class DeviceMemory:
    """Allocation table + transfer accounting for one simulated device."""

    def __init__(
        self,
        capacity_bytes: int = 3 * 1024**3,
        faults: Optional[FaultRuntime] = None,
        obs: Optional[Instrumentation] = None,
        device_id: int = 0,
    ):
        self.capacity_bytes = capacity_bytes
        self.allocations: dict[str, DeviceAllocation] = {}
        self.stats = TransferStats()
        self.faults = faults
        self.obs = obs or NULL_INSTRUMENTATION
        self.device_id = device_id

    def _faults_on(self) -> bool:
        return self.faults is not None and self.faults.enabled

    @property
    def allocated_bytes(self) -> int:
        return sum(a.nbytes for a in self.allocations.values())

    def alloc(self, name: str, shape: tuple[int, ...], dtype) -> DeviceAllocation:
        """``create`` clause: allocate without copying."""
        if name in self.allocations:
            raise MemoryFault(f"array {name!r} already allocated on device")
        allocation = DeviceAllocation(name, tuple(shape), np.dtype(dtype))
        if self.allocated_bytes + allocation.nbytes > self.capacity_bytes:
            raise MemoryFault(
                f"device out of memory allocating {name!r} "
                f"({allocation.nbytes} bytes)"
            )
        self.allocations[name] = allocation
        return allocation

    def free(self, name: str) -> None:
        if name not in self.allocations:
            raise MemoryFault(f"array {name!r} is not allocated on device")
        del self.allocations[name]

    def free_all(self) -> None:
        self.allocations.clear()

    def require(self, name: str, for_read: bool = True) -> DeviceAllocation:
        """Fault unless ``name`` is allocated (and valid when read)."""
        allocation = self.allocations.get(name)
        if allocation is None:
            raise MemoryFault(
                f"kernel accesses array {name!r} which was never allocated "
                f"on the device (missing copyin/create clause?)"
            )
        if self._faults_on() and (
            self.faults.probe(SITE_GPU_MEMORY, self.device_id) is not None
        ):
            # injected table corruption: the entry is no longer trusted
            # until a re-validation transfer refreshes it
            allocation.valid = False
            raise DeviceMemoryFault(
                f"device allocation-table entry for {name!r} corrupted",
                site=SITE_GPU_MEMORY,
                at_s=self.faults.recorder.clock_s,
                injected=True,
            )
        if for_read and not allocation.valid:
            raise MemoryFault(
                f"kernel reads array {name!r} before any copyin "
                f"(device data is uninitialized)"
            )
        return allocation

    # -- transfers -----------------------------------------------------------

    def copyin(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype,
        nbytes: Optional[int] = None,
    ) -> int:
        """Host -> device copy; allocates on first touch.

        Returns the bytes actually moved: under fault injection a failed
        transfer is re-issued (bounded by the resilience policy), so the
        returned byte count — which callers convert into simulated
        transfer time — already includes every re-issue.
        """
        allocation = self.allocations.get(name)
        if allocation is None:
            allocation = self.alloc(name, shape, dtype)
        moved = allocation.nbytes if nbytes is None else nbytes
        if self._faults_on():
            moved = self.faults.charge_transfer(
                SITE_TRANSFER_H2D, moved, self.device_id
            )
        allocation.valid = True
        self.stats.h2d_bytes += moved
        self.stats.h2d_count += 1
        m = self.obs.metrics
        m.counter("transfer.h2d.bytes").inc(moved)
        m.counter("transfer.h2d.count").inc()
        return moved

    def copyout(self, name: str, nbytes: Optional[int] = None) -> int:
        """Device -> host copy. Returns bytes (including re-issues)."""
        allocation = self.require(name, for_read=False)
        moved = allocation.nbytes if nbytes is None else nbytes
        if self._faults_on():
            moved = self.faults.charge_transfer(
                SITE_TRANSFER_D2H, moved, self.device_id
            )
        self.stats.d2h_bytes += moved
        self.stats.d2h_count += 1
        m = self.obs.metrics
        m.counter("transfer.d2h.bytes").inc(moved)
        m.counter("transfer.d2h.count").inc()
        return moved

    def revalidate(self, names) -> int:
        """Re-validate corrupted table entries; returns bytes re-moved.

        The recovery path after an injected :class:`DeviceMemoryFault`:
        every named allocation that lost its ``valid`` bit is refreshed
        from the host (a full re-transfer, charged to the caller through
        the returned byte count).  No fault probing happens here — this
        *is* the recovery transfer.
        """
        moved = 0
        for name in names:
            allocation = self.allocations.get(name)
            if allocation is not None and not allocation.valid:
                allocation.valid = True
                moved += allocation.nbytes
                self.stats.h2d_bytes += allocation.nbytes
                self.stats.h2d_count += 1
        if moved:
            m = self.obs.metrics
            m.counter("transfer.h2d.bytes").inc(moved)
            m.counter("transfer.revalidated.bytes").inc(moved)
        return moved

    def mark_written(self, name: str) -> None:
        """A kernel wrote this array; the device copy becomes the
        authoritative version (valid, nothing stale)."""
        allocation = self.require(name, for_read=False)
        allocation.valid = True
        allocation.stale_fraction = 0.0
