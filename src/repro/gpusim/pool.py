"""Multi-GPU device pool.

A pool is N simulated :class:`~repro.gpusim.device.GpuDevice` instances
with (mildly) heterogeneous clocks and memory bandwidths, as found in
real multi-GPU boxes where card bins and PCIe topology differ.  Device 0
is the *primary* device — the same object single-device code paths use —
so a pool of size 1 is behaviourally identical to the seed runtime:
identical cost model, identical fault-probe order, identical timeline.

The pool is deliberately dumb: it owns the devices, their per-device
cost models, and liveness bookkeeping (a device killed by the fault
plane is marked dead and excluded from placement until revived).  All
placement policy lives in :mod:`repro.scheduler.sharding`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..faults.resilience import FaultRuntime
from ..ir.native import KernelDispatcher
from ..obs.metrics import NULL_INSTRUMENTATION, Instrumentation
from ..runtime.costmodel import CostModel
from ..runtime.platform import GpuSpec, Platform
from .device import GpuDevice

#: Per-device clock / bandwidth factors, cycled by device id.  Device 0
#: is always 1.0/1.0 (it *is* the calibrated paper device); later devices
#: model bin spread across otherwise-identical cards.
HETERO_FREQ_FACTORS = (1.0, 0.85, 1.1, 0.95)
HETERO_BW_FACTORS = (1.0, 0.9, 1.05, 1.0)


def pool_spec(base: GpuSpec, device_id: int) -> GpuSpec:
    """The spec of pool device ``device_id`` derived from the base card."""
    f = HETERO_FREQ_FACTORS[device_id % len(HETERO_FREQ_FACTORS)]
    b = HETERO_BW_FACTORS[device_id % len(HETERO_BW_FACTORS)]
    if f == 1.0 and b == 1.0:
        return base
    return replace(
        base,
        freq_ghz=base.freq_ghz * f,
        mem_bandwidth_gbps=base.mem_bandwidth_gbps * b,
    )


class DevicePool:
    """N simulated GPUs sharing one fault plane and one metrics plane.

    ``primary`` and ``primary_cost`` are the context's existing device-0
    objects: reusing them (rather than building a parallel device 0)
    keeps every single-device code path — profiling, TLS, the mode-B/C/D
    engines — bit-for-bit identical to the seed runtime.
    """

    def __init__(
        self,
        primary: GpuDevice,
        primary_cost: CostModel,
        platform: Platform,
        size: int = 1,
        faults: Optional[FaultRuntime] = None,
        obs: Optional[Instrumentation] = None,
        kernels: Optional[KernelDispatcher] = None,
    ):
        if size < 1:
            raise ValueError(f"device pool needs >= 1 device, got {size}")
        self.platform = platform
        obs = obs or NULL_INSTRUMENTATION
        # every pool device shares the primary's dispatcher: one compile
        # per kernel fingerprint for the whole pool, not one per device
        kernels = kernels or primary.kernels
        self.devices: list[GpuDevice] = [primary]
        self.costs: list[CostModel] = [primary_cost]
        for k in range(1, size):
            spec = pool_spec(platform.gpu, k)
            cost = CostModel(
                platform.with_(gpu=spec),
                work_scale=primary_cost.work_scale,
                byte_scale=primary_cost.byte_scale,
                iter_scale=primary_cost.iter_scale,
                link_scale=primary_cost.link_scale,
            )
            self.devices.append(
                GpuDevice(spec, cost, faults=faults, obs=obs, device_id=k,
                          kernels=kernels)
            )
            self.costs.append(cost)
        self._dead: set[int] = set()

    # -- topology --------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.devices)

    @property
    def primary(self) -> GpuDevice:
        return self.devices[0]

    def device(self, device_id: int) -> GpuDevice:
        return self.devices[device_id]

    def cost_of(self, device_id: int) -> CostModel:
        return self.costs[device_id]

    def signature(self) -> str:
        """Content signature of the pool topology (for cache keys)."""
        return repr([(d.device_id, d.spec) for d in self.devices])

    # -- liveness --------------------------------------------------------

    def is_alive(self, device_id: int) -> bool:
        return device_id not in self._dead

    def alive_ids(self) -> list[int]:
        return [k for k in range(self.size) if k not in self._dead]

    def mark_dead(self, device_id: int) -> None:
        """Exclude a device from placement (fault plane killed it)."""
        self._dead.add(device_id)

    def revive_all(self) -> None:
        self._dead.clear()

    # -- throughput ------------------------------------------------------

    def weight(self, device_id: int) -> float:
        """Relative shard weight of a device: ``C_k * F_k`` (the same
        core-count x frequency convention the paper's boundary uses)."""
        spec = self.devices[device_id].spec
        return spec.cores * spec.freq_ghz

    def alive_weight(self) -> float:
        return sum(self.weight(k) for k in self.alive_ids())

    def sharing_boundary(self) -> float:
        """Generalized paper boundary: ``sum(Ci*Fi) / (sum + Cc*Fc)``.

        At pool size 1 with every device alive this is exactly
        :meth:`Platform.sharing_boundary`.
        """
        gpus = self.alive_weight()
        cpu = self.platform.cpu.cores * self.platform.cpu.freq_ghz
        if gpus <= 0:
            return 0.0
        return gpus / (gpus + cpu)

    def reset_memory(self) -> None:
        """Fresh allocation tables everywhere + revive dead devices."""
        for d in self.devices:
            d.memory.free_all()
        self.revive_all()
