"""Warp organization: iteration indices -> warps of lock-step lanes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence


@dataclass(frozen=True)
class Warp:
    """A warp: up to ``warp_size`` consecutive iterations."""

    id: int
    indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)

    @property
    def first(self) -> int:
        return self.indices[0]

    @property
    def last(self) -> int:
        return self.indices[-1]


def partition_warps(
    indices: Sequence[int], warp_size: int = 32
) -> list[Warp]:
    """Group an iteration list into warps of consecutive lanes."""
    if warp_size <= 0:
        raise ValueError("warp_size must be positive")
    warps = []
    for k in range(0, len(indices), warp_size):
        warps.append(Warp(k // warp_size, tuple(indices[k : k + warp_size])))
    return warps


def warp_of(position: int, warp_size: int = 32) -> int:
    """Warp id for a lane position within a launch."""
    return position // warp_size


def iter_warp_spans(
    n: int, warp_size: int = 32
) -> Iterator[tuple[int, int, int]]:
    """Yield ``(warp_id, start, stop)`` lane-position spans for n lanes."""
    for wid, start in enumerate(range(0, n, warp_size)):
        yield wid, start, min(start + warp_size, n)


def divergence_factor(
    lane_instructions: Sequence[int], warp_size: int = 32
) -> float:
    """SIMD divergence penalty of a launch.

    In lock-step execution a warp is busy for as long as its slowest
    lane, so the issue slots charged are ``sum over warps of
    (max lane count) * (lanes in warp)``; the factor is that total over
    the useful work.  1.0 = perfectly uniform lanes; a warp whose lanes
    execute wildly different instruction counts pays proportionally.
    """
    total = sum(lane_instructions)
    if total <= 0:
        return 1.0
    charged = 0
    for _wid, start, stop in iter_warp_spans(len(lane_instructions), warp_size):
        lanes = lane_instructions[start:stop]
        charged += max(lanes) * len(lanes)
    return charged / total
