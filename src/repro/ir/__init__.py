"""Kernel IR: instructions, lowering from the AST, and interpreters."""

from .builder import IRBuilder
from .instructions import (
    ArrayParam,
    Block,
    Instr,
    IRFunction,
    JType,
    Opcode,
    Reg,
    ScalarParam,
    jtype_of_prim,
)
from .interpreter import (
    AccessRecord,
    ArrayStorage,
    CompiledKernel,
    Counts,
    DirectBackend,
    FuelExhausted,
    SpeculativeBackend,
    TracingBackend,
    run_sequential,
)
from .lower import length_param, lower_loop_body, promote
from .vectorizer import VectorizedKernel, can_vectorize

__all__ = [
    "AccessRecord",
    "ArrayParam",
    "ArrayStorage",
    "Block",
    "CompiledKernel",
    "Counts",
    "DirectBackend",
    "FuelExhausted",
    "IRBuilder",
    "IRFunction",
    "Instr",
    "JType",
    "Opcode",
    "Reg",
    "ScalarParam",
    "SpeculativeBackend",
    "TracingBackend",
    "VectorizedKernel",
    "can_vectorize",
    "jtype_of_prim",
    "length_param",
    "lower_loop_body",
    "promote",
    "run_sequential",
]
