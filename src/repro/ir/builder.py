"""IRBuilder: convenience layer for constructing :class:`IRFunction`s."""

from __future__ import annotations

from typing import Optional

from ..errors import LoweringError
from .instructions import (
    ArrayParam,
    Block,
    Instr,
    IRFunction,
    JType,
    Opcode,
    Reg,
    ScalarParam,
)


class IRBuilder:
    """Accumulates blocks and instructions with an insertion point."""

    def __init__(self, name: str):
        self.name = name
        self._next_reg = 0
        self._next_block = 0
        self.blocks: list[Block] = []
        self.current: Optional[Block] = None
        self.scalars: list[ScalarParam] = []
        self.arrays: list[ArrayParam] = []
        self.scalar_regs: dict[str, Reg] = {}
        self.index: Optional[Reg] = None

    # -- structure ------------------------------------------------------

    def new_reg(self, jtype: JType, name: str = "") -> Reg:
        reg = Reg(self._next_reg, jtype, name)
        self._next_reg += 1
        return reg

    def new_block(self, hint: str = "bb") -> Block:
        blk = Block(f"{hint}{self._next_block}")
        self._next_block += 1
        self.blocks.append(blk)
        return blk

    def set_insert(self, blk: Block) -> None:
        self.current = blk

    def declare_index(self, name: str, jtype: JType = JType.INT) -> Reg:
        if self.index is not None:
            raise LoweringError("index register already declared")
        self.index = self.new_reg(jtype, name)
        return self.index

    def declare_scalar(self, name: str, jtype: JType) -> Reg:
        if name in self.scalar_regs:
            raise LoweringError(f"scalar {name!r} declared twice")
        reg = self.new_reg(jtype, name)
        self.scalars.append(ScalarParam(name, jtype))
        self.scalar_regs[name] = reg
        return reg

    def declare_array(self, name: str, elem: JType, dims: int) -> None:
        if any(a.name == name for a in self.arrays):
            raise LoweringError(f"array {name!r} declared twice")
        self.arrays.append(ArrayParam(name, elem, dims))

    # -- emission ------------------------------------------------------

    def _emit(self, instr: Instr) -> None:
        if self.current is None:
            raise LoweringError("no insertion block")
        if self.current.terminator is not None:
            raise LoweringError(
                f"emitting after terminator in block {self.current.name}"
            )
        self.current.instrs.append(instr)

    def const(self, value, jtype: JType) -> Reg:
        dst = self.new_reg(jtype)
        self._emit(Instr(Opcode.CONST, dst=dst, value=value))
        return dst

    def mov(self, dst: Reg, src: Reg) -> None:
        self._emit(Instr(Opcode.MOV, dst=dst, a=src))

    def bin(self, op: str, a: Reg, b: Reg, out_type: JType) -> Reg:
        dst = self.new_reg(out_type)
        self._emit(Instr(Opcode.BIN, dst=dst, binop=op, a=a, b=b))
        return dst

    def un(self, op: str, a: Reg, out_type: JType) -> Reg:
        dst = self.new_reg(out_type)
        self._emit(Instr(Opcode.UN, dst=dst, binop=op, a=a))
        return dst

    def cast(self, src: Reg, to: JType) -> Reg:
        if src.type is to:
            return src
        dst = self.new_reg(to)
        self._emit(Instr(Opcode.CAST, dst=dst, a=src))
        return dst

    def load(self, array: str, idx: tuple[Reg, ...], elem: JType) -> Reg:
        dst = self.new_reg(elem)
        self._emit(Instr(Opcode.LOAD, dst=dst, array=array, idx=idx))
        return dst

    def store(self, array: str, idx: tuple[Reg, ...], src: Reg) -> None:
        self._emit(Instr(Opcode.STORE, array=array, idx=idx, a=src))

    def call(self, intrinsic: str, args: tuple[Reg, ...], out_type: JType) -> Reg:
        dst = self.new_reg(out_type)
        self._emit(Instr(Opcode.CALL, dst=dst, intrinsic=intrinsic, args=args))
        return dst

    def br(self, target: Block) -> None:
        self._emit(Instr(Opcode.BR, target=target.name))

    def cbr(self, cond: Reg, then: Block, els: Block) -> None:
        self._emit(
            Instr(Opcode.CBR, a=cond, target=then.name, else_target=els.name)
        )

    def ret(self) -> None:
        self._emit(Instr(Opcode.RET))

    # -- finish -----------------------------------------------------------

    def finish(self) -> IRFunction:
        if self.index is None:
            raise LoweringError("kernel has no index register")
        fn = IRFunction(
            name=self.name,
            index=self.index,
            scalars=list(self.scalars),
            arrays=list(self.arrays),
            blocks=list(self.blocks),
            scalar_regs=dict(self.scalar_regs),
            num_regs=self._next_reg,
        )
        fn.validate()
        return fn
