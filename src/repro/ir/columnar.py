"""Columnar speculative-access logs (the profiling fast path).

A buffered launch over ``n`` lanes produces, per lane, a write buffer
plus read/write logs.  The scalar representation — one
:class:`LaneSpecState` with Python ``AccessRecord`` lists per lane — is
what the interpreter naturally emits, but every analysis over it
(density, coalescing, stride compression, dependency checking, commit)
then crawls Python objects.  :class:`ColumnarLanes` stores the same
information as NumPy columns:

* ``order``/``present`` — iteration id per lane *position* and whether
  the lane ran;
* read/write columns ``(pos, op, array_id, flat)`` sorted by
  ``(pos, op)`` — i.e. grouped per lane in log order;
* per-array buffer columns ``(pos, flat, value)`` with one row per
  final buffered cell, sorted by ``(pos, flat)``.

It also implements the ``Mapping[int, LaneSpecState]`` protocol so every
scalar consumer keeps working unchanged: logs built by the scalar
backend keep their original states (``from_states``), logs built by the
vectorized SE kernel materialize states on demand.

Invariant relied upon by the columnar analyses: within a lane the log
lists are op-ascending (both backends append with a monotonically
increasing op counter).
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence

import numpy as np

from .interpreter import AccessRecord, ArrayStorage, LaneSpecState

_EMPTY = np.empty(0, dtype=np.int64)


def _as_order_array(iteration_order) -> np.ndarray:
    if isinstance(iteration_order, np.ndarray):
        return iteration_order.astype(np.int64, copy=False)
    return np.fromiter(iteration_order, dtype=np.int64)


class ColumnarLanes(Mapping):
    """Columnar per-lane speculative state of one buffered launch."""

    def __init__(
        self,
        order: np.ndarray,
        present: np.ndarray,
        names: list[str],
        reads: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        writes: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        buffers: Optional[dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]]],
        op_total: Optional[int] = None,
        states: Optional[Mapping[int, LaneSpecState]] = None,
    ):
        self.order = order
        self.present = present
        self.names = names
        self.r_pos, self.r_op, self.r_arr, self.r_flat = reads
        self.w_pos, self.w_op, self.w_arr, self.w_flat = writes
        #: array_id -> (pos, flat, value) final buffered cells, unique per
        #: (pos, flat), sorted by (pos, flat); None when only scalar
        #: states carry the buffers (``from_states`` construction)
        self.buffers = buffers
        self._op_total = op_total
        self._states = dict(states) if states is not None else None
        self._pos_of: Optional[dict[int, int]] = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_states(
        cls,
        states: Mapping[int, LaneSpecState],
        iteration_order: Sequence[int],
    ) -> "ColumnarLanes":
        """Wrap scalar backend output (log lists must be op-ascending)."""
        order = _as_order_array(iteration_order)
        n = len(order)
        present = np.zeros(n, dtype=bool)
        names: list[str] = []
        aid: dict[str, int] = {}
        r_cols: tuple[list, list, list, list] = ([], [], [], [])
        w_cols: tuple[list, list, list, list] = ([], [], [], [])
        for p in range(n):
            state = states.get(int(order[p]))
            if state is None:
                continue
            present[p] = True
            for rec in state.reads:
                a = aid.get(rec.array)
                if a is None:
                    a = aid[rec.array] = len(names)
                    names.append(rec.array)
                r_cols[0].append(p)
                r_cols[1].append(rec.op)
                r_cols[2].append(a)
                r_cols[3].append(rec.flat)
            for rec in state.writes:
                a = aid.get(rec.array)
                if a is None:
                    a = aid[rec.array] = len(names)
                    names.append(rec.array)
                w_cols[0].append(p)
                w_cols[1].append(rec.op)
                w_cols[2].append(a)
                w_cols[3].append(rec.flat)

        def cols(raw):
            return tuple(np.array(c, dtype=np.int64) for c in raw)

        # the scan is position-major and each lane's list op-ascending,
        # so the columns are already (pos, op)-sorted
        return cls(
            order, present, names, cols(r_cols), cols(w_cols),
            buffers=None, states=states,
        )

    # -- Mapping protocol ------------------------------------------------

    def __len__(self) -> int:
        if self._states is not None:
            return len(self._states)
        return int(self.present.sum())

    def __iter__(self) -> Iterator[int]:
        if self._states is not None:
            return iter(self._states)
        return (int(it) for it in self.order[self.present])

    def __getitem__(self, iteration: int) -> LaneSpecState:
        if self._states is not None:
            return self._states[iteration]
        pos = self._position_of(iteration)
        if pos is None:
            raise KeyError(iteration)
        return self._materialize(pos)

    def _position_of(self, iteration: int) -> Optional[int]:
        if self._pos_of is None:
            self._pos_of = {
                int(it): p
                for p, it in enumerate(self.order)
                if self.present[p]
            }
        return self._pos_of.get(iteration)

    def _materialize(self, pos: int) -> LaneSpecState:
        names = self.names
        lo, hi = np.searchsorted(self.r_pos, [pos, pos + 1])
        reads = [
            AccessRecord(int(o), "R", names[a], int(f))
            for o, a, f in zip(
                self.r_op[lo:hi], self.r_arr[lo:hi], self.r_flat[lo:hi]
            )
        ]
        lo, hi = np.searchsorted(self.w_pos, [pos, pos + 1])
        writes = [
            AccessRecord(int(o), "W", names[a], int(f))
            for o, a, f in zip(
                self.w_op[lo:hi], self.w_arr[lo:hi], self.w_flat[lo:hi]
            )
        ]
        buffer: dict[tuple[str, int], object] = {}
        if self.buffers:
            for a_id, (b_pos, b_flat, b_val) in self.buffers.items():
                lo, hi = np.searchsorted(b_pos, [pos, pos + 1])
                name = names[a_id]
                for f, v in zip(b_flat[lo:hi], b_val[lo:hi]):
                    buffer[(name, int(f))] = v.item()
        return LaneSpecState(
            buffer=buffer, reads=reads, writes=writes,
            op=int(self._op_total or 0),
        )

    # -- fast-path queries ------------------------------------------------

    def matches_order(self, iteration_order) -> bool:
        """True when ``iteration_order`` equals the launch's lane order."""
        seq = _as_order_array(iteration_order)
        return seq.shape == self.order.shape and bool(
            np.array_equal(self.order, seq)
        )

    @property
    def n_positions(self) -> int:
        return len(self.order)

    @property
    def n_present(self) -> int:
        return int(self.present.sum())

    def logged_accesses(self) -> int:
        """Total logged reads + writes (the DD analysis input volume)."""
        return len(self.r_pos) + len(self.w_pos)

    def _wanted_mask(self, iterations) -> np.ndarray:
        wanted = np.unique(np.fromiter(iterations, dtype=np.int64))
        lane_wanted = np.isin(self.order, wanted)
        return lane_wanted & self.present

    def metadata_entries(self, iterations=None) -> int:
        if iterations is None:
            return self.logged_accesses()
        mask = self._wanted_mask(iterations)
        return int(mask[self.r_pos].sum() + mask[self.w_pos].sum())

    def buffered_cells(self) -> int:
        if self._states is not None:
            return sum(len(s.buffer) for s in self._states.values())
        assert self.buffers is not None
        return sum(len(b_pos) for b_pos, _f, _v in self.buffers.values())

    def buffered_bytes(self, storage: ArrayStorage, iterations=None) -> int:
        if self._states is not None:
            total = 0
            wanted = None if iterations is None else set(iterations)
            for it, state in self._states.items():
                if wanted is not None and it not in wanted:
                    continue
                for (name, _flat) in state.buffer:
                    total += storage.arrays[name].dtype.itemsize
            return total
        assert self.buffers is not None
        mask = None if iterations is None else self._wanted_mask(iterations)
        total = 0
        for a_id, (b_pos, _f, _v) in self.buffers.items():
            rows = len(b_pos) if mask is None else int(mask[b_pos].sum())
            total += rows * storage.arrays[self.names[a_id]].dtype.itemsize
        return total

    # -- commit -----------------------------------------------------------

    def commit(
        self, storage: ArrayStorage, iterations: Sequence[int]
    ) -> tuple[int, int]:
        """Apply buffers of ``iterations`` in the given sequential order.

        Returns ``(cells_written, bytes_written)``; the last lane (in the
        given order) to buffer a cell wins, matching the scalar commit.
        """
        if self._states is not None:
            cells = 0
            nbytes = 0
            for it in iterations:
                state = self._states.get(it)
                if state is None:
                    continue
                for (name, flat), value in state.buffer.items():
                    storage.write_flat(name, flat, value)
                    cells += 1
                    nbytes += storage.arrays[name].dtype.itemsize
            return cells, nbytes
        assert self.buffers is not None
        commit = np.fromiter(iterations, dtype=np.int64)
        if len(commit) == 0 or not self.buffers:
            return 0, 0
        # rank of each lane position in the commit sequence (-1 = skip)
        rank_of_pos = np.full(len(self.order), -1, dtype=np.int64)
        o_sort = np.argsort(self.order, kind="stable")
        idx = np.searchsorted(self.order[o_sort], commit)
        ok = idx < len(o_sort)
        cand = o_sort[idx[ok]]
        hit = (self.order[cand] == commit[ok]) & self.present[cand]
        rank_of_pos[cand[hit]] = np.nonzero(ok)[0][hit]
        cells = 0
        nbytes = 0
        for a_id, (b_pos, b_flat, b_val) in self.buffers.items():
            rank = rank_of_pos[b_pos]
            sel = rank >= 0
            rows = int(sel.sum())
            if rows == 0:
                continue
            f, r, v = b_flat[sel], rank[sel], b_val[sel]
            s = np.lexsort((r, f))
            f, v = f[s], v[s]
            last = np.ones(len(f), dtype=bool)
            last[:-1] = f[:-1] != f[1:]
            arr = storage.arrays[self.names[a_id]]
            arr.flat[f[last]] = v[last]
            cells += rows
            nbytes += rows * arr.dtype.itemsize
        return cells, nbytes


# ---------------------------------------------------------------------------
# Shared column kit for the vectorized analyses
# ---------------------------------------------------------------------------


def cell_keys(col: ColumnarLanes) -> tuple[np.ndarray, np.ndarray, int]:
    """Encode (array, flat) cells as single int64 keys for both logs.

    Returns ``(read_keys, write_keys, M)`` with ``key = array_id * M +
    flat``; ``key // M`` recovers the array id.
    """
    m = 0
    if len(col.r_flat):
        m = max(m, int(col.r_flat.max()))
    if len(col.w_flat):
        m = max(m, int(col.w_flat.max()))
    m += 1
    return col.r_arr * m + col.r_flat, col.w_arr * m + col.w_flat, m


def dedup_first(
    pos: np.ndarray, op: np.ndarray, key: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """First occurrence per (lane position, cell key), in scan order.

    The scalar analyses consider each cell once per iteration, keeping
    the first log entry; rows come in (pos, op)-sorted and leave the
    same way.
    """
    if len(pos) == 0:
        return pos, op, key
    s = np.lexsort((op, key, pos))
    p, o, k = pos[s], op[s], key[s]
    first = np.ones(len(p), dtype=bool)
    first[1:] = (p[1:] != p[:-1]) | (k[1:] != k[:-1])
    p, o, k = p[first], o[first], k[first]
    s2 = np.lexsort((o, p))
    return p[s2], o[s2], k[s2]


def first_seen_ranks(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rank cells by first appearance in a scan-ordered key column.

    Returns ``(uniq_sorted, rank)``: for the sorted unique keys, the
    order in which each was first seen — the insertion order of the
    scalar analysis' per-cell dicts.  Look up a key's rank with
    ``rank[np.searchsorted(uniq_sorted, key)]``.
    """
    uniq, first_idx = np.unique(keys, return_index=True)
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[np.argsort(first_idx, kind="stable")] = np.arange(len(uniq))
    return uniq, rank
