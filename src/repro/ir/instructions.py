"""Kernel IR: a typed register machine with basic blocks.

Annotated loop bodies are lowered to one :class:`IRFunction` per loop (the
"CUDA kernel body" of the paper's translator).  The same IR is interpreted
by the GPU simulator (one logical thread per iteration), by the CPU
executor (one thread per chunk of iterations), and by the sequential
reference interpreter, so functional results are comparable bit-for-bit.

Java numeric semantics are preserved: ``int``/``long`` wrap on overflow,
``/`` truncates toward zero, ``%`` follows the dividend's sign, and shifts
mask their count.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union


class JType(enum.Enum):
    """Value types carried by IR registers."""

    INT = "int"
    LONG = "long"
    FLOAT = "float"
    DOUBLE = "double"
    BOOL = "boolean"

    @property
    def is_integral(self) -> bool:
        return self in (JType.INT, JType.LONG, JType.BOOL)

    @property
    def is_floating(self) -> bool:
        return self in (JType.FLOAT, JType.DOUBLE)

    @property
    def numpy_dtype(self) -> str:
        return {
            JType.INT: "int32",
            JType.LONG: "int64",
            JType.FLOAT: "float32",
            JType.DOUBLE: "float64",
            JType.BOOL: "bool",
        }[self]


def jtype_of_prim(name: str) -> JType:
    """Map a mini-Java primitive type name to a :class:`JType`."""
    return {
        "int": JType.INT,
        "long": JType.LONG,
        "float": JType.FLOAT,
        "double": JType.DOUBLE,
        "boolean": JType.BOOL,
    }[name]


class Opcode(enum.Enum):
    CONST = "const"
    MOV = "mov"
    BIN = "bin"
    UN = "un"
    CAST = "cast"
    LOAD = "load"
    STORE = "store"
    CALL = "call"
    BR = "br"
    CBR = "cbr"
    RET = "ret"


#: Binary operators the BIN instruction accepts.
BIN_OPS = frozenset(
    {
        "+",
        "-",
        "*",
        "/",
        "%",
        "<<",
        ">>",
        ">>>",
        "&",
        "|",
        "^",
        "<",
        "<=",
        ">",
        ">=",
        "==",
        "!=",
    }
)

#: Unary operators the UN instruction accepts.
UN_OPS = frozenset({"-", "!", "~"})

#: Math intrinsics with their argument counts.
INTRINSICS = {
    "Math.sqrt": 1,
    "Math.exp": 1,
    "Math.log": 1,
    "Math.pow": 2,
    "Math.abs": 1,
    "Math.min": 2,
    "Math.max": 2,
    "Math.floor": 1,
    "Math.ceil": 1,
    "Math.sin": 1,
    "Math.cos": 1,
    "Math.tan": 1,
}

#: Operators charged as "special function unit" work by the cost model.
SPECIAL_OPS = frozenset({"/", "%"})


@dataclass(frozen=True)
class Reg:
    """A virtual register (mutable slot) with a fixed type."""

    id: int
    type: JType
    name: str = ""

    def __str__(self) -> str:
        label = self.name or f"r{self.id}"
        return f"%{label}"


@dataclass
class Instr:
    """One IR instruction.

    Operand conventions by opcode:

    ========  =======================================================
    CONST     dst, value
    MOV       dst, src (Reg)
    BIN       dst, op, a, b
    UN        dst, op, a
    CAST      dst, src
    LOAD      dst, array, idx (tuple of Reg)
    STORE     array, idx (tuple of Reg), src
    CALL      dst, intrinsic, args (tuple of Reg)
    BR        target (block name)
    CBR       cond, then_target, else_target
    RET       (no operands)
    ========  =======================================================
    """

    op: Opcode
    dst: Optional[Reg] = None
    a: Optional[Reg] = None
    b: Optional[Reg] = None
    binop: str = ""
    value: object = None
    array: str = ""
    idx: tuple[Reg, ...] = ()
    args: tuple[Reg, ...] = ()
    intrinsic: str = ""
    target: str = ""
    else_target: str = ""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.op is Opcode.CONST:
            return f"{self.dst} = const {self.value!r} : {self.dst.type.value}"
        if self.op is Opcode.MOV:
            return f"{self.dst} = mov {self.a}"
        if self.op is Opcode.BIN:
            return f"{self.dst} = {self.a} {self.binop} {self.b}"
        if self.op is Opcode.UN:
            return f"{self.dst} = {self.binop}{self.a}"
        if self.op is Opcode.CAST:
            return f"{self.dst} = cast {self.a} : {self.dst.type.value}"
        if self.op is Opcode.LOAD:
            idx = ", ".join(map(str, self.idx))
            return f"{self.dst} = load {self.array}[{idx}]"
        if self.op is Opcode.STORE:
            idx = ", ".join(map(str, self.idx))
            return f"store {self.array}[{idx}] = {self.a}"
        if self.op is Opcode.CALL:
            args = ", ".join(map(str, self.args))
            return f"{self.dst} = call {self.intrinsic}({args})"
        if self.op is Opcode.BR:
            return f"br {self.target}"
        if self.op is Opcode.CBR:
            return f"cbr {self.a} ? {self.target} : {self.else_target}"
        return "ret"


@dataclass
class Block:
    """A basic block: straight-line instructions ending in BR/CBR/RET."""

    name: str
    instrs: list[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instrs and self.instrs[-1].op in (Opcode.BR, Opcode.CBR, Opcode.RET):
            return self.instrs[-1]
        return None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        body = "\n".join(f"  {instr}" for instr in self.instrs)
        return f"{self.name}:\n{body}"


@dataclass(frozen=True)
class ArrayParam:
    """An array bound to the kernel by name."""

    name: str
    elem: JType
    dims: int


@dataclass(frozen=True)
class ScalarParam:
    """A scalar kernel parameter (loop-invariant live-in)."""

    name: str
    type: JType


@dataclass
class IRFunction:
    """A lowered loop body.

    The loop induction variable arrives in the dedicated ``index`` register
    (the paper: "the loop index will be remapped to the corresponding CUDA
    thread ID").  ``scalars`` are loop-invariant live-ins; ``arrays`` are
    the memory spaces the body touches.
    """

    name: str
    index: Reg
    scalars: list[ScalarParam]
    arrays: list[ArrayParam]
    blocks: list[Block]
    scalar_regs: dict[str, Reg] = field(default_factory=dict)
    num_regs: int = 0

    @property
    def entry(self) -> Block:
        return self.blocks[0]

    def block(self, name: str) -> Block:
        for blk in self.blocks:
            if blk.name == name:
                return blk
        raise KeyError(f"no block {name!r} in {self.name}")

    def array(self, name: str) -> ArrayParam:
        for arr in self.arrays:
            if arr.name == name:
                return arr
        raise KeyError(f"no array {name!r} in {self.name}")

    def validate(self) -> None:
        """Check structural invariants; raise AssertionError on breakage."""
        names = [b.name for b in self.blocks]
        assert len(set(names)) == len(names), "duplicate block names"
        known = set(names)
        for blk in self.blocks:
            term = blk.terminator
            assert term is not None, f"block {blk.name} lacks a terminator"
            for instr in blk.instrs[:-1]:
                assert instr.op not in (Opcode.BR, Opcode.CBR, Opcode.RET), (
                    f"terminator mid-block in {blk.name}"
                )
            if term.op is Opcode.BR:
                assert term.target in known
            elif term.op is Opcode.CBR:
                assert term.target in known and term.else_target in known

    @property
    def is_straightline(self) -> bool:
        """True when the body is a single block (vectorizable fast path)."""
        return len(self.blocks) == 1

    def fingerprint(self) -> str:
        """Stable content identity: ``name:<sha256 prefix>``.

        Used as the kernel-cache key instead of ``id(fn)`` — two
        IRFunctions with the same fingerprint compile to interchangeable
        kernels, and a GC'd function can never alias a live one.  Cached
        on the instance; IRFunctions are not mutated after lowering.
        """
        fp = self.__dict__.get("_fingerprint")
        if fp is None:
            digest = hashlib.sha256(
                ir_fingerprint(self).encode()
            ).hexdigest()[:16]
            fp = self.__dict__["_fingerprint"] = f"{self.name}:{digest}"
        return fp

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        scalars = ", ".join(f"{s.type.value} {s.name}" for s in self.scalars)
        arrays = ", ".join(
            f"{a.elem.value}{'[]' * a.dims} {a.name}" for a in self.arrays
        )
        head = f"kernel {self.name}(index={self.index}; {scalars}; {arrays})"
        return head + "\n" + "\n".join(str(b) for b in self.blocks)


def ir_fingerprint(fn: IRFunction) -> str:
    """Canonical serialization of an IRFunction's content.

    Unlike ``str(fn)`` this includes register ids and types everywhere
    (two distinct registers sharing a source name print identically),
    so equal serializations imply behaviourally identical kernels.
    """

    def reg(r: Optional[Reg]) -> str:
        return "_" if r is None else f"r{r.id}:{r.type.value}"

    def regs(rs: Sequence[Reg]) -> str:
        return ",".join(reg(r) for r in rs)

    parts = [
        f"fn {fn.name} nregs={fn.num_regs} index={reg(fn.index)}",
        "scalars " + ",".join(
            f"{s.name}:{s.type.value}:{reg(fn.scalar_regs.get(s.name))}"
            for s in fn.scalars
        ),
        "arrays " + ",".join(
            f"{a.name}:{a.elem.value}:{a.dims}" for a in fn.arrays
        ),
    ]
    for blk in fn.blocks:
        parts.append(f"block {blk.name}")
        for i in blk.instrs:
            parts.append(
                f"{i.op.value} dst={reg(i.dst)} a={reg(i.a)} b={reg(i.b)} "
                f"binop={i.binop} value={i.value!r} array={i.array} "
                f"idx=[{regs(i.idx)}] args=[{regs(i.args)}] "
                f"intr={i.intrinsic} tgt={i.target} else={i.else_target}"
            )
    return "\n".join(parts)


def stored_arrays(fn: IRFunction) -> set[str]:
    """Names of the arrays the kernel writes (its rollback set)."""
    return {
        instr.array
        for blk in fn.blocks
        for instr in blk.instrs
        if instr.op is Opcode.STORE
    }
