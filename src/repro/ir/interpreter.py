"""Reference interpreter for the kernel IR.

Each :class:`IRFunction` is compiled once into per-block lists of Python
closures ("threaded code"), then executed per iteration index.  Memory is
accessed through a pluggable backend so that the same compiled kernel
serves:

* sequential / CPU-thread execution (:class:`DirectBackend`),
* dependency profiling (:class:`TracingBackend` records the address
  stream with per-lane memory-op timestamps), and
* TLS speculative execution (:class:`SpeculativeBackend` buffers writes
  per lane and records read/write sets, the SE-phase metadata of GPU-TLS).

The interpreter also meters executed work (integer/float/special ops,
loads, stores, branches) — the dynamic instruction counts the runtime cost
model converts into simulated device time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..errors import JaponicaError, MemoryFault
from . import java_ops
from .instructions import (
    IRFunction,
    JType,
    Opcode,
    SPECIAL_OPS,
)


class FuelExhausted(JaponicaError):
    """Raised when a kernel exceeds its instruction budget (runaway loop)."""


# ---------------------------------------------------------------------------
# Work counters
# ---------------------------------------------------------------------------

# Counter indices (kept as a plain list for speed in closures).
C_INT = 0
C_FLOAT = 1
C_SPECIAL = 2
C_LOAD = 3
C_STORE = 4
C_BRANCH = 5
C_INTRINSIC = 6
C_TOTAL = 7
N_COUNTERS = 8


@dataclass
class Counts:
    """Dynamic work executed by one or more kernel iterations."""

    int_ops: int = 0
    float_ops: int = 0
    special_ops: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    intrinsics: int = 0
    instructions: int = 0

    @classmethod
    def from_raw(cls, raw: list[int]) -> "Counts":
        return cls(
            int_ops=raw[C_INT],
            float_ops=raw[C_FLOAT],
            special_ops=raw[C_SPECIAL],
            loads=raw[C_LOAD],
            stores=raw[C_STORE],
            branches=raw[C_BRANCH],
            intrinsics=raw[C_INTRINSIC],
            instructions=raw[C_TOTAL],
        )

    def add_to_raw(self, raw: list[int]) -> None:
        """Accumulate into a raw counter list (hot-loop alternative to
        ``__add__``, which allocates a dataclass per step)."""
        raw[C_INT] += self.int_ops
        raw[C_FLOAT] += self.float_ops
        raw[C_SPECIAL] += self.special_ops
        raw[C_LOAD] += self.loads
        raw[C_STORE] += self.stores
        raw[C_BRANCH] += self.branches
        raw[C_INTRINSIC] += self.intrinsics
        raw[C_TOTAL] += self.instructions

    def __add__(self, other: "Counts") -> "Counts":
        return Counts(
            self.int_ops + other.int_ops,
            self.float_ops + other.float_ops,
            self.special_ops + other.special_ops,
            self.loads + other.loads,
            self.stores + other.stores,
            self.branches + other.branches,
            self.intrinsics + other.intrinsics,
            self.instructions + other.instructions,
        )

    def scaled(self, factor: float) -> "Counts":
        """Counts scaled by a multiplicative factor (for extrapolation)."""
        return Counts(
            *(
                int(round(getattr(self, f) * factor))
                for f in (
                    "int_ops",
                    "float_ops",
                    "special_ops",
                    "loads",
                    "stores",
                    "branches",
                    "intrinsics",
                    "instructions",
                )
            )
        )

    @property
    def mem_ops(self) -> int:
        return self.loads + self.stores

    @property
    def flops(self) -> int:
        return self.float_ops + self.intrinsics


# ---------------------------------------------------------------------------
# Array storage
# ---------------------------------------------------------------------------

_JTYPE_FOR_DTYPE = {
    np.dtype("int32"): JType.INT,
    np.dtype("int64"): JType.LONG,
    np.dtype("float32"): JType.FLOAT,
    np.dtype("float64"): JType.DOUBLE,
    np.dtype("bool"): JType.BOOL,
}


class ArrayStorage:
    """Named nd-array memory spaces with bounds checking and flat addresses.

    Flat addresses (``row * ncols + col`` for 2-D) identify memory cells in
    dependence analysis and TLS metadata.
    """

    def __init__(self, arrays: dict[str, np.ndarray]):
        self.arrays: dict[str, np.ndarray] = {}
        self.shapes: dict[str, tuple[int, ...]] = {}
        for name, arr in arrays.items():
            self.bind(name, arr)

    def bind(self, name: str, arr: np.ndarray) -> None:
        if arr.dtype not in _JTYPE_FOR_DTYPE:
            raise MemoryFault(f"unsupported dtype {arr.dtype} for array {name!r}")
        if arr.ndim not in (1, 2):
            raise MemoryFault(f"array {name!r} must be 1-D or 2-D")
        self.arrays[name] = arr
        self.shapes[name] = arr.shape

    def flat(self, name: str, idx: tuple[int, ...]) -> int:
        """Bounds-check ``idx`` and return the flat cell address."""
        shape = self.shapes.get(name)
        if shape is None:
            raise MemoryFault(f"unbound array {name!r}")
        if len(idx) != len(shape):
            raise MemoryFault(
                f"array {name!r} has {len(shape)} dims, got {len(idx)} indices"
            )
        for k, (i, d) in enumerate(zip(idx, shape)):
            if not 0 <= i < d:
                raise MemoryFault(
                    f"index {i} out of bounds for axis {k} of {name!r} "
                    f"(size {d})"
                )
        if len(idx) == 1:
            return idx[0]
        return idx[0] * shape[1] + idx[1]

    def read_flat(self, name: str, flat: int):
        arr = self.arrays[name]
        value = arr.flat[flat]
        return value.item() if arr.dtype != np.bool_ else bool(value)

    def write_flat(self, name: str, flat: int, value) -> None:
        self.arrays[name].flat[flat] = value

    def snapshot(self) -> dict[str, np.ndarray]:
        """Deep copy of all arrays (for result verification)."""
        return {name: arr.copy() for name, arr in self.arrays.items()}


# ---------------------------------------------------------------------------
# Memory backends
# ---------------------------------------------------------------------------


class DirectBackend:
    """Reads and writes go straight to storage."""

    __slots__ = ("storage",)

    def __init__(self, storage: ArrayStorage):
        self.storage = storage

    def load(self, name: str, idx: tuple[int, ...]):
        flat = self.storage.flat(name, idx)
        return self.storage.read_flat(name, flat)

    def store(self, name: str, idx: tuple[int, ...], value) -> None:
        flat = self.storage.flat(name, idx)
        self.storage.write_flat(name, flat, value)

    def begin_lane(self, lane: int) -> None:  # pragma: no cover - interface
        pass


@dataclass
class AccessRecord:
    """One logged memory access: per-lane op timestamp, kind, cell."""

    op: int
    kind: str  # 'R' or 'W'
    array: str
    flat: int


class TracingBackend:
    """Direct execution that also records the address stream per lane.

    ``traces[lane]`` is the ordered list of accesses made by that lane;
    the ``op`` field is the lane-local memory-op counter, which under
    lock-step SIMD is the warp-wide timestamp of the access.
    """

    __slots__ = ("storage", "traces", "_lane", "_op")

    def __init__(self, storage: ArrayStorage):
        self.storage = storage
        self.traces: dict[int, list[AccessRecord]] = {}
        self._lane = -1
        self._op = 0

    def begin_lane(self, lane: int) -> None:
        self._lane = lane
        self._op = 0
        self.traces[lane] = []

    def load(self, name: str, idx: tuple[int, ...]):
        flat = self.storage.flat(name, idx)
        self.traces[self._lane].append(AccessRecord(self._op, "R", name, flat))
        self._op += 1
        return self.storage.read_flat(name, flat)

    def store(self, name: str, idx: tuple[int, ...], value) -> None:
        flat = self.storage.flat(name, idx)
        self.traces[self._lane].append(AccessRecord(self._op, "W", name, flat))
        self._op += 1
        self.storage.write_flat(name, flat, value)


class SpeculativeBackend:
    """SE-phase memory of GPU-TLS: buffered writes + read/write logs.

    Writes never touch global memory; they land in a per-lane buffer.
    Reads are satisfied from the lane's own buffer when possible
    (intra-lane RAW can never violate), otherwise from global memory and
    logged for the dependency-checking phase.
    """

    __slots__ = ("storage", "lanes", "_lane")

    def __init__(self, storage: ArrayStorage):
        self.storage = storage
        self.lanes: dict[int, LaneSpecState] = {}
        self._lane = -1

    def begin_lane(self, lane: int) -> None:
        self._lane = lane
        self.lanes[lane] = LaneSpecState()

    def load(self, name: str, idx: tuple[int, ...]):
        flat = self.storage.flat(name, idx)
        state = self.lanes[self._lane]
        key = (name, flat)
        if key in state.buffer:
            value = state.buffer[key]
        else:
            state.reads.append(AccessRecord(state.op, "R", name, flat))
            value = self.storage.read_flat(name, flat)
        state.op += 1
        return value

    def store(self, name: str, idx: tuple[int, ...], value) -> None:
        flat = self.storage.flat(name, idx)
        state = self.lanes[self._lane]
        state.writes.append(AccessRecord(state.op, "W", name, flat))
        state.op += 1
        state.buffer[(name, flat)] = value


@dataclass
class LaneSpecState:
    """Per-lane speculative state: write buffer plus access logs."""

    buffer: dict[tuple[str, int], object] = field(default_factory=dict)
    reads: list[AccessRecord] = field(default_factory=list)
    writes: list[AccessRecord] = field(default_factory=list)
    op: int = 0


# ---------------------------------------------------------------------------
# Compiled kernel
# ---------------------------------------------------------------------------


class CompiledKernel:
    """An :class:`IRFunction` compiled to per-block closure lists.

    Block bodies become lists of ``fn(regs) -> None`` closures over the
    shared memory backend and counters; terminators become
    ``fn(regs) -> int`` returning the next block id (or -1 for RET).
    """

    def __init__(self, fn: IRFunction, fuel: int = 200_000_000):
        self.fn = fn
        self.fuel = fuel
        self.counters = [0] * N_COUNTERS
        self.backend: Optional[object] = None
        self._block_ids = {blk.name: k for k, blk in enumerate(fn.blocks)}
        self._bodies: list[list[Callable]] = []
        self._terms: list[Callable] = []
        for blk in fn.blocks:
            body = [self._compile(instr) for instr in blk.instrs[:-1]]
            self._bodies.append(body)
            self._terms.append(self._compile_term(blk.instrs[-1]))

    # -- compilation ----------------------------------------------------

    def _compile(self, instr) -> Callable:
        counters = self.counters
        op = instr.op
        if op is Opcode.CONST:
            d = instr.dst.id
            v = instr.value
            def run(regs, d=d, v=v):
                regs[d] = v
                counters[C_TOTAL] += 1
            return run
        if op is Opcode.MOV:
            d, a = instr.dst.id, instr.a.id
            def run(regs, d=d, a=a):
                regs[d] = regs[a]
                counters[C_TOTAL] += 1
            return run
        if op is Opcode.BIN:
            d, a, b = instr.dst.id, instr.a.id, instr.b.id
            binop = instr.binop
            jt = instr.a.type
            cat = self._op_category(binop, jt)
            fn = java_ops.binop
            def run(regs, d=d, a=a, b=b, binop=binop, jt=jt, cat=cat, fn=fn):
                regs[d] = fn(binop, regs[a], regs[b], jt)
                counters[cat] += 1
                counters[C_TOTAL] += 1
            return run
        if op is Opcode.UN:
            d, a = instr.dst.id, instr.a.id
            unop = instr.binop
            jt = instr.dst.type
            cat = C_FLOAT if jt.is_floating else C_INT
            fn = java_ops.unop
            def run(regs, d=d, a=a, unop=unop, jt=jt, cat=cat, fn=fn):
                regs[d] = fn(unop, regs[a], jt)
                counters[cat] += 1
                counters[C_TOTAL] += 1
            return run
        if op is Opcode.CAST:
            d, a = instr.dst.id, instr.a.id
            src_t, dst_t = instr.a.type, instr.dst.type
            fn = java_ops.cast
            def run(regs, d=d, a=a, src_t=src_t, dst_t=dst_t, fn=fn):
                regs[d] = fn(regs[a], src_t, dst_t)
                counters[C_INT] += 1
                counters[C_TOTAL] += 1
            return run
        if op is Opcode.LOAD:
            d = instr.dst.id
            array = instr.array
            idx_ids = tuple(r.id for r in instr.idx)
            def run(regs, d=d, array=array, idx_ids=idx_ids):
                idx = tuple(regs[i] for i in idx_ids)
                regs[d] = self.backend.load(array, idx)
                counters[C_LOAD] += 1
                counters[C_TOTAL] += 1
            return run
        if op is Opcode.STORE:
            a = instr.a.id
            array = instr.array
            idx_ids = tuple(r.id for r in instr.idx)
            def run(regs, a=a, array=array, idx_ids=idx_ids):
                idx = tuple(regs[i] for i in idx_ids)
                self.backend.store(array, idx, regs[a])
                counters[C_STORE] += 1
                counters[C_TOTAL] += 1
            return run
        if op is Opcode.CALL:
            d = instr.dst.id
            name = instr.intrinsic
            arg_ids = tuple(r.id for r in instr.args)
            jt = instr.dst.type
            fn = java_ops.intrinsic
            def run(regs, d=d, name=name, arg_ids=arg_ids, jt=jt, fn=fn):
                regs[d] = fn(name, [regs[i] for i in arg_ids], jt)
                counters[C_INTRINSIC] += 1
                counters[C_TOTAL] += 1
            return run
        raise JaponicaError(f"non-terminator expected, got {op}")

    def _compile_term(self, instr) -> Callable:
        counters = self.counters
        op = instr.op
        if op is Opcode.BR:
            target = self._block_ids[instr.target]
            def run(regs, target=target):
                counters[C_BRANCH] += 1
                counters[C_TOTAL] += 1
                return target
            return run
        if op is Opcode.CBR:
            a = instr.a.id
            then_id = self._block_ids[instr.target]
            else_id = self._block_ids[instr.else_target]
            def run(regs, a=a, then_id=then_id, else_id=else_id):
                counters[C_BRANCH] += 1
                counters[C_TOTAL] += 1
                return then_id if regs[a] else else_id
            return run
        if op is Opcode.RET:
            def run(regs):
                counters[C_TOTAL] += 1
                return -1
            return run
        raise JaponicaError(f"terminator expected, got {op}")

    @staticmethod
    def _op_category(binop: str, jt: JType) -> int:
        if binop in SPECIAL_OPS:
            return C_SPECIAL
        if jt.is_floating:
            return C_FLOAT
        return C_INT

    # -- execution -------------------------------------------------------

    def run_index(
        self,
        index_value: int,
        scalar_env: dict[str, object],
        backend,
        lane: Optional[int] = None,
    ) -> None:
        """Execute the kernel body for one iteration index.

        ``scalar_env`` must bind every scalar parameter by name.  ``lane``
        identifies this iteration to tracing/speculative backends.
        """
        self.backend = backend
        backend.begin_lane(index_value if lane is None else lane)
        regs: list = [None] * self.fn.num_regs
        regs[self.fn.index.id] = index_value
        for param in self.fn.scalars:
            try:
                regs[self.fn.scalar_regs[param.name].id] = scalar_env[param.name]
            except KeyError:
                raise JaponicaError(
                    f"kernel {self.fn.name!r} missing scalar {param.name!r}"
                ) from None

        counters = self.counters
        budget = self.fuel
        bodies = self._bodies
        terms = self._terms
        block = 0
        start_total = counters[C_TOTAL]
        while block >= 0:
            for fn in bodies[block]:
                fn(regs)
            block = terms[block](regs)
            if counters[C_TOTAL] - start_total > budget:
                raise FuelExhausted(
                    f"kernel {self.fn.name!r} exceeded {budget} instructions "
                    f"at index {index_value}"
                )

    def take_counts(self) -> Counts:
        """Return and reset the accumulated work counters."""
        counts = Counts.from_raw(self.counters)
        for k in range(N_COUNTERS):
            self.counters[k] = 0
        return counts

    def peek_counts(self) -> Counts:
        """Return accumulated counters without resetting."""
        return Counts.from_raw(self.counters)


def run_sequential(
    fn: IRFunction,
    storage: ArrayStorage,
    scalar_env: dict[str, object],
    start: int,
    stop: int,
    step: int = 1,
    kernel: Optional[CompiledKernel] = None,
) -> Counts:
    """Run iterations ``start, start+step, ... < stop`` in order.

    This is the sequential reference semantics every parallel execution
    must reproduce bit-for-bit.
    """
    kern = kernel or CompiledKernel(fn)
    backend = DirectBackend(storage)
    for i in range(start, stop, step):
        kern.run_index(i, scalar_env, backend)
    return kern.take_counts()
