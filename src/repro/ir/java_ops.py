"""Exact Java numeric semantics for the scalar interpreter.

The Crypt benchmark (IDEA cipher) depends on 32-bit wrap-around, truncating
division and masked shift counts, so these are implemented precisely rather
than delegated to Python's unbounded ints.
"""

from __future__ import annotations

import math

from .instructions import JType

_INT_MASK = 0xFFFFFFFF
_LONG_MASK = 0xFFFFFFFFFFFFFFFF


def wrap_int(value: int) -> int:
    """Wrap to Java int (signed 32-bit two's complement)."""
    value &= _INT_MASK
    return value - 0x100000000 if value >= 0x80000000 else value


def wrap_long(value: int) -> int:
    """Wrap to Java long (signed 64-bit two's complement)."""
    value &= _LONG_MASK
    return value - 0x10000000000000000 if value >= 0x8000000000000000 else value


def _wrap(value: int, jtype: JType) -> int:
    return wrap_int(value) if jtype is JType.INT else wrap_long(value)


def java_div_int(a: int, b: int) -> int:
    """Integer division truncating toward zero; raises on division by zero."""
    if b == 0:
        raise ZeroDivisionError("/ by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def java_rem_int(a: int, b: int) -> int:
    """Remainder with the dividend's sign (Java ``%``)."""
    if b == 0:
        raise ZeroDivisionError("% by zero")
    return a - java_div_int(a, b) * b


def binop(op: str, a, b, jtype: JType):
    """Apply a BIN operator at type ``jtype`` with Java semantics.

    Comparison operators return Python bools; arithmetic returns a value of
    ``jtype``.
    """
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    if op == "==":
        return a == b
    if op == "!=":
        return a != b

    if jtype is JType.BOOL:
        if op == "&":
            return bool(a) and bool(b)
        if op == "|":
            return bool(a) or bool(b)
        if op == "^":
            return bool(a) != bool(b)
        raise ValueError(f"operator {op!r} not defined on boolean")

    if jtype.is_floating:
        if op == "+":
            r = a + b
        elif op == "-":
            r = a - b
        elif op == "*":
            r = a * b
        elif op == "/":
            r = _fdiv(a, b)
        elif op == "%":
            r = _frem(a, b)
        else:
            raise ValueError(f"operator {op!r} not defined on floating types")
        return _round_float(r) if jtype is JType.FLOAT else r

    # Integral (int or long)
    bits = 32 if jtype is JType.INT else 64
    shift_mask = bits - 1
    if op == "+":
        return _wrap(a + b, jtype)
    if op == "-":
        return _wrap(a - b, jtype)
    if op == "*":
        return _wrap(a * b, jtype)
    if op == "/":
        return _wrap(java_div_int(a, b), jtype)
    if op == "%":
        return _wrap(java_rem_int(a, b), jtype)
    if op == "<<":
        return _wrap(a << (b & shift_mask), jtype)
    if op == ">>":
        return _wrap(a >> (b & shift_mask), jtype)
    if op == ">>>":
        mask = _INT_MASK if jtype is JType.INT else _LONG_MASK
        return _wrap((a & mask) >> (b & shift_mask), jtype)
    if op == "&":
        return _wrap(a & b, jtype)
    if op == "|":
        return _wrap(a | b, jtype)
    if op == "^":
        return _wrap(a ^ b, jtype)
    raise ValueError(f"unknown operator {op!r}")


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return float("nan")
        sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        return sign * float("inf")
    return a / b


def _frem(a: float, b: float) -> float:
    # Java %: NaN for an infinite dividend or zero divisor (math.fmod
    # raises ValueError on both instead of returning IEEE's NaN)
    if b == 0.0 or math.isinf(a):
        return float("nan")
    return math.fmod(a, b)


def unop(op: str, a, jtype: JType):
    """Apply a UN operator with Java semantics."""
    if op == "-":
        if jtype.is_floating:
            return -a
        return _wrap(-a, jtype)
    if op == "!":
        return not a
    if op == "~":
        return _wrap(~a, jtype)
    raise ValueError(f"unknown unary operator {op!r}")


def cast(value, src: JType, dst: JType):
    """Java primitive conversion from ``src`` to ``dst``."""
    if dst is JType.BOOL:
        return bool(value)
    if dst in (JType.INT, JType.LONG):
        if src.is_floating:
            if math.isnan(value):
                return 0
            bound = 0x7FFFFFFF if dst is JType.INT else 0x7FFFFFFFFFFFFFFF
            if value >= bound:
                return bound
            if value <= -bound - 1:
                return -bound - 1
            return _wrap(int(value), dst)
        return _wrap(int(value), dst)
    # floating destination
    result = float(value)
    return _round_float(result) if dst is JType.FLOAT else result


def _round_float(value: float) -> float:
    """Round a double to the nearest representable IEEE-754 binary32."""
    import struct

    try:
        return struct.unpack("f", struct.pack("f", value))[0]
    except (OverflowError, ValueError):  # pragma: no cover - inf handling
        return math.copysign(float("inf"), value)


def _intr_sqrt(x):
    return math.sqrt(x) if x >= 0 else float("nan")


def _intr_floor(x):
    # Java Math.floor maps +-inf and NaN to themselves (math.floor
    # raises) and preserves signed zero, e.g. floor(-0.0) == -0.0
    if not math.isfinite(x):
        return x
    r = float(math.floor(x))
    return math.copysign(r, x) if r == 0.0 else r


def _intr_ceil(x):
    # ceil(-0.5) is -0.0 in Java/C; int-based math.ceil gives +0.0
    if not math.isfinite(x):
        return x
    r = float(math.ceil(x))
    return math.copysign(r, x) if r == 0.0 else r


def _intr_sin(x):
    # Java: sin/cos/tan of an infinity is NaN; math.sin raises instead
    return math.sin(x) if not math.isinf(x) else float("nan")


def _intr_cos(x):
    return math.cos(x) if not math.isinf(x) else float("nan")


def _intr_tan(x):
    return math.tan(x) if not math.isinf(x) else float("nan")


def _intr_log(x):
    return math.log(x) if x > 0 else (float("-inf") if x == 0 else float("nan"))


def intrinsic(name: str, args, jtype: JType):
    """Evaluate a ``Math.*`` intrinsic."""
    result = INTRINSIC_FNS[name](*args)
    if jtype is JType.FLOAT:
        return _round_float(float(result))
    if jtype is JType.DOUBLE:
        return float(result)
    return _wrap(int(result), jtype)


def _safe_exp(x: float) -> float:
    try:
        return math.exp(x)
    except OverflowError:
        return float("inf")


def _safe_pow(x: float, y: float) -> float:
    try:
        return math.pow(x, y)
    except (OverflowError, ValueError):
        if x < 0:
            return float("nan")
        return float("inf")


#: Intrinsic evaluators, hoisted to module level so compiled kernel tiers
#: (the generated-source backend) can pre-bind them instead of paying a
#: dict build per call.
INTRINSIC_FNS = {
    "Math.sqrt": _intr_sqrt,
    "Math.exp": _safe_exp,
    "Math.log": _intr_log,
    "Math.pow": _safe_pow,
    "Math.abs": abs,
    "Math.min": min,
    "Math.max": max,
    "Math.floor": _intr_floor,
    "Math.ceil": _intr_ceil,
    "Math.sin": _intr_sin,
    "Math.cos": _intr_cos,
    "Math.tan": _intr_tan,
}


def default_value(jtype: JType):
    """Java default field value for a type (0 / 0.0 / false)."""
    if jtype is JType.BOOL:
        return False
    if jtype.is_floating:
        return 0.0
    return 0
