"""Lowering: annotated mini-Java loop bodies to kernel IR.

The translator calls :func:`lower_loop_body` for each annotated loop after
static analysis.  The loop induction variable becomes the kernel's index
register ("remapped to the corresponding CUDA thread ID"); loop-invariant
scalars become read-only parameters; arrays become named memory spaces;
``temp`` variables (declared inside the loop) become mutable register
slots.

Scalar live-outs (a write to a scalar declared outside the loop) are a
loop-carried dependence that the kernel model cannot express; lowering
rejects them, and static analysis routes such loops to sequential
execution instead.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..errors import LoweringError, TypeCheckError
from ..lang import ast_nodes as A
from .builder import IRBuilder
from .instructions import INTRINSICS, IRFunction, JType, Reg, jtype_of_prim


def length_param(array: str, axis: int) -> str:
    """Synthetic scalar parameter name carrying ``array.length`` values."""
    return f"__len_{array}_{axis}"


def promote(a: JType, b: JType) -> JType:
    """Java binary numeric promotion."""
    if JType.DOUBLE in (a, b):
        return JType.DOUBLE
    if JType.FLOAT in (a, b):
        return JType.FLOAT
    if JType.LONG in (a, b):
        return JType.LONG
    return JType.INT


class _Lowerer:
    def __init__(
        self,
        name: str,
        index_var: str,
        outer_types: Mapping[str, A.Type],
    ):
        self.b = IRBuilder(name)
        self.index_var = index_var
        self.outer_types = dict(outer_types)
        self.locals: dict[str, Reg] = {}  # temp vars -> mutable slots
        self.index_reg = self.b.declare_index(index_var)
        self._declared_arrays: set[str] = set()
        self._declared_scalars: set[str] = set()

    # -- variable resolution -------------------------------------------------

    def _array_type(self, name: str) -> Optional[A.ArrayType]:
        t = self.outer_types.get(name)
        return t if isinstance(t, A.ArrayType) else None

    def _ensure_array(self, name: str) -> A.ArrayType:
        at = self._array_type(name)
        if at is None:
            raise LoweringError(f"{name!r} is not a known array")
        if name not in self._declared_arrays:
            self.b.declare_array(name, jtype_of_prim(at.elem.name), at.dims)
            self._declared_arrays.add(name)
        return at

    def _scalar_reg(self, name: str, pos) -> Reg:
        if name == self.index_var:
            return self.index_reg
        if name in self.locals:
            return self.locals[name]
        t = self.outer_types.get(name)
        if t is None:
            raise LoweringError(f"unknown variable {name!r} at {pos}")
        if isinstance(t, A.ArrayType):
            raise LoweringError(f"array {name!r} used as a scalar at {pos}")
        if name not in self._declared_scalars:
            self.b.declare_scalar(name, jtype_of_prim(t.name))
            self._declared_scalars.add(name)
        return self.b.scalar_regs[name]

    def _length_reg(self, array: str, axis: int) -> Reg:
        at = self._ensure_array(array)
        if axis >= at.dims:
            raise LoweringError(f"{array!r} has no axis {axis} length")
        name = length_param(array, axis)
        if name not in self._declared_scalars:
            self.b.declare_scalar(name, JType.INT)
            self._declared_scalars.add(name)
        return self.b.scalar_regs[name]

    # -- expressions ---------------------------------------------------------

    def expr(self, e: A.Expr) -> Reg:
        if isinstance(e, A.IntLit):
            from .java_ops import wrap_int

            return self.b.const(wrap_int(e.value), JType.INT)
        if isinstance(e, A.LongLit):
            from .java_ops import wrap_long

            return self.b.const(wrap_long(e.value), JType.LONG)
        if isinstance(e, A.DoubleLit):
            return self.b.const(e.value, JType.DOUBLE)
        if isinstance(e, A.FloatLit):
            return self.b.const(e.value, JType.FLOAT)
        if isinstance(e, A.BoolLit):
            return self.b.const(e.value, JType.BOOL)
        if isinstance(e, A.VarRef):
            return self._scalar_reg(e.name, e.pos)
        if isinstance(e, A.Length):
            return self._length_reg(e.array.name, e.axis)
        if isinstance(e, A.ArrayRef):
            return self._load(e)
        if isinstance(e, A.Cast):
            src = self.expr(e.operand)
            return self.b.cast(src, jtype_of_prim(e.target.name))
        if isinstance(e, A.Unary):
            return self._unary(e)
        if isinstance(e, A.Binary):
            return self._binary(e)
        if isinstance(e, A.Ternary):
            return self._ternary(e)
        if isinstance(e, A.Call):
            return self._call(e)
        raise LoweringError(f"cannot lower expression {type(e).__name__}")

    def _load(self, e: A.ArrayRef) -> Reg:
        at = self._ensure_array(e.base.name)
        if len(e.indices) != at.dims:
            raise TypeCheckError(
                f"{e.base.name!r} has {at.dims} dims, "
                f"indexed with {len(e.indices)} at {e.pos}"
            )
        idx = tuple(self._index(ix) for ix in e.indices)
        return self.b.load(e.base.name, idx, jtype_of_prim(at.elem.name))

    def _index(self, e: A.Expr) -> Reg:
        reg = self.expr(e)
        if reg.type is JType.BOOL or reg.type.is_floating:
            raise TypeCheckError(f"array index must be integral, got {reg.type}")
        return self.b.cast(reg, JType.INT) if reg.type is not JType.INT else reg

    def _unary(self, e: A.Unary) -> Reg:
        a = self.expr(e.operand)
        if e.op == "!":
            if a.type is not JType.BOOL:
                raise TypeCheckError(f"! requires boolean at {e.pos}")
            return self.b.un("!", a, JType.BOOL)
        if e.op == "~":
            if not a.type.is_integral or a.type is JType.BOOL:
                raise TypeCheckError(f"~ requires int/long at {e.pos}")
            return self.b.un("~", a, a.type)
        # unary minus: unary numeric promotion (int at minimum)
        out = a.type if a.type is not JType.BOOL else None
        if out is None:
            raise TypeCheckError(f"- requires a numeric operand at {e.pos}")
        return self.b.un("-", a, out)

    _CMP = ("<", "<=", ">", ">=", "==", "!=")
    _SHIFTS = ("<<", ">>", ">>>")

    def _binary(self, e: A.Binary) -> Reg:
        if e.op in ("&&", "||"):
            return self._short_circuit(e)
        a = self.expr(e.left)
        c = self.expr(e.right)
        if e.op in self._CMP:
            if (a.type is JType.BOOL) != (c.type is JType.BOOL):
                raise TypeCheckError(f"comparing boolean to number at {e.pos}")
            if a.type is not JType.BOOL:
                common = promote(a.type, c.type)
                a = self.b.cast(a, common)
                c = self.b.cast(c, common)
            return self.b.bin(e.op, a, c, JType.BOOL)
        if e.op in self._SHIFTS:
            if not a.type.is_integral or a.type is JType.BOOL:
                raise TypeCheckError(f"shift of non-integer at {e.pos}")
            out = a.type
            c = self.b.cast(c, JType.INT)
            return self.b.bin(e.op, a, c, out)
        if e.op in ("&", "|", "^") and (
            a.type is JType.BOOL or c.type is JType.BOOL
        ):
            if a.type is not JType.BOOL or c.type is not JType.BOOL:
                raise TypeCheckError(f"mixed boolean/integer {e.op} at {e.pos}")
            return self.b.bin(e.op, a, c, JType.BOOL)
        if a.type is JType.BOOL or c.type is JType.BOOL:
            raise TypeCheckError(f"arithmetic on boolean at {e.pos}")
        if e.op in ("&", "|", "^") and (a.type.is_floating or c.type.is_floating):
            raise TypeCheckError(f"bitwise {e.op} on floating type at {e.pos}")
        common = promote(a.type, c.type)
        a = self.b.cast(a, common)
        c = self.b.cast(c, common)
        return self.b.bin(e.op, a, c, common)

    def _short_circuit(self, e: A.Binary) -> Reg:
        res = self.b.new_reg(JType.BOOL)
        a = self.expr(e.left)
        if a.type is not JType.BOOL:
            raise TypeCheckError(f"{e.op} requires booleans at {e.pos}")
        self.b.mov(res, a)
        rhs_blk = self.b.new_block("sc_rhs")
        end_blk = self.b.new_block("sc_end")
        if e.op == "&&":
            self.b.cbr(a, rhs_blk, end_blk)
        else:
            self.b.cbr(a, end_blk, rhs_blk)
        self.b.set_insert(rhs_blk)
        c = self.expr(e.right)
        if c.type is not JType.BOOL:
            raise TypeCheckError(f"{e.op} requires booleans at {e.pos}")
        self.b.mov(res, c)
        self.b.br(end_blk)
        self.b.set_insert(end_blk)
        return res

    def _ternary(self, e: A.Ternary) -> Reg:
        cond = self.expr(e.cond)
        if cond.type is not JType.BOOL:
            raise TypeCheckError(f"?: condition must be boolean at {e.pos}")
        then_blk = self.b.new_block("sel_t")
        else_blk = self.b.new_block("sel_f")
        end_blk = self.b.new_block("sel_end")
        self.b.cbr(cond, then_blk, else_blk)

        self.b.set_insert(then_blk)
        tv = self.expr(e.then)
        then_exit = self.b.current

        self.b.set_insert(else_blk)
        ov = self.expr(e.other)
        else_exit = self.b.current

        if tv.type is JType.BOOL or ov.type is JType.BOOL:
            if tv.type is not ov.type:
                raise TypeCheckError(f"?: branch type mismatch at {e.pos}")
            out = JType.BOOL
        else:
            out = promote(tv.type, ov.type)
        res = self.b.new_reg(out)

        self.b.set_insert(then_exit)
        self.b.mov(res, self.b.cast(tv, out))
        self.b.br(end_blk)
        self.b.set_insert(else_exit)
        self.b.mov(res, self.b.cast(ov, out))
        self.b.br(end_blk)
        self.b.set_insert(end_blk)
        return res

    def _call(self, e: A.Call) -> Reg:
        if e.name not in INTRINSICS:
            raise LoweringError(f"unknown intrinsic {e.name!r} at {e.pos}")
        if len(e.args) != INTRINSICS[e.name]:
            raise TypeCheckError(
                f"{e.name} expects {INTRINSICS[e.name]} args at {e.pos}"
            )
        args = tuple(self.expr(a) for a in e.args)
        for a in args:
            if a.type is JType.BOOL:
                raise TypeCheckError(f"boolean argument to {e.name} at {e.pos}")
        if e.name in ("Math.abs", "Math.min", "Math.max"):
            out = args[0].type
            for a in args[1:]:
                out = promote(out, a.type)
            args = tuple(self.b.cast(a, out) for a in args)
        else:
            out = JType.DOUBLE
            args = tuple(self.b.cast(a, JType.DOUBLE) for a in args)
        return self.b.call(e.name, args, out)

    # -- statements ------------------------------------------------------

    def stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.Block):
            for sub in s.stmts:
                self.stmt(sub)
            return
        if isinstance(s, A.VarDecl):
            self._var_decl(s)
            return
        if isinstance(s, A.Assign):
            self._assign(s)
            return
        if isinstance(s, A.IncDec):
            one = A.IntLit(s.pos, 1)
            op = "+" if s.op == "++" else "-"
            self._assign(A.Assign(s.pos, s.target, op, one))
            return
        if isinstance(s, A.ExprStmt):
            self.expr(s.expr)
            return
        if isinstance(s, A.If):
            self._if(s)
            return
        if isinstance(s, A.While):
            self._while(s)
            return
        if isinstance(s, A.For):
            self._inner_for(s)
            return
        if isinstance(s, A.Return):
            raise LoweringError(f"return inside a parallel loop at {s.pos}")
        raise LoweringError(f"cannot lower statement {type(s).__name__}")

    def _var_decl(self, s: A.VarDecl) -> None:
        if isinstance(s.type, A.ArrayType):
            raise LoweringError(
                f"array declaration inside a parallel loop at {s.pos}"
            )
        if s.name in self.locals or s.name in self.outer_types or (
            s.name == self.index_var
        ):
            raise LoweringError(f"shadowing declaration of {s.name!r} at {s.pos}")
        jt = jtype_of_prim(s.type.name)
        slot = self.b.new_reg(jt, s.name)
        self.locals[s.name] = slot
        if s.init is not None:
            value = self.expr(s.init)
            self.b.mov(slot, self._coerce(value, jt, s.pos))
        else:
            from .java_ops import default_value

            self.b.mov(slot, self.b.const(default_value(jt), jt))

    def _coerce(self, reg: Reg, to: JType, pos) -> Reg:
        """Assignment conversion: numeric casts allowed, boolean strict."""
        if reg.type is to:
            return reg
        if (reg.type is JType.BOOL) != (to is JType.BOOL):
            raise TypeCheckError(f"cannot assign {reg.type} to {to} at {pos}")
        return self.b.cast(reg, to)

    def _assign(self, s: A.Assign) -> None:
        if isinstance(s.target, A.VarRef):
            name = s.target.name
            if name == self.index_var:
                raise LoweringError(
                    f"assignment to the loop index {name!r} at {s.pos}"
                )
            if name not in self.locals:
                if name in self.outer_types and not isinstance(
                    self.outer_types[name], A.ArrayType
                ):
                    raise LoweringError(
                        f"scalar live-out {name!r} at {s.pos}: writes to "
                        f"outer scalars carry a loop dependence and cannot "
                        f"be parallelized"
                    )
                raise LoweringError(f"unknown variable {name!r} at {s.pos}")
            slot = self.locals[name]
            value = self._rhs_value(s, slot.type, current=lambda: slot)
            self.b.mov(slot, value)
            return
        # array element target
        target = s.target
        at = self._ensure_array(target.base.name)
        if len(target.indices) != at.dims:
            raise TypeCheckError(
                f"{target.base.name!r} has {at.dims} dims at {s.pos}"
            )
        idx = tuple(self._index(ix) for ix in target.indices)
        elem = jtype_of_prim(at.elem.name)
        value = self._rhs_value(
            s, elem, current=lambda: self.b.load(target.base.name, idx, elem)
        )
        self.b.store(target.base.name, idx, value)

    def _rhs_value(self, s: A.Assign, target_type: JType, current) -> Reg:
        """Value to store for ``target op= value`` (Java: x = (T)(x op v))."""
        value = self.expr(s.value)
        if not s.op:
            return self._coerce(value, target_type, s.pos)
        lhs = current()
        if lhs.type is JType.BOOL or value.type is JType.BOOL:
            if (
                s.op in ("&", "|", "^")
                and lhs.type is JType.BOOL
                and value.type is JType.BOOL
            ):
                return self.b.bin(s.op, lhs, value, JType.BOOL)
            raise TypeCheckError(f"boolean in compound assignment at {s.pos}")
        if s.op in self._SHIFTS:
            count = self.b.cast(value, JType.INT)
            result = self.b.bin(s.op, lhs, count, lhs.type)
        else:
            common = promote(lhs.type, value.type)
            a = self.b.cast(lhs, common)
            c = self.b.cast(value, common)
            result = self.b.bin(s.op, a, c, common)
        return self.b.cast(result, target_type)

    def _if(self, s: A.If) -> None:
        cond = self.expr(s.cond)
        if cond.type is not JType.BOOL:
            raise TypeCheckError(f"if condition must be boolean at {s.pos}")
        then_blk = self.b.new_block("if_t")
        else_blk = self.b.new_block("if_f") if s.els is not None else None
        end_blk = self.b.new_block("if_end")
        self.b.cbr(cond, then_blk, else_blk or end_blk)
        self.b.set_insert(then_blk)
        self.stmt(s.then)
        if self.b.current.terminator is None:
            self.b.br(end_blk)
        if else_blk is not None:
            self.b.set_insert(else_blk)
            self.stmt(s.els)
            if self.b.current.terminator is None:
                self.b.br(end_blk)
        self.b.set_insert(end_blk)

    def _while(self, s: A.While) -> None:
        head = self.b.new_block("wh_head")
        body = self.b.new_block("wh_body")
        end = self.b.new_block("wh_end")
        self.b.br(head)
        self.b.set_insert(head)
        cond = self.expr(s.cond)
        if cond.type is not JType.BOOL:
            raise TypeCheckError(f"while condition must be boolean at {s.pos}")
        self.b.cbr(cond, body, end)
        self.b.set_insert(body)
        self.stmt(s.body)
        if self.b.current.terminator is None:
            self.b.br(head)
        self.b.set_insert(end)

    def _inner_for(self, s: A.For) -> None:
        if s.annotation is not None:
            raise LoweringError(
                f"nested acc annotation at {s.pos} is not supported; "
                f"annotate only the outer loop"
            )
        if s.init is not None:
            self.stmt(s.init)
        head = self.b.new_block("for_head")
        body = self.b.new_block("for_body")
        end = self.b.new_block("for_end")
        self.b.br(head)
        self.b.set_insert(head)
        if s.cond is not None:
            cond = self.expr(s.cond)
            if cond.type is not JType.BOOL:
                raise TypeCheckError(f"for condition must be boolean at {s.pos}")
            self.b.cbr(cond, body, end)
        else:
            self.b.br(body)
        self.b.set_insert(body)
        self.stmt(s.body)
        if s.update is not None:
            self.stmt(s.update)
        if self.b.current.terminator is None:
            self.b.br(head)
        self.b.set_insert(end)


def lower_loop_body(
    loop: A.For,
    outer_types: Mapping[str, A.Type],
    index_var: str,
    name: str = "kernel",
) -> IRFunction:
    """Lower the body of an annotated loop to an :class:`IRFunction`.

    ``outer_types`` maps every variable declared outside the loop (method
    parameters and earlier locals) to its type.  ``index_var`` is the loop
    induction variable; its per-iteration value is the kernel index.
    """
    lw = _Lowerer(name, index_var, outer_types)
    entry = lw.b.new_block("entry")
    lw.b.set_insert(entry)
    lw.stmt(loop.body)
    if lw.b.current.terminator is None:
        lw.b.ret()
    return lw.b.finish()
