"""Tiered native kernel backend.

The scalar closure-per-instruction interpreter in
:mod:`repro.ir.interpreter` is the semantic reference for every kernel
execution, but it pays Python dispatch per IR instruction.  This package
adds two faster tiers that preserve its observable behaviour exactly:

``src``
    :mod:`repro.ir.native.codegen` compiles an :class:`IRFunction` into
    type-specialized Python source — registers become locals, branches
    become a block-dispatch loop, Java numeric semantics are inlined or
    pre-bound from :mod:`repro.ir.java_ops`, and work counters are folded
    statically per basic block.  The source is ``compile()``+``exec()``'d
    once per (fingerprint, flavor) and is stateless/reentrant.
``numba``
    :mod:`repro.ir.native.numba_backend` additionally lowers the direct
    flavor through ``numba.njit`` when numba is importable; it is skipped
    silently (and permanently, per process) when numba is absent or the
    compile fails.

:class:`repro.ir.native.dispatch.KernelDispatcher` fronts the tiers:
kernels start on the interpreter, are promoted by a hotness counter, and
can be crosschecked bit-for-bit against the interpreter oracle.
"""

from .codegen import DEFAULT_FUEL, NativeKernel, generate_source
from .dispatch import (
    GLOBAL_KERNEL_CACHE,
    KernelCache,
    KernelDispatcher,
    TIER_INTERP,
    TIER_NUMBA,
    TIER_SRC,
    TierPolicy,
)

__all__ = [
    "DEFAULT_FUEL",
    "GLOBAL_KERNEL_CACHE",
    "KernelCache",
    "KernelDispatcher",
    "NativeKernel",
    "TIER_INTERP",
    "TIER_NUMBA",
    "TIER_SRC",
    "TierPolicy",
    "generate_source",
]
