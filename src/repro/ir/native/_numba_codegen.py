"""Numba lowering of direct-flavor kernels (the top tier).

The kernel body is generated as a plain Python function over typed
NumPy operands — int64 arithmetic everywhere with explicit 32-bit
wrapping, float64 with explicit float32 rounding — and compiled with
``numba.njit``.  Java-visible failures cannot raise inside nopython
code with dynamic messages, so the compiled function uses an
error-code protocol: it returns ``(code, pos, a, b, c)`` and the host
side re-raises the byte-identical exception (``storage.flat`` for
memory faults, literal messages for fuel and division by zero).

Counter fidelity matches the "src" tier: per-block static folds, fuel
checked after every block, partial counts dumped before every early
return.  The same mid-block divergence caveat applies (a lane aborted
mid-block by a fault has not folded that block's categories yet); such
counts are never consumed because the launch that raised them aborts.

This module is only imported behind :func:`numba_backend.available`,
which also runs a one-time compile-and-verify self-test; any failure
here surfaces as :class:`NumbaFallback` and the dispatcher silently
drops to the generated-source tier.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import JaponicaError
from ..instructions import IRFunction, JType, Opcode
from ..interpreter import C_TOTAL, FuelExhausted, N_COUNTERS
from .codegen import DEFAULT_FUEL, _Emitter, _instr_category, _KernelPlan
from .numba_backend import NumbaFallback

_INT_TYPES = (JType.INT, JType.LONG)

_HELPERS = None


def _helpers():
    """Compile the shared njit helper library once per process."""
    global _HELPERS
    if _HELPERS is None:
        import numba

        @numba.njit(cache=False)
        def jdiv(a, b):
            # truncating division; caller has rejected b == 0.  int64
            # negation wraps in machine code, so LONG_MIN / -1 lands on
            # LONG_MIN exactly like Java (and never executes a trapping
            # sdiv).
            if b == -1:
                return -a
            q = a // b
            if a % b != 0 and (a < 0) != (b < 0):
                q += 1
            return q

        @numba.njit(cache=False)
        def jrem(a, b):
            # remainder with the dividend's sign; caller rejected b == 0
            if b == -1:
                return a - a
            r = a % b
            if r != 0 and (a < 0) != (b < 0):
                r -= b
            return r

        @numba.njit(cache=False)
        def jpow(a, b):
            # java_ops._safe_pow substitutes +inf / +nan where CPython's
            # math.pow raises (finite args, non-finite libm result);
            # non-finite args pass the libm result through untouched
            r = a**b
            if -np.inf < a < np.inf and -np.inf < b < np.inf:
                if r != r:
                    return np.float64(np.nan)
                if r == np.inf or r == -np.inf:
                    if a < 0:
                        return np.float64(np.nan)
                    return np.float64(np.inf)
            return r

        _HELPERS = {"_jdiv": jdiv, "_jrem": jrem, "_jpow": jpow}
    return _HELPERS


#: numba-safe expressions for the ``Math.*`` intrinsics, matching
#: ``java_ops.INTRINSIC_FNS``: libm gives C semantics (inf/nan instead
#: of OverflowError/ValueError), which is mostly what the safe wrappers
#: return; sqrt/log need explicit domain guards and pow goes through
#: the ``_jpow`` helper to reproduce ``_safe_pow``'s substitutions
_INTRINSIC_EXPRS = {
    "Math.sqrt": lambda a: f"(math.sqrt({a[0]}) if {a[0]} >= 0 else _NAN)",
    "Math.exp": lambda a: f"np.exp({a[0]})",
    "Math.log": (
        lambda a: f"(math.log({a[0]}) if {a[0]} > 0"
        f" else (-_INF if {a[0]} == 0 else _NAN))"
    ),
    "Math.pow": lambda a: f"_jpow({a[0]}, {a[1]})",
    "Math.abs": lambda a: f"abs({a[0]})",
    "Math.min": lambda a: f"min({a[0]}, {a[1]})",
    "Math.max": lambda a: f"max({a[0]}, {a[1]})",
    "Math.floor": lambda a: f"np.floor({a[0]})",
    "Math.ceil": lambda a: f"np.ceil({a[0]})",
    # infinities substitute the interpreter's +NaN, not libm's -NaN
    "Math.sin": (
        lambda a: f"(_NAN if {a[0]} == _INF or {a[0]} == -_INF"
        f" else np.sin({a[0]}))"
    ),
    "Math.cos": (
        lambda a: f"(_NAN if {a[0]} == _INF or {a[0]} == -_INF"
        f" else np.cos({a[0]}))"
    ),
    "Math.tan": (
        lambda a: f"(_NAN if {a[0]} == _INF or {a[0]} == -_INF"
        f" else np.tan({a[0]}))"
    ),
}


def _w32(core: str) -> str:
    """32-bit two's-complement wrap of an int64 expression."""
    return f"((({core}) & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000"


def _nb_bin(e, indent, instr, fault_exit) -> None:
    """Emit a BIN instruction; ``fault_exit`` emits an error return."""
    op = instr.binop
    a, b = f"r{instr.a.id}", f"r{instr.b.id}"
    d = f"r{instr.dst.id}"
    jt = instr.a.type
    if op in ("<", "<=", ">", ">=", "==", "!="):
        e.emit(indent, f"{d} = {a} {op} {b}")
        return
    if jt is JType.BOOL:
        if op == "&":
            e.emit(indent, f"{d} = {a} and {b}")
        elif op == "|":
            e.emit(indent, f"{d} = {a} or {b}")
        elif op == "^":
            e.emit(indent, f"{d} = {a} != {b}")
        else:
            raise NumbaFallback(f"boolean operator {op!r}")
        return
    if jt.is_floating:
        if op == "+":
            core = f"{a} + {b}"
        elif op == "-":
            core = f"{a} - {b}"
        elif op == "*":
            core = f"{a} * {b}"
        elif op == "/":
            # hardware 0/0 (and nan/0) yields the negative QNaN; the
            # interpreter's _fdiv substitutes +NaN, and the sign bit
            # matters bitwise.  x/0 stays +-inf, matching _fdiv's
            # copysign product
            core = (
                f"((_NAN if {a} == 0.0 or {a} != {a}"
                f" else math.copysign(_INF, math.copysign(1.0, {a})"
                f" * math.copysign(1.0, {b})))"
                f" if {b} == 0.0 else {a} / {b})"
            )
        elif op == "%":
            # Java %: NaN for zero divisor or infinite dividend, with
            # the interpreter's +NaN rather than libm's result
            core = (
                f"(_NAN if {b} == 0.0 or {a} == _INF or {a} == -_INF"
                f" else math.fmod({a}, {b}))"
            )
        else:
            raise NumbaFallback(f"float operator {op!r}")
        if jt is JType.FLOAT:
            core = f"np.float64(np.float32({core}))"
        e.emit(indent, f"{d} = {core}")
        return
    is_int = jt is JType.INT
    if op in ("/", "%"):
        e.emit(indent, f"if {b} == 0:")
        fault_exit(e, indent + 1, "3" if op == "/" else "4")
        helper = "_jdiv" if op == "/" else "_jrem"
        core = f"{helper}({a}, {b})"
        e.emit(indent, f"{d} = {_w32(core) if is_int and op == '/' else core}")
        return
    mask = 31 if is_int else 63
    if op == "<<":
        core = f"{a} << ({b} & {mask})"
    elif op == ">>":
        core = f"{a} >> ({b} & {mask})"
    elif op == ">>>":
        if is_int:
            core = f"({a} & 0xFFFFFFFF) >> ({b} & 31)"
        else:
            core = f"np.int64(np.uint64({a}) >> np.uint64({b} & 63))"
    elif op in ("+", "-", "*", "&", "|", "^"):
        core = f"{a} {op} {b}"
    else:
        raise NumbaFallback(f"integer operator {op!r}")
    # int64 arithmetic wraps natively in machine code, so only the
    # 32-bit type needs the explicit wrap; >>> lands in range already
    if is_int:
        core = _w32(core)
    e.emit(indent, f"{d} = {core}")


def _nb_f2int(e, indent, d, a, dst) -> None:
    """Saturating NaN-zeroing float->int conversion (java_ops.cast)."""
    if dst is JType.INT:
        hi, lo = "2147483647", "-2147483648"
        hif, lof = "2147483647.0", "-2147483648.0"
    else:
        hi, lo = "9223372036854775807", "-9223372036854775808"
        hif, lof = "9223372036854775808.0", "-9223372036854775808.0"
    e.emit(indent, f"if {a} != {a}:")
    e.emit(indent + 1, f"{d} = np.int64(0)")
    e.emit(indent, f"elif {a} >= {hif}:")
    e.emit(indent + 1, f"{d} = np.int64({hi})")
    e.emit(indent, f"elif {a} <= {lof}:")
    e.emit(indent + 1, f"{d} = np.int64({lo})")
    e.emit(indent, "else:")
    e.emit(indent + 1, f"{d} = np.int64({a})")


def _nb_cast(e, indent, instr) -> None:
    a = f"r{instr.a.id}"
    d = f"r{instr.dst.id}"
    src, dst = instr.a.type, instr.dst.type
    if dst is JType.BOOL:
        e.emit(indent, f"{d} = {a} != 0")
        return
    if dst is JType.DOUBLE:
        e.emit(indent, f"{d} = np.float64({a})")
        return
    if dst is JType.FLOAT:
        e.emit(indent, f"{d} = np.float64(np.float32({a}))")
        return
    if src.is_floating:
        _nb_f2int(e, indent, d, a, dst)
        return
    if dst is JType.INT:
        e.emit(indent, f"{d} = {_w32(f'np.int64({a})')}")
    else:
        e.emit(indent, f"{d} = np.int64({a})")


def _nb_call(e, indent, instr) -> None:
    expr_fn = _INTRINSIC_EXPRS.get(instr.intrinsic)
    if expr_fn is None:
        raise NumbaFallback(f"intrinsic {instr.intrinsic!r}")
    args = [f"r{r.id}" for r in instr.args]
    core = expr_fn(args)
    d = f"r{instr.dst.id}"
    dst = instr.dst.type
    if dst is JType.DOUBLE:
        e.emit(indent, f"{d} = np.float64({core})")
    elif dst is JType.FLOAT:
        e.emit(indent, f"{d} = np.float64(np.float32({core}))")
    elif dst in _INT_TYPES:
        e.emit(indent, f"_v = np.float64({core})")
        _nb_f2int(e, indent, d, "_v", dst)
    else:
        raise NumbaFallback("boolean intrinsic result")


def generate_numba(fn: IRFunction, fuel: int = DEFAULT_FUEL):
    """(source, metadata) of the numba-compilable kernel function.

    The function signature is positional and fixed per kernel::

        _nkernel(_idx, _sci, _scf, <one arg per array>, _raw, _pl)

    with ``_idx`` int64[:] (index values), ``_sci``/``_scf`` the
    integer/floating scalars in declaration order, ``_raw`` int64[8],
    ``_pl`` int64[len(_idx)].  Returns ``(code, pos, a, b, c)``:

    ====  =============================================================
    0     success (``pos`` = number of lanes completed)
    1     fuel exhausted at lane position ``pos``
    2     memory fault at lane ``pos``: array ordinal ``a``, index
          ``(b,)`` or ``(b, c)``
    3/4   integer ``/`` / ``%`` by zero at lane position ``pos``
    ====  =============================================================
    """
    plan = _KernelPlan(fn)
    for name, nidx in plan.arrays_nidx.items():
        if len(nidx) != 1:
            raise NumbaFallback(f"array {name!r} used at mixed ranks")
    e = _Emitter()
    array_args = [plan.array_var[name] for name in plan.arrays]
    e.emit(0, "def _nkernel(_idx, _sci, _scf, "
              + "".join(a + ", " for a in array_args) + "_raw, _pl):")
    # -- shape hoists ----------------------------------------------------
    for name in plan.arrays:
        av = plan.array_var[name]
        if 1 in plan.arrays_nidx[name]:
            e.emit(1, f"{av}_e0 = {av}.shape[0]")
        else:
            e.emit(1, f"{av}_f0 = {av}.shape[0]")
            e.emit(1, f"{av}_f1 = {av}.shape[1]")

    def fault_exit(em, indent, code, a="0", b="0", c="0"):
        for k in range(N_COUNTERS - 1):
            em.emit(indent, f"_raw[{k}] += _c{k}")
        em.emit(indent, f"_raw[{N_COUNTERS - 1}] += _c7 + _t")
        em.emit(indent, f"return ({code}, _k, {a}, {b}, {c})")

    # -- scalar binds (presence is checked host-side) --------------------
    n_sci = n_scf = 0
    scalar_slot: dict[str, tuple[str, int]] = {}
    for p in fn.scalars:
        if p.type.is_floating:
            scalar_slot[p.name] = ("_scf", n_scf)
            n_scf += 1
        else:
            scalar_slot[p.name] = ("_sci", n_sci)
            n_sci += 1

    def bind_scalar(indent, p):
        arr, slot = scalar_slot[p.name]
        rid = plan.scalar_reg[p.name]
        if p.type is JType.BOOL:
            e.emit(indent, f"r{rid} = {arr}[{slot}] != 0")
        else:
            e.emit(indent, f"r{rid} = {arr}[{slot}]")

    for p in fn.scalars:
        if plan.scalar_reg[p.name] not in plan.writes:
            bind_scalar(1, p)
    e.emit(1, "_c0 = _c1 = _c2 = _c3 = _c4 = _c5 = _c6 = _c7 = 0")
    e.emit(1, "_t = 0")
    e.emit(1, "_k = 0")
    e.emit(1, "for _k in range(_idx.shape[0]):")
    e.emit(2, f"r{fn.index.id} = _idx[_k]")
    for p in fn.scalars:
        if plan.scalar_reg[p.name] in plan.writes:
            bind_scalar(2, p)
    # type-stable zero-inits replace the interpreter's None chain; a
    # well-formed kernel never reads a register before writing it, and
    # the self-test/crosscheck guard the tier against malformed IR
    reg_types: dict[int, JType] = {}
    for blk in fn.blocks:
        for instr in blk.instrs:
            if instr.dst is not None:
                reg_types.setdefault(instr.dst.id, instr.dst.type)
            for r in (instr.a, instr.b, *instr.idx, *instr.args):
                if r is not None:
                    reg_types.setdefault(r.id, r.type)
    scalar_ids = set(plan.scalar_reg.values())
    for rid in sorted(plan.reads - scalar_ids - {fn.index.id}):
        jt = reg_types.get(rid, JType.LONG)
        if jt is JType.BOOL:
            e.emit(2, f"r{rid} = False")
        elif jt.is_floating:
            e.emit(2, f"r{rid} = 0.0")
        else:
            e.emit(2, f"r{rid} = np.int64(0)")
    e.emit(2, "_t = 0")
    e.emit(2, "_blk = 0")
    e.emit(2, "while True:")
    const_ords = iter(range(len(plan.consts)))
    block_ids = {blk.name: k for k, blk in enumerate(fn.blocks)}
    array_ord = {name: k for k, name in enumerate(plan.arrays)}
    for bid, blk in enumerate(fn.blocks):
        kw = "if" if bid == 0 else "elif"
        e.emit(3, f"{kw} _blk == {bid}:  # {blk.name}")
        ind = 4
        fold = [0] * N_COUNTERS
        for instr in blk.instrs:
            for cat in _instr_category(instr):
                fold[cat] += 1
            fold[C_TOTAL] += 1
        for instr in blk.instrs[:-1]:
            _nb_instr(e, ind, instr, plan, const_ords, array_ord, fault_exit)
        for cat in range(N_COUNTERS - 1):
            if fold[cat]:
                e.emit(ind, f"_c{cat} += {fold[cat]}")
        e.emit(ind, f"_t += {fold[C_TOTAL]}")
        term = blk.instrs[-1]
        if term.op is Opcode.BR:
            e.emit(ind, f"_blk = {block_ids[term.target]}")
        elif term.op is Opcode.CBR:
            t_id = block_ids[term.target]
            f_id = block_ids[term.else_target]
            e.emit(ind, f"_blk = {t_id} if r{term.a.id} else {f_id}")
        else:
            e.emit(ind, "_blk = -1")
    e.emit(3, f"if _t > {fuel}:")
    fault_exit(e, 4, "1")
    e.emit(3, "if _blk < 0:")
    e.emit(4, "break")
    e.emit(2, "_c7 += _t")
    e.emit(2, "_pl[_k] = _t")
    e.emit(2, "_t = 0")
    for k in range(N_COUNTERS - 1):
        e.emit(1, f"_raw[{k}] += _c{k}")
    e.emit(1, f"_raw[{N_COUNTERS - 1}] += _c7")
    e.emit(1, "return (0, _idx.shape[0], 0, 0, 0)")
    dconsts = np.zeros(max(1, len(plan.consts)), dtype=np.float64)
    for k, v in enumerate(plan.consts):
        if not isinstance(v, bool):
            try:
                dconsts[k] = float(v)
            except (TypeError, OverflowError):
                pass  # non-float slot; never read by a floating CONST
    dconsts.setflags(write=False)
    meta = {
        "plan": plan,
        "scalar_slot": scalar_slot,
        "n_sci": n_sci,
        "n_scf": n_scf,
        "dconsts": dconsts,
    }
    return e.source(), meta


def _nb_instr(e, ind, instr, plan, const_ords, array_ord, fault_exit):
    op = instr.op
    if op is Opcode.CONST:
        ordn = next(const_ords)
        value = plan.consts[ordn]
        d = f"r{instr.dst.id}"
        jt = instr.dst.type
        if jt is JType.BOOL:
            e.emit(ind, f"{d} = {bool(value)}")
        elif jt.is_floating:
            # the _dconsts global preserves exact bits (inf, NaN
            # payloads) that a repr literal cannot round-trip
            e.emit(ind, f"{d} = _dconsts[{ordn}]")
        else:
            e.emit(ind, f"{d} = np.int64({int(value)})")
        return
    if op is Opcode.MOV:
        e.emit(ind, f"r{instr.dst.id} = r{instr.a.id}")
        return
    if op is Opcode.BIN:
        _nb_bin(e, ind, instr, fault_exit)
        return
    if op is Opcode.UN:
        d = f"r{instr.dst.id}"
        a = f"r{instr.a.id}"
        jt = instr.dst.type
        if instr.binop == "!":
            e.emit(ind, f"{d} = not {a}")
        elif instr.binop == "-" and jt.is_floating:
            e.emit(ind, f"{d} = -{a}")
        elif instr.binop in ("-", "~") and jt in _INT_TYPES:
            core = f"{instr.binop}{a}"
            e.emit(ind, f"{d} = {_w32(core) if jt is JType.INT else core}")
        else:
            raise NumbaFallback(f"unary {instr.binop!r} at {jt}")
        return
    if op is Opcode.CAST:
        _nb_cast(e, ind, instr)
        return
    if op is Opcode.CALL:
        _nb_call(e, ind, instr)
        return
    av = plan.array_var[instr.array]
    aord = array_ord[instr.array]
    idx = [f"r{r.id}" for r in instr.idx]
    if len(idx) == 1:
        e.emit(ind, f"_x = np.int64({idx[0]})")
        e.emit(ind, f"if not (0 <= _x < {av}_e0):")
        fault_exit(e, ind + 1, "2", str(aord), "_x")
        flat = "_x"
    else:
        e.emit(ind, f"_x = np.int64({idx[0]})")
        e.emit(ind, f"_y = np.int64({idx[1]})")
        e.emit(ind, f"if not (0 <= _x < {av}_f0 and 0 <= _y < {av}_f1):")
        fault_exit(e, ind + 1, "2", str(aord), "_x", "_y")
        flat = "_x, _y"
    if op is Opcode.LOAD:
        d = f"r{instr.dst.id}"
        jt = instr.dst.type
        if jt is JType.BOOL:
            e.emit(ind, f"{d} = {av}[{flat}] != 0")
        elif jt.is_floating:
            e.emit(ind, f"{d} = np.float64({av}[{flat}])")
        else:
            e.emit(ind, f"{d} = np.int64({av}[{flat}])")
    else:
        e.emit(ind, f"{av}[{flat}] = r{instr.a.id}")


class NumbaKernel:
    """One eagerly-njit-compiled direct-flavor kernel."""

    tier = "numba"

    def __init__(self, fn: IRFunction, fuel: int = DEFAULT_FUEL):
        import numba

        self.fn = fn
        self.fuel = fuel
        source, meta = generate_numba(fn, fuel)
        self.source = source
        self._plan = meta["plan"]
        self._scalar_slot = meta["scalar_slot"]
        self._n_sci = meta["n_sci"]
        self._n_scf = meta["n_scf"]
        ns = {"np": np, "math": math,
              "_NAN": float("nan"), "_INF": float("inf"),
              "_dconsts": meta["dconsts"]}
        ns.update(_helpers())
        code = compile(source, f"<numba:{fn.fingerprint()}>", "exec")
        exec(code, ns)
        self._compiled = numba.njit(cache=False)(ns["_nkernel"])
        self._dtypes = {
            name: np.dtype(fn.array(name).type.numpy_dtype)
            for name in self._plan.arrays
        }
        # eager compile against zero-size stand-ins so the (one) real
        # signature is ready before the first hot launch
        dummies = [
            np.zeros((0,) * self._ndim(name), dtype=self._dtypes[name])
            for name in self._plan.arrays
        ]
        self._compiled(
            np.zeros(0, dtype=np.int64),
            np.zeros(max(1, self._n_sci), dtype=np.int64),
            np.zeros(max(1, self._n_scf), dtype=np.float64),
            *dummies,
            np.zeros(N_COUNTERS, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )

    def _ndim(self, name: str) -> int:
        return next(iter(self._plan.arrays_nidx[name]))

    def run(self, indices, scalar_env, storage, raw, per_lane):
        fn = self.fn
        plan = self._plan
        arrays = []
        for name in plan.arrays:
            arr = storage.arrays.get(name)
            if (
                arr is None
                or arr.ndim != self._ndim(name)
                or arr.dtype != self._dtypes[name]
                or not arr.flags.c_contiguous
            ):
                # unbound / mismatched operands take the src tier, which
                # reproduces the interpreter's exact MemoryFault text
                raise NumbaFallback(f"array operand {name!r} shape/dtype")
            arrays.append(arr)
        sci = np.zeros(max(1, self._n_sci), dtype=np.int64)
        scf = np.zeros(max(1, self._n_scf), dtype=np.float64)
        for p in fn.scalars:
            try:
                value = scalar_env[p.name]
            except KeyError:
                raise JaponicaError(
                    f"kernel {fn.name!r} missing scalar {p.name!r}"
                ) from None
            slot_arr, slot = self._scalar_slot[p.name]
            if slot_arr == "_sci":
                sci[slot] = int(value)
            else:
                scf[slot] = float(value)
        idx = np.asarray(list(indices), dtype=np.int64)
        raw_arr = np.zeros(N_COUNTERS, dtype=np.int64)
        pl = np.zeros(idx.shape[0], dtype=np.int64)
        code, pos, a, b, c = self._compiled(
            idx, sci, scf, *arrays, raw_arr, pl
        )
        code, pos = int(code), int(pos)
        for k in range(N_COUNTERS):
            raw[k] += int(raw_arr[k])
        per_lane.extend(int(x) for x in pl[: pos if code else len(pl)])
        if code == 0:
            return None
        if code == 1:
            raise FuelExhausted(
                f"kernel {fn.name!r} exceeded {self.fuel} instructions "
                f"at index {int(idx[pos])}"
            )
        if code == 2:
            name = plan.arrays[int(a)]
            if self._ndim(name) == 1:
                storage.flat(name, (int(b),))
            else:
                storage.flat(name, (int(b), int(c)))
            raise NumbaFallback("memory fault did not reproduce")
        if code == 3:
            raise ZeroDivisionError("/ by zero")
        if code == 4:
            raise ZeroDivisionError("% by zero")
        raise NumbaFallback(f"unknown error code {code}")
