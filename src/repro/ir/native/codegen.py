"""Type-specialized Python codegen for IR kernels (the "src" tier).

An :class:`IRFunction` is lowered to one plain Python function per
memory-backend flavor:

* registers become Python locals (``r{id}``),
* the CFG becomes a block-dispatch loop (``_blk`` integer + ``if/elif``
  chain; CBR lowers to a conditional expression),
* Java numeric semantics are inlined (two's-complement wrap as a masked
  expression) or pre-bound from :mod:`repro.ir.java_ops` (division,
  remainder, float32 rounding, intrinsics),
* loads/stores inline the bounds check against hoisted shapes and fall
  back to :meth:`ArrayStorage.flat` on failure so every error message is
  byte-identical to the interpreter's,
* dynamic work counters are folded statically per basic block and the
  fuel check runs after every block — including RET — exactly like
  :class:`repro.ir.interpreter.CompiledKernel`.

Counter fidelity: counts are exact for every execution that completes,
runs out of fuel, or is cut short at an index boundary (worker faults).
The one tolerated divergence is an execution aborted *mid-block* by a
``MemoryFault``/``ZeroDivisionError``: the interpreter has counted the
instructions before the faulting one, the generated code folds the block
at its end and therefore has not.  Such counts are never consumed — the
launch that raised them aborts.

The generated function is stateless and reentrant: all mutable state
(counters, per-lane totals, speculative buffers) lives in caller-owned
arguments or per-invocation locals, so one compiled kernel is safely
shared process-wide across threads.

Flavors mirror the interpreter's memory backends:

``direct``    reads/writes go straight to storage (DirectBackend).
``buffered``  per-lane write buffers + read/write logs returned as a
              ``{index: LaneSpecState}`` dict (SpeculativeBackend).
``tracing``   direct writes plus per-lane ordered address traces
              returned as ``{index: [AccessRecord]}`` (TracingBackend).
"""

from __future__ import annotations

import linecache
import math

from ...errors import JaponicaError
from .. import java_ops
from ..instructions import IRFunction, JType, Opcode, SPECIAL_OPS
from ..interpreter import (
    AccessRecord,
    C_BRANCH,
    C_FLOAT,
    C_INT,
    C_INTRINSIC,
    C_LOAD,
    C_SPECIAL,
    C_STORE,
    C_TOTAL,
    FuelExhausted,
    LaneSpecState,
    N_COUNTERS,
)

DEFAULT_FUEL = 200_000_000

FLAVORS = ("direct", "buffered", "tracing")

_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")


def _divi(a, b):
    return java_ops.wrap_int(java_ops.java_div_int(a, b))


def _divl(a, b):
    return java_ops.wrap_long(java_ops.java_div_int(a, b))


def _remi(a, b):
    return java_ops.wrap_int(java_ops.java_rem_int(a, b))


def _reml(a, b):
    return java_ops.wrap_long(java_ops.java_rem_int(a, b))


def _cast_f2i(v):
    return java_ops.cast(v, JType.DOUBLE, JType.INT)


def _cast_f2l(v):
    return java_ops.cast(v, JType.DOUBLE, JType.LONG)


#: Names injected into every generated function's globals.
_BASE_GLOBALS = {
    "_JErr": JaponicaError,
    "_Fuel": FuelExhausted,
    "_AR": AccessRecord,
    "_LSS": LaneSpecState,
    "_NAN": float("nan"),
    "_fdiv": java_ops._fdiv,
    "_fmod": java_ops._frem,
    "_rf": java_ops._round_float,
    "_divi": _divi,
    "_divl": _divl,
    "_remi": _remi,
    "_reml": _reml,
    "_c_fi": _cast_f2i,
    "_c_fl": _cast_f2l,
    "_binop": java_ops.binop,
    "_unop": java_ops.unop,
    "_JT": {t.value: t for t in JType},
}


class _Emitter:
    """Accumulates indented source lines."""

    def __init__(self):
        self.lines: list[str] = []

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _wrap_expr(core: str, jt: JType) -> str:
    """Two's-complement wrap of ``core`` as a branch-free expression.

    ``((x & MASK) ^ SIGN) - SIGN`` is equivalent to
    :func:`java_ops.wrap_int`/``wrap_long`` for every integer ``x``.
    """
    if jt is JType.INT:
        return f"((({core}) & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000"
    return (
        f"((({core}) & 0xFFFFFFFFFFFFFFFF) ^ 0x8000000000000000)"
        f" - 0x8000000000000000"
    )


def _bin_expr(op: str, a: str, b: str, jt: JType) -> str:
    """Expression for ``BIN`` matching :func:`java_ops.binop` exactly."""
    if op in _CMP_OPS:
        return f"{a} {op} {b}"
    if jt is JType.BOOL:
        if op == "&":
            return f"bool({a}) and bool({b})"
        if op == "|":
            return f"bool({a}) or bool({b})"
        if op == "^":
            return f"bool({a}) != bool({b})"
        # undefined on boolean: defer to java_ops for the exact error
        return f"_binop({op!r}, {a}, {b}, _JT[{jt.value!r}])"
    if jt.is_floating:
        if op == "+":
            core = f"{a} + {b}"
        elif op == "-":
            core = f"{a} - {b}"
        elif op == "*":
            core = f"{a} * {b}"
        elif op == "/":
            core = f"_fdiv({a}, {b})"
        elif op == "%":
            core = f"_fmod({a}, {b})"
        else:
            return f"_binop({op!r}, {a}, {b}, _JT[{jt.value!r}])"
        return f"_rf({core})" if jt is JType.FLOAT else core
    # integral int/long
    shift_mask = 31 if jt is JType.INT else 63
    umask = "0xFFFFFFFF" if jt is JType.INT else "0xFFFFFFFFFFFFFFFF"
    if op == "/":
        return f"_divi({a}, {b})" if jt is JType.INT else f"_divl({a}, {b})"
    if op == "%":
        return f"_remi({a}, {b})" if jt is JType.INT else f"_reml({a}, {b})"
    if op == "<<":
        core = f"{a} << ({b} & {shift_mask})"
    elif op == ">>":
        core = f"{a} >> ({b} & {shift_mask})"
    elif op == ">>>":
        core = f"({a} & {umask}) >> ({b} & {shift_mask})"
    elif op in ("+", "-", "*", "&", "|", "^"):
        core = f"{a} {op} {b}"
    else:
        return f"_binop({op!r}, {a}, {b}, _JT[{jt.value!r}])"
    return _wrap_expr(core, jt)


def _un_expr(op: str, a: str, jt: JType) -> str:
    """Expression for ``UN`` matching :func:`java_ops.unop` exactly."""
    if op == "!":
        return f"not {a}"
    if op == "-" and jt.is_floating:
        return f"-{a}"
    if op in ("-", "~") and jt in (JType.INT, JType.LONG):
        return _wrap_expr(f"{op}{a}", jt)
    return f"_unop({op!r}, {a}, _JT[{jt.value!r}])"


def _cast_expr(a: str, src: JType, dst: JType) -> str:
    """Expression for ``CAST`` matching :func:`java_ops.cast` exactly."""
    if dst is JType.BOOL:
        return f"bool({a})"
    if dst is JType.DOUBLE:
        return f"float({a})"
    if dst is JType.FLOAT:
        return f"_rf(float({a}))"
    if src.is_floating:
        return f"_c_fi({a})" if dst is JType.INT else f"_c_fl({a})"
    return _wrap_expr(f"int({a})", dst)


def _intr_expr(var: str, args: str, dst: JType) -> str:
    """Expression for ``CALL`` matching :func:`java_ops.intrinsic`."""
    core = f"{var}({args})"
    if dst is JType.FLOAT:
        return f"_rf(float({core}))"
    if dst is JType.DOUBLE:
        return f"float({core})"
    # non-floating result conversion (_wrap treats BOOL like LONG)
    return _wrap_expr(f"int({core})", JType.INT if dst is JType.INT else JType.LONG)


def _instr_category(instr) -> tuple[int, ...]:
    """Counter indices (besides C_TOTAL) one instruction increments."""
    op = instr.op
    if op in (Opcode.CONST, Opcode.MOV):
        return ()
    if op is Opcode.BIN:
        if instr.binop in SPECIAL_OPS:
            return (C_SPECIAL,)
        return (C_FLOAT,) if instr.a.type.is_floating else (C_INT,)
    if op is Opcode.UN:
        return (C_FLOAT,) if instr.dst.type.is_floating else (C_INT,)
    if op is Opcode.CAST:
        return (C_INT,)
    if op is Opcode.LOAD:
        return (C_LOAD,)
    if op is Opcode.STORE:
        return (C_STORE,)
    if op is Opcode.CALL:
        return (C_INTRINSIC,)
    if op in (Opcode.BR, Opcode.CBR):
        return (C_BRANCH,)
    if op is Opcode.RET:
        return ()
    raise JaponicaError(f"unknown opcode {op}")


class _KernelPlan:
    """Static facts the emitter needs: register roles, array usage."""

    def __init__(self, fn: IRFunction):
        self.fn = fn
        reads: set[int] = set()
        writes: set[int] = set()
        arrays_nidx: dict[str, set[int]] = {}
        arrays_loaded: set[str] = set()
        arrays_stored: set[str] = set()
        intrinsics: list[str] = []
        consts: list[object] = []
        for blk in fn.blocks:
            for instr in blk.instrs:
                if instr.dst is not None:
                    writes.add(instr.dst.id)
                for r in (instr.a, instr.b):
                    if r is not None:
                        reads.add(r.id)
                for r in instr.idx:
                    reads.add(r.id)
                for r in instr.args:
                    reads.add(r.id)
                if instr.op in (Opcode.LOAD, Opcode.STORE):
                    arrays_nidx.setdefault(instr.array, set()).add(
                        len(instr.idx)
                    )
                    if instr.op is Opcode.LOAD:
                        arrays_loaded.add(instr.array)
                    else:
                        arrays_stored.add(instr.array)
                if instr.op is Opcode.CALL and instr.intrinsic not in intrinsics:
                    intrinsics.append(instr.intrinsic)
                if instr.op is Opcode.CONST:
                    consts.append(instr.value)
        self.reads = reads
        self.writes = writes
        self.arrays = list(arrays_nidx)  # order of first use
        self.array_var = {name: f"_a{k}" for k, name in enumerate(self.arrays)}
        self.arrays_nidx = arrays_nidx
        self.arrays_loaded = arrays_loaded
        self.arrays_stored = arrays_stored
        self.intrinsics = intrinsics
        self.intr_var = {name: f"_in{k}" for k, name in enumerate(intrinsics)}
        self.consts = consts
        self.scalar_var = {
            p.name: f"_s{k}" for k, p in enumerate(fn.scalars)
        }
        self.scalar_reg = {
            p.name: fn.scalar_regs[p.name].id for p in fn.scalars
        }


def generate(
    fn: IRFunction, flavor: str = "direct", fuel: int = DEFAULT_FUEL
) -> tuple[str, dict]:
    """Generate (source, globals) for one kernel/flavor pair."""
    if flavor not in FLAVORS:
        raise JaponicaError(f"unknown native kernel flavor {flavor!r}")
    plan = _KernelPlan(fn)
    e = _Emitter()
    g = dict(_BASE_GLOBALS)
    const_var: dict[int, str] = {}
    for k, value in enumerate(plan.consts):
        g[f"_K{k}"] = value
    for name, var in plan.intr_var.items():
        g[var] = java_ops.INTRINSIC_FNS[name]

    writes_mem = flavor in ("direct", "tracing")
    e.emit(0, "def _kernel(_indices, _env, _storage, _raw, _per_lane):")
    e.emit(1, "_arrays = _storage.arrays")
    e.emit(1, "_flat = _storage.flat")
    # -- array hoists ---------------------------------------------------
    for name in plan.arrays:
        av = plan.array_var[name]
        e.emit(1, f"{av} = _arrays.get({name!r})")
        if 1 in plan.arrays_nidx[name]:
            e.emit(
                1,
                f"{av}_e0 = {av}.shape[0] "
                f"if {av} is not None and {av}.ndim == 1 else -1",
            )
        if 2 in plan.arrays_nidx[name]:
            e.emit(1, f"if {av} is not None and {av}.ndim == 2:")
            e.emit(2, f"{av}_f0, {av}_f1 = {av}.shape")
            e.emit(1, "else:")
            e.emit(2, f"{av}_f0 = {av}_f1 = -1")
        if name in plan.arrays_loaded:
            e.emit(1, f"{av}_item = {av}.item if {av} is not None else None")
        if name in plan.arrays_stored and writes_mem:
            e.emit(1, f"{av}_fl = {av}.flat if {av} is not None else None")
    # -- scalar binds (interpreter order and error message) -------------
    for p in fn.scalars:
        sv = plan.scalar_var[p.name]
        msg = f"kernel {fn.name!r} missing scalar {p.name!r}"
        e.emit(1, "try:")
        e.emit(2, f"{sv} = _env[{p.name!r}]")
        e.emit(1, "except KeyError:")
        e.emit(2, f"raise _JErr({msg!r}) from None")
    # scalar registers never written inside the kernel bind once
    hoisted_scalars = []
    looped_scalars = []
    for p in fn.scalars:
        rid = plan.scalar_reg[p.name]
        (looped_scalars if rid in plan.writes else hoisted_scalars).append(p)
    for p in hoisted_scalars:
        e.emit(1, f"r{plan.scalar_reg[p.name]} = {plan.scalar_var[p.name]}")
    # registers that are read anywhere start each index as None, exactly
    # like the interpreter's fresh regs list (scalar and index registers
    # are bound explicitly, so they stay out of the None chain)
    scalar_ids = set(plan.scalar_reg.values())
    init_ids = sorted(plan.reads - scalar_ids - {fn.index.id})
    e.emit(1, "_c0 = _c1 = _c2 = _c3 = _c4 = _c5 = _c6 = _c7 = 0")
    e.emit(1, "_t = 0")
    if flavor == "buffered":
        e.emit(1, "_lanes = {}")
    elif flavor == "tracing":
        e.emit(1, "_traces = {}")
    e.emit(1, "try:")
    e.emit(2, "for _i in _indices:")
    e.emit(3, f"r{fn.index.id} = _i")
    for p in looped_scalars:
        e.emit(3, f"r{plan.scalar_reg[p.name]} = {plan.scalar_var[p.name]}")
    if init_ids:
        chain = " = ".join(f"r{rid}" for rid in init_ids)
        e.emit(3, f"{chain} = None")
    if flavor == "buffered":
        e.emit(3, "_buf = {}")
        e.emit(3, "_reads = []")
        e.emit(3, "_writes = []")
        e.emit(3, "_op = 0")
    elif flavor == "tracing":
        e.emit(3, "_tr = []")
        e.emit(3, "_op = 0")
    e.emit(3, "_t = 0")
    e.emit(3, "_blk = 0")
    e.emit(3, "while True:")
    # -- blocks ---------------------------------------------------------
    const_iter = iter(range(len(plan.consts)))
    block_ids = {blk.name: k for k, blk in enumerate(fn.blocks)}
    for bid, blk in enumerate(fn.blocks):
        kw = "if" if bid == 0 else "elif"
        e.emit(4, f"{kw} _blk == {bid}:  # {blk.name}")
        body_indent = 5
        fold = [0] * N_COUNTERS
        for instr in blk.instrs:
            for cat in _instr_category(instr):
                fold[cat] += 1
            fold[C_TOTAL] += 1
        for instr in blk.instrs[:-1]:
            _emit_instr(
                e, body_indent, instr, plan, flavor, const_iter, writes_mem
            )
        # fold the block's statically-known work before the terminator
        for cat in range(N_COUNTERS - 1):
            if fold[cat]:
                e.emit(body_indent, f"_c{cat} += {fold[cat]}")
        e.emit(body_indent, f"_t += {fold[C_TOTAL]}")
        term = blk.instrs[-1]
        if term.op is Opcode.BR:
            e.emit(body_indent, f"_blk = {block_ids[term.target]}")
        elif term.op is Opcode.CBR:
            t_id = block_ids[term.target]
            f_id = block_ids[term.else_target]
            e.emit(
                body_indent,
                f"_blk = {t_id} if r{term.a.id} else {f_id}",
            )
        else:  # RET
            e.emit(body_indent, "_blk = -1")
    # the interpreter checks fuel after *every* terminator, RET included
    fuel_msg = f"kernel {fn.name!r} exceeded {fuel} instructions at index "
    e.emit(4, f"if _t > {fuel}:")
    e.emit(5, f"raise _Fuel({fuel_msg!r} + str(_i))")
    e.emit(4, "if _blk < 0:")
    e.emit(5, "break")
    # -- index epilogue -------------------------------------------------
    e.emit(3, "_c7 += _t")
    e.emit(3, "_per_lane.append(_t)")
    e.emit(3, "_t = 0")
    if flavor == "buffered":
        e.emit(3, "_lanes[_i] = _LSS(_buf, _reads, _writes, _op)")
    elif flavor == "tracing":
        e.emit(3, "_traces[_i] = _tr")
    e.emit(1, "finally:")
    for k in range(N_COUNTERS - 1):
        e.emit(2, f"_raw[{k}] += _c{k}")
    e.emit(2, "_raw[7] += _c7 + _t")
    if flavor == "buffered":
        e.emit(1, "return _lanes")
    elif flavor == "tracing":
        e.emit(1, "return _traces")
    else:
        e.emit(1, "return None")
    return e.source(), g


def _emit_flat(
    e: _Emitter,
    indent: int,
    instr,
    plan: _KernelPlan,
    out_var: str,
) -> None:
    """Emit the bounds check + flat-address computation into ``out_var``.

    The fast path reproduces :meth:`ArrayStorage.flat` for the
    bound-and-shape-matching case; every other case (unbound array, dim
    mismatch, out of bounds) falls back to the real ``storage.flat``,
    which raises the byte-identical MemoryFault.
    """
    av = plan.array_var[instr.array]
    idx = [f"r{r.id}" for r in instr.idx]
    if len(idx) == 1:
        e.emit(indent, f"_x = {idx[0]}")
        e.emit(indent, f"if 0 <= _x < {av}_e0:")
        e.emit(indent + 1, f"{out_var} = _x")
        e.emit(indent, "else:")
        e.emit(indent + 1, f"{out_var} = _flat({instr.array!r}, (_x,))")
    else:
        e.emit(indent, f"_x = {idx[0]}")
        e.emit(indent, f"_y = {idx[1]}")
        e.emit(indent, f"if 0 <= _x < {av}_f0 and 0 <= _y < {av}_f1:")
        e.emit(indent + 1, f"{out_var} = _x * {av}_f1 + _y")
        e.emit(indent, "else:")
        e.emit(indent + 1, f"{out_var} = _flat({instr.array!r}, (_x, _y))")


def _emit_instr(
    e: _Emitter,
    indent: int,
    instr,
    plan: _KernelPlan,
    flavor: str,
    const_iter,
    writes_mem: bool,
) -> None:
    op = instr.op
    if op is Opcode.CONST:
        e.emit(indent, f"r{instr.dst.id} = _K{next(const_iter)}")
        return
    if op is Opcode.MOV:
        e.emit(indent, f"r{instr.dst.id} = r{instr.a.id}")
        return
    if op is Opcode.BIN:
        expr = _bin_expr(
            instr.binop, f"r{instr.a.id}", f"r{instr.b.id}", instr.a.type
        )
        e.emit(indent, f"r{instr.dst.id} = {expr}")
        return
    if op is Opcode.UN:
        expr = _un_expr(instr.binop, f"r{instr.a.id}", instr.dst.type)
        e.emit(indent, f"r{instr.dst.id} = {expr}")
        return
    if op is Opcode.CAST:
        expr = _cast_expr(f"r{instr.a.id}", instr.a.type, instr.dst.type)
        e.emit(indent, f"r{instr.dst.id} = {expr}")
        return
    if op is Opcode.CALL:
        args = ", ".join(f"r{r.id}" for r in instr.args)
        expr = _intr_expr(
            plan.intr_var[instr.intrinsic], args, instr.dst.type
        )
        e.emit(indent, f"r{instr.dst.id} = {expr}")
        return
    av = plan.array_var[instr.array]
    if op is Opcode.LOAD:
        dst = f"r{instr.dst.id}"
        if flavor == "direct":
            _emit_flat(e, indent, instr, plan, "_f")
            e.emit(indent, f"{dst} = {av}_item(_f)")
        elif flavor == "buffered":
            _emit_flat(e, indent, instr, plan, "_f")
            e.emit(indent, f"_k = ({instr.array!r}, _f)")
            e.emit(indent, "if _k in _buf:")
            e.emit(indent + 1, f"{dst} = _buf[_k]")
            e.emit(indent, "else:")
            e.emit(
                indent + 1,
                f"_reads.append(_AR(_op, 'R', {instr.array!r}, _f))",
            )
            e.emit(indent + 1, f"{dst} = {av}_item(_f)")
            e.emit(indent, "_op += 1")
        else:  # tracing
            _emit_flat(e, indent, instr, plan, "_f")
            e.emit(indent, f"_tr.append(_AR(_op, 'R', {instr.array!r}, _f))")
            e.emit(indent, "_op += 1")
            e.emit(indent, f"{dst} = {av}_item(_f)")
        return
    if op is Opcode.STORE:
        src = f"r{instr.a.id}"
        _emit_flat(e, indent, instr, plan, "_f")
        if flavor == "direct":
            e.emit(indent, f"{av}_fl[_f] = {src}")
        elif flavor == "buffered":
            e.emit(
                indent, f"_writes.append(_AR(_op, 'W', {instr.array!r}, _f))"
            )
            e.emit(indent, "_op += 1")
            e.emit(indent, f"_buf[({instr.array!r}, _f)] = {src}")
        else:  # tracing
            e.emit(indent, f"_tr.append(_AR(_op, 'W', {instr.array!r}, _f))")
            e.emit(indent, "_op += 1")
            e.emit(indent, f"{av}_fl[_f] = {src}")
        return
    raise JaponicaError(f"non-terminator expected, got {op}")


def generate_source(
    fn: IRFunction, flavor: str = "direct", fuel: int = DEFAULT_FUEL
) -> str:
    """The generated Python source alone (diagnostics, tests, docs)."""
    return generate(fn, flavor, fuel)[0]


class NativeKernel:
    """One compiled (fingerprint, flavor) pair of the "src" tier.

    ``run`` executes every index in order, accumulating raw work
    counters into the caller-owned ``raw`` list (survives exceptions via
    ``try/finally`` in the generated code) and appending each index's
    instruction total to ``per_lane``.  Returns the flavor's auxiliary
    structure: ``None`` (direct), lanes dict (buffered), traces dict
    (tracing).
    """

    __slots__ = ("fn", "flavor", "fuel", "source", "_run")

    tier = "src"

    def __init__(
        self, fn: IRFunction, flavor: str = "direct", fuel: int = DEFAULT_FUEL
    ):
        self.fn = fn
        self.flavor = flavor
        self.fuel = fuel
        source, ns = generate(fn, flavor, fuel)
        self.source = source
        filename = f"<native:{fn.fingerprint()}:{flavor}>"
        code = compile(source, filename, "exec")
        exec(code, ns)
        self._run = ns["_kernel"]
        # make generated lines visible in tracebacks
        linecache.cache[filename] = (
            len(source), None, source.splitlines(True), filename,
        )

    def run(self, indices, scalar_env, storage, raw, per_lane):
        return self._run(indices, scalar_env, storage, raw, per_lane)
