"""Tier selection and execution fronting for compiled kernels.

``KernelDispatcher`` owns the per-context work counters and hotness
state; the compiled artifacts themselves live in a process-wide
``KernelCache`` shared by every device and executor, so an N-device
pool compiles each kernel once:

* stateless tiers (generated-source ``NativeKernel``, numba, the
  vectorized/specvec kernels) are cached globally under a lock, keyed
  ``(ir_fingerprint, tier/flavor)``;
* the stateful scalar interpreter (``CompiledKernel`` closures capture
  their counters and backend) is cached per *thread*, which still
  deduplicates the per-device copies of the old per-instance caches.

Tier ladder per kernel: ``interp`` → ``src`` → ``numba``.  Promotion is
by a cumulative iteration count (one large launch promotes immediately);
the numba tier applies to the direct flavor only and is skipped silently
when numba is not importable or its compile fails.  ``crosscheck`` mode
replays every native execution through the interpreter oracle and
compares results bitwise — the oracle's effects always win.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ...errors import NativeMismatch
from ...obs.metrics import NULL_INSTRUMENTATION, Instrumentation
from ..instructions import IRFunction
from ..interpreter import (
    ArrayStorage,
    C_TOTAL,
    CompiledKernel,
    Counts,
    DirectBackend,
    N_COUNTERS,
    SpeculativeBackend,
    TracingBackend,
)
from ..specvec import VectorizedSpecKernel
from ..vectorizer import VectorizedKernel
from .codegen import DEFAULT_FUEL, NativeKernel

TIER_INTERP = "interp"
TIER_SRC = "src"
TIER_NUMBA = "numba"

_BACKENDS = {
    "direct": DirectBackend,
    "buffered": SpeculativeBackend,
    "tracing": TracingBackend,
}


@dataclass
class TierPolicy:
    """Promotion thresholds, in cumulative iterations per kernel."""

    #: iterations before a kernel is promoted to generated source
    src_threshold: int = 256
    #: iterations before the numba tier is attempted (direct flavor only)
    numba_threshold: int = 65536
    enable_src: bool = True
    enable_numba: bool = True


class KernelCache:
    """Process-wide cache of compiled kernel artifacts.

    Stateless artifacts (src/numba/vectorized kernels) are shared across
    threads; interpreter kernels are stateful and cached thread-locally.
    ``compiles`` counts real compilations per tier (test observability).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._src: dict[tuple[str, str], NativeKernel] = {}
        self._numba: dict[str, object] = {}
        self._vector: dict[str, VectorizedKernel] = {}
        self._specvec: dict[str, VectorizedSpecKernel] = {}
        self._local = threading.local()
        self.compiles = {"interp": 0, "src": 0, "numba": 0, "vector": 0}

    # -- interpreter tier (thread-local, stateful) ----------------------

    def interp(self, fn: IRFunction) -> CompiledKernel:
        kernels = getattr(self._local, "kernels", None)
        if kernels is None:
            kernels = self._local.kernels = {}
        key = fn.fingerprint()
        kern = kernels.get(key)
        if kern is None:
            kern = kernels[key] = CompiledKernel(fn)
            with self._lock:
                self.compiles["interp"] += 1
        return kern

    # -- stateless tiers ------------------------------------------------

    def src(
        self,
        fn: IRFunction,
        flavor: str,
        obs: Instrumentation = NULL_INSTRUMENTATION,
        fuel: int = DEFAULT_FUEL,
    ) -> NativeKernel:
        key = (fn.fingerprint(), flavor)
        kern = self._src.get(key)
        if kern is not None:
            return kern
        with self._lock:
            kern = self._src.get(key)
            if kern is None:
                started = time.perf_counter()
                kern = NativeKernel(fn, flavor, fuel)
                self.compiles["src"] += 1
                obs.metrics.counter("kernel.compile_s.src").inc(
                    time.perf_counter() - started
                )
                self._src[key] = kern
        return kern

    def numba(
        self,
        fn: IRFunction,
        obs: Instrumentation = NULL_INSTRUMENTATION,
        fuel: int = DEFAULT_FUEL,
    ):
        """The numba-tier kernel, or None when unavailable/failed."""
        key = fn.fingerprint()
        if key in self._numba:
            return self._numba[key]
        with self._lock:
            if key in self._numba:
                return self._numba[key]
            from . import numba_backend

            kern = None
            if numba_backend.available():
                started = time.perf_counter()
                kern = numba_backend.compile_kernel(fn, fuel)
                if kern is not None:
                    self.compiles["numba"] += 1
                    obs.metrics.counter("kernel.compile_s.numba").inc(
                        time.perf_counter() - started
                    )
            self._numba[key] = kern
        return kern

    def numba_failed(self, fn: IRFunction) -> None:
        """Permanently disable the numba tier for one kernel."""
        with self._lock:
            self._numba[fn.fingerprint()] = None

    def vectorized(self, fn: IRFunction) -> VectorizedKernel:
        key = fn.fingerprint()
        kern = self._vector.get(key)
        if kern is None:
            with self._lock:
                kern = self._vector.get(key)
                if kern is None:
                    kern = self._vector[key] = VectorizedKernel(fn)
                    self.compiles["vector"] += 1
        return kern

    def specvec(self, fn: IRFunction) -> VectorizedSpecKernel:
        key = fn.fingerprint()
        kern = self._specvec.get(key)
        if kern is None:
            with self._lock:
                kern = self._specvec.get(key)
                if kern is None:
                    kern = self._specvec[key] = VectorizedSpecKernel(fn)
        return kern

    def clear(self) -> None:
        with self._lock:
            self._src.clear()
            self._numba.clear()
            self._vector.clear()
            self._specvec.clear()
            self._local = threading.local()
            for k in self.compiles:
                self.compiles[k] = 0


#: The default process-wide cache every context shares.
GLOBAL_KERNEL_CACHE = KernelCache()


class KernelDispatcher:
    """Runs kernels through the hottest correct tier.

    One dispatcher is shared by all devices and the CPU executor of an
    execution context; it owns the per-kernel raw work counters (so
    partial counts from faulted attempts accumulate exactly as the old
    per-device ``CompiledKernel`` counters did) and the hotness state
    driving promotion.
    """

    def __init__(
        self,
        cache: Optional[KernelCache] = None,
        policy: Optional[TierPolicy] = None,
        obs: Optional[Instrumentation] = None,
        native: bool = True,
        crosscheck: bool = False,
        fuel: int = DEFAULT_FUEL,
    ):
        self.cache = cache or GLOBAL_KERNEL_CACHE
        self.policy = policy or TierPolicy()
        self.obs = obs or NULL_INSTRUMENTATION
        self.native = native
        self.crosscheck = crosscheck
        self.fuel = fuel
        self._raw: dict[str, list[int]] = {}
        self._hot: dict[str, int] = {}
        self._tier: dict[str, str] = {}

    # -- counters -------------------------------------------------------

    def counters(self, fn: IRFunction) -> list[int]:
        key = fn.fingerprint()
        raw = self._raw.get(key)
        if raw is None:
            raw = self._raw[key] = [0] * N_COUNTERS
        return raw

    def take_counts(self, fn: IRFunction) -> Counts:
        """Return and reset the kernel's accumulated work counters."""
        raw = self.counters(fn)
        counts = Counts.from_raw(raw)
        for k in range(N_COUNTERS):
            raw[k] = 0
        return counts

    def peek_counts(self, fn: IRFunction) -> Counts:
        return Counts.from_raw(self.counters(fn))

    # -- tier selection -------------------------------------------------

    def _select(self, fn: IRFunction, flavor: str, n: int) -> str:
        key = fn.fingerprint()
        hot = self._hot.get(key, 0) + n
        self._hot[key] = hot
        pol = self.policy
        tier = TIER_INTERP
        if self.native and pol.enable_src and hot >= pol.src_threshold:
            tier = TIER_SRC
            if (
                pol.enable_numba
                and flavor == "direct"
                and hot >= pol.numba_threshold
            ):
                tier = TIER_NUMBA
        previous = self._tier.get(key, TIER_INTERP)
        if tier != previous:
            self._tier[key] = tier
            with self.obs.tracer.span(
                f"promote:{fn.name}",
                "kernel",
                tier=tier,
                from_tier=previous,
                hot_iterations=hot,
            ):
                pass
        return tier

    def _record(self, tier: str, flavor: str, n: int) -> None:
        m = self.obs.metrics
        m.counter(f"kernel.tier.{tier}").inc()
        m.counter(f"kernel.tier.{tier}.iterations").inc(n)
        m.counter(f"kernel.dispatch.{flavor}").inc()

    # -- execution ------------------------------------------------------

    def run_direct(
        self,
        fn: IRFunction,
        indices: Sequence[int],
        scalar_env: dict[str, object],
        storage: ArrayStorage,
    ) -> list[int]:
        """Run indices in order, writes straight to storage.

        Returns the per-index instruction totals (the divergence input).
        """
        return self._run(fn, "direct", indices, scalar_env, storage)

    def run_buffered(
        self,
        fn: IRFunction,
        indices: Sequence[int],
        scalar_env: dict[str, object],
        storage: ArrayStorage,
    ):
        """SE-phase run: per-lane write buffers + read/write logs.

        Returns ``(per_lane, {index: LaneSpecState})``.
        """
        return self._run(fn, "buffered", indices, scalar_env, storage)

    def run_tracing(
        self,
        fn: IRFunction,
        indices: Sequence[int],
        scalar_env: dict[str, object],
        storage: ArrayStorage,
    ):
        """Profiling run: direct writes + per-lane address traces.

        Returns ``(per_lane, {index: [AccessRecord]})``.
        """
        return self._run(fn, "tracing", indices, scalar_env, storage)

    def _run(self, fn, flavor, indices, scalar_env, storage):
        indices = list(indices)
        tier = self._select(fn, flavor, len(indices))
        if tier != TIER_INTERP and self.crosscheck:
            self._record(tier, flavor, len(indices))
            return self._run_crosschecked(
                fn, flavor, tier, indices, scalar_env, storage
            )
        if tier == TIER_NUMBA:
            result = self._run_numba(fn, indices, scalar_env, storage)
            if result is not None:
                self._record(TIER_NUMBA, flavor, len(indices))
                return result
            tier = TIER_SRC
        if tier == TIER_SRC:
            self._record(TIER_SRC, flavor, len(indices))
            return self._run_src(fn, flavor, indices, scalar_env, storage)
        self._record(TIER_INTERP, flavor, len(indices))
        return self._run_interp(fn, flavor, indices, scalar_env, storage)

    def _run_interp(self, fn, flavor, indices, scalar_env, storage):
        kern = self.cache.interp(fn)
        backend = _BACKENDS[flavor](storage)
        per_lane: list[int] = []
        counters = kern.counters
        try:
            for i in indices:
                before = counters[C_TOTAL]
                kern.run_index(i, scalar_env, backend)
                per_lane.append(counters[C_TOTAL] - before)
        finally:
            # drain into the dispatcher-owned counters so the shared,
            # thread-local CompiledKernel stays clean between callers
            # and partial counts survive exceptions
            kern.take_counts().add_to_raw(self.counters(fn))
        if flavor == "buffered":
            return per_lane, backend.lanes
        if flavor == "tracing":
            return per_lane, backend.traces
        return per_lane

    def _run_src(self, fn, flavor, indices, scalar_env, storage):
        kern = self.cache.src(fn, flavor, self.obs, self.fuel)
        per_lane: list[int] = []
        aux = kern.run(
            indices, scalar_env, storage, self.counters(fn), per_lane
        )
        if flavor == "direct":
            return per_lane
        return per_lane, aux

    def _run_numba(self, fn, indices, scalar_env, storage):
        kern = self.cache.numba(fn, self.obs, self.fuel)
        if kern is None:
            return None
        from . import numba_backend

        per_lane: list[int] = []
        try:
            kern.run(indices, scalar_env, storage, self.counters(fn), per_lane)
        except numba_backend.NumbaFallback as fb:
            if fb.permanent:
                self.cache.numba_failed(fn)
            return None
        return per_lane

    # -- crosscheck mode ------------------------------------------------

    def _run_crosschecked(
        self, fn, flavor, tier, indices, scalar_env, storage
    ):
        """Replay through the interpreter oracle and compare bitwise.

        The native tier runs against a scratch copy of memory; the
        interpreter runs against the real storage so its effects (and
        its counts) are the ones the caller keeps.
        """
        scratch = ArrayStorage(storage.snapshot())
        native_raw = [0] * N_COUNTERS
        native_pl: list[int] = []
        native_aux = native_err = None
        try:
            if tier == TIER_NUMBA:
                kern = self.cache.numba(fn, self.obs, self.fuel)
                if kern is None:
                    tier = TIER_SRC
            if tier == TIER_NUMBA:
                kern.run(indices, scalar_env, scratch, native_raw, native_pl)
            else:
                kern = self.cache.src(fn, flavor, self.obs, self.fuel)
                native_aux = kern.run(
                    indices, scalar_env, scratch, native_raw, native_pl
                )
        except Exception as exc:  # noqa: BLE001 - compared to the oracle
            native_err = exc

        interp_raw_before = list(self.counters(fn))
        interp_aux = interp_err = None
        try:
            result = self._run_interp(fn, flavor, indices, scalar_env, storage)
        except Exception as exc:  # noqa: BLE001
            interp_err = exc
        else:
            if flavor == "direct":
                interp_pl = result
            else:
                interp_pl, interp_aux = result

        diffs: list[str] = []
        if (native_err is None) != (interp_err is None) or (
            interp_err is not None
            and (
                type(native_err) is not type(interp_err)
                or str(native_err) != str(interp_err)
            )
        ):
            diffs.append(
                f"exception: interp={interp_err!r} native={native_err!r}"
            )
        if interp_err is None and native_err is None:
            if native_pl != interp_pl:
                diffs.append("per-lane instruction totals differ")
            delta = [
                after - before
                for before, after in zip(
                    interp_raw_before, self.counters(fn)
                )
            ]
            if native_raw != delta:
                diffs.append(
                    f"work counters differ: interp={delta} native={native_raw}"
                )
            for name, arr in storage.arrays.items():
                other = scratch.arrays.get(name)
                if (
                    other is None
                    or other.dtype != arr.dtype
                    or not np.array_equal(arr, other)
                ):
                    diffs.append(f"array {name!r} differs")
            if flavor != "direct" and native_aux != interp_aux:
                diffs.append(f"{flavor} lane state differs")
        if diffs:
            self.obs.metrics.counter("kernel.crosscheck.mismatch").inc()
            raise NativeMismatch(
                f"native tier {tier!r} diverged from the interpreter on "
                f"kernel {fn.name!r} ({flavor}): " + "; ".join(diffs)
            )
        self.obs.metrics.counter("kernel.crosscheck.ok").inc()
        if interp_err is not None:
            raise interp_err
        if flavor == "direct":
            return interp_pl
        return interp_pl, interp_aux
