"""Optional numba acceleration layer for the direct flavor.

Everything here is defensive: numba is an *optional* dependency and this
module must degrade to a silent no-op when it is absent or when any
compile/typing step fails.  ``available()`` gates the tier; a one-time
self-test compiles a tiny kernel and verifies it against the interpreter
before the tier is ever trusted.
"""

from __future__ import annotations

from typing import Optional

from ..instructions import IRFunction

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # noqa: F401

    _HAVE_NUMBA = True
except Exception:  # pragma: no cover - the common (absent) case
    numba = None
    _HAVE_NUMBA = False

_SELFTEST: Optional[bool] = None


class NumbaFallback(Exception):
    """This call (or this kernel, if ``permanent``) must use a lower tier."""

    def __init__(self, reason: str, permanent: bool = False):
        super().__init__(reason)
        self.permanent = permanent


def available() -> bool:
    """True when numba imports and passes the one-time self-test."""
    global _SELFTEST
    if not _HAVE_NUMBA:
        return False
    if _SELFTEST is None:
        try:
            _SELFTEST = _selftest()
        except Exception:  # pragma: no cover - defensive
            _SELFTEST = False
    return _SELFTEST


def compile_kernel(fn: IRFunction, fuel: int):  # pragma: no cover
    """A :class:`NumbaKernel` for ``fn``, or None when lowering fails."""
    if not available():
        return None
    try:
        from ._numba_codegen import NumbaKernel

        return NumbaKernel(fn, fuel)
    except Exception:
        return None


def _selftest() -> bool:  # pragma: no cover - needs numba installed
    """Compile one tiny branchy kernel and verify vs the interpreter."""
    import numpy as np

    from ..builder import IRBuilder
    from ..instructions import JType
    from ..interpreter import (
        ArrayStorage,
        CompiledKernel,
        DirectBackend,
        N_COUNTERS,
    )
    from ._numba_codegen import NumbaKernel

    b = IRBuilder("numba_selftest")
    i = b.declare_index("i")
    b.declare_array("a", JType.INT, 1)
    then_b = b.new_block("then")
    else_b = b.new_block("else")
    done = b.new_block("done")
    v = b.load("a", (i,), JType.INT)
    two = b.const(2, JType.INT)
    cond = b.bin("%", v, two, JType.INT)
    is_odd = b.bin("==", cond, b.const(1, JType.INT), JType.BOOL)
    b.cbr(is_odd, then_b, else_b)
    b.set_insert(then_b)
    b.store("a", (i,), b.bin("*", v, two, JType.INT))
    b.br(done)
    b.set_insert(else_b)
    b.store("a", (i,), b.bin("+", v, b.const(7, JType.INT), JType.INT))
    b.br(done)
    b.set_insert(done)
    b.ret()
    fn = b.finish()

    base = np.arange(-8, 8, dtype=np.int32)
    ref = ArrayStorage({"a": base.copy()})
    kern = CompiledKernel(fn)
    backend = DirectBackend(ref)
    for k in range(base.size):
        kern.run_index(k, {}, backend)
    want = kern.take_counts()

    got_storage = ArrayStorage({"a": base.copy()})
    raw = [0] * N_COUNTERS
    per_lane: list[int] = []
    nk = NumbaKernel(fn, 200_000_000)
    nk.run(list(range(base.size)), {}, got_storage, raw, per_lane)
    from ..interpreter import Counts

    return (
        np.array_equal(ref.arrays["a"], got_storage.arrays["a"])
        and Counts.from_raw(raw) == want
    )
