"""Vectorized speculative execution for straight-line kernels.

The SE phase of GPU-TLS (and every buffered profiling launch) runs the
kernel with a :class:`SpeculativeBackend`: writes land in per-lane
buffers, reads are forwarded from the lane's own buffer when possible,
and read/write sets are logged for dependency checking.  For
single-block kernels the whole launch is data-independent per lane, so
the address streams, buffers and logs can be produced with NumPy over
all lanes at once — this module is the buffered-mode twin of
:class:`repro.ir.vectorizer.VectorizedKernel` and must match the scalar
backend observationally:

* identical work :class:`Counts` (every LOAD/STORE is metered whether or
  not the read hits the lane buffer, exactly like the closure path);
* identical logs — a read is logged only for lanes whose cell is *not*
  in their buffer, a write is always logged, and the per-lane ``op``
  timestamp is the memory-op ordinal, which in straight-line code is the
  static site index and therefore uniform across lanes;
* identical buffered values — store operands are coerced to the array
  element type (lowering inserts the cast, ``java_ops`` rounds FLOAT
  registers to binary32), so buffering them at ``arr.dtype`` forwards
  bit-identical values.

Bounds faults are raised before any observable effect (buffered mode
never mutates storage), though fault *identity* may differ from the
scalar path: this path reports the first faulting instruction across
lanes, the scalar loop the first faulting lane — the same trade the
direct vectorized path already makes.
"""

from __future__ import annotations

import numpy as np

from ..errors import JaponicaError, MemoryFault
from .columnar import ColumnarLanes
from .instructions import IRFunction, Opcode, SPECIAL_OPS
from .interpreter import (
    ArrayStorage,
    C_FLOAT,
    C_INT,
    C_INTRINSIC,
    C_LOAD,
    C_SPECIAL,
    C_STORE,
    C_TOTAL,
    Counts,
    N_COUNTERS,
)
from .vectorizer import (
    _NP_TYPE,
    _broadcast,
    _vbinop,
    _vcast,
    _vintrinsic,
    _vunop,
    can_vectorize,
)


class VectorizedSpecKernel:
    """Buffered (speculative) execution of a straight-line kernel."""

    def __init__(self, fn: IRFunction):
        if not can_vectorize(fn):
            raise JaponicaError(
                f"kernel {fn.name!r} has control flow and cannot be vectorized"
            )
        self.fn = fn
        self._instrs = fn.entry.instrs

    def run_buffered(
        self,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
        indices: np.ndarray,
    ) -> tuple[Counts, ColumnarLanes]:
        """Execute all lanes speculatively; return (counts, columnar lanes)."""
        fn = self.fn
        n = int(indices.shape[0])
        order = indices.astype(np.int64)
        names: list[str] = []
        aid: dict[str, int] = {}

        def array_id(name: str) -> int:
            a = aid.get(name)
            if a is None:
                a = aid[name] = len(names)
                names.append(name)
            return a

        if n == 0:
            empty = (np.empty(0, np.int64),) * 4
            return Counts(), ColumnarLanes(
                order, np.zeros(0, dtype=bool), names,
                empty, empty, buffers={}, op_total=0,
            )

        regs: list = [None] * fn.num_regs
        regs[fn.index.id] = indices.astype(np.int32)
        for param in fn.scalars:
            try:
                value = scalar_env[param.name]
            except KeyError:
                raise JaponicaError(
                    f"kernel {fn.name!r} missing scalar {param.name!r}"
                ) from None
            regs[fn.scalar_regs[param.name].id] = _NP_TYPE[param.type](value)

        raw = [0] * N_COUNTERS
        op_slot = 0
        #: array_id -> ordered list of (op slot, flats[n], values[n])
        store_sites: dict[int, list[tuple[int, np.ndarray, np.ndarray]]] = {}
        #: logged reads: (op slot, array_id, lane positions, flats)
        read_parts: list[tuple[int, int, np.ndarray, np.ndarray]] = []
        #: logged writes: (op slot, array_id, flats[n])
        write_parts: list[tuple[int, int, np.ndarray]] = []

        for instr in self._instrs:
            op = instr.op
            if op is Opcode.CONST:
                regs[instr.dst.id] = _NP_TYPE[instr.dst.type](instr.value)
                raw[C_TOTAL] += n
            elif op is Opcode.MOV:
                regs[instr.dst.id] = regs[instr.a.id]
                raw[C_TOTAL] += n
            elif op is Opcode.BIN:
                regs[instr.dst.id] = _vbinop(
                    instr.binop,
                    regs[instr.a.id],
                    regs[instr.b.id],
                    instr.a.type,
                )
                cat = (
                    C_SPECIAL
                    if instr.binop in SPECIAL_OPS
                    else (C_FLOAT if instr.a.type.is_floating else C_INT)
                )
                raw[cat] += n
                raw[C_TOTAL] += n
            elif op is Opcode.UN:
                regs[instr.dst.id] = _vunop(
                    instr.binop, regs[instr.a.id], instr.dst.type
                )
                raw[C_FLOAT if instr.dst.type.is_floating else C_INT] += n
                raw[C_TOTAL] += n
            elif op is Opcode.CAST:
                regs[instr.dst.id] = _vcast(
                    regs[instr.a.id], instr.a.type, instr.dst.type
                )
                raw[C_INT] += n
                raw[C_TOTAL] += n
            elif op is Opcode.LOAD:
                a_id = array_id(instr.array)
                vecs, flats = _flat_addresses(
                    storage, instr.array, [regs[r.id] for r in instr.idx], n
                )
                arr = storage.arrays[instr.array]
                cur = arr[tuple(vecs)] if len(vecs) > 1 else arr[vecs[0]]
                unhit = np.ones(n, dtype=bool)
                for _slot, s_flats, s_vals in store_sites.get(a_id, ()):
                    m = s_flats == flats
                    cur = np.where(m, s_vals, cur)
                    unhit &= ~m
                read_parts.append(
                    (op_slot, a_id, np.nonzero(unhit)[0], flats[unhit])
                )
                regs[instr.dst.id] = cur
                op_slot += 1
                raw[C_LOAD] += n
                raw[C_TOTAL] += n
            elif op is Opcode.STORE:
                a_id = array_id(instr.array)
                _vecs, flats = _flat_addresses(
                    storage, instr.array, [regs[r.id] for r in instr.idx], n
                )
                arr = storage.arrays[instr.array]
                vals = _broadcast(regs[instr.a.id], n, arr.dtype)
                if arr.dtype.kind in "iu":
                    with np.errstate(over="ignore"):
                        vals = np.asarray(vals).astype(arr.dtype)
                else:
                    vals = np.asarray(vals, dtype=arr.dtype)
                write_parts.append((op_slot, a_id, flats))
                store_sites.setdefault(a_id, []).append(
                    (op_slot, flats, vals.copy())
                )
                op_slot += 1
                raw[C_STORE] += n
                raw[C_TOTAL] += n
            elif op is Opcode.CALL:
                regs[instr.dst.id] = _vintrinsic(
                    instr.intrinsic,
                    [regs[r.id] for r in instr.args],
                    instr.dst.type,
                )
                raw[C_INTRINSIC] += n
                raw[C_TOTAL] += n
            elif op is Opcode.RET:
                raw[C_TOTAL] += n
            else:  # BR/CBR cannot appear in a single-block kernel
                raise JaponicaError(f"unexpected opcode {op} in vector path")

        reads = _finalize_log(
            [(s, a, p, f) for (s, a, p, f) in read_parts]
        )
        writes = _finalize_log(
            [(s, a, np.arange(n, dtype=np.int64), f)
             for (s, a, f) in write_parts]
        )
        buffers: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        lane_pos = np.arange(n, dtype=np.int64)
        for a_id, sites in store_sites.items():
            f = np.concatenate([flats for _s, flats, _v in sites])
            v = np.concatenate([vals for _s, _f, vals in sites])
            pos = np.tile(lane_pos, len(sites))
            site_ord = np.repeat(np.arange(len(sites)), n)
            s = np.lexsort((site_ord, f, pos))
            pos, f, v = pos[s], f[s], v[s]
            last = np.ones(len(pos), dtype=bool)
            last[:-1] = (pos[:-1] != pos[1:]) | (f[:-1] != f[1:])
            buffers[a_id] = (pos[last], f[last], v[last])

        lanes = ColumnarLanes(
            order, np.ones(n, dtype=bool), names,
            reads, writes, buffers=buffers, op_total=op_slot,
        )
        return Counts.from_raw(raw), lanes


def _flat_addresses(storage: ArrayStorage, name: str, idx, n: int):
    """Bounds-check index vectors and return (vecs, flat addresses)."""
    shape = storage.shapes.get(name)
    if shape is None:
        raise MemoryFault(f"unbound array {name!r}")
    vecs = [_broadcast(v, n, np.int64) for v in idx]
    for k, (v, d) in enumerate(zip(vecs, shape)):
        bad = (v < 0) | (v >= d)
        if np.any(bad):
            i = int(v[np.argmax(bad)])
            raise MemoryFault(
                f"index {i} out of bounds for axis {k} of {name!r} (size {d})"
            )
    if len(vecs) > 1:
        flats = vecs[0] * shape[1] + vecs[1]
    else:
        flats = vecs[0].astype(np.int64, copy=False)
    return vecs, flats


def _finalize_log(parts):
    """Concatenate per-site log fragments into (pos, op, arr, flat) columns
    sorted by (pos, op) — i.e. grouped per lane in log order."""
    if not parts:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), e.copy(), e.copy()
    pos = np.concatenate([p for _s, _a, p, _f in parts])
    op = np.concatenate([
        np.full(len(p), s, dtype=np.int64) for s, _a, p, _f in parts
    ])
    arr = np.concatenate([
        np.full(len(p), a, dtype=np.int64) for _s, a, p, _f in parts
    ])
    flat = np.concatenate([f for _s, _a, _p, f in parts]).astype(
        np.int64, copy=False
    )
    s = np.lexsort((op, pos))
    return pos[s], op[s], arr[s], flat[s]
