"""Vectorized executor for straight-line kernels.

Kernels whose body is a single basic block (no data-dependent control
flow) can be executed for a whole iteration range at once with NumPy,
instead of one interpreted index at a time.  This is the reproduction's
stand-in for the SIMD throughput of real hardware: it keeps big DOALL
loops (VectorAdd, Sepia, MVT row kernels) tractable at realistic sizes.

The vectorized path must be observationally identical to the scalar
interpreter — same results (Java wrap/truncation semantics) and the same
dynamic work counts — and the test suite cross-checks both properties.
"""

from __future__ import annotations

import numpy as np

from ..errors import JaponicaError, MemoryFault
from .instructions import IRFunction, JType, Opcode, SPECIAL_OPS
from .interpreter import ArrayStorage, Counts

_NP_TYPE = {
    JType.INT: np.int32,
    JType.LONG: np.int64,
    JType.FLOAT: np.float32,
    JType.DOUBLE: np.float64,
    JType.BOOL: np.bool_,
}

_INT_INFO = {JType.INT: np.iinfo(np.int32), JType.LONG: np.iinfo(np.int64)}


def can_vectorize(fn: IRFunction) -> bool:
    """True when the kernel body is a single straight-line block."""
    return fn.is_straightline


class VectorizedKernel:
    """Executes a straight-line kernel over a full index range at once."""

    def __init__(self, fn: IRFunction):
        if not can_vectorize(fn):
            raise JaponicaError(
                f"kernel {fn.name!r} has control flow and cannot be vectorized"
            )
        self.fn = fn
        self._instrs = fn.entry.instrs

    def run_range(
        self,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
        indices: np.ndarray,
    ) -> Counts:
        """Execute iterations for every index in ``indices`` (ascending order
        semantics for overlapping stores)."""
        fn = self.fn
        n = int(indices.shape[0])
        if n == 0:
            return Counts()
        regs: list = [None] * fn.num_regs
        regs[fn.index.id] = indices.astype(np.int32)
        for param in fn.scalars:
            try:
                value = scalar_env[param.name]
            except KeyError:
                raise JaponicaError(
                    f"kernel {fn.name!r} missing scalar {param.name!r}"
                ) from None
            regs[fn.scalar_regs[param.name].id] = _NP_TYPE[param.type](value)

        raw = [0] * 8  # same layout as interpreter counters
        from .interpreter import (
            C_BRANCH,
            C_FLOAT,
            C_INT,
            C_INTRINSIC,
            C_LOAD,
            C_SPECIAL,
            C_STORE,
            C_TOTAL,
        )

        for instr in self._instrs:
            op = instr.op
            if op is Opcode.CONST:
                regs[instr.dst.id] = _NP_TYPE[instr.dst.type](instr.value)
                raw[C_TOTAL] += n
            elif op is Opcode.MOV:
                regs[instr.dst.id] = regs[instr.a.id]
                raw[C_TOTAL] += n
            elif op is Opcode.BIN:
                regs[instr.dst.id] = _vbinop(
                    instr.binop,
                    regs[instr.a.id],
                    regs[instr.b.id],
                    instr.a.type,
                )
                cat = (
                    C_SPECIAL
                    if instr.binop in SPECIAL_OPS
                    else (C_FLOAT if instr.a.type.is_floating else C_INT)
                )
                raw[cat] += n
                raw[C_TOTAL] += n
            elif op is Opcode.UN:
                regs[instr.dst.id] = _vunop(
                    instr.binop, regs[instr.a.id], instr.dst.type
                )
                raw[C_FLOAT if instr.dst.type.is_floating else C_INT] += n
                raw[C_TOTAL] += n
            elif op is Opcode.CAST:
                regs[instr.dst.id] = _vcast(
                    regs[instr.a.id], instr.a.type, instr.dst.type
                )
                raw[C_INT] += n
                raw[C_TOTAL] += n
            elif op is Opcode.LOAD:
                regs[instr.dst.id] = _vload(
                    storage, instr.array, [regs[r.id] for r in instr.idx], n
                )
                raw[C_LOAD] += n
                raw[C_TOTAL] += n
            elif op is Opcode.STORE:
                _vstore(
                    storage,
                    instr.array,
                    [regs[r.id] for r in instr.idx],
                    regs[instr.a.id],
                    n,
                )
                raw[C_STORE] += n
                raw[C_TOTAL] += n
            elif op is Opcode.CALL:
                regs[instr.dst.id] = _vintrinsic(
                    instr.intrinsic,
                    [regs[r.id] for r in instr.args],
                    instr.dst.type,
                )
                raw[C_INTRINSIC] += n
                raw[C_TOTAL] += n
            elif op is Opcode.RET:
                raw[C_TOTAL] += n
            else:  # BR/CBR cannot appear in a single-block kernel
                raise JaponicaError(f"unexpected opcode {op} in vector path")
        return Counts.from_raw(raw)


def _broadcast(value, n: int, dtype) -> np.ndarray:
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim == 0:
        return np.broadcast_to(arr, (n,))
    return arr


def _vbinop(op: str, a, b, jt: JType):
    if op in ("<", "<=", ">", ">=", "==", "!="):
        fns = {
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
            "==": np.equal,
            "!=": np.not_equal,
        }
        return fns[op](a, b)
    if jt is JType.BOOL:
        fns = {"&": np.logical_and, "|": np.logical_or, "^": np.logical_xor}
        return fns[op](a, b)
    if jt.is_floating:
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op == "/":
                # numpy's 0/0 and nan/0 yield the hardware -NaN; the
                # interpreter (java_ops._fdiv) substitutes +NaN
                r = np.divide(a, b)
                bad = (b == 0) & ((a == 0) | np.isnan(a))
                return np.where(bad, np.nan, r) if np.any(bad) else r
            if op == "%":
                # numpy's fmod yields -NaN for inf % y and x % 0; the
                # interpreter (java_ops._frem) substitutes +NaN
                r = np.fmod(a, b)
                bad = np.isinf(a) | (b == 0)
                return np.where(bad, np.nan, r) if np.any(bad) else r
        raise JaponicaError(f"bad float op {op!r}")
    # integral, Java wrap semantics (numpy ints wrap modularly)
    bits = 32 if jt is JType.INT else 64
    with np.errstate(over="ignore"):
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            return _trunc_div(a, b)
        if op == "%":
            return _trunc_rem(a, b)
        if op == "<<":
            return a << _mask_shift(b, bits)
        if op == ">>":
            return a >> _mask_shift(b, bits)
        if op == ">>>":
            unsigned = np.uint32 if jt is JType.INT else np.uint64
            signed = _NP_TYPE[jt]
            return (
                a.astype(unsigned) >> _mask_shift(b, bits).astype(unsigned)
            ).astype(signed)
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
    raise JaponicaError(f"bad int op {op!r}")


def _mask_shift(count, bits: int):
    return np.asarray(count) & np.int32(bits - 1)


def _trunc_div(a, b):
    """Java integer division: truncation toward zero; 0-divisor faults."""
    b_arr = np.asarray(b)
    if np.any(b_arr == 0):
        raise ZeroDivisionError("/ by zero")
    q = np.floor_divide(np.abs(a), np.abs(b_arr))
    sign = np.where((np.asarray(a) < 0) != (b_arr < 0), -1, 1)
    dtype = np.result_type(np.asarray(a), b_arr)
    return (q * sign).astype(dtype)


def _trunc_rem(a, b):
    q = _trunc_div(a, b)
    dtype = np.result_type(np.asarray(a), np.asarray(b))
    with np.errstate(over="ignore"):
        return (np.asarray(a) - q * np.asarray(b)).astype(dtype)


def _vunop(op: str, a, jt: JType):
    if op == "-":
        with np.errstate(over="ignore"):
            return -np.asarray(a)
    if op == "!":
        return np.logical_not(a)
    if op == "~":
        return ~np.asarray(a)
    raise JaponicaError(f"bad unary op {op!r}")


def _vcast(value, src: JType, dst: JType):
    arr = np.asarray(value)
    if dst is JType.BOOL:
        return arr.astype(np.bool_)
    if dst in (JType.INT, JType.LONG):
        if src.is_floating:
            info = _INT_INFO[dst]
            out = np.where(np.isnan(arr), 0.0, arr)
            out = np.clip(out, float(info.min), float(info.max))
            return out.astype(_NP_TYPE[dst])
        with np.errstate(over="ignore"):
            return arr.astype(_NP_TYPE[dst])
    return arr.astype(_NP_TYPE[dst])


def _vload(storage: ArrayStorage, name: str, idx, n: int):
    shape = storage.shapes.get(name)
    if shape is None:
        raise MemoryFault(f"unbound array {name!r}")
    vecs = [_broadcast(v, n, np.int64) for v in idx]
    for k, (v, d) in enumerate(zip(vecs, shape)):
        bad = (v < 0) | (v >= d)
        if np.any(bad):
            i = int(v[np.argmax(bad)])
            raise MemoryFault(
                f"index {i} out of bounds for axis {k} of {name!r} (size {d})"
            )
    arr = storage.arrays[name]
    return arr[tuple(vecs)] if len(vecs) > 1 else arr[vecs[0]]


def _vstore(storage: ArrayStorage, name: str, idx, value, n: int) -> None:
    shape = storage.shapes.get(name)
    if shape is None:
        raise MemoryFault(f"unbound array {name!r}")
    vecs = [_broadcast(v, n, np.int64) for v in idx]
    for k, (v, d) in enumerate(zip(vecs, shape)):
        bad = (v < 0) | (v >= d)
        if np.any(bad):
            i = int(v[np.argmax(bad)])
            raise MemoryFault(
                f"index {i} out of bounds for axis {k} of {name!r} (size {d})"
            )
    arr = storage.arrays[name]
    vals = _broadcast(value, n, arr.dtype)
    if arr.dtype.kind in "iu":
        with np.errstate(over="ignore"):
            vals = np.asarray(vals).astype(arr.dtype)
    if len(vecs) > 1:
        arr[tuple(vecs)] = vals
    else:
        arr[vecs[0]] = vals


def _vintrinsic(name: str, args, jt: JType):
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        fns = {
            "Math.sqrt": lambda x: np.sqrt(_nan_neg(x)),
            "Math.exp": np.exp,
            "Math.log": np.log,
            "Math.pow": np.power,
            "Math.abs": np.abs,
            "Math.min": np.minimum,
            "Math.max": np.maximum,
            "Math.floor": np.floor,
            "Math.ceil": np.ceil,
            "Math.sin": np.sin,
            "Math.cos": np.cos,
            "Math.tan": np.tan,
        }
        result = fns[name](*args)
    if jt in (JType.INT, JType.LONG):
        return np.asarray(result).astype(_NP_TYPE[jt])
    return np.asarray(result).astype(_NP_TYPE[jt])


def _nan_neg(x):
    arr = np.asarray(x, dtype=np.float64)
    return np.where(arr < 0, np.nan, arr)
