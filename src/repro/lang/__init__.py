"""Mini-Java frontend: lexer, parser, AST, and acc annotations."""

from . import ast_nodes
from .annotations import (
    Annotation,
    ArraySection,
    annotation_equal,
    parse_annotation,
    section_equal,
    section_key,
)
from .ast_nodes import (
    ClassDecl,
    For,
    Method,
    annotated_loops,
    find_loops,
    strip_annotations,
    walk,
)
from .lexer import Lexer, tokenize
from .parser import Parser, parse_program
from .pretty import fmt_class, fmt_expr, fmt_method, fmt_stmt, format_annotation
from .tokens import Pos, TokKind, Token

__all__ = [
    "Annotation",
    "ArraySection",
    "ClassDecl",
    "For",
    "Lexer",
    "Method",
    "Parser",
    "Pos",
    "TokKind",
    "Token",
    "annotated_loops",
    "annotation_equal",
    "ast_nodes",
    "find_loops",
    "fmt_class",
    "fmt_expr",
    "fmt_method",
    "fmt_stmt",
    "format_annotation",
    "parse_annotation",
    "parse_program",
    "section_equal",
    "section_key",
    "strip_annotations",
    "tokenize",
    "walk",
]
