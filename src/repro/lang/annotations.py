"""Parsing of ``/* acc ... */`` loop directives (Table I of the paper).

The directive format is::

    /* acc parallel [clause [, clause] ...] */

with the clause set:

``parallel``
    start parallel execution on the heterogeneous platform;
``private(list)``
    one copy of each listed variable per execution element;
``copyin(list)`` / ``copyout(list)`` / ``create(list)``
    device allocation and host<->device movement directions, where each
    list element is either a bare name or an array section ``arr[low:high]``
    whose bounds are integer expressions over loop-invariant scalars;
``threads(n)``
    number of device threads to use;
``scheme(s)``
    task scheduling scheme, ``sharing`` (default) or ``stealing``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..errors import AnnotationError
from .tokens import Pos, TokKind

SCHEMES = ("sharing", "stealing")


@dataclass
class ArraySection:
    """A data clause operand: a bare variable or ``name[low:high]``.

    ``low``/``high`` are mini-Java expressions (see :mod:`repro.lang.parser`)
    evaluated against the host scalar environment when the loop is entered;
    ``None`` bounds mean "the whole array".  Following the paper's
    ``copyin(arr[1:1024])`` example, the section covers indices
    ``low .. high`` inclusive of ``low`` and exclusive of ``high + 1`` —
    i.e. elements ``arr[low]`` through ``arr[high]``.
    """

    name: str
    low: Optional[object] = None  # lang.ast_nodes.Expr
    high: Optional[object] = None  # lang.ast_nodes.Expr

    @property
    def whole(self) -> bool:
        """True when no explicit bounds were given."""
        return self.low is None and self.high is None

    def bounds(self, env: Mapping[str, int]) -> Optional[tuple[int, int]]:
        """Evaluate ``(low, high_inclusive)`` against ``env``; None if whole."""
        if self.whole:
            return None
        return (_eval_int(self.low, env), _eval_int(self.high, env))


@dataclass
class Annotation:
    """A parsed acc directive attached to one ``for`` loop."""

    pos: Pos
    parallel: bool = False
    private: list[str] = field(default_factory=list)
    copyin: list[ArraySection] = field(default_factory=list)
    copyout: list[ArraySection] = field(default_factory=list)
    create: list[ArraySection] = field(default_factory=list)
    threads: Optional[int] = None
    scheme: str = "sharing"
    scheme_explicit: bool = False

    def sections(self) -> list[tuple[str, ArraySection]]:
        """All data-clause sections as ``(direction, section)`` pairs."""
        out: list[tuple[str, ArraySection]] = []
        out.extend(("copyin", s) for s in self.copyin)
        out.extend(("copyout", s) for s in self.copyout)
        out.extend(("create", s) for s in self.create)
        return out


def _expr_key(expr) -> tuple:
    """Normalized structural identity of a bound expression.

    Ignores source positions and folds a unary minus on an integer
    literal into the literal itself (``-5`` pretty-prints as one token
    but re-parses as ``Unary('-', IntLit(5))``), so that a pretty-printed
    bound compares equal to the bound it came from.
    """
    from . import ast_nodes as A

    if isinstance(expr, (A.IntLit, A.LongLit)):
        return ("int", expr.value)
    if isinstance(expr, A.VarRef):
        return ("var", expr.name)
    if isinstance(expr, A.Length):
        return ("len", expr.array.name, expr.axis)
    if isinstance(expr, A.Unary):
        inner = _expr_key(expr.operand)
        if expr.op == "-" and inner[0] == "int":
            return ("int", -inner[1])
        return ("unary", expr.op, inner)
    if isinstance(expr, A.Binary):
        return ("bin", expr.op, _expr_key(expr.left), _expr_key(expr.right))
    if isinstance(expr, A.Cast):
        return ("cast", expr.target.name, _expr_key(expr.operand))
    return ("other", repr(expr))


def section_key(section: ArraySection) -> tuple:
    """Hashable structural identity of a data-clause section."""
    return (
        section.name,
        None if section.low is None else _expr_key(section.low),
        None if section.high is None else _expr_key(section.high),
    )


def section_equal(a: ArraySection, b: ArraySection) -> bool:
    """Structural equality of two sections, ignoring positions."""
    return section_key(a) == section_key(b)


def annotation_equal(a: Annotation, b: Annotation) -> bool:
    """Structural equality of two directives, ignoring positions.

    This is the round-trip contract: ``parse(format(ann))`` must compare
    equal to ``ann`` under this predicate (dataclass ``==`` would compare
    the embedded source positions, which a re-parse cannot reproduce).
    """
    return (
        a.parallel == b.parallel
        and a.private == b.private
        and [section_key(s) for s in a.copyin]
        == [section_key(s) for s in b.copyin]
        and [section_key(s) for s in a.copyout]
        == [section_key(s) for s in b.copyout]
        and [section_key(s) for s in a.create]
        == [section_key(s) for s in b.create]
        and a.threads == b.threads
        and a.scheme == b.scheme
        and a.scheme_explicit == b.scheme_explicit
    )


def _eval_int(expr, env: Mapping[str, int]) -> int:
    """Evaluate an annotation bound expression to an int."""
    from . import ast_nodes as A

    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.LongLit):
        return expr.value
    if isinstance(expr, A.VarRef):
        try:
            return int(env[expr.name])
        except KeyError:
            raise AnnotationError(
                f"annotation bound refers to unknown scalar {expr.name!r}"
            ) from None
    if isinstance(expr, A.Length):
        from ..ir.lower import length_param

        key = length_param(expr.array.name, expr.axis)
        try:
            return int(env[key])
        except KeyError:
            raise AnnotationError(
                f"annotation bound refers to unknown length {key!r}"
            ) from None
    if isinstance(expr, A.Unary) and expr.op == "-":
        return -_eval_int(expr.operand, env)
    if isinstance(expr, A.Binary):
        left = _eval_int(expr.left, env)
        right = _eval_int(expr.right, env)
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: _java_div(a, b),
            "%": lambda a, b: _java_rem(a, b),
        }
        if expr.op not in ops:
            raise AnnotationError(
                f"operator {expr.op!r} not allowed in annotation bounds"
            )
        return ops[expr.op](left, right)
    raise AnnotationError(
        f"unsupported expression in annotation bound: {type(expr).__name__}"
    )


def _java_div(a: int, b: int) -> int:
    """Integer division truncating toward zero (Java semantics)."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _java_rem(a: int, b: int) -> int:
    """Remainder with the sign of the dividend (Java semantics)."""
    return a - _java_div(a, b) * b


def parse_annotation(text: str, pos: Pos) -> Annotation:
    """Parse the payload of an ``/* acc ... */`` comment.

    ``text`` is the comment body with the surrounding ``/*`` ``*/`` already
    stripped, starting with the word ``acc``.
    """
    from .lexer import tokenize
    from .parser import Parser

    body = text.strip()
    if body == "acc":
        raise AnnotationError(f"empty acc directive at {pos}")
    # word boundary: 'acc' must be followed by whitespace (or be the whole
    # body, handled above) — 'accparallel' is not an acc directive
    if not (body.startswith("acc") and body[3:4].isspace()):
        raise AnnotationError(
            f"malformed acc directive at {pos}: expected 'acc' followed "
            f"by whitespace, got {body.split(None, 1)[0]!r}"
        )
    payload = body[len("acc") :].strip()

    try:
        toks = tokenize(payload)
    except Exception as exc:
        raise AnnotationError(f"cannot lex acc directive at {pos}: {exc}") from exc

    ann = Annotation(pos=pos)
    i = 0

    def peek(k: int = 0):
        return toks[min(i + k, len(toks) - 1)]

    seen: set[str] = set()
    while peek().kind is not TokKind.EOF:
        tok = peek()
        if tok.kind is TokKind.COMMA:
            i += 1
            continue
        if tok.kind not in (TokKind.IDENT, TokKind.KEYWORD):
            raise AnnotationError(
                f"expected clause name in acc directive at {pos}, "
                f"found {tok.value!r}"
            )
        name = str(tok.value)
        i += 1
        # list-valued clauses may repeat: their operands merge (below).
        # Scalar-valued clauses (threads, scheme) and the bare 'parallel'
        # keyword must appear at most once — repeating them would either
        # silently last-write-win or be a user typo, so it is an error
        # that names the loop position.
        if name in seen and name not in ("private", "copyin", "copyout", "create"):
            raise AnnotationError(
                f"duplicate clause {name!r} in acc directive at {pos}"
            )
        seen.add(name)

        if name == "parallel":
            ann.parallel = True
            continue

        if peek().kind is not TokKind.LPAREN:
            raise AnnotationError(f"clause {name!r} requires a parenthesized list")
        # Collect the argument token span up to the matching ')'.
        depth = 0
        start = i
        while True:
            t = peek()
            if t.kind is TokKind.EOF:
                raise AnnotationError(f"unterminated clause {name!r} at {pos}")
            if t.kind is TokKind.LPAREN:
                depth += 1
            elif t.kind is TokKind.RPAREN:
                depth -= 1
                if depth == 0:
                    break
            i += 1
        arg_toks = toks[start + 1 : i]
        i += 1  # consume ')'

        if name == "private":
            for var in _parse_name_list(arg_toks, pos):
                if var not in ann.private:
                    ann.private.append(var)
        elif name in ("copyin", "copyout", "create"):
            existing = getattr(ann, name)
            for section in _parse_sections(arg_toks, pos):
                # repeated clauses merge; an identical section listed
                # twice contributes one transfer, not two
                if not any(section_equal(section, s) for s in existing):
                    existing.append(section)
        elif name == "threads":
            value = _parse_single_int(arg_toks, pos, "threads")
            if value <= 0:
                raise AnnotationError(f"threads({value}) must be positive")
            ann.threads = value
        elif name == "scheme":
            scheme = _parse_single_name(arg_toks, pos, "scheme")
            if scheme not in SCHEMES:
                raise AnnotationError(
                    f"unknown scheme {scheme!r}; expected one of {SCHEMES}"
                )
            ann.scheme = scheme
            ann.scheme_explicit = True
        else:
            raise AnnotationError(f"unknown acc clause {name!r} at {pos}")

    if not ann.parallel:
        raise AnnotationError(f"acc directive at {pos} is missing 'parallel'")
    return ann


def _split_commas(toks, pos: Pos) -> list[list]:
    """Split a token span on top-level commas."""
    groups: list[list] = [[]]
    depth = 0
    for t in toks:
        if t.kind is TokKind.LPAREN or t.kind is TokKind.LBRACKET:
            depth += 1
        elif t.kind is TokKind.RPAREN or t.kind is TokKind.RBRACKET:
            depth -= 1
        if t.kind is TokKind.COMMA and depth == 0:
            groups.append([])
        else:
            groups[-1].append(t)
    if any(not g for g in groups):
        raise AnnotationError(f"empty list element in acc directive at {pos}")
    return groups


def _parse_name_list(toks, pos: Pos) -> list[str]:
    names = []
    for group in _split_commas(toks, pos):
        if len(group) != 1 or group[0].kind is not TokKind.IDENT:
            raise AnnotationError(f"expected a variable name at {pos}")
        names.append(str(group[0].value))
    return names


def _parse_sections(toks, pos: Pos) -> list[ArraySection]:
    from .lexer import tokenize
    from .parser import Parser
    from .tokens import Token

    sections = []
    for group in _split_commas(toks, pos):
        if group[0].kind is not TokKind.IDENT:
            raise AnnotationError(f"expected array name at {pos}")
        name = str(group[0].value)
        if len(group) == 1:
            sections.append(ArraySection(name))
            continue
        if (
            group[1].kind is not TokKind.LBRACKET
            or group[-1].kind is not TokKind.RBRACKET
        ):
            raise AnnotationError(
                f"malformed array section for {name!r} at {pos}; "
                f"expected {name}[low:high]"
            )
        inner = group[2:-1]
        colon_at = None
        depth = 0
        for k, t in enumerate(inner):
            if t.kind in (TokKind.LPAREN, TokKind.LBRACKET):
                depth += 1
            elif t.kind in (TokKind.RPAREN, TokKind.RBRACKET):
                depth -= 1
            elif t.kind is TokKind.COLON and depth == 0:
                colon_at = k
                break
        if colon_at is None:
            raise AnnotationError(
                f"array section for {name!r} at {pos} needs a ':' "
                f"separating low and high"
            )
        low = _parse_expr_span(inner[:colon_at], pos)
        high = _parse_expr_span(inner[colon_at + 1 :], pos)
        sections.append(ArraySection(name, low, high))
    return sections


def _parse_expr_span(toks, pos: Pos):
    from .parser import Parser
    from .tokens import Token

    if not toks:
        raise AnnotationError(f"missing bound in array section at {pos}")
    span = list(toks) + [Token(TokKind.EOF, None, pos)]
    parser = Parser(span)
    expr = parser._expr()
    if parser._peek().kind is not TokKind.EOF:
        raise AnnotationError(f"trailing tokens in array-section bound at {pos}")
    return expr


def _parse_single_int(toks, pos: Pos, clause: str) -> int:
    if len(toks) != 1 or toks[0].kind is not TokKind.INT_LIT:
        raise AnnotationError(f"{clause}(...) expects one integer literal at {pos}")
    return int(toks[0].value)


def _parse_single_name(toks, pos: Pos, clause: str) -> str:
    if len(toks) != 1 or toks[0].kind is not TokKind.IDENT:
        raise AnnotationError(f"{clause}(...) expects one identifier at {pos}")
    return str(toks[0].value)
