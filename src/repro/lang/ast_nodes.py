"""Typed AST for the mini-Java subset.

The shapes mirror what the paper's JavaR-based translator works on: a class
with static methods whose bodies contain (possibly annotated) ``for`` loops
over scalars and 1-D/2-D arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from .tokens import Pos

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PrimType:
    """A primitive Java type: int, long, float, double, boolean, void."""

    name: str

    def __str__(self) -> str:
        return self.name

    @property
    def is_integral(self) -> bool:
        return self.name in ("int", "long", "boolean")

    @property
    def is_floating(self) -> bool:
        return self.name in ("float", "double")


@dataclass(frozen=True)
class ArrayType:
    """An array type with element primitive type and dimensionality."""

    elem: PrimType
    dims: int

    def __str__(self) -> str:
        return str(self.elem) + "[]" * self.dims


Type = Union[PrimType, ArrayType]

INT = PrimType("int")
LONG = PrimType("long")
FLOAT = PrimType("float")
DOUBLE = PrimType("double")
BOOLEAN = PrimType("boolean")
VOID = PrimType("void")

_PRIM_BY_NAME = {t.name: t for t in (INT, LONG, FLOAT, DOUBLE, BOOLEAN, VOID)}


def prim(name: str) -> PrimType:
    """Look up a primitive type by keyword name."""
    return _PRIM_BY_NAME[name]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Node:
    """Base class carrying a source position."""

    pos: Pos

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (default: none)."""
        return iter(())


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class LongLit(Expr):
    value: int


@dataclass
class DoubleLit(Expr):
    value: float


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class VarRef(Expr):
    """Reference to a scalar or array variable by name."""

    name: str


@dataclass
class ArrayRef(Expr):
    """Array element access ``base[indices...]`` (1 or 2 indices)."""

    base: VarRef
    indices: list[Expr]

    def children(self) -> Iterator[Node]:
        yield self.base
        yield from self.indices


@dataclass
class Unary(Expr):
    """Unary operation: ``-``, ``!``, ``~``, ``+``."""

    op: str
    operand: Expr

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class Binary(Expr):
    """Binary operation (arithmetic, comparison, logical, bitwise, shifts)."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass
class Ternary(Expr):
    """Conditional expression ``cond ? then : other``."""

    cond: Expr
    then: Expr
    other: Expr

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then
        yield self.other


@dataclass
class Cast(Expr):
    """Primitive cast ``(type) expr``."""

    target: PrimType
    operand: Expr

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class Call(Expr):
    """Call to an intrinsic, e.g. ``Math.sqrt(x)``; name is dotted."""

    name: str
    args: list[Expr]

    def children(self) -> Iterator[Node]:
        yield from self.args


@dataclass
class Length(Expr):
    """``array.length`` on a 1-D axis of an array variable."""

    array: VarRef
    axis: int = 0

    def children(self) -> Iterator[Node]:
        yield self.array


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class VarDecl(Stmt):
    """Local variable declaration with optional initializer."""

    type: Type
    name: str
    init: Optional[Expr]

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init


@dataclass
class Assign(Stmt):
    """Assignment ``target op= value`` (op is '' for plain ``=``)."""

    target: Union[VarRef, ArrayRef]
    op: str
    value: Expr

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.value


@dataclass
class IncDec(Stmt):
    """``target++`` or ``target--`` used as a statement/for-update."""

    target: Union[VarRef, ArrayRef]
    op: str  # '++' or '--'

    def children(self) -> Iterator[Node]:
        yield self.target


@dataclass
class ExprStmt(Stmt):
    """Expression evaluated for effect (intrinsic calls)."""

    expr: Expr

    def children(self) -> Iterator[Node]:
        yield self.expr


@dataclass
class Block(Stmt):
    """Brace-delimited statement sequence."""

    stmts: list[Stmt] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.stmts


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    els: Optional[Stmt]

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then
        if self.els is not None:
            yield self.els


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.body


@dataclass
class For(Stmt):
    """Canonical counted for loop.

    ``annotation`` carries the parsed ``/* acc ... */`` directive attached
    immediately before the loop, if any (see :mod:`repro.lang.annotations`).
    """

    init: Optional[Stmt]  # VarDecl or Assign
    cond: Optional[Expr]
    update: Optional[Stmt]  # Assign or IncDec
    body: Stmt
    annotation: Optional["object"] = None  # lang.annotations.Annotation

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init
        if self.cond is not None:
            yield self.cond
        if self.update is not None:
            yield self.update
        yield self.body


@dataclass
class Return(Stmt):
    value: Optional[Expr]

    def children(self) -> Iterator[Node]:
        if self.value is not None:
            yield self.value


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    type: Type
    name: str


@dataclass
class Method(Node):
    """A static method: the unit Japonica analyzes and translates."""

    name: str
    ret: Type
    params: list[Param]
    body: Block

    def children(self) -> Iterator[Node]:
        yield from self.params
        yield self.body


@dataclass
class ClassDecl(Node):
    """A top-level class holding static methods."""

    name: str
    methods: list[Method]

    def children(self) -> Iterator[Node]:
        yield from self.methods

    def method(self, name: str) -> Method:
        """Look up a method by name."""
        for m in self.methods:
            if m.name == name:
                return m
        raise KeyError(f"no method {name!r} in class {self.name}")


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal of an AST subtree."""
    yield node
    for child in node.children():
        yield from walk(child)


def find_loops(node: Node) -> list[For]:
    """All ``for`` loops in a subtree, in pre-order."""
    return [n for n in walk(node) if isinstance(n, For)]


def annotated_loops(node: Node) -> list[For]:
    """All ``for`` loops carrying an ``acc`` annotation, in pre-order."""
    return [n for n in find_loops(node) if n.annotation is not None]


def strip_annotations(node: Node) -> Node:
    """Remove every ``acc`` annotation in a subtree, in place.

    Used to produce bare variants of annotated programs (the annotation
    -inference acceptance suite compares what inference proposes for a
    stripped source against the hand directives it removed).
    """
    for n in walk(node):
        if isinstance(n, For):
            n.annotation = None
    return node
