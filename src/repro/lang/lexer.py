"""Hand-written lexer for the mini-Java subset.

The lexer is annotation-aware: block comments whose body starts with the
word ``acc`` (the OpenACC-style directive marker of Table I in the paper)
are emitted as :attr:`TokKind.ANNOTATION` tokens carrying the raw payload;
all other comments are discarded.
"""

from __future__ import annotations

from ..errors import LexError
from .tokens import KEYWORDS, Pos, TokKind, Token

_ONE_CHAR = {
    "(": TokKind.LPAREN,
    ")": TokKind.RPAREN,
    "{": TokKind.LBRACE,
    "}": TokKind.RBRACE,
    "[": TokKind.LBRACKET,
    "]": TokKind.RBRACKET,
    ";": TokKind.SEMI,
    ",": TokKind.COMMA,
    ".": TokKind.DOT,
    ":": TokKind.COLON,
    "?": TokKind.QUESTION,
    "~": TokKind.TILDE,
}

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    (">>>=", None),  # unsupported, reported explicitly
    ("<<=", TokKind.SHL_ASSIGN),
    (">>=", TokKind.SHR_ASSIGN),
    (">>>", TokKind.USHR),
    ("==", TokKind.EQ),
    ("!=", TokKind.NE),
    ("<=", TokKind.LE),
    (">=", TokKind.GE),
    ("&&", TokKind.AND_AND),
    ("||", TokKind.OR_OR),
    ("<<", TokKind.SHL),
    (">>", TokKind.SHR),
    ("++", TokKind.PLUS_PLUS),
    ("--", TokKind.MINUS_MINUS),
    ("+=", TokKind.PLUS_ASSIGN),
    ("-=", TokKind.MINUS_ASSIGN),
    ("*=", TokKind.STAR_ASSIGN),
    ("/=", TokKind.SLASH_ASSIGN),
    ("%=", TokKind.PERCENT_ASSIGN),
    ("&=", TokKind.AMP_ASSIGN),
    ("|=", TokKind.PIPE_ASSIGN),
    ("^=", TokKind.CARET_ASSIGN),
    ("+", TokKind.PLUS),
    ("-", TokKind.MINUS),
    ("*", TokKind.STAR),
    ("/", TokKind.SLASH),
    ("%", TokKind.PERCENT),
    ("<", TokKind.LT),
    (">", TokKind.GT),
    ("!", TokKind.NOT),
    ("&", TokKind.AMP),
    ("|", TokKind.PIPE),
    ("^", TokKind.CARET),
    ("=", TokKind.ASSIGN),
]


class Lexer:
    """Convert mini-Java source text into a token stream."""

    def __init__(self, source: str):
        self.src = source
        self.n = len(source)
        self.i = 0
        self.line = 1
        self.col = 1

    # -- low-level cursor helpers -------------------------------------

    def _peek(self, offset: int = 0) -> str:
        j = self.i + offset
        return self.src[j] if j < self.n else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.i < self.n and self.src[self.i] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.i += 1

    def _pos(self) -> Pos:
        return Pos(self.line, self.col)

    def _error(self, message: str) -> LexError:
        return LexError(f"{message} at {self.line}:{self.col}")

    # -- public API ----------------------------------------------------

    def tokens(self) -> list[Token]:
        """Lex the entire input and return the token list (EOF-terminated)."""
        out: list[Token] = []
        while True:
            tok = self._next_token()
            out.append(tok)
            if tok.kind is TokKind.EOF:
                return out

    # -- scanning ------------------------------------------------------

    def _next_token(self) -> Token:
        self._skip_trivia_collecting = None
        while True:
            self._skip_whitespace()
            if self.i >= self.n:
                return Token(TokKind.EOF, None, self._pos())
            c = self._peek()
            if c == "/" and self._peek(1) == "/":
                while self.i < self.n and self._peek() != "\n":
                    self._advance()
                continue
            if c == "/" and self._peek(1) == "*":
                tok = self._block_comment()
                if tok is not None:
                    return tok
                continue
            break

        pos = self._pos()
        c = self._peek()
        if c.isdigit() or (c == "." and self._peek(1).isdigit()):
            return self._number(pos)
        if c.isalpha() or c == "_":
            return self._word(pos)
        for text, kind in _OPERATORS:
            if self.src.startswith(text, self.i):
                if kind is None:
                    raise self._error(f"unsupported operator {text!r}")
                self._advance(len(text))
                return Token(kind, text, pos)
        if c in _ONE_CHAR:
            self._advance()
            return Token(_ONE_CHAR[c], c, pos)
        raise self._error(f"unexpected character {c!r}")

    def _skip_whitespace(self) -> None:
        while self.i < self.n and self._peek() in " \t\r\n":
            self._advance()

    def _block_comment(self) -> Token | None:
        """Consume ``/* ... */``; return an ANNOTATION token for acc comments."""
        pos = self._pos()
        self._advance(2)
        start = self.i
        while self.i < self.n and not self.src.startswith("*/", self.i):
            self._advance()
        if self.i >= self.n:
            raise self._error("unterminated block comment")
        body = self.src[start : self.i]
        self._advance(2)
        stripped = body.strip()
        # same word-boundary rule as parse_annotation: 'acc' then
        # whitespace (any kind, not just a space) or end of body
        if stripped == "acc" or (
            stripped.startswith("acc") and stripped[3:4].isspace()
        ):
            return Token(TokKind.ANNOTATION, stripped, pos)
        return None

    def _number(self, pos: Pos) -> Token:
        start = self.i
        nxt = self._peek(1)
        if self._peek() == "0" and nxt and nxt in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.src[start : self.i]
            tail = self._peek()
            if tail and tail in "lL":
                self._advance()
                return Token(TokKind.LONG_LIT, int(text, 16), pos)
            return Token(TokKind.INT_LIT, int(text, 16), pos)

        saw_dot = False
        saw_exp = False
        while True:
            c = self._peek()
            if c.isdigit():
                self._advance()
            elif c == "." and not saw_dot and not saw_exp:
                saw_dot = True
                self._advance()
            elif c in "eE" and not saw_exp and self.i > start:
                nxt = self._peek(1)
                if nxt.isdigit() or (nxt in "+-" and self._peek(2).isdigit()):
                    saw_exp = True
                    self._advance()
                    if self._peek() in "+-":
                        self._advance()
                else:
                    break
            else:
                break
        text = self.src[start : self.i]
        suffix = self._peek()
        if suffix and suffix in "fF":
            self._advance()
            return Token(TokKind.FLOAT_LIT, float(text), pos)
        if suffix and suffix in "dD":
            self._advance()
            return Token(TokKind.DOUBLE_LIT, float(text), pos)
        if suffix and suffix in "lL":
            if saw_dot or saw_exp:
                raise self._error("long suffix on floating literal")
            self._advance()
            return Token(TokKind.LONG_LIT, int(text), pos)
        if saw_dot or saw_exp:
            return Token(TokKind.DOUBLE_LIT, float(text), pos)
        return Token(TokKind.INT_LIT, int(text), pos)

    def _word(self, pos: Pos) -> Token:
        start = self.i
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.src[start : self.i]
        if text in ("true", "false"):
            return Token(TokKind.BOOL_LIT, text == "true", pos)
        if text in KEYWORDS:
            return Token(TokKind.KEYWORD, text, pos)
        return Token(TokKind.IDENT, text, pos)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokens()
