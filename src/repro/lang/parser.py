"""Recursive-descent parser for the mini-Java subset.

Grammar (informal)::

    program     := classdecl
    classdecl   := 'class' IDENT '{' method* '}'
    method      := modifier* type IDENT '(' params? ')' block
    type        := prim ('[' ']')*
    stmt        := block | if | while | for | return | decl ';'
                 | simple ';'
    simple      := assign | incdec | expr
    expr        := ternary with standard Java precedence

Annotation comments (``/* acc ... */``) lexed as ANNOTATION tokens attach
to the next ``for`` statement; an annotation not followed by a ``for`` is a
parse error, matching the paper's "declaration of annotation on each
for-loop" rule.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParseError
from . import ast_nodes as A
from .annotations import parse_annotation
from .tokens import COMPOUND_ASSIGN_OPS, TokKind, Token


class Parser:
    """Parse a token stream (from :mod:`repro.lang.lexer`) into an AST."""

    def __init__(self, tokens: list[Token]):
        self.toks = tokens
        self.i = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        j = min(self.i + offset, len(self.toks) - 1)
        return self.toks[j]

    def _next(self) -> Token:
        tok = self.toks[self.i]
        if tok.kind is not TokKind.EOF:
            self.i += 1
        return tok

    def _check(self, kind: TokKind) -> bool:
        return self._peek().kind is kind

    def _accept(self, kind: TokKind) -> Optional[Token]:
        if self._check(kind):
            return self._next()
        return None

    def _expect(self, kind: TokKind, what: str = "") -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            wanted = what or kind.value
            raise ParseError(
                f"expected {wanted} but found {tok.kind.value!r} "
                f"({tok.value!r}) at {tok.pos}"
            )
        return self._next()

    def _accept_kw(self, word: str) -> bool:
        if self._peek().is_kw(word):
            self._next()
            return True
        return False

    def _expect_kw(self, word: str) -> Token:
        tok = self._peek()
        if not tok.is_kw(word):
            raise ParseError(f"expected keyword {word!r} at {tok.pos}")
        return self._next()

    # -- declarations ------------------------------------------------------

    def parse_program(self) -> A.ClassDecl:
        """Parse a single top-level class and require EOF after it."""
        cls = self._classdecl()
        tok = self._peek()
        if tok.kind is not TokKind.EOF:
            raise ParseError(f"trailing input after class at {tok.pos}")
        return cls

    def _classdecl(self) -> A.ClassDecl:
        while self._peek().is_kw("public"):
            self._next()
        start = self._expect_kw("class")
        name = self._expect(TokKind.IDENT, "class name")
        self._expect(TokKind.LBRACE)
        methods: list[A.Method] = []
        while not self._check(TokKind.RBRACE):
            methods.append(self._method())
        self._expect(TokKind.RBRACE)
        return A.ClassDecl(start.pos, str(name.value), methods)

    def _method(self) -> A.Method:
        start = self._peek()
        while self._peek().kind is TokKind.KEYWORD and self._peek().value in (
            "public",
            "private",
            "static",
            "final",
        ):
            self._next()
        ret = self._type()
        name = self._expect(TokKind.IDENT, "method name")
        self._expect(TokKind.LPAREN)
        params: list[A.Param] = []
        if not self._check(TokKind.RPAREN):
            while True:
                ptype = self._type()
                pname = self._expect(TokKind.IDENT, "parameter name")
                params.append(A.Param(pname.pos, ptype, str(pname.value)))
                if not self._accept(TokKind.COMMA):
                    break
        self._expect(TokKind.RPAREN)
        body = self._block()
        return A.Method(start.pos, str(name.value), ret, params, body)

    _TYPE_WORDS = ("int", "long", "float", "double", "boolean", "void")

    def _at_type(self) -> bool:
        tok = self._peek()
        return tok.kind is TokKind.KEYWORD and tok.value in self._TYPE_WORDS

    def _type(self) -> A.Type:
        tok = self._peek()
        if not self._at_type():
            raise ParseError(f"expected a type at {tok.pos}")
        self._next()
        base = A.prim(str(tok.value))
        dims = 0
        while self._check(TokKind.LBRACKET) and self._peek(1).kind is TokKind.RBRACKET:
            self._next()
            self._next()
            dims += 1
        if dims:
            if base.name == "void":
                raise ParseError(f"void[] is not a type at {tok.pos}")
            return A.ArrayType(base, dims)
        return base

    # -- statements ----------------------------------------------------------

    def _block(self) -> A.Block:
        start = self._expect(TokKind.LBRACE)
        stmts: list[A.Stmt] = []
        while not self._check(TokKind.RBRACE):
            stmts.append(self._stmt())
        self._expect(TokKind.RBRACE)
        return A.Block(start.pos, stmts)

    def _stmt(self) -> A.Stmt:
        tok = self._peek()
        if tok.kind is TokKind.ANNOTATION:
            self._next()
            ann = parse_annotation(str(tok.value), tok.pos)
            nxt = self._peek()
            if not nxt.is_kw("for"):
                raise ParseError(
                    f"acc annotation at {tok.pos} must precede a for loop"
                )
            loop = self._for_stmt()
            loop.annotation = ann
            return loop
        if tok.kind is TokKind.LBRACE:
            return self._block()
        if tok.is_kw("if"):
            return self._if_stmt()
        if tok.is_kw("while"):
            return self._while_stmt()
        if tok.is_kw("for"):
            return self._for_stmt()
        if tok.is_kw("return"):
            self._next()
            value = None
            if not self._check(TokKind.SEMI):
                value = self._expr()
            self._expect(TokKind.SEMI)
            return A.Return(tok.pos, value)
        if self._at_type():
            decl = self._var_decl()
            self._expect(TokKind.SEMI)
            return decl
        stmt = self._simple_stmt()
        self._expect(TokKind.SEMI)
        return stmt

    def _var_decl(self) -> A.VarDecl:
        start = self._peek()
        vtype = self._type()
        name = self._expect(TokKind.IDENT, "variable name")
        init = None
        if self._accept(TokKind.ASSIGN):
            init = self._expr()
        return A.VarDecl(start.pos, vtype, str(name.value), init)

    def _simple_stmt(self) -> A.Stmt:
        """Assignment, increment/decrement, or expression statement."""
        start = self._peek()
        expr = self._expr()
        tok = self._peek()
        if tok.kind is TokKind.ASSIGN or tok.kind in COMPOUND_ASSIGN_OPS:
            if not isinstance(expr, (A.VarRef, A.ArrayRef)):
                raise ParseError(f"invalid assignment target at {start.pos}")
            self._next()
            value = self._expr()
            op = "" if tok.kind is TokKind.ASSIGN else COMPOUND_ASSIGN_OPS[tok.kind]
            return A.Assign(start.pos, expr, op, value)
        if tok.kind in (TokKind.PLUS_PLUS, TokKind.MINUS_MINUS):
            if not isinstance(expr, (A.VarRef, A.ArrayRef)):
                raise ParseError(f"invalid ++/-- target at {start.pos}")
            self._next()
            return A.IncDec(start.pos, expr, str(tok.value))
        return A.ExprStmt(start.pos, expr)

    def _if_stmt(self) -> A.If:
        start = self._expect_kw("if")
        self._expect(TokKind.LPAREN)
        cond = self._expr()
        self._expect(TokKind.RPAREN)
        then = self._stmt()
        els = None
        if self._accept_kw("else"):
            els = self._stmt()
        return A.If(start.pos, cond, then, els)

    def _while_stmt(self) -> A.While:
        start = self._expect_kw("while")
        self._expect(TokKind.LPAREN)
        cond = self._expr()
        self._expect(TokKind.RPAREN)
        body = self._stmt()
        return A.While(start.pos, cond, body)

    def _for_stmt(self) -> A.For:
        start = self._expect_kw("for")
        self._expect(TokKind.LPAREN)
        init: Optional[A.Stmt] = None
        if not self._check(TokKind.SEMI):
            init = self._var_decl() if self._at_type() else self._simple_stmt()
        self._expect(TokKind.SEMI)
        cond: Optional[A.Expr] = None
        if not self._check(TokKind.SEMI):
            cond = self._expr()
        self._expect(TokKind.SEMI)
        update: Optional[A.Stmt] = None
        if not self._check(TokKind.RPAREN):
            update = self._simple_stmt()
        self._expect(TokKind.RPAREN)
        body = self._stmt()
        return A.For(start.pos, init, cond, update, body)

    # -- expressions --------------------------------------------------------

    def _expr(self) -> A.Expr:
        return self._ternary()

    def _ternary(self) -> A.Expr:
        cond = self._or()
        if self._check(TokKind.QUESTION):
            q = self._next()
            then = self._expr()
            self._expect(TokKind.COLON)
            other = self._ternary()
            return A.Ternary(q.pos, cond, then, other)
        return cond

    def _binary_level(self, sub, kinds: dict[TokKind, str]) -> A.Expr:
        left = sub()
        while self._peek().kind in kinds:
            tok = self._next()
            right = sub()
            left = A.Binary(tok.pos, kinds[tok.kind], left, right)
        return left

    def _or(self) -> A.Expr:
        return self._binary_level(self._and, {TokKind.OR_OR: "||"})

    def _and(self) -> A.Expr:
        return self._binary_level(self._bitor, {TokKind.AND_AND: "&&"})

    def _bitor(self) -> A.Expr:
        return self._binary_level(self._bitxor, {TokKind.PIPE: "|"})

    def _bitxor(self) -> A.Expr:
        return self._binary_level(self._bitand, {TokKind.CARET: "^"})

    def _bitand(self) -> A.Expr:
        return self._binary_level(self._equality, {TokKind.AMP: "&"})

    def _equality(self) -> A.Expr:
        return self._binary_level(
            self._relational, {TokKind.EQ: "==", TokKind.NE: "!="}
        )

    def _relational(self) -> A.Expr:
        return self._binary_level(
            self._shift,
            {TokKind.LT: "<", TokKind.LE: "<=", TokKind.GT: ">", TokKind.GE: ">="},
        )

    def _shift(self) -> A.Expr:
        return self._binary_level(
            self._additive,
            {TokKind.SHL: "<<", TokKind.SHR: ">>", TokKind.USHR: ">>>"},
        )

    def _additive(self) -> A.Expr:
        return self._binary_level(
            self._multiplicative, {TokKind.PLUS: "+", TokKind.MINUS: "-"}
        )

    def _multiplicative(self) -> A.Expr:
        return self._binary_level(
            self._unary,
            {TokKind.STAR: "*", TokKind.SLASH: "/", TokKind.PERCENT: "%"},
        )

    _CASTABLE = ("int", "long", "float", "double", "boolean")

    def _unary(self) -> A.Expr:
        tok = self._peek()
        if tok.kind in (TokKind.MINUS, TokKind.PLUS, TokKind.NOT, TokKind.TILDE):
            self._next()
            operand = self._unary()
            if tok.kind is TokKind.PLUS:
                return operand
            op = {"-": "-", "!": "!", "~": "~"}[str(tok.value)]
            return A.Unary(tok.pos, op, operand)
        # Primitive cast: '(' type ')' unary — unambiguous because type
        # names are keywords in this subset.
        if (
            tok.kind is TokKind.LPAREN
            and self._peek(1).kind is TokKind.KEYWORD
            and self._peek(1).value in self._CASTABLE
            and self._peek(2).kind is TokKind.RPAREN
        ):
            self._next()
            type_tok = self._next()
            self._next()
            operand = self._unary()
            return A.Cast(tok.pos, A.prim(str(type_tok.value)), operand)
        return self._postfix()

    def _postfix(self) -> A.Expr:
        expr = self._primary()
        while True:
            if self._check(TokKind.LBRACKET):
                if not isinstance(expr, (A.VarRef, A.ArrayRef)):
                    tok = self._peek()
                    raise ParseError(f"cannot index non-variable at {tok.pos}")
                tok = self._next()
                index = self._expr()
                self._expect(TokKind.RBRACKET)
                if isinstance(expr, A.VarRef):
                    expr = A.ArrayRef(tok.pos, expr, [index])
                else:
                    if len(expr.indices) >= 2:
                        raise ParseError(
                            f"arrays of more than 2 dimensions are not "
                            f"supported at {tok.pos}"
                        )
                    expr.indices.append(index)
            elif self._check(TokKind.DOT):
                dot = self._next()
                member = self._expect(TokKind.IDENT, "member name")
                if member.value == "length":
                    if isinstance(expr, A.VarRef):
                        expr = A.Length(dot.pos, expr, axis=0)
                    elif isinstance(expr, A.ArrayRef) and len(expr.indices) == 1:
                        # a[i].length -> length of the second axis
                        expr = A.Length(dot.pos, expr.base, axis=1)
                    else:
                        raise ParseError(f".length on non-array at {dot.pos}")
                elif isinstance(expr, A.VarRef) and self._check(TokKind.LPAREN):
                    name = f"{expr.name}.{member.value}"
                    expr = self._call(name, dot.pos)
                else:
                    raise ParseError(
                        f"unsupported member access .{member.value} at {dot.pos}"
                    )
            else:
                return expr

    def _call(self, name: str, pos) -> A.Call:
        self._expect(TokKind.LPAREN)
        args: list[A.Expr] = []
        if not self._check(TokKind.RPAREN):
            while True:
                args.append(self._expr())
                if not self._accept(TokKind.COMMA):
                    break
        self._expect(TokKind.RPAREN)
        return A.Call(pos, name, args)

    def _primary(self) -> A.Expr:
        tok = self._peek()
        if tok.kind is TokKind.INT_LIT:
            self._next()
            return A.IntLit(tok.pos, int(tok.value))
        if tok.kind is TokKind.LONG_LIT:
            self._next()
            return A.LongLit(tok.pos, int(tok.value))
        if tok.kind is TokKind.DOUBLE_LIT:
            self._next()
            return A.DoubleLit(tok.pos, float(tok.value))
        if tok.kind is TokKind.FLOAT_LIT:
            self._next()
            return A.FloatLit(tok.pos, float(tok.value))
        if tok.kind is TokKind.BOOL_LIT:
            self._next()
            return A.BoolLit(tok.pos, bool(tok.value))
        if tok.kind is TokKind.IDENT:
            self._next()
            if self._check(TokKind.LPAREN):
                return self._call(str(tok.value), tok.pos)
            return A.VarRef(tok.pos, str(tok.value))
        if tok.kind is TokKind.LPAREN:
            self._next()
            inner = self._expr()
            self._expect(TokKind.RPAREN)
            return inner
        raise ParseError(f"unexpected token {tok.kind.value!r} at {tok.pos}")


def parse_program(source: str) -> A.ClassDecl:
    """Lex and parse ``source`` into a :class:`~repro.lang.ast_nodes.ClassDecl`."""
    from .lexer import tokenize

    return Parser(tokenize(source)).parse_program()
