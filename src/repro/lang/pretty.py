"""Pretty-printer: AST back to mini-Java source.

Used by the code generators (to emit the translated Java/CUDA text a user
would inspect) and by the parser round-trip property tests
(``parse(pretty(ast)) == ast`` up to positions).
"""

from __future__ import annotations

from . import ast_nodes as A

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    ">>>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_UNARY_PREC = 11


def fmt_type(t: A.Type) -> str:
    """Render a type."""
    return str(t)


def fmt_expr(expr: A.Expr, parent_prec: int = 0) -> str:
    """Render an expression, parenthesizing as needed."""
    text, prec = _expr(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _expr(expr: A.Expr) -> tuple[str, int]:
    if isinstance(expr, A.IntLit):
        return str(expr.value), 99
    if isinstance(expr, A.LongLit):
        return f"{expr.value}L", 99
    if isinstance(expr, A.DoubleLit):
        return _fmt_double(expr.value), 99
    if isinstance(expr, A.FloatLit):
        return f"{_fmt_double(expr.value)}f", 99
    if isinstance(expr, A.BoolLit):
        return ("true" if expr.value else "false"), 99
    if isinstance(expr, A.VarRef):
        return expr.name, 99
    if isinstance(expr, A.ArrayRef):
        idx = "".join(f"[{fmt_expr(ix)}]" for ix in expr.indices)
        return f"{expr.base.name}{idx}", 99
    if isinstance(expr, A.Length):
        if expr.axis == 0:
            return f"{expr.array.name}.length", 99
        return f"{expr.array.name}[0].length", 99
    if isinstance(expr, A.Call):
        args = ", ".join(fmt_expr(a) for a in expr.args)
        return f"{expr.name}({args})", 99
    if isinstance(expr, A.Unary):
        inner = fmt_expr(expr.operand, _UNARY_PREC + 1)
        return f"{expr.op}{inner}", _UNARY_PREC
    if isinstance(expr, A.Cast):
        inner = fmt_expr(expr.operand, _UNARY_PREC + 1)
        return f"({expr.target.name}) {inner}", _UNARY_PREC
    if isinstance(expr, A.Binary):
        prec = _PRECEDENCE[expr.op]
        left = fmt_expr(expr.left, prec)
        right = fmt_expr(expr.right, prec + 1)  # left-assoc
        return f"{left} {expr.op} {right}", prec
    if isinstance(expr, A.Ternary):
        cond = fmt_expr(expr.cond, 1)
        then = fmt_expr(expr.then, 0)
        other = fmt_expr(expr.other, 0)
        return f"{cond} ? {then} : {other}", 0
    raise TypeError(f"cannot pretty-print {type(expr).__name__}")


def _fmt_double(value: float) -> str:
    text = repr(float(value))
    if "e" in text or "E" in text or "." in text or "inf" in text or "nan" in text:
        return text
    return text + ".0"


def fmt_stmt(stmt: A.Stmt, indent: int = 0) -> str:
    """Render a statement with ``indent`` levels of 4-space indentation."""
    pad = "    " * indent
    if isinstance(stmt, A.VarDecl):
        init = f" = {fmt_expr(stmt.init)}" if stmt.init is not None else ""
        return f"{pad}{fmt_type(stmt.type)} {stmt.name}{init};"
    if isinstance(stmt, A.Assign):
        return f"{pad}{_inline_stmt(stmt)};"
    if isinstance(stmt, A.IncDec):
        return f"{pad}{_inline_stmt(stmt)};"
    if isinstance(stmt, A.ExprStmt):
        return f"{pad}{fmt_expr(stmt.expr)};"
    if isinstance(stmt, A.Return):
        if stmt.value is None:
            return f"{pad}return;"
        return f"{pad}return {fmt_expr(stmt.value)};"
    if isinstance(stmt, A.Block):
        lines = [f"{pad}{{"]
        lines.extend(fmt_stmt(s, indent + 1) for s in stmt.stmts)
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if isinstance(stmt, A.If):
        out = f"{pad}if ({fmt_expr(stmt.cond)})\n{fmt_stmt(_as_block(stmt.then), indent)}"
        if stmt.els is not None:
            out += f"\n{pad}else\n{fmt_stmt(_as_block(stmt.els), indent)}"
        return out
    if isinstance(stmt, A.While):
        return (
            f"{pad}while ({fmt_expr(stmt.cond)})\n"
            f"{fmt_stmt(_as_block(stmt.body), indent)}"
        )
    if isinstance(stmt, A.For):
        parts = []
        if stmt.annotation is not None:
            parts.append(f"{pad}/* {format_annotation(stmt.annotation)} */")
        init = _inline_stmt(stmt.init) if stmt.init is not None else ""
        cond = fmt_expr(stmt.cond) if stmt.cond is not None else ""
        update = _inline_stmt(stmt.update) if stmt.update is not None else ""
        parts.append(f"{pad}for ({init}; {cond}; {update})")
        parts.append(fmt_stmt(_as_block(stmt.body), indent))
        return "\n".join(parts)
    raise TypeError(f"cannot pretty-print {type(stmt).__name__}")


def _as_block(stmt: A.Stmt) -> A.Block:
    if isinstance(stmt, A.Block):
        return stmt
    return A.Block(stmt.pos, [stmt])


def _inline_stmt(stmt: A.Stmt) -> str:
    """Render a simple statement with no trailing semicolon (for headers)."""
    if isinstance(stmt, A.VarDecl):
        init = f" = {fmt_expr(stmt.init)}" if stmt.init is not None else ""
        return f"{fmt_type(stmt.type)} {stmt.name}{init}"
    if isinstance(stmt, A.Assign):
        target = fmt_expr(stmt.target)
        op = f"{stmt.op}=" if stmt.op else "="
        return f"{target} {op} {fmt_expr(stmt.value)}"
    if isinstance(stmt, A.IncDec):
        return f"{fmt_expr(stmt.target)}{stmt.op}"
    if isinstance(stmt, A.ExprStmt):
        return fmt_expr(stmt.expr)
    raise TypeError(f"not a simple statement: {type(stmt).__name__}")


def format_annotation(ann) -> str:
    """Render an :class:`~repro.lang.annotations.Annotation` back to text."""
    parts = ["acc parallel"]
    if ann.private:
        parts.append(f"private({', '.join(ann.private)})")
    for direction in ("copyin", "copyout", "create"):
        sections = getattr(ann, direction)
        if sections:
            rendered = ", ".join(_format_section(s) for s in sections)
            parts.append(f"{direction}({rendered})")
    if ann.threads is not None:
        parts.append(f"threads({ann.threads})")
    if ann.scheme_explicit:
        parts.append(f"scheme({ann.scheme})")
    return " ".join(parts)


def _format_section(section) -> str:
    if section.whole:
        return section.name
    return f"{section.name}[{fmt_expr(section.low)}:{fmt_expr(section.high)}]"


def fmt_method(method: A.Method) -> str:
    """Render a static method declaration."""
    params = ", ".join(f"{fmt_type(p.type)} {p.name}" for p in method.params)
    header = f"static {fmt_type(method.ret)} {method.name}({params})"
    return f"{header}\n{fmt_stmt(method.body, 0)}"


def fmt_class(cls: A.ClassDecl) -> str:
    """Render a whole class."""
    body = "\n\n".join(_indent_block(fmt_method(m)) for m in cls.methods)
    return f"class {cls.name} {{\n{body}\n}}"


def _indent_block(text: str) -> str:
    return "\n".join("    " + line if line else line for line in text.split("\n"))
