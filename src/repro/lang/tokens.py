"""Token definitions for the mini-Java frontend.

Japonica consumes sequential Java source annotated with OpenACC-style
directives.  This module defines the token vocabulary for the Java subset
that the paper's benchmarks exercise (scalar and array arithmetic, control
flow, bitwise operations for Crypt/IDEA, and ``Math.*`` intrinsics).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokKind(enum.Enum):
    """Lexical category of a token."""

    # Literals / identifiers
    INT_LIT = "int_lit"
    LONG_LIT = "long_lit"
    FLOAT_LIT = "float_lit"
    DOUBLE_LIT = "double_lit"
    BOOL_LIT = "bool_lit"
    IDENT = "ident"
    KEYWORD = "keyword"

    # Punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    COLON = ":"
    QUESTION = "?"

    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    AMP_ASSIGN = "&="
    PIPE_ASSIGN = "|="
    CARET_ASSIGN = "^="
    SHL_ASSIGN = "<<="
    SHR_ASSIGN = ">>="

    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="

    AND_AND = "&&"
    OR_OR = "||"
    NOT = "!"

    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    SHL = "<<"
    SHR = ">>"
    USHR = ">>>"

    ANNOTATION = "annotation"  # an /* acc ... */ comment, payload in .text
    EOF = "eof"


#: Java keywords recognised by the subset grammar.
KEYWORDS = frozenset(
    {
        "class",
        "static",
        "void",
        "int",
        "long",
        "float",
        "double",
        "boolean",
        "if",
        "else",
        "for",
        "while",
        "return",
        "new",
        "true",
        "false",
        "final",
        "public",
        "private",
    }
)

#: Compound-assignment token kinds mapped to the underlying binary operator.
COMPOUND_ASSIGN_OPS = {
    TokKind.PLUS_ASSIGN: "+",
    TokKind.MINUS_ASSIGN: "-",
    TokKind.STAR_ASSIGN: "*",
    TokKind.SLASH_ASSIGN: "/",
    TokKind.PERCENT_ASSIGN: "%",
    TokKind.AMP_ASSIGN: "&",
    TokKind.PIPE_ASSIGN: "|",
    TokKind.CARET_ASSIGN: "^",
    TokKind.SHL_ASSIGN: "<<",
    TokKind.SHR_ASSIGN: ">>",
}


@dataclass(frozen=True)
class Pos:
    """Source position (1-based line and column)."""

    line: int
    col: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.line}:{self.col}"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the literal's Python value (for literal kinds), the
    identifier/keyword spelling, or the raw annotation payload for
    :attr:`TokKind.ANNOTATION`.
    """

    kind: TokKind
    value: object
    pos: Pos

    def is_kw(self, word: str) -> bool:
        """Return True when this token is the keyword ``word``."""
        return self.kind is TokKind.KEYWORD and self.value == word

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind.name}, {self.value!r} @ {self.pos})"
