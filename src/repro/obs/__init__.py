"""Observability plane: pipeline tracing, metrics, deterministic exports.

See :mod:`repro.obs.tracer` (spans), :mod:`repro.obs.metrics`
(counters/gauges/histograms + the :class:`Instrumentation` bundle),
:mod:`repro.obs.export` (Chrome trace-event and metrics JSON) and
:mod:`repro.obs.insight` (RunReport: critical paths, utilization
attribution, regression diffing).
"""

from .export import (
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    chrome_trace,
    metrics_document,
    span_events,
    timeline_events,
    write_chrome_trace,
    write_metrics_json,
)
from .insight import (
    INSIGHT_SCHEMA,
    analyze_run,
    critical_path,
    diff_reports,
    lane_attribution,
    render_html,
    run_report,
    write_html,
    write_report_json,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Instrumentation,
    MetricsRegistry,
    NULL_INSTRUMENTATION,
    NULL_METRICS,
    NullMetricsRegistry,
    record_resilience,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    PHASE_ANALYZE,
    PHASE_EXECUTE,
    PHASE_PARSE,
    PHASE_PROFILE,
    PHASE_SCHEDULE,
    PHASE_TRANSLATE,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "INSIGHT_SCHEMA",
    "Instrumentation",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_INSTRUMENTATION",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "PHASE_ANALYZE",
    "PHASE_EXECUTE",
    "PHASE_PARSE",
    "PHASE_PROFILE",
    "PHASE_SCHEDULE",
    "PHASE_TRANSLATE",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "analyze_run",
    "chrome_trace",
    "critical_path",
    "diff_reports",
    "lane_attribution",
    "metrics_document",
    "record_resilience",
    "render_html",
    "run_report",
    "span_events",
    "timeline_events",
    "write_chrome_trace",
    "write_html",
    "write_metrics_json",
    "write_report_json",
]
