"""Observability plane: pipeline tracing, metrics, deterministic exports.

See :mod:`repro.obs.tracer` (spans), :mod:`repro.obs.metrics`
(counters/gauges/histograms + the :class:`Instrumentation` bundle) and
:mod:`repro.obs.export` (Chrome trace-event and metrics JSON).
"""

from .export import (
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    chrome_trace,
    metrics_document,
    span_events,
    timeline_events,
    write_chrome_trace,
    write_metrics_json,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Instrumentation,
    MetricsRegistry,
    NULL_INSTRUMENTATION,
    NULL_METRICS,
    NullMetricsRegistry,
    record_resilience,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    PHASE_ANALYZE,
    PHASE_EXECUTE,
    PHASE_PARSE,
    PHASE_PROFILE,
    PHASE_SCHEDULE,
    PHASE_TRANSLATE,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_INSTRUMENTATION",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "PHASE_ANALYZE",
    "PHASE_EXECUTE",
    "PHASE_PARSE",
    "PHASE_PROFILE",
    "PHASE_SCHEDULE",
    "PHASE_TRANSLATE",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "chrome_trace",
    "metrics_document",
    "record_resilience",
    "span_events",
    "timeline_events",
    "write_chrome_trace",
    "write_metrics_json",
]
