"""Distributed observability: request-scoped tracing across the serve
plane, cross-process metric merge, and the post-mortem flight recorder.

Three pieces, one contract (two clocks, no wall clock in any exported
artifact, byte-deterministic output for a deterministic scenario):

* :mod:`repro.obs.distrib.tracecontext` — a :class:`TraceContext` is
  minted per job at the HTTP edge, threaded through every serve gate,
  serialized across the worker-pool process boundary, and adopted by the
  worker's pipeline tracer, so one job renders one span tree from HTTP
  accept through retries to settlement.
* :mod:`repro.obs.distrib.merge` — registry snapshots travel back with
  results and the service folds them with an associative, commutative
  merge (identity: the empty state), feeding the live ``/v1/metrics``
  endpoint (:mod:`repro.obs.distrib.prom` renders Prometheus text).
* :mod:`repro.obs.distrib.flight` — a bounded per-worker ring buffer of
  job event records, dumped as a ``repro.flight/v1`` bundle on worker
  death, breaker trip, or shed (``repro tail`` renders it).
"""

from .flight import (
    FLIGHT_SCHEMA,
    LANE_SERVICE,
    FlightRecorder,
    render_flight,
    write_flight_dump,
)
from .merge import (
    EMPTY_STATE,
    merge_states,
    registry_state,
    slo_summary,
    state_histogram_quantile,
    state_histogram_summary,
    tenant_latency_summary,
)
from .prom import render_prometheus
from .tracecontext import (
    JobTrace,
    TraceContext,
    adopt_spans,
    close_open_spans,
    merge_span_docs,
    mint_trace_id,
    open_span_docs,
    span_doc,
)

__all__ = [
    "EMPTY_STATE",
    "FLIGHT_SCHEMA",
    "LANE_SERVICE",
    "FlightRecorder",
    "JobTrace",
    "TraceContext",
    "adopt_spans",
    "close_open_spans",
    "merge_span_docs",
    "merge_states",
    "mint_trace_id",
    "open_span_docs",
    "registry_state",
    "render_flight",
    "render_prometheus",
    "slo_summary",
    "span_doc",
    "state_histogram_quantile",
    "state_histogram_summary",
    "tenant_latency_summary",
    "write_flight_dump",
]
