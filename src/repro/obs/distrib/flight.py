"""Flight recorder: bounded per-lane ring buffers of job event records.

The serve plane appends one small record per lifecycle event — submit,
gate verdict, dispatch, worker death, retry, settlement, breaker trip,
ladder move — into a ring buffer per lane (``service`` plus one lane per
worker).  Rings are bounded, so steady-state cost is O(1) per event and
the recorder never grows with uptime.

On a trigger (worker death, breaker trip, or a shed when the service
runs with ``--dump-on-shed``) the recorder emits a **post-mortem
bundle**: schema ``repro.flight/v1``, carrying the last N events of
every lane in one global sequence order, the spans still open in the
active job traces, and the ladder/breaker/pool state at the moment of
the dump.  Bundles are deterministic for a deterministic scenario —
records carry a monotone sequence number, never a wall clock.

``repro tail <dump|url>`` renders a bundle for humans
(:func:`render_flight`).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Optional

FLIGHT_SCHEMA = "repro.flight/v1"

#: Lane name of service-side (non-worker) events.
LANE_SERVICE = "service"


class FlightRecorder:
    """Bounded per-lane event rings with one global sequence."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"flight ring needs capacity >= 1, "
                             f"got {capacity}")
        self.capacity = capacity
        self._rings: dict[str, deque] = {}
        self._seq = 0
        self.recorded = 0
        self.dumps = 0

    def record(self, lane: str, kind: str, **attrs) -> dict:
        """Append one event record to ``lane``'s ring."""
        self._seq += 1
        self.recorded += 1
        event = {"seq": self._seq, "lane": lane, "kind": kind}
        for key in sorted(attrs):
            if attrs[key] is not None:
                event[key] = attrs[key]
        ring = self._rings.get(lane)
        if ring is None:
            ring = self._rings[lane] = deque(maxlen=self.capacity)
        ring.append(event)
        return event

    def events(self) -> list[dict]:
        """Every retained event across all lanes, in sequence order."""
        out = [e for ring in self._rings.values() for e in ring]
        out.sort(key=lambda e: e["seq"])
        return out

    def lanes(self) -> list[str]:
        return sorted(self._rings)

    def dump(
        self,
        reason: str,
        open_spans: Optional[list[dict]] = None,
        state: Optional[dict] = None,
        **attrs,
    ) -> dict:
        """Build one post-mortem bundle (plain JSON document)."""
        self.dumps += 1
        doc = {
            "schema": FLIGHT_SCHEMA,
            "dump_seq": self.dumps,
            "reason": reason,
            "lanes": self.lanes(),
            "events": self.events(),
            "open_spans": list(open_spans or ()),
            "state": dict(state or {}),
        }
        for key in sorted(attrs):
            if attrs[key] is not None:
                doc[key] = attrs[key]
        return doc


def write_flight_dump(path: str, doc: dict) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def _fmt_attrs(event: dict, skip=("seq", "lane", "kind")) -> str:
    return " ".join(
        f"{k}={event[k]}" for k in sorted(event) if k not in skip
    )


def render_flight(doc: dict) -> str:
    """Human rendering of one flight bundle (the ``repro tail`` view)."""
    if doc.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(
            f"not a flight dump: schema {doc.get('schema')!r} "
            f"(expected {FLIGHT_SCHEMA!r})"
        )
    lines = [
        f"flight dump #{doc.get('dump_seq', '?')} — "
        f"reason: {doc.get('reason', '?')}",
        f"lanes: {', '.join(doc.get('lanes', ())) or '(none)'}",
        "",
        f"{'seq':>5}  {'lane':<12} {'kind':<18} detail",
    ]
    for event in doc.get("events", ()):
        lines.append(
            f"{event['seq']:>5}  {event['lane']:<12} "
            f"{event['kind']:<18} {_fmt_attrs(event)}"
        )
    open_spans = doc.get("open_spans", ())
    lines.append("")
    if open_spans:
        lines.append(f"open spans at dump ({len(open_spans)}):")
        for sp in open_spans:
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(sp.get("attrs", {}).items())
            )
            lines.append(
                f"  [{sp.get('id')}] {sp.get('name')} "
                f"(cat {sp.get('cat')}, tick {sp.get('tick_start')}..) "
                f"{attrs}".rstrip()
            )
    else:
        lines.append("open spans at dump: none")
    state = doc.get("state", {})
    if state:
        lines.append("")
        lines.append("state:")
        for key in sorted(state):
            lines.append(f"  {key}: {json.dumps(state[key], sort_keys=True)}")
    return "\n".join(lines) + "\n"
