"""Cross-process metric merge: registry snapshots and their fold.

Worker runtimes ship a *snapshot state* of their metrics registry back
with every job result; the service folds the latest state per worker
with its own registry to answer ``/v1/metrics``.  The fold must behave
like a commutative monoid so the merged view is independent of worker
count, arrival order, and fold shape:

* **counters** — add (monotone totals);
* **gauges** — max (serve gauges are non-negative occupancy/level
  readings, so "worst observed across the fleet" is the merged view);
* **histograms** — bucket-wise count addition plus ``count``/``sum``
  add, ``min`` min, ``max`` max.  Quantile estimates depend only on
  (buckets, count, min, max), all of which merge exactly, so the merged
  quantiles equal the quantiles of a single registry fed the
  concatenated observation stream — the property the Hypothesis suite
  pins (associativity, commutativity, identity included).

The identity element is :data:`EMPTY_STATE`.  States are plain JSON
documents (sorted keys when dumped), so they cross the process boundary
as-is.
"""

from __future__ import annotations

import math
from typing import Optional

#: The merge identity: a snapshot of a registry nothing ever touched.
EMPTY_STATE: dict = {"counters": {}, "gauges": {}, "histograms": {}}


def _bucket_key(le) -> tuple:
    """Sort key for a bucket bound (floats ascending, '+Inf' last)."""
    if le == "+Inf":
        return (1, 0.0)
    return (0, float(le))


def registry_state(registry) -> dict:
    """Snapshot a :class:`~repro.obs.metrics.MetricsRegistry` as a state.

    Null registries (the zero-overhead off path) snapshot to the merge
    identity.
    """
    counters = getattr(registry, "_counters", None)
    if counters is None:  # NullMetricsRegistry
        return {"counters": {}, "gauges": {}, "histograms": {}}
    return {
        "counters": {
            name: c.value for name, c in sorted(counters.items())
        },
        "gauges": {
            name: g.value
            for name, g in sorted(registry._gauges.items())
            if g.written
        },
        "histograms": {
            name: {
                "count": h.count,
                "sum": h.total,
                "min": h.min if h.count else 0.0,
                "max": h.max if h.count else 0.0,
                "buckets": h.bucket_pairs(),
            }
            for name, h in sorted(registry._histograms.items())
        },
    }


def _merge_histogram(a: dict, b: dict) -> dict:
    counts: dict[tuple, list] = {}
    for le, n in list(a["buckets"]) + list(b["buckets"]):
        key = _bucket_key(le)
        if key in counts:
            counts[key][1] += n
        else:
            counts[key] = [le, n]
    merged_count = a["count"] + b["count"]
    return {
        "count": merged_count,
        "sum": a["sum"] + b["sum"],
        "min": (
            min(a["min"], b["min"]) if a["count"] and b["count"]
            else (a["min"] if a["count"] else b["min"])
        ),
        "max": (
            max(a["max"], b["max"]) if a["count"] and b["count"]
            else (a["max"] if a["count"] else b["max"])
        ),
        "buckets": [counts[k] for k in sorted(counts)],
    }


def merge_states(a: dict, b: dict) -> dict:
    """Fold two registry states; associative, commutative, identity
    :data:`EMPTY_STATE`."""
    counters = dict(a["counters"])
    for name, v in b["counters"].items():
        counters[name] = counters.get(name, 0.0) + v
    gauges = dict(a["gauges"])
    for name, v in b["gauges"].items():
        gauges[name] = max(gauges[name], v) if name in gauges else v
    histograms = {name: dict(h) for name, h in a["histograms"].items()}
    for name, h in b["histograms"].items():
        if name in histograms:
            histograms[name] = _merge_histogram(histograms[name], h)
        else:
            histograms[name] = dict(h)
    return {
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "histograms": {k: histograms[k] for k in sorted(histograms)},
    }


def state_histogram_quantile(hstate: dict, q: float) -> float:
    """Quantile estimate from a histogram state.

    Mirrors :meth:`repro.obs.metrics.Histogram.quantile` exactly: the
    upper bound of the bucket holding the ``q``-th observation, clamped
    to the observed ``[min, max]``.
    """
    count = hstate["count"]
    if not count:
        return 0.0
    rank = max(1, math.ceil(q * count))
    cum = 0
    for le, n in sorted(hstate["buckets"], key=lambda p: _bucket_key(p[0])):
        cum += n
        if cum >= rank:
            bound = hstate["max"] if le == "+Inf" else float(le)
            return min(max(bound, hstate["min"]), hstate["max"])
    return hstate["max"]


def state_histogram_summary(hstate: dict) -> dict:
    """The deterministic summary block exported for one histogram."""
    count = hstate["count"]
    return {
        "count": count,
        "sum": hstate["sum"],
        "min": hstate["min"],
        "max": hstate["max"],
        "mean": hstate["sum"] / count if count else 0.0,
        "p50": state_histogram_quantile(hstate, 0.50),
        "p95": state_histogram_quantile(hstate, 0.95),
        "p99": state_histogram_quantile(hstate, 0.99),
    }


def tenant_latency_summary(
    state: dict, prefix: str = "serve.tenant.", suffix: str = ".wall_ms",
) -> dict:
    """Per-tenant latency quantiles from the merged state's histograms.

    The service records one ``serve.tenant.<tenant>.wall_ms`` histogram
    per tenant at settlement; this extracts ``{tenant: summary}``.
    """
    out = {}
    for name, h in state["histograms"].items():
        if name.startswith(prefix) and name.endswith(suffix):
            tenant = name[len(prefix):-len(suffix)]
            if tenant:
                out[tenant] = state_histogram_summary(h)
    return out


def slo_summary(state: dict, target_ms: Optional[float] = None) -> dict:
    """SLO burn-rate view over the good/bad settlement counters."""
    good = state["counters"].get("serve.slo.good", 0.0)
    bad = state["counters"].get("serve.slo.bad", 0.0)
    total = good + bad
    out = {
        "good": good,
        "bad": bad,
        "burn_rate": bad / total if total else 0.0,
    }
    if target_ms is not None:
        out["target_wall_ms"] = target_ms
    return out
