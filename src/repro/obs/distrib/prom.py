"""Prometheus text exposition of a merged registry state.

Renders the merge state (see :mod:`repro.obs.distrib.merge`) as
Prometheus text format 0.0.4 — the format ``GET /v1/metrics`` answers
by default.  Deterministic by construction: families and labels are
sorted, and every value comes from the merged state (no wall clock, no
iteration-order dependence).

Naming: dots become underscores under a ``repro_`` prefix, so the
``serve.wall_ms`` histogram exports as ``repro_serve_wall_ms``.  The
per-tenant convention ``serve.tenant.<tenant>.<rest>`` is recognized and
exported as ``repro_serve_tenant_<rest>{tenant="<tenant>"}`` — one
family with a tenant label, not one family per tenant.
"""

from __future__ import annotations

import re

from .merge import _bucket_key, state_histogram_quantile

_TENANT_RE = re.compile(r"^serve\.tenant\.(?P<tenant>.+)\.(?P<rest>[^.]+)$")


def _sanitize(name: str) -> str:
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _escape(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _family(name: str) -> tuple[str, str]:
    """Split one flat metric name into (family, label-string)."""
    m = _TENANT_RE.match(name)
    if m:
        fam = _sanitize(f"serve.tenant.{m.group('rest')}")
        return fam, f'tenant="{_escape(m.group("tenant"))}"'
    return _sanitize(name), ""


def _line(fam: str, labels: str, value, suffix: str = "") -> str:
    label_part = "{" + labels + "}" if labels else ""
    if isinstance(value, float) and value == int(value):
        value = int(value)
    return f"{fam}{suffix}{label_part} {value}"


def render_prometheus(state: dict) -> str:
    """The merged state as Prometheus text (trailing newline included)."""
    lines: list[str] = []
    families_seen: set[str] = set()

    def header(fam: str, kind: str) -> None:
        if fam not in families_seen:
            families_seen.add(fam)
            lines.append(f"# TYPE {fam} {kind}")

    for name in sorted(state["counters"]):
        fam, labels = _family(name)
        header(fam, "counter")
        lines.append(_line(fam, labels, state["counters"][name]))

    for name in sorted(state["gauges"]):
        fam, labels = _family(name)
        header(fam, "gauge")
        lines.append(_line(fam, labels, state["gauges"][name]))

    # group histograms by family first: tenant-labelled series share one
    # family, and all samples of a family must stay contiguous
    groups: dict[str, list[tuple[str, dict]]] = {}
    for name in sorted(state["histograms"]):
        fam, labels = _family(name)
        groups.setdefault(fam, []).append((labels, state["histograms"][name]))

    for fam in sorted(groups):
        header(fam, "histogram")
        for labels, h in groups[fam]:
            cum = 0
            for le, n in sorted(
                h["buckets"], key=lambda p: _bucket_key(p[0])
            ):
                cum += n
                le_txt = "+Inf" if le == "+Inf" else repr(float(le))
                bucket_labels = ", ".join(
                    x for x in (labels, f'le="{le_txt}"') if x
                )
                lines.append(
                    _line(fam, bucket_labels, cum, suffix="_bucket")
                )
            if not h["buckets"] or h["buckets"][-1][0] != "+Inf":
                bucket_labels = ", ".join(
                    x for x in (labels, 'le="+Inf"') if x
                )
                lines.append(
                    _line(fam, bucket_labels, cum, suffix="_bucket")
                )
            lines.append(_line(fam, labels, h["count"], suffix="_count"))
            lines.append(_line(fam, labels, h["sum"], suffix="_sum"))

    for fam in sorted(groups):
        for q, tag in ((0.50, "p50"), (0.95, "p95"), (0.99, "p99")):
            qfam = f"{fam}_{tag}"
            header(qfam, "gauge")
            for labels, h in groups[fam]:
                lines.append(
                    _line(qfam, labels, state_histogram_quantile(h, q))
                )

    return "\n".join(lines) + "\n"
