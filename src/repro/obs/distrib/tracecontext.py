"""Request-scoped trace contexts and span adoption across processes.

A :class:`TraceContext` identifies one request's trace: a deterministic
``trace_id`` (derived from tenant and job id — never a wall clock or a
PRNG), the id of the parent span on the service side of a hop, and the
logical-clock offset already consumed upstream.  It travels as a plain
dict so the HTTP layer, the service, and the worker-pool process
transport share one wire format.

Workers ship their pipeline spans back *in-band* with the job result as
plain span documents (:func:`span_doc`).  The service grafts them into
the per-job trace tree with :func:`adopt_spans`: ids are remapped,
logical ticks are rebased past the service tracer's current tick (the
two tick clocks are independent monotone counters), and shipped roots
are re-parented under the dispatch attempt that produced them.  The
result is one tree per job — HTTP accept, every gate verdict, every
attempt, and the pipeline phases — under one ``trace_id``.

Spans a SIGKILLed worker never got to close do not dangle: the service
side closes its open spans via :func:`close_open_spans` with
``status="killed"`` when the liveness reaper detects the death.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Optional

from ..tracer import Span, Tracer


def mint_trace_id(tenant: str, job_id: str) -> str:
    """Deterministic 16-hex-digit trace id for one job.

    Derived purely from the job's identity so a replayed scenario (same
    tenant, same job id) yields the same trace id — the property the
    byte-identity acceptance test pins down.
    """
    digest = hashlib.sha256(f"repro.trace:{tenant}:{job_id}".encode())
    return digest.hexdigest()[:16]


@dataclass
class TraceContext:
    """One hop's view of a request trace."""

    trace_id: str
    #: span id (service side) the next hop's spans hang under; -1 = root
    parent_span_id: int = -1
    #: logical ticks consumed upstream of this hop (informational)
    clock: int = 0

    @classmethod
    def mint(cls, tenant: str, job_id: str) -> "TraceContext":
        return cls(trace_id=mint_trace_id(tenant, job_id))

    def child(self, parent_span_id: int, clock: int = 0) -> "TraceContext":
        return TraceContext(
            trace_id=self.trace_id, parent_span_id=parent_span_id,
            clock=clock,
        )

    def to_doc(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "clock": self.clock,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "TraceContext":
        return cls(
            trace_id=doc["trace_id"],
            parent_span_id=doc.get("parent_span_id", -1),
            clock=doc.get("clock", 0),
        )


class JobTrace:
    """One job's trace tree on the service side.

    Owns a private :class:`~repro.obs.tracer.Tracer` (its logical clock
    starts at zero per job, which is what makes a single job's exported
    trace byte-identical across runs) and the root span opened at the
    accepting edge (HTTP layer or direct ``submit``).
    """

    def __init__(self, context: TraceContext):
        self.context = context
        self.tracer = Tracer()
        self.root = None  # root _SpanHandle, set by the accepting edge

    def open_root(self, name: str, category: str, **attrs):
        self.root = self.tracer.span(
            name, category, trace_id=self.context.trace_id, **attrs
        )
        return self.root


def span_doc(sp: Span) -> dict:
    """One span as a plain picklable/JSON document (the wire format)."""
    return {
        "id": sp.id,
        "name": sp.name,
        "cat": sp.category,
        "tick_start": sp.tick_start,
        "tick_end": sp.tick_end,
        "sim_start_s": sp.sim_start_s,
        "sim_end_s": sp.sim_end_s,
        "parent_id": sp.parent_id,
        "attrs": dict(sp.attrs),
    }


def merge_span_docs(
    primary: list[dict], extra: list[dict],
    attach_to: Optional[int] = None,
) -> list[dict]:
    """Concatenate two shipped span groups with disjoint id spaces.

    ``extra`` (e.g. the isolated per-report instrumentation a worker
    used alongside its long-lived tracer) is offset past ``primary`` in
    both id and tick space; its roots are re-parented to ``attach_to``
    (an id *within primary's id space*) when given.
    """
    if not extra:
        return list(primary)
    out = list(primary)
    id_off = 1 + max((d["id"] for d in primary), default=-1)
    tick_off = max(
        (max(d["tick_start"], d["tick_end"]) for d in primary), default=0
    )
    extra_ids = {d["id"] for d in extra}
    for d in sorted(extra, key=lambda d: d["id"]):
        doc = dict(d)
        doc["id"] = d["id"] + id_off
        doc["tick_start"] = d["tick_start"] + tick_off
        if d["tick_end"] >= 0:
            doc["tick_end"] = d["tick_end"] + tick_off
        if d["parent_id"] is not None and d["parent_id"] in extra_ids:
            doc["parent_id"] = d["parent_id"] + id_off
        else:
            doc["parent_id"] = attach_to
        out.append(doc)
    return out


def adopt_spans(
    tracer: Tracer, docs: Iterable[dict], parent_id: Optional[int],
) -> int:
    """Graft shipped span documents into ``tracer`` under ``parent_id``.

    Ids are remapped onto the tracer's id space and logical ticks are
    rebased past the tracer's current tick, preserving the shipped
    relative order (both clocks are monotone counters, so the rebase is
    a pure shift).  Shipped roots — spans whose parent is not part of
    the shipment — are re-parented under ``parent_id``.  Returns the
    number of spans adopted.
    """
    docs = sorted(docs, key=lambda d: d["id"])
    if not docs:
        return 0
    base = tracer._tick
    min_tick = min(d["tick_start"] for d in docs)
    max_tick = max(
        [d["tick_start"] for d in docs]
        + [d["tick_end"] for d in docs if d["tick_end"] >= 0]
    )
    shipped = {d["id"] for d in docs}
    idmap: dict[int, int] = {}
    for d in docs:
        new_id = len(tracer.spans)
        idmap[d["id"]] = new_id
        parent = (
            idmap.get(d["parent_id"])
            if d["parent_id"] in shipped
            else parent_id
        )
        tracer.spans.append(Span(
            id=new_id,
            name=d["name"],
            category=d["cat"],
            tick_start=base + 1 + (d["tick_start"] - min_tick),
            tick_end=(
                base + 1 + (d["tick_end"] - min_tick)
                if d["tick_end"] >= 0 else -1
            ),
            sim_start_s=d["sim_start_s"],
            sim_end_s=d["sim_end_s"],
            parent_id=parent,
            attrs=dict(d["attrs"]),
        ))
    tracer._tick = base + 1 + (max_tick - min_tick)
    return len(docs)


def close_open_spans(tracer: Tracer, status: str) -> int:
    """Close every still-open span, innermost first, marking ``status``.

    The liveness reaper calls this when a worker is SIGKILLed mid-job:
    the spans the worker never closed must not dangle in the exported
    trace — they end at the reap tick carrying ``status="killed"``.
    Returns the number of spans closed.
    """
    closed = 0
    for sp in reversed(tracer.spans):
        if sp.open:
            sp.attrs["status"] = status
            tracer._close(sp)
            closed += 1
    return closed


def open_span_docs(tracer: Tracer) -> list[dict]:
    """Documents for the currently-open spans (flight-recorder bundles)."""
    return [span_doc(sp) for sp in tracer.spans if sp.open]
