"""Exporters: Chrome trace-event JSON (Perfetto-loadable) and metrics JSON.

The Chrome trace groups work into processes:

* ``pid 1`` — the **pipeline** process: compile- and dispatch-level spans
  on the tracer's logical tick clock (1 tick = 1 us).  Spans that wrap
  simulated work carry their simulated interval in ``args`` instead of
  mixing the two clocks on one axis.
* ``pid 2..`` — one **timeline** process per traced execution, with one
  thread per resource lane (cpu/dma/gpu).  Timestamps and durations are
  the *simulated* clock in microseconds, so a trace is deterministic:
  re-running the same program with the same seed yields the same bytes.

Load the output at https://ui.perfetto.dev (or chrome://tracing).
"""

from __future__ import annotations

import json
from typing import Iterable, Optional, Sequence

from ..runtime.clock import natural_lane_key

#: Schema tags written into the exports.  Metrics moved to v2 when
#: histograms grew log-spaced bucket counts and p50/p95/p99 estimates.
TRACE_SCHEMA = "repro.trace/v1"
METRICS_SCHEMA = "repro.metrics/v2"

_PIPELINE_PID = 1


def _meta(pid: int, name: str, tid: Optional[int] = None) -> dict:
    event = {
        "ph": "M",
        "pid": pid,
        "name": "process_name" if tid is None else "thread_name",
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def span_events(spans: Iterable) -> list[dict]:
    """Pipeline spans -> complete ('X') events on the tick clock."""
    events = []
    for sp in spans:
        if sp.open:
            continue
        args = dict(sp.attrs)
        if sp.sim_start_s is not None:
            args["sim_start_ms"] = sp.sim_start_s * 1e3
        if sp.sim_end_s is not None:
            args["sim_end_ms"] = sp.sim_end_s * 1e3
            if sp.sim_start_s is not None:
                args["sim_dur_ms"] = (sp.sim_end_s - sp.sim_start_s) * 1e3
        events.append(
            {
                "ph": "X",
                "pid": _PIPELINE_PID,
                "tid": 0,
                "ts": sp.tick_start,
                "dur": sp.tick_end - sp.tick_start,
                "name": sp.name,
                "cat": sp.category,
                "args": args,
            }
        )
    return events


def timeline_events(timeline, pid: int) -> list[dict]:
    """One simulated :class:`Timeline` -> per-lane 'X' events (sim us).

    ``tid`` assignment follows natural lane order (numeric suffix aware),
    so ``gpu2`` keeps a lower tid than ``gpu10`` on large device pools.
    """
    lanes = sorted({e.lane for e in timeline.events}, key=natural_lane_key)
    tid_of = {lane: tid for tid, lane in enumerate(lanes)}
    events = [_meta(pid, lane, tid) for lane, tid in tid_of.items()]
    for e in timeline.events:
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid_of[e.lane],
                "ts": e.start * 1e6,
                "dur": e.duration * 1e6,
                "name": e.label or e.lane,
                "cat": e.lane,
                "args": {"id": e.id},
            }
        )
    return events


def chrome_trace(
    spans: Iterable = (),
    timelines: Sequence[tuple[str, object]] = (),
    metadata: Optional[dict] = None,
) -> dict:
    """Build the Chrome trace-event document.

    ``timelines`` is a sequence of ``(track_name, Timeline)`` pairs; each
    becomes its own process so overlapping simulated clocks (one per
    traced loop execution) never collide.
    """
    events: list[dict] = [_meta(_PIPELINE_PID, "pipeline")]
    events.extend(span_events(spans))
    for k, (name, timeline) in enumerate(timelines):
        pid = _PIPELINE_PID + 1 + k
        events.append(_meta(pid, name))
        events.extend(timeline_events(timeline, pid))
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, **(metadata or {})},
    }
    return doc


def write_chrome_trace(
    path: str,
    spans: Iterable = (),
    timelines: Sequence[tuple[str, object]] = (),
    metadata: Optional[dict] = None,
) -> None:
    with open(path, "w") as fh:
        json.dump(
            chrome_trace(spans, timelines, metadata), fh,
            indent=1, sort_keys=True,
        )
        fh.write("\n")


def metrics_document(registry, extra: Optional[dict] = None) -> dict:
    doc = {"schema": METRICS_SCHEMA}
    if extra:
        doc.update(extra)
    doc.update(registry.to_dict())
    return doc


def write_metrics_json(
    path: str, registry, extra: Optional[dict] = None
) -> None:
    with open(path, "w") as fh:
        json.dump(metrics_document(registry, extra), fh,
                  indent=1, sort_keys=True)
        fh.write("\n")
