"""Trace-insight subsystem: deterministic analysis of recorded traces.

Consumes the observability plane's raw products (``Tracer`` spans,
``Timeline`` objects, the ``MetricsRegistry``) and produces a structured
**RunReport**: critical-path extraction, per-lane idle/stall bucket
attribution, speculation waterfall, steal-efficiency summary, plus a
run-to-run ``diff`` engine with relative-threshold regression verdicts
and a self-contained HTML dashboard.  See DESIGN.md §5.5.
"""

from .attribution import (
    BUCKETS,
    classify_event,
    lane_attribution,
    overlap_stats,
)
from .critical_path import CriticalPath, critical_path
from .diff import (
    DIFF_SCHEMA,
    VERDICT_IMPROVEMENT,
    VERDICT_OK,
    VERDICT_REGRESSION,
    diff_reports,
    render_diff,
)
from .html import render_html, write_html
from .report import (
    INSIGHT_SCHEMA,
    analyze_run,
    analyze_timeline,
    phase_summary,
    run_report,
    speculation_waterfall,
    steal_summary,
    write_report_json,
)

__all__ = [
    "BUCKETS",
    "CriticalPath",
    "DIFF_SCHEMA",
    "INSIGHT_SCHEMA",
    "VERDICT_IMPROVEMENT",
    "VERDICT_OK",
    "VERDICT_REGRESSION",
    "analyze_run",
    "analyze_timeline",
    "classify_event",
    "critical_path",
    "diff_reports",
    "lane_attribution",
    "overlap_stats",
    "phase_summary",
    "render_diff",
    "render_html",
    "run_report",
    "speculation_waterfall",
    "steal_summary",
    "write_html",
    "write_report_json",
]
