"""Per-lane time attribution: where did every simulated second go?

Each lane's ``[0, makespan]`` interval partitions into busy events plus
idle gaps; every busy event lands in exactly one bucket, classified from
the conventions the schedulers and the TLS engine stamp into event
labels (see the bucket constants).  ``idle`` is computed as the
difference against the makespan, so the per-lane bucket sum equals the
makespan by construction (within one ULP of float subtraction) — the
acceptance suite asserts this for every workload timeline.
"""

from __future__ import annotations

from ...runtime.clock import natural_lane_key

#: Attribution buckets, in report order.
BUCKET_COMPUTE = "compute"
BUCKET_DMA = "dma"
BUCKET_STEAL = "steal"
BUCKET_SPEC_ABORT = "speculation_abort"
BUCKET_FAULT = "fault_recovery"
BUCKET_IDLE = "idle"

BUCKETS = (
    BUCKET_COMPUTE,
    BUCKET_DMA,
    BUCKET_STEAL,
    BUCKET_SPEC_ABORT,
    BUCKET_FAULT,
    BUCKET_IDLE,
)

#: Label prefixes written by the TLS engine for work caused by a
#: mis-speculation (partial commit, relaunch round-trips, CPU handoff).
_SPEC_ABORT_PREFIXES = (
    "commit-prefix@",
    "relaunch-xfer@",
    "handoff-xfer@",
    "cpu-seq@",
)


def classify_event(event) -> str:
    """Bucket of one timeline event (never ``idle``).

    Order matters: fault-recovery drains can land on DMA lanes and
    stolen tasks run on compute lanes, so the more specific label
    conventions win over the lane name.
    """
    label = event.label
    if "drain" in label or label.startswith("shrink@"):
        return BUCKET_FAULT
    if label.startswith(_SPEC_ABORT_PREFIXES):
        return BUCKET_SPEC_ABORT
    if label.endswith("*"):  # stealing scheduler marks stolen tasks
        return BUCKET_STEAL
    if event.lane.startswith("dma"):
        return BUCKET_DMA
    return BUCKET_COMPUTE


def lane_attribution(timeline) -> dict[str, dict[str, float]]:
    """Per-lane bucket seconds; each lane's buckets sum to the makespan."""
    makespan = timeline.makespan
    per_lane: dict[str, dict[str, float]] = {}
    for e in timeline.events:
        buckets = per_lane.get(e.lane)
        if buckets is None:
            buckets = per_lane[e.lane] = {b: 0.0 for b in BUCKETS}
        buckets[classify_event(e)] += e.duration
    for buckets in per_lane.values():
        busy = (
            buckets[BUCKET_COMPUTE]
            + buckets[BUCKET_DMA]
            + buckets[BUCKET_STEAL]
            + buckets[BUCKET_SPEC_ABORT]
            + buckets[BUCKET_FAULT]
        )
        buckets[BUCKET_IDLE] = max(0.0, makespan - busy)
    return {
        lane: per_lane[lane]
        for lane in sorted(per_lane, key=natural_lane_key)
    }


def overlap_stats(timeline) -> dict:
    """Lane-concurrency summary via a boundary sweep.

    ``overlap_s`` is the total time with >= 2 lanes simultaneously busy;
    ``avg_parallelism`` integrates the number of busy lanes over the
    makespan (so 1.0 means fully serial, N means all N lanes saturated).
    """
    makespan = timeline.makespan
    if makespan <= 0.0:
        return {
            "overlap_s": 0.0,
            "overlap_ratio": 0.0,
            "avg_parallelism": 0.0,
            "max_parallelism": 0,
        }
    deltas = []
    for e in timeline.events:
        if e.duration > 0:
            deltas.append((e.start, 1))
            deltas.append((e.end, -1))
    deltas.sort(key=lambda d: (d[0], d[1]))  # close before open on ties
    overlap = 0.0
    busy_integral = 0.0
    active = 0
    peak = 0
    prev = 0.0
    for t, d in deltas:
        if t > prev:
            width = t - prev
            busy_integral += active * width
            if active >= 2:
                overlap += width
            prev = t
        active += d
        if active > peak:
            peak = active
    return {
        "overlap_s": overlap,
        "overlap_ratio": overlap / makespan,
        "avg_parallelism": busy_integral / makespan,
        "max_parallelism": peak,
    }
