"""Critical-path extraction over discrete-event timelines.

The :class:`~repro.runtime.clock.Timeline` records completed events but
not the dependency edges that produced them, so the critical path is
defined structurally: the **maximum-weight chain** of pairwise
non-overlapping events (``a.end <= b.start`` orders ``a`` before ``b``).
Two properties follow directly and the property suite locks them down:

* every lane's own events form such a chain (a lane never overlaps
  itself), so the critical-path length is **>= the busiest lane's busy
  time** — exactly, not within a tolerance, because the dynamic program
  folds durations in the same order the lane accumulator does;
* chain events are disjoint sub-intervals of ``[0, makespan]``, so the
  length is **<= the makespan** (up to float-summation ULPs).

The gap between the two is the *coordination slack*: time the critical
chain spent waiting on lane availability, barriers, or ``not_before``
constraints rather than computing.

The extraction is O(n log n) (sort + prefix-max over ends) and fully
deterministic: ties break on ``(end, start, natural lane order, id)``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from ...runtime.clock import natural_lane_key


@dataclass(frozen=True)
class CriticalPath:
    """The maximum-weight chain of one timeline."""

    #: sum of the chain events' durations (seconds)
    length_s: float
    #: makespan minus length: wait time on the critical chain
    slack_s: float
    #: the chain, in time order (tuple of Timeline Events)
    events: tuple
    #: per-lane share of the chain's busy time
    lane_contrib_s: dict


def critical_path(timeline) -> CriticalPath:
    """Extract the maximum-weight chain of ``timeline``'s events."""
    events = sorted(
        timeline.events,
        key=lambda e: (e.end, e.start, natural_lane_key(e.lane), e.id),
    )
    if not events:
        return CriticalPath(0.0, 0.0, (), {})

    # DP over events in end order: value[i] is the best chain ending at
    # events[i]; the predecessor may be any already-processed event whose
    # end is <= events[i].start (exact equality included: contiguous
    # dependency chains meet end-to-start in the discrete-event model).
    ends: list[float] = []
    value: list[float] = []
    parent: list[int] = []
    # best_prefix[i] = (chain value, position) maximal among events[:i+1];
    # on equal values the earlier position wins, keeping ties stable.
    best_prefix: list[tuple[float, int]] = []
    for pos, e in enumerate(events):
        j = bisect_right(ends, e.start)
        if j > 0:
            pv, pidx = best_prefix[j - 1]
            value.append(pv + e.duration)
            parent.append(pidx)
        else:
            value.append(e.duration)
            parent.append(-1)
        ends.append(e.end)
        if best_prefix and best_prefix[-1][0] >= value[pos]:
            best_prefix.append(best_prefix[-1])
        else:
            best_prefix.append((value[pos], pos))

    length, pos = best_prefix[-1]
    chain = []
    while pos >= 0:
        chain.append(events[pos])
        pos = parent[pos]
    chain.reverse()
    contrib: dict[str, float] = {}
    for e in chain:
        contrib[e.lane] = contrib.get(e.lane, 0.0) + e.duration
    contrib = {
        lane: contrib[lane]
        for lane in sorted(contrib, key=natural_lane_key)
    }
    return CriticalPath(
        length_s=length,
        slack_s=timeline.makespan - length,
        events=tuple(chain),
        lane_contrib_s=contrib,
    )
