"""Run-to-run regression diffing of RunReport documents.

``diff_reports(base, new)`` walks the workload sections both reports
share and compares the simulated quantities that matter for the paper's
scheduling claims: per-timeline makespan and critical-path length, and
the per-workload simulated time.  Verdicts are relative with an absolute
floor (sub-nanosecond timelines never trip the gate):

* ``ratio > threshold``       -> ``regression``
* ``ratio < 1 / threshold``   -> ``improvement``
* otherwise                   -> ``ok``

Workloads or timelines present on only one side report ``added`` /
``removed`` and do not fail the gate; any ``regression`` entry does.
"""

from __future__ import annotations

DIFF_SCHEMA = "repro.insight.diff/v1"

#: Quantities below this (seconds) are compared as equal — relative
#: ratios on denormal-scale timings are noise, not signal.
ABS_FLOOR_S = 1e-9

VERDICT_OK = "ok"
VERDICT_REGRESSION = "regression"
VERDICT_IMPROVEMENT = "improvement"


def _entry(base: float, new: float, threshold: float) -> dict:
    if base <= ABS_FLOOR_S and new <= ABS_FLOOR_S:
        ratio, verdict = 1.0, VERDICT_OK
    elif base <= ABS_FLOOR_S:
        ratio, verdict = float("inf"), VERDICT_REGRESSION
    else:
        ratio = new / base
        if ratio > threshold:
            verdict = VERDICT_REGRESSION
        elif ratio < 1.0 / threshold:
            verdict = VERDICT_IMPROVEMENT
        else:
            verdict = VERDICT_OK
    return {"base_s": base, "new_s": new, "ratio": ratio, "verdict": verdict}


def _diff_timeline(base: dict, new: dict, threshold: float) -> dict:
    return {
        "makespan": _entry(
            base["makespan_s"], new["makespan_s"], threshold
        ),
        "critical_path": _entry(
            base["critical_path"]["length_s"],
            new["critical_path"]["length_s"],
            threshold,
        ),
    }


def diff_reports(base: dict, new: dict, threshold: float = 2.0) -> dict:
    """Compare two RunReport documents; see the module docstring."""
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1, got {threshold}")
    base_w = base.get("workloads", {})
    new_w = new.get("workloads", {})
    workloads: dict[str, dict] = {}
    regressions: list[str] = []
    for name in sorted(set(base_w) | set(new_w)):
        if name not in new_w:
            workloads[name] = {"status": "removed"}
            continue
        if name not in base_w:
            workloads[name] = {"status": "added"}
            continue
        b, n = base_w[name], new_w[name]
        row: dict = {"status": "compared", "timelines": {}}
        if "sim_time_s" in b and "sim_time_s" in n:
            row["sim_time"] = _entry(
                b["sim_time_s"], n["sim_time_s"], threshold
            )
            if row["sim_time"]["verdict"] == VERDICT_REGRESSION:
                regressions.append(
                    f"{name}: sim_time {row['sim_time']['ratio']:.2f}x"
                )
        b_tl, n_tl = b.get("timelines", {}), n.get("timelines", {})
        for tl_name in sorted(set(b_tl) | set(n_tl)):
            if tl_name not in n_tl:
                row["timelines"][tl_name] = {"status": "removed"}
                continue
            if tl_name not in b_tl:
                row["timelines"][tl_name] = {"status": "added"}
                continue
            d = _diff_timeline(b_tl[tl_name], n_tl[tl_name], threshold)
            d["status"] = "compared"
            row["timelines"][tl_name] = d
            for metric in ("critical_path", "makespan"):
                if d[metric]["verdict"] == VERDICT_REGRESSION:
                    regressions.append(
                        f"{name}/{tl_name}: {metric} "
                        f"{d[metric]['ratio']:.2f}x"
                    )
        workloads[name] = row
    return {
        "schema": DIFF_SCHEMA,
        "threshold": threshold,
        "workloads": workloads,
        "regressions": regressions,
        "verdict": VERDICT_REGRESSION if regressions else VERDICT_OK,
    }


def render_diff(diff: dict) -> str:
    """Terminal summary of a diff document."""
    lines = [
        f"insight diff (threshold {diff['threshold']:g}x): "
        f"{diff['verdict']}"
    ]
    for name, row in diff["workloads"].items():
        if row.get("status") != "compared":
            lines.append(f"  {name}: {row.get('status')}")
            continue
        st = row.get("sim_time")
        if st is not None:
            lines.append(
                f"  {name}: sim_time {st['base_s'] * 1e3:.3f} -> "
                f"{st['new_s'] * 1e3:.3f} ms "
                f"({st['ratio']:.2f}x, {st['verdict']})"
            )
        for tl_name, d in row["timelines"].items():
            if d.get("status") != "compared":
                lines.append(f"    {tl_name}: {d.get('status')}")
                continue
            cp = d["critical_path"]
            lines.append(
                f"    {tl_name}: critical-path {cp['ratio']:.2f}x "
                f"({cp['verdict']}), makespan "
                f"{d['makespan']['ratio']:.2f}x "
                f"({d['makespan']['verdict']})"
            )
    for r in diff["regressions"]:
        lines.append(f"  REGRESSION {r}")
    return "\n".join(lines)
