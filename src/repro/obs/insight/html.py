"""Self-contained HTML dashboard for a RunReport.

One file, no external assets (inline CSS only, no JavaScript, no
timestamps), rendered purely from the report dictionary with fixed
number formatting — so the bytes are deterministic: the same report
always produces the same dashboard, and CI can archive or diff them.
"""

from __future__ import annotations

from html import escape

from .attribution import BUCKETS

_CSS = """
body { font: 14px/1.45 -apple-system, 'Segoe UI', sans-serif;
       margin: 2em auto; max-width: 72em; color: #1a1a2e; }
h1 { font-size: 1.5em; } h2 { font-size: 1.2em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #c8c8d4; padding: 0.25em 0.6em;
         text-align: right; }
th { background: #eef0f6; } td.l, th.l { text-align: left; }
.bar { display: inline-block; height: 0.8em; background: #4a6fa5;
       vertical-align: middle; }
.bar.idle { background: #d4d7e0; }
.meta { color: #555a6e; font-size: 0.92em; }
.verdict-ok { color: #2a7d4f; } .verdict-bad { color: #b03030; }
summary { cursor: pointer; color: #4a6fa5; margin: 0.4em 0; }
"""


def _ms(x: float) -> str:
    return f"{x * 1e3:.6f}"


def _pct(x: float) -> str:
    return f"{x * 100:.1f}%"


def _bar(fraction: float, width_px: int = 160) -> str:
    w = max(0, min(width_px, int(round(fraction * width_px))))
    return (
        f'<span class="bar" style="width:{w}px"></span>'
        f'<span class="bar idle" style="width:{width_px - w}px"></span>'
    )


def _lane_table(tl_doc: dict) -> list[str]:
    head = "".join(
        f"<th>{escape(b)} ms</th>" for b in BUCKETS
    )
    out = [
        "<table>",
        f'<tr><th class="l">lane</th><th>busy ms</th>'
        f"<th>utilization</th>{head}</tr>",
    ]
    for lane, row in tl_doc["lanes"].items():
        cells = "".join(
            f"<td>{_ms(row['buckets'][b])}</td>" for b in BUCKETS
        )
        out.append(
            f'<tr><td class="l">{escape(lane)}</td>'
            f"<td>{_ms(row['busy_s'])}</td>"
            f"<td>{_bar(row['utilization'])} "
            f"{_pct(row['utilization'])}</td>{cells}</tr>"
        )
    out.append("</table>")
    return out


def _path_table(cp: dict) -> list[str]:
    out = [
        "<details><summary>critical-path events "
        f"({cp['n_events']} on the chain)</summary>",
        "<table>",
        '<tr><th>#</th><th class="l">lane</th><th class="l">label</th>'
        "<th>start ms</th><th>duration ms</th></tr>",
    ]
    for k, e in enumerate(cp["events"]):
        out.append(
            f'<tr><td>{k}</td><td class="l">{escape(e["lane"])}</td>'
            f'<td class="l">{escape(e["label"])}</td>'
            f"<td>{_ms(e['start_s'])}</td><td>{_ms(e['dur_s'])}</td></tr>"
        )
    if cp.get("events_truncated"):
        out.append(
            f'<tr><td colspan="5" class="l">... '
            f"{cp['events_truncated']} more</td></tr>"
        )
    out.append("</table></details>")
    return out


def _spec_table(spec: dict) -> list[str]:
    iters = spec["iterations"]
    rows = (
        ("sub-loops attempted", spec["subloops_attempted"]),
        ("sub-loops clean", spec["subloops_clean"]),
        ("violations", spec["violations"]),
        ("relaunches", spec["relaunches"]),
        ("CPU handoffs", spec["cpu_handoffs"]),
        ("sub-loop shrinks", spec["shrinks"]),
        ("iterations committed", iters["committed"]),
        ("iterations squashed", iters["squashed"]),
        ("iterations on CPU", iters["cpu"]),
    )
    out = ["<table>", '<tr><th class="l">speculation</th><th>n</th></tr>']
    for label, v in rows:
        out.append(
            f'<tr><td class="l">{escape(label)}</td><td>{v:g}</td></tr>'
        )
    out.append("</table>")
    return out


def _steal_table(steal: dict) -> list[str]:
    rows = (
        ("dispatches", f"{steal['dispatches']:g}"),
        ("batches", f"{steal['batches']:g}"),
        ("tasks", f"{steal['tasks']:g}"),
        ("steals", f"{steal['steals']:g}"),
        ("steal ratio", _pct(steal["steal_ratio"])),
        ("stolen busy ms", _ms(steal["stolen_busy_s"])),
    )
    out = ["<table>", '<tr><th class="l">stealing</th><th>value</th></tr>']
    for label, v in rows:
        out.append(
            f'<tr><td class="l">{escape(label)}</td><td>{v}</td></tr>'
        )
    out.append("</table>")
    return out


def render_html(report: dict) -> str:
    """Render a RunReport document as a single-file dashboard."""
    meta = report.get("meta", {})
    totals = report.get("totals", {})
    out = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>Japonica RunReport</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>Japonica RunReport</h1>",
        f'<p class="meta">schema {escape(str(report.get("schema", "")))}'
        + "".join(
            f" &middot; {escape(str(k))}={escape(str(meta[k]))}"
            for k in sorted(meta)
        )
        + "</p>",
        f'<p class="meta">{totals.get("workloads", 0)} workloads &middot; '
        f"total makespan {_ms(totals.get('makespan_s', 0.0))} ms &middot; "
        f"total critical path "
        f"{_ms(totals.get('critical_path_s', 0.0))} ms</p>",
    ]
    for name, section in report.get("workloads", {}).items():
        out.append(f"<h2>{escape(name)}</h2>")
        t = section["totals"]
        sim = section.get("sim_time_s")
        out.append(
            '<p class="meta">'
            + (f"sim time {_ms(sim)} ms &middot; " if sim is not None else "")
            + f"makespan {_ms(t['makespan_s'])} ms &middot; "
            f"critical path {_ms(t['critical_path_s'])} ms &middot; "
            f"slack {_ms(t['slack_s'])} ms</p>"
        )
        for tl_name, tl_doc in section["timelines"].items():
            cp = tl_doc["critical_path"]
            ov = tl_doc["overlap"]
            out.append(
                f"<h3>{escape(tl_name)}</h3>"
                f'<p class="meta">makespan {_ms(tl_doc["makespan_s"])} ms '
                f"&middot; critical path {_ms(cp['length_s'])} ms "
                f"&middot; slack {_ms(cp['slack_s'])} ms "
                f"&middot; overlap {_pct(ov['overlap_ratio'])} "
                f"&middot; avg parallelism "
                f"{ov['avg_parallelism']:.2f}</p>"
            )
            out.extend(_lane_table(tl_doc))
            out.extend(_path_table(cp))
        spec = section.get("speculation")
        if spec and spec["subloops_attempted"]:
            out.extend(_spec_table(spec))
        steal = section.get("stealing")
        if steal and steal["tasks"]:
            out.extend(_steal_table(steal))
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def write_html(path: str, report: dict) -> None:
    with open(path, "w") as fh:
        fh.write(render_html(report))
