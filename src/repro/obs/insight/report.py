"""RunReport construction: structured, schema-versioned trace insight.

``analyze_run`` consumes what the observability plane already records —
``Timeline`` objects (one per traced loop execution, all ``gpu{k}`` /
``dma{k}`` / ``cpu`` lanes), the ``MetricsRegistry`` and the ``Tracer``
spans — and produces one *section*: per-timeline critical paths, lane
bucket attribution, overlap ratios, the speculation waterfall and the
steal-efficiency summary.  ``run_report`` wraps named sections (one per
workload) into the versioned document the CLI writes and the diff gate
consumes.

Every quantity is *simulated* (seconds on the discrete-event clock,
deterministic counters), never wall-clock, so a report is byte-identical
across repeated runs with the same seed — the property CI leans on to
diff against a committed baseline.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from .attribution import BUCKETS, lane_attribution, overlap_stats
from .critical_path import critical_path

#: Schema tag of the RunReport document.
INSIGHT_SCHEMA = "repro.insight/v1"

#: Critical-path events listed per timeline (the rest is summarized).
MAX_PATH_EVENTS = 48


def analyze_timeline(timeline) -> dict:
    """One timeline -> critical path + lane attribution + overlap."""
    cp = critical_path(timeline)
    lanes = lane_attribution(timeline)
    makespan = timeline.makespan
    lanes_doc = {}
    for lane, buckets in lanes.items():
        busy = timeline.lane_busy(lane)
        lanes_doc[lane] = {
            "busy_s": busy,
            "utilization": busy / makespan if makespan > 0 else 0.0,
            "buckets": {b: buckets[b] for b in BUCKETS},
        }
    return {
        "makespan_s": makespan,
        "events": len(timeline.events),
        "critical_path": {
            "length_s": cp.length_s,
            "slack_s": cp.slack_s,
            "n_events": len(cp.events),
            "lane_contrib_s": cp.lane_contrib_s,
            "events": [
                {
                    "id": e.id,
                    "lane": e.lane,
                    "label": e.label,
                    "start_s": e.start,
                    "dur_s": e.duration,
                }
                for e in cp.events[:MAX_PATH_EVENTS]
            ],
            "events_truncated": max(0, len(cp.events) - MAX_PATH_EVENTS),
        },
        "lanes": lanes_doc,
        "overlap": overlap_stats(timeline),
    }


def _counters(metrics) -> dict:
    if metrics is None:
        return {}
    return metrics.to_dict().get("counters", {})


def speculation_waterfall(metrics, timelines: Sequence) -> dict:
    """Sub-loops attempted -> committed -> aborted -> shrunk.

    Counter-backed where the TLS engine records them; shrink events only
    exist as timeline labels, so they are counted from the traces.
    """
    c = _counters(metrics)
    shrinks = sum(
        1
        for _, tl in timelines
        for e in tl.events
        if e.label.startswith("shrink@")
    )
    attempted = c.get("tls.subloops", 0.0)
    violations = c.get("tls.violations", 0.0)
    return {
        "subloops_attempted": attempted,
        "subloops_clean": attempted - violations,
        "violations": violations,
        "relaunches": c.get("tls.relaunches", 0.0),
        "cpu_handoffs": c.get("tls.cpu_handoffs", 0.0),
        "shrinks": shrinks,
        "iterations": {
            "committed": c.get("tls.committed_iterations", 0.0),
            "squashed": c.get("tls.squashed_iterations", 0.0),
            "cpu": c.get("tls.cpu_iterations", 0.0),
        },
    }


def steal_summary(metrics, timelines: Sequence) -> dict:
    """Steal-efficiency roll-up of the stealing scheduler's dispatches."""
    c = _counters(metrics)
    tasks = c.get("scheduler.stealing.tasks", 0.0)
    steals = c.get("scheduler.stealing.steals", 0.0)
    stolen_busy = sum(
        e.duration
        for _, tl in timelines
        for e in tl.events
        if e.label.endswith("*")
    )
    return {
        "dispatches": c.get("scheduler.stealing.dispatches", 0.0),
        "batches": c.get("scheduler.stealing.batches", 0.0),
        "tasks": tasks,
        "steals": steals,
        "steal_ratio": steals / tasks if tasks else 0.0,
        "stolen_busy_s": stolen_busy,
        "steal_time_s": c.get("scheduler.stealing.steal_time_s", 0.0),
    }


#: Host-plane observability excluded from the report: the RunReport
#: describes the *simulated* run, and which engine tier executed a
#: kernel (or how long its host compile took in wall seconds) is not
#: simulated behavior — equal simulations must render equal reports
#: whether the native backend is on or off.  The ``serve.*`` plane
#: (request tracing, gate verdicts, worker bookkeeping) is host-side
#: wall-clock machinery too: a job served with ``--trace`` must render
#: the same insight report as one served without it.
_HOST_PLANE_METRIC_PREFIXES = ("kernel.", "jit.", "serve.")
_HOST_PLANE_SPAN_CATEGORIES = frozenset(
    {"kernel", "jit", "serve", "serve.worker", "serve.http"}
)


def phase_summary(tracer) -> dict:
    """Pipeline span roll-up by category (counts + simulated seconds)."""
    if tracer is None:
        return {}
    out: dict[str, dict] = {}
    for sp in tracer.finished_spans():
        if sp.category in _HOST_PLANE_SPAN_CATEGORIES:
            continue
        row = out.setdefault(sp.category, {"count": 0, "sim_s": 0.0})
        row["count"] += 1
        if sp.sim_start_s is not None and sp.sim_end_s is not None:
            row["sim_s"] += sp.sim_end_s - sp.sim_start_s
    return {cat: out[cat] for cat in sorted(out)}


def analyze_run(
    timelines: Sequence,
    metrics=None,
    tracer=None,
    sim_time_s: Optional[float] = None,
) -> dict:
    """Build one report section from a traced run.

    ``timelines`` is a sequence of ``(name, Timeline)`` pairs (the same
    shape the Chrome exporter takes); ``metrics``/``tracer`` are the
    recording instruments, or None for timeline-only analysis.
    """
    tl_docs = {name: analyze_timeline(tl) for name, tl in timelines}
    makespan = sum(d["makespan_s"] for d in tl_docs.values())
    cp_len = sum(d["critical_path"]["length_s"] for d in tl_docs.values())
    section = {
        "timelines": tl_docs,
        "totals": {
            "makespan_s": makespan,
            "critical_path_s": cp_len,
            "slack_s": makespan - cp_len,
        },
        "speculation": speculation_waterfall(metrics, timelines),
        "stealing": steal_summary(metrics, timelines),
        "phases": phase_summary(tracer),
    }
    if sim_time_s is not None:
        section["sim_time_s"] = sim_time_s
    if metrics is not None:
        doc = metrics.to_dict()
        section["metrics"] = {
            kind: {
                name: v
                for name, v in rows.items()
                if not name.startswith(_HOST_PLANE_METRIC_PREFIXES)
            }
            for kind, rows in doc.items()
        }
    return section


def run_report(sections: dict, meta: Optional[dict] = None) -> dict:
    """Wrap named sections into the versioned RunReport document."""
    totals = {
        "workloads": len(sections),
        "makespan_s": sum(
            s["totals"]["makespan_s"] for s in sections.values()
        ),
        "critical_path_s": sum(
            s["totals"]["critical_path_s"] for s in sections.values()
        ),
    }
    return {
        "schema": INSIGHT_SCHEMA,
        "meta": dict(meta or {}),
        "workloads": sections,
        "totals": totals,
    }


def write_report_json(path: str, report: dict) -> None:
    """Deterministic dump: sorted keys, fixed indent, trailing newline."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
