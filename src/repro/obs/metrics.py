"""Metrics registry: counters, gauges, histograms.

Every instrumented component (the schedulers, the GPU and CPU
simulators, the TLS engine, the fault plane bridge) feeds a shared
:class:`MetricsRegistry` owned by the :class:`Instrumentation` bundle on
the execution context.  Instruments measure *simulated* quantities —
bytes, launches, steals, violations, simulated seconds — so a metrics
dump is deterministic for a given program and seed.

When observability is off the registry is :data:`NULL_METRICS`, whose
instruments are shared singletons with no-op mutators: the hot paths pay
one attribute lookup and one call, and no state is retained.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Counter:
    """Monotonically increasing value (counts, bytes, seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-written value (boundaries, thresholds, pool sizes)."""

    __slots__ = ("name", "value", "written")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.written = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self.written = True


class Histogram:
    """Streaming summary: count / sum / min / max of observations."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled path."""

    __slots__ = ()
    name = ""
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments, created on first use."""

    enabled = True

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
        return inst

    def to_dict(self) -> dict:
        """Plain-JSON view, keys sorted for deterministic dumps."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value
                for name, g in sorted(self._gauges.items())
                if g.written
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min if h.count else 0.0,
                    "max": h.max if h.count else 0.0,
                    "mean": h.mean,
                }
                for name, h in sorted(self._histograms.items())
            },
        }


class NullMetricsRegistry:
    """Disabled metrics: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def to_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetricsRegistry()


def record_resilience(metrics, report) -> None:
    """Bridge a :class:`~repro.faults.resilience.ResilienceReport` into
    the metrics registry (fault-plane counters per site)."""
    if report is None:
        return
    metrics.counter("faults.injected").inc(report.faults_seen)
    metrics.counter("faults.recoveries").inc(report.recoveries)
    metrics.counter("faults.degradations").inc(report.degradations)
    metrics.counter("faults.penalty_s").inc(report.penalty_s)
    for site, n in sorted(report.by_site().items()):
        metrics.counter(f"faults.injected.{site}").inc(n)


@dataclass
class Instrumentation:
    """The observability bundle handed to every component.

    ``NULL_INSTRUMENTATION`` (the default everywhere) carries the no-op
    tracer and registry, so instrumented code needs no ``if`` guards and
    a disabled run is byte-identical to an uninstrumented one.
    """

    tracer: object
    metrics: object
    enabled: bool = True

    @classmethod
    def recording(cls) -> "Instrumentation":
        from .tracer import Tracer

        return cls(tracer=Tracer(), metrics=MetricsRegistry(), enabled=True)

    @classmethod
    def disabled(cls) -> "Instrumentation":
        return NULL_INSTRUMENTATION


from .tracer import NULL_TRACER  # noqa: E402  (cycle-free tail import)

NULL_INSTRUMENTATION = Instrumentation(
    tracer=NULL_TRACER, metrics=NULL_METRICS, enabled=False
)
