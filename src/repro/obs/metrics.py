"""Metrics registry: counters, gauges, histograms.

Every instrumented component (the schedulers, the GPU and CPU
simulators, the TLS engine, the fault plane bridge) feeds a shared
:class:`MetricsRegistry` owned by the :class:`Instrumentation` bundle on
the execution context.  Instruments measure *simulated* quantities —
bytes, launches, steals, violations, simulated seconds — so a metrics
dump is deterministic for a given program and seed.

When observability is off the registry is :data:`NULL_METRICS`, whose
instruments are shared singletons with no-op mutators: the hot paths pay
one attribute lookup and one call, and no state is retained.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field

#: Log-spaced histogram bucket upper bounds ("le" convention).  Powers of
#: two are exact binary floats, so bucket assignment is identical on every
#: platform — fully deterministic, no sampling.  The range covers roughly
#: 1e-12 .. 1e12; smaller values land in the first bucket, larger ones in
#: the overflow bucket past the last bound.
BUCKET_BOUNDS: tuple = tuple(2.0 ** k for k in range(-40, 41))


class Counter:
    """Monotonically increasing value (counts, bytes, seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-written value (boundaries, thresholds, pool sizes)."""

    __slots__ = ("name", "value", "written")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.written = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self.written = True


class Histogram:
    """Streaming summary plus fixed log-spaced bucket counts.

    Every observation increments exactly one bucket (no reservoir, no
    sampling), so percentile estimates are deterministic and two runs of
    the same program produce identical dumps.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        #: per-bucket observation counts; buckets[i] holds values
        #: <= BUCKET_BOUNDS[i], the trailing slot is the overflow bucket
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[bisect_left(BUCKET_BOUNDS, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Percentile estimate from the bucket counts.

        Returns the upper bound of the bucket holding the ``q``-th
        observation, clamped to the observed ``[min, max]`` so the
        estimate never leaves the data range.  Deterministic: repeat
        runs yield bit-identical values.
        """
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cum = 0
        for idx, n in enumerate(self.buckets):
            cum += n
            if cum >= rank:
                bound = (
                    BUCKET_BOUNDS[idx]
                    if idx < len(BUCKET_BOUNDS)
                    else self.max
                )
                return min(max(bound, self.min), self.max)
        return self.max

    def bucket_pairs(self) -> list:
        """Non-empty buckets as ``[le, count]`` pairs (ascending ``le``;
        the overflow bucket exports ``le`` as the string ``"+Inf"``)."""
        out = []
        for idx, n in enumerate(self.buckets):
            if not n:
                continue
            le = BUCKET_BOUNDS[idx] if idx < len(BUCKET_BOUNDS) else "+Inf"
            out.append([le, n])
        return out


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled path."""

    __slots__ = ()
    name = ""
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def bucket_pairs(self) -> list:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments, created on first use."""

    enabled = True

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
        return inst

    def to_dict(self) -> dict:
        """Plain-JSON view, keys sorted for deterministic dumps."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value
                for name, g in sorted(self._gauges.items())
                if g.written
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min if h.count else 0.0,
                    "max": h.max if h.count else 0.0,
                    "mean": h.mean,
                    "p50": h.quantile(0.50),
                    "p95": h.quantile(0.95),
                    "p99": h.quantile(0.99),
                    # [le, count] pairs: a list survives sort_keys dumps
                    # with the ascending bound order intact
                    "buckets": h.bucket_pairs(),
                }
                for name, h in sorted(self._histograms.items())
            },
        }


class NullMetricsRegistry:
    """Disabled metrics: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def to_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetricsRegistry()


def record_resilience(metrics, report) -> None:
    """Bridge a :class:`~repro.faults.resilience.ResilienceReport` into
    the metrics registry (fault-plane counters per site)."""
    if report is None:
        return
    metrics.counter("faults.injected").inc(report.faults_seen)
    metrics.counter("faults.recoveries").inc(report.recoveries)
    metrics.counter("faults.degradations").inc(report.degradations)
    metrics.counter("faults.penalty_s").inc(report.penalty_s)
    for site, n in sorted(report.by_site().items()):
        metrics.counter(f"faults.injected.{site}").inc(n)


@dataclass
class Instrumentation:
    """The observability bundle handed to every component.

    ``NULL_INSTRUMENTATION`` (the default everywhere) carries the no-op
    tracer and registry, so instrumented code needs no ``if`` guards and
    a disabled run is byte-identical to an uninstrumented one.
    """

    tracer: object
    metrics: object
    enabled: bool = True

    @classmethod
    def recording(cls) -> "Instrumentation":
        from .tracer import Tracer

        return cls(tracer=Tracer(), metrics=MetricsRegistry(), enabled=True)

    @classmethod
    def disabled(cls) -> "Instrumentation":
        return NULL_INSTRUMENTATION


from .tracer import NULL_TRACER  # noqa: E402  (cycle-free tail import)

NULL_INSTRUMENTATION = Instrumentation(
    tracer=NULL_TRACER, metrics=NULL_METRICS, enabled=False
)
