"""Span-based pipeline tracing.

The tracer covers the whole pipeline — parse, analyze, translate,
profile, schedule, execute — as nested spans.  Two clocks appear in a
trace and neither is the wall clock, so output is fully deterministic:

* a **logical clock**: every span begin/end advances a monotone tick
  counter, which orders the compile-time phases (parse/analyze/translate)
  that exist outside the simulated machine;
* the **simulated clock**: spans wrapping execution work additionally
  carry ``sim_start_s``/``sim_end_s`` read off the discrete-event
  :class:`~repro.runtime.clock.Timeline`.

Disabled tracing goes through :class:`NullTracer`, whose ``span`` call
returns a shared reusable no-op context manager: no allocation, no
state, no effect on results or simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Pipeline phase names (span categories).
PHASE_PARSE = "parse"
PHASE_ANALYZE = "analyze"
PHASE_TRANSLATE = "translate"
PHASE_PROFILE = "profile"
PHASE_SCHEDULE = "schedule"
PHASE_EXECUTE = "execute"


@dataclass
class Span:
    """One traced pipeline phase."""

    id: int
    name: str
    category: str
    #: logical-clock interval (tick counter; orders compile-time work)
    tick_start: int
    tick_end: int = -1
    #: simulated-clock interval, when the span wraps simulated work
    sim_start_s: Optional[float] = None
    sim_end_s: Optional[float] = None
    parent_id: Optional[int] = None
    attrs: dict = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.tick_end < 0


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self.tracer = tracer
        self.span = span

    def annotate(self, **attrs) -> None:
        """Attach attributes to the span while it is open."""
        self.span.attrs.update(attrs)

    def set_sim(self, start_s: float, end_s: Optional[float] = None) -> None:
        """Pin the span to the simulated clock."""
        self.span.sim_start_s = start_s
        if end_s is not None:
            self.span.sim_end_s = end_s

    def close(self) -> None:
        """End the span (for call sites that can't use ``with``)."""
        if self.span.open:
            self.tracer._close(self.span)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _NullSpanHandle:
    """Shared no-op handle: the zero-overhead disabled path."""

    __slots__ = ()

    def annotate(self, **attrs) -> None:
        pass

    def set_sim(self, start_s, end_s=None) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_HANDLE = _NullSpanHandle()


class Tracer:
    """Recording tracer: an append-only list of spans plus a tick clock."""

    enabled = True

    def __init__(self):
        self.spans: list[Span] = []
        self._tick = 0
        self._stack: list[int] = []

    def span(self, name: str, category: str = "", **attrs) -> _SpanHandle:
        """Open a span; use as a context manager."""
        sp = Span(
            id=len(self.spans),
            name=name,
            category=category or name,
            tick_start=self._next_tick(),
            parent_id=self._stack[-1] if self._stack else None,
            attrs=dict(attrs),
        )
        self.spans.append(sp)
        self._stack.append(sp.id)
        return _SpanHandle(self, sp)

    def _close(self, span: Span) -> None:
        span.tick_end = self._next_tick()
        # tolerate out-of-order closes (exceptions unwinding the stack)
        if self._stack and self._stack[-1] == span.id:
            self._stack.pop()
        elif span.id in self._stack:
            self._stack.remove(span.id)

    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def finished_spans(self) -> list[Span]:
        return [s for s in self.spans if not s.open]


class NullTracer:
    """Disabled tracing: every call is a no-op on a shared handle."""

    enabled = False
    spans: tuple = ()

    def span(self, name: str, category: str = "", **attrs) -> _NullSpanHandle:
        return _NULL_HANDLE

    def finished_spans(self) -> tuple:
        return ()


NULL_TRACER = NullTracer()
