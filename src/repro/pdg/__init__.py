"""Program dependence graph over loop tasks."""

from .builder import build_pdg
from .export import to_dot
from .graph import PdgNode, ProgramDependenceGraph
from .toposort import JobPool

__all__ = ["JobPool", "PdgNode", "ProgramDependenceGraph", "build_pdg", "to_dot"]
