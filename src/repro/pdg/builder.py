"""Build the PDG from the static analyses of a loop sequence."""

from __future__ import annotations

from typing import Hashable, Sequence

from ..analysis.classify import LoopAnalysis
from .graph import ProgramDependenceGraph


def build_pdg(
    analyses: Sequence[tuple[Hashable, LoopAnalysis]],
) -> ProgramDependenceGraph:
    """PDG over loops given in program order.

    Edge kinds between an earlier loop A and a later loop B:

    * ``flow``   — A writes an array B reads,
    * ``output`` — A and B write a common array,
    * ``anti``   — A reads an array B writes.

    All three kinds order the tasks (the scheduler only needs a safe
    partial order, and arrays are shared state).
    """
    pdg = ProgramDependenceGraph()
    infos: list[tuple[Hashable, set[str], set[str]]] = []
    for task_id, analysis in analyses:
        reads = analysis.arrays_read()
        writes = analysis.arrays_written()
        pdg.add_task(task_id, reads, writes, label=str(task_id))
        infos.append((task_id, reads, writes))

    for i, (a_id, a_reads, a_writes) in enumerate(infos):
        for b_id, b_reads, b_writes in infos[i + 1 :]:
            kinds = []
            if a_writes & b_reads:
                kinds.append("flow")
            if a_writes & b_writes:
                kinds.append("output")
            if a_reads & b_writes:
                kinds.append("anti")
            if kinds:
                pdg.add_edge(a_id, b_id, "+".join(kinds))
    pdg.check_acyclic()
    return pdg
