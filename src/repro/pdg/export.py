"""PDG export: Graphviz DOT text for inspection and documentation."""

from __future__ import annotations

from .graph import ProgramDependenceGraph

_KIND_STYLE = {
    "flow": "solid",
    "output": "dashed",
    "anti": "dotted",
}


def to_dot(pdg: ProgramDependenceGraph, name: str = "pdg") -> str:
    """Render the PDG as Graphviz DOT.

    Flow edges are solid, output dashed, anti dotted; node labels list
    the arrays each task reads and writes.
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=box];"]
    for task_id in pdg.task_ids:
        node = pdg.node(task_id)
        reads = ",".join(sorted(node.reads)) or "-"
        writes = ",".join(sorted(node.writes)) or "-"
        label = f"{task_id}\\nR: {reads}\\nW: {writes}"
        lines.append(f'  "{task_id}" [label="{label}"];')
    for src, dst in pdg.g.edges:
        kinds = pdg.edge_kinds(src, dst).split("+")
        style = _KIND_STYLE.get(kinds[0], "solid")
        label = "+".join(kinds)
        lines.append(
            f'  "{src}" -> "{dst}" [style={style}, label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines)
