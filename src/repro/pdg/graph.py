"""Program dependence graph over loop tasks.

Nodes are annotated loops (tasks); edges are inter-loop data dependencies
derived from live-in/live-out sets: a loop that writes an array feeds
every later loop that reads or rewrites it.  The task-stealing scheduler
topologically sorts this graph into batches of data-independent tasks
(Algorithm 1, line 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional

import networkx as nx

from ..errors import SchedulerError


@dataclass
class PdgNode:
    """One loop task in the PDG."""

    id: Hashable
    reads: frozenset[str]
    writes: frozenset[str]
    label: str = ""


class ProgramDependenceGraph:
    """Thin wrapper over a networkx DiGraph with dependence semantics."""

    def __init__(self) -> None:
        self.g = nx.DiGraph()

    def add_task(
        self,
        task_id: Hashable,
        reads: Iterable[str],
        writes: Iterable[str],
        label: str = "",
    ) -> PdgNode:
        if task_id in self.g:
            raise SchedulerError(f"duplicate PDG task {task_id!r}")
        node = PdgNode(task_id, frozenset(reads), frozenset(writes), label)
        self.g.add_node(task_id, data=node)
        return node

    def node(self, task_id: Hashable) -> PdgNode:
        return self.g.nodes[task_id]["data"]

    def add_edge(self, src: Hashable, dst: Hashable, kind: str) -> None:
        self.g.add_edge(src, dst, kind=kind)

    @property
    def task_ids(self) -> list[Hashable]:
        return list(self.g.nodes)

    def dependencies_of(self, task_id: Hashable) -> set[Hashable]:
        return set(self.g.predecessors(task_id))

    def dependents_of(self, task_id: Hashable) -> set[Hashable]:
        return set(self.g.successors(task_id))

    def edge_kinds(self, src: Hashable, dst: Hashable) -> str:
        return self.g.edges[src, dst]["kind"]

    def check_acyclic(self) -> None:
        if not nx.is_directed_acyclic_graph(self.g):
            cycle = nx.find_cycle(self.g)
            raise SchedulerError(f"PDG has a cycle: {cycle}")

    def batches(self) -> list[list[Hashable]]:
        """Kahn-level batches: each batch is a set of data-independent
        tasks whose dependencies all lie in earlier batches."""
        self.check_acyclic()
        return [sorted(layer, key=str) for layer in nx.topological_generations(self.g)]
