"""Topological batch extraction for the task-stealing scheduler.

Algorithm 1 line 3: ``taskSet <- getTasks(jobPool)`` — the scheduler
repeatedly takes a maximal batch of data-independent tasks (all of whose
dependencies are already done) from the job pool.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..errors import SchedulerError
from .graph import ProgramDependenceGraph


class JobPool:
    """Mutable pool view over a PDG supporting incremental batch pulls."""

    def __init__(self, pdg: ProgramDependenceGraph):
        self.pdg = pdg
        self._remaining: set[Hashable] = set(pdg.task_ids)
        self._done: set[Hashable] = set()

    def __bool__(self) -> bool:
        return bool(self._remaining)

    @property
    def remaining(self) -> set[Hashable]:
        return set(self._remaining)

    def get_tasks(self) -> list[Hashable]:
        """Next batch: remaining tasks whose dependencies are all done."""
        batch = [
            t
            for t in self._remaining
            if self.pdg.dependencies_of(t) <= self._done
        ]
        if not batch and self._remaining:
            raise SchedulerError(
                "job pool deadlock: no runnable tasks "
                f"(remaining: {sorted(map(str, self._remaining))})"
            )
        return sorted(batch, key=str)

    def mark_done(self, tasks: Iterable[Hashable]) -> None:
        for t in tasks:
            if t not in self._remaining:
                raise SchedulerError(f"task {t!r} not pending")
            self._remaining.discard(t)
            self._done.add(t)
