"""Dynamic profiler: dependency density, warp analysis, coalescing."""

from .coalesce import estimate_coalescing
from .density import analyze_lanes
from .interwarp import next_warps_clear, td_free_prefix, warps_with_td
from .intrawarp import classify_same_warp, warp_span
from .report import DEFAULT_DD_THRESHOLD, DepPair, DependencyProfile
from .strides import (
    CompressedTrace,
    StridePattern,
    any_intersection,
    compress_addresses,
    compress_lane,
    compression_ratio,
    patterns_intersect,
)
from .trace import INSTRUMENTATION_FACTOR, ProfilingRun, profile_loop

__all__ = [
    "DEFAULT_DD_THRESHOLD",
    "DepPair",
    "DependencyProfile",
    "INSTRUMENTATION_FACTOR",
    "ProfilingRun",
    "CompressedTrace",
    "StridePattern",
    "analyze_lanes",
    "any_intersection",
    "compress_addresses",
    "compress_lane",
    "compression_ratio",
    "patterns_intersect",
    "classify_same_warp",
    "estimate_coalescing",
    "next_warps_clear",
    "profile_loop",
    "td_free_prefix",
    "warp_span",
    "warps_with_td",
]
