"""Dynamic memory-coalescing estimation from profiled address streams.

For each memory-op slot (the lane-local op timestamp, which under
lock-step SIMD is the warp-wide issue slot), adjacent lanes of a warp
access addresses whose deltas determine how many memory transactions the
warp needs: unit stride (or broadcast) coalesces into one transaction;
scattered accesses serialize.  The estimate scales the GPU's effective
memory bandwidth in the cost model.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping, Sequence

import numpy as np

from ..ir.columnar import ColumnarLanes
from ..ir.interpreter import LaneSpecState


def estimate_coalescing(
    lanes: Mapping[int, LaneSpecState],
    iteration_order: Sequence[int],
    warp_size: int = 32,
    floor: float = 0.1,
) -> float:
    """Fraction in (0, 1]: 1.0 = perfectly coalesced accesses.

    Computed as the fraction of adjacent-lane address pairs (same warp,
    same op slot, same array) whose flat-address delta is 0 (broadcast)
    or ±1 (unit stride).  Kernels with no comparable pairs default to 1.0.
    """
    if isinstance(lanes, ColumnarLanes) and lanes.matches_order(
        iteration_order
    ):
        return _estimate_columnar(lanes, warp_size, floor)
    return estimate_coalescing_scalar(
        lanes, iteration_order, warp_size, floor
    )


def _estimate_columnar(
    col: ColumnarLanes, warp_size: int, floor: float
) -> float:
    """Vectorized twin: group (warp, op, array) slots by sorting, then
    count unit-position neighbours with |flat delta| <= 1."""
    pos = np.concatenate([col.r_pos, col.w_pos])
    op = np.concatenate([col.r_op, col.w_op])
    arr = np.concatenate([col.r_arr, col.w_arr])
    flat = np.concatenate([col.r_flat, col.w_flat])
    if len(pos) < 2:
        return 1.0
    warp = pos // warp_size
    s = np.lexsort((pos, arr, op, warp))
    pos, op, arr, flat, warp = pos[s], op[s], arr[s], flat[s], warp[s]
    same_slot = (
        (warp[1:] == warp[:-1]) & (op[1:] == op[:-1]) & (arr[1:] == arr[:-1])
    )
    adjacent = same_slot & (pos[1:] == pos[:-1] + 1)
    total = int(adjacent.sum())
    if total == 0:
        return 1.0
    good = int((adjacent & (np.abs(flat[1:] - flat[:-1]) <= 1)).sum())
    return max(floor, good / total)


def estimate_coalescing_scalar(
    lanes: Mapping[int, LaneSpecState],
    iteration_order: Sequence[int],
    warp_size: int = 32,
    floor: float = 0.1,
) -> float:
    """Reference (per-record) implementation (the cross-check oracle)."""
    # (warp, op, array) -> {lane_position: flat}
    slots: dict[tuple[int, int, str], dict[int, int]] = defaultdict(dict)
    for pos, it in enumerate(iteration_order):
        state = lanes.get(it)
        if state is None:
            continue
        warp = pos // warp_size
        for rec in state.reads:
            slots[(warp, rec.op, rec.array)][pos] = rec.flat
        for rec in state.writes:
            slots[(warp, rec.op, rec.array)][pos] = rec.flat

    good = 0
    total = 0
    for mapping in slots.values():
        if len(mapping) < 2:
            continue
        positions = sorted(mapping)
        for a, b in zip(positions, positions[1:]):
            if b != a + 1:
                continue  # only adjacent lanes are coalescing-relevant
            total += 1
            delta = abs(mapping[b] - mapping[a])
            if delta <= 1:
                good += 1
    if total == 0:
        return 1.0
    return max(floor, good / total)
