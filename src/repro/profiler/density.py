"""Dependency-density analysis over speculative access logs.

Input: the per-lane SE logs of a profiling launch (upward-exposed global
reads + buffered writes, each with the lane-local op timestamp).  Output:
true/false dependence pairs, the quantitative density metrics, and the
per-warp TD map the mode-B recovery logic consults.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from typing import Mapping, Sequence

import numpy as np

from ..ir.columnar import (
    ColumnarLanes,
    cell_keys,
    dedup_first,
    first_seen_ranks,
)
from ..ir.interpreter import LaneSpecState
from .intrawarp import classify_same_warp
from .report import DepPair, DependencyProfile

#: Cap on retained diagnostic pairs (analysis itself sees everything).
SAMPLE_CAP = 4096


def analyze_lanes(
    lanes: Mapping[int, LaneSpecState],
    iteration_order: Sequence[int],
    warp_size: int = 32,
) -> DependencyProfile:
    """Compute the dependency profile from per-iteration SE logs.

    ``iteration_order`` is the sequential order of the iterations (the
    launch's index list); warps are formed over lane *positions* in this
    order, mirroring how the launch partitioned them.

    Columnar logs matching the launch order take the vectorized path;
    everything else (plain dicts, sub-ranges) uses the scalar analysis,
    which doubles as the cross-check oracle for the vectorized one.
    """
    if isinstance(lanes, ColumnarLanes) and lanes.matches_order(
        iteration_order
    ):
        return _analyze_columnar(lanes, warp_size)
    return analyze_lanes_scalar(lanes, iteration_order, warp_size)


def analyze_lanes_scalar(
    lanes: Mapping[int, LaneSpecState],
    iteration_order: Sequence[int],
    warp_size: int = 32,
) -> DependencyProfile:
    """Reference (per-record) implementation of :func:`analyze_lanes`."""
    order_pos = {it: pos for pos, it in enumerate(iteration_order)}
    n = len(iteration_order)

    # cell -> sorted list of writer iterations; cell -> reader iterations
    writers: dict[tuple[str, int], list[int]] = defaultdict(list)
    readers: dict[tuple[str, int], list[int]] = defaultdict(list)
    for it in iteration_order:
        state = lanes.get(it)
        if state is None:
            continue
        seen_w: set[tuple[str, int]] = set()
        for rec in state.writes:
            key = (rec.array, rec.flat)
            if key not in seen_w:
                seen_w.add(key)
                writers[key].append(it)
        seen_r: set[tuple[str, int]] = set()
        for rec in state.reads:
            key = (rec.array, rec.flat)
            if key not in seen_r:
                seen_r.add(key)
                readers[key].append(it)

    for lst in writers.values():
        lst.sort(key=order_pos.__getitem__)
    for lst in readers.values():
        lst.sort(key=order_pos.__getitem__)

    profile = DependencyProfile(iterations=n)
    td_targets: set[int] = set()
    fd_targets: set[int] = set()

    def warp_of_iter(it: int) -> int:
        return order_pos[it] // warp_size

    # --- true dependencies: an upward-exposed read hitting an earlier write
    for key, reads in readers.items():
        ws = writers.get(key)
        if not ws:
            continue
        w_positions = [order_pos[w] for w in ws]
        for r in reads:
            rp = order_pos[r]
            k = bisect_left(w_positions, rp)
            if k == 0:
                continue  # no earlier writer
            src = ws[k - 1]
            if src == r:
                continue
            profile.td_pairs += 1
            td_targets.add(r)
            profile.td_arrays.add(key[0])
            profile.td_warps.add(warp_of_iter(r))
            dist = rp - order_pos[src]
            profile.td_distances[dist] = profile.td_distances.get(dist, 0) + 1
            same = classify_same_warp(order_pos[src], rp, warp_size)
            if same:
                profile.intra_warp_td += 1
            else:
                profile.inter_warp_td += 1
            if len(profile.sample_pairs) < SAMPLE_CAP:
                profile.sample_pairs.append(
                    DepPair(key[0], src, r, "true", same)
                )

    # --- false dependencies: WAW between distinct writers, WAR read->write
    for key, ws in writers.items():
        if len(ws) > 1:
            for a, b in zip(ws, ws[1:]):
                profile.fd_pairs += 1
                fd_targets.add(b)
                profile.fd_arrays.add(key[0])
                if len(profile.sample_pairs) < SAMPLE_CAP:
                    profile.sample_pairs.append(
                        DepPair(
                            key[0],
                            a,
                            b,
                            "output",
                            classify_same_warp(
                                order_pos[a], order_pos[b], warp_size
                            ),
                        )
                    )
        reads = readers.get(key)
        if not reads:
            continue
        w_positions = [order_pos[w] for w in ws]
        for r in reads:
            rp = order_pos[r]
            k = bisect_left(w_positions, rp + 1)
            if k >= len(ws):
                continue  # no later writer
            later_writer = ws[k]
            if later_writer == r:
                continue
            profile.fd_pairs += 1
            fd_targets.add(later_writer)
            profile.fd_arrays.add(key[0])
            if len(profile.sample_pairs) < SAMPLE_CAP:
                profile.sample_pairs.append(
                    DepPair(
                        key[0],
                        r,
                        later_writer,
                        "anti",
                        classify_same_warp(rp, order_pos[later_writer], warp_size),
                    )
                )

    denom = max(1, n - 1)
    profile.td_density = len(td_targets) / denom
    profile.fd_density = len(fd_targets - td_targets) / denom
    profile.uniform_write_arrays = _uniform_write_arrays(
        lanes, iteration_order
    )
    return profile


def _analyze_columnar(
    col: ColumnarLanes, warp_size: int
) -> DependencyProfile:
    """Vectorized :func:`analyze_lanes` over columnar logs.

    The per-cell reader/writer scans of the scalar analysis become
    sort/unique/searchsorted passes.  Iteration ids never drive the
    math — dependencies relate lane *positions* (ids are unique within a
    launch, so a position bijects to its id) — ids only appear in the
    reported targets and sample pairs.
    """
    n = col.n_positions
    order = col.order
    profile = DependencyProfile(iterations=n)
    r_keys, w_keys, m = cell_keys(col)
    rp, _ro, rk = dedup_first(col.r_pos, col.r_op, r_keys)
    wp, _wo, wk = dedup_first(col.w_pos, col.w_op, w_keys)

    # writers sorted by (cell, position); comp packs both into one key so
    # "latest writer strictly before position p" is a single searchsorted
    ws_ord = np.lexsort((wp, wk))
    Wk, Wp = wk[ws_ord], wp[ws_ord]
    comp_w = Wk * (n + 1) + Wp

    samples_td: list[DepPair] = []
    samples_fd: list[DepPair] = []

    # --- true dependencies: an upward-exposed read hitting an earlier write
    if len(Wk) and len(rk):
        idx = np.searchsorted(comp_w, rk * (n + 1) + rp, side="left")
        cand = idx - 1
        safe = np.maximum(cand, 0)
        valid = (cand >= 0) & (Wk[safe] == rk)
        t_src = Wp[safe][valid]
    else:
        valid = np.zeros(len(rk), dtype=bool)
        t_src = rp[:0]
    t_r, t_key = rp[valid], rk[valid]
    profile.td_pairs = int(valid.sum())
    td_target_pos = np.unique(t_r)
    td_targets = {int(order[p]) for p in td_target_pos}
    profile.td_arrays = {col.names[a] for a in np.unique(t_key // m)}
    profile.td_warps = {int(w) for w in np.unique(t_r // warp_size)}
    dists, counts = np.unique(t_r - t_src, return_counts=True)
    profile.td_distances = {
        int(d): int(c) for d, c in zip(dists, counts)
    }
    same = (t_src // warp_size) == (t_r // warp_size)
    profile.intra_warp_td = int(same.sum())
    profile.inter_warp_td = int((~same).sum())
    if len(t_r):
        # scalar sample order: readers-dict insertion order, then
        # ascending reader position within a cell
        uniq_r, rank_r = first_seen_ranks(rk)
        key_rank = rank_r[np.searchsorted(uniq_r, t_key)]
        for j in np.lexsort((t_r, key_rank))[:SAMPLE_CAP]:
            samples_td.append(
                DepPair(
                    col.names[int(t_key[j] // m)],
                    int(order[t_src[j]]),
                    int(order[t_r[j]]),
                    "true",
                    bool(same[j]),
                )
            )

    # --- false dependencies: WAW between distinct writers, WAR read->write
    fd_rows: list[tuple[np.ndarray, ...]] = []
    waw = np.zeros(0, dtype=bool) if len(Wk) < 2 else (Wk[1:] == Wk[:-1])
    waw_a, waw_b = (
        (Wp[:-1][waw], Wp[1:][waw]) if len(Wk) >= 2 else (Wp[:0], Wp[:0])
    )
    waw_key = Wk[1:][waw] if len(Wk) >= 2 else Wk[:0]
    if len(Wk) and len(rk):
        k_idx = np.searchsorted(comp_w, rk * (n + 1) + (rp + 1), side="left")
        safe = np.minimum(k_idx, len(Wk) - 1)
        war = (k_idx < len(Wk)) & (Wk[safe] == rk)
        war_b = Wp[safe][war]
    else:
        war = np.zeros(len(rk), dtype=bool)
        war_b = wp[:0]
    war_a, war_key = rp[war], rk[war]
    profile.fd_pairs = int(len(waw_b) + len(war_b))
    fd_targets = {int(order[p]) for p in waw_b} | {
        int(order[p]) for p in war_b
    }
    profile.fd_arrays = {
        col.names[a]
        for a in np.unique(
            np.concatenate([waw_key // m, war_key // m])
        )
    } if profile.fd_pairs else set()
    if profile.fd_pairs and len(samples_td) < SAMPLE_CAP:
        # scalar order: writers-dict insertion order; per cell the WAW
        # chain first (ascending position), then the WAR pairs
        uniq_w, rank_w = first_seen_ranks(wk)
        keys = np.concatenate([waw_key, war_key])
        kind = np.concatenate(
            [np.zeros(len(waw_key), np.int64), np.ones(len(war_key), np.int64)]
        )
        pos = np.concatenate([waw_b, war_a])
        src = np.concatenate([waw_a, war_a])
        dst = np.concatenate([waw_b, war_b])
        key_rank = rank_w[np.searchsorted(uniq_w, keys)]
        budget = SAMPLE_CAP - len(samples_td)
        for j in np.lexsort((pos, kind, key_rank))[:budget]:
            is_waw = kind[j] == 0
            samples_fd.append(
                DepPair(
                    col.names[int(keys[j] // m)],
                    int(order[src[j]]),
                    int(order[dst[j]]),
                    "output" if is_waw else "anti",
                    classify_same_warp(int(src[j]), int(dst[j]), warp_size),
                )
            )

    profile.sample_pairs = samples_td + samples_fd
    denom = max(1, n - 1)
    profile.td_density = len(td_targets) / denom
    profile.fd_density = len(fd_targets - td_targets) / denom
    profile.uniform_write_arrays = _uniform_write_columnar(col, wp, wk, m)
    return profile


def _uniform_write_columnar(
    col: ColumnarLanes, wp: np.ndarray, wk: np.ndarray, m: int
) -> set[str]:
    """Columnar twin of :func:`_uniform_write_arrays` (deduped writes in)."""
    total = col.n_present
    out: set[str] = set()
    for a in np.unique(wk // m):
        sel = (wk // m) == a
        p, f = wp[sel], wk[sel] % m
        uniq_p, counts = np.unique(p, return_counts=True)
        if len(uniq_p) != total or total == 0:
            continue
        c = int(counts[0])
        if not (counts == c).all():
            continue
        s = np.lexsort((f, p))
        fs = f[s].reshape(total, c)
        if (fs == fs[0]).all():
            out.add(col.names[int(a)])
    return out


def _uniform_write_arrays(
    lanes: Mapping[int, LaneSpecState],
    iteration_order: Sequence[int],
) -> set[str]:
    """Arrays whose per-iteration write-cell sets are all identical."""
    reference: dict[str, frozenset[int]] = {}
    writers_count: dict[str, int] = defaultdict(int)
    non_uniform: set[str] = set()
    total = 0
    for it in iteration_order:
        state = lanes.get(it)
        if state is None:
            continue
        total += 1
        per_array: dict[str, set[int]] = defaultdict(set)
        for rec in state.writes:
            per_array[rec.array].add(rec.flat)
        for name, cells in per_array.items():
            writers_count[name] += 1
            frozen = frozenset(cells)
            if name not in reference:
                reference[name] = frozen
            elif reference[name] != frozen:
                non_uniform.add(name)
    # an iteration that skips the array breaks "the last one overwrites
    # everything", so uniformity also requires every iteration to write it
    return {
        name
        for name in reference
        if name not in non_uniform and writers_count[name] == total
    }
