"""Dependency-density analysis over speculative access logs.

Input: the per-lane SE logs of a profiling launch (upward-exposed global
reads + buffered writes, each with the lane-local op timestamp).  Output:
true/false dependence pairs, the quantitative density metrics, and the
per-warp TD map the mode-B recovery logic consults.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from typing import Mapping, Sequence

from ..ir.interpreter import LaneSpecState
from .intrawarp import classify_same_warp
from .report import DepPair, DependencyProfile

#: Cap on retained diagnostic pairs (analysis itself sees everything).
SAMPLE_CAP = 4096


def analyze_lanes(
    lanes: Mapping[int, LaneSpecState],
    iteration_order: Sequence[int],
    warp_size: int = 32,
) -> DependencyProfile:
    """Compute the dependency profile from per-iteration SE logs.

    ``iteration_order`` is the sequential order of the iterations (the
    launch's index list); warps are formed over lane *positions* in this
    order, mirroring how the launch partitioned them.
    """
    order_pos = {it: pos for pos, it in enumerate(iteration_order)}
    n = len(iteration_order)

    # cell -> sorted list of writer iterations; cell -> reader iterations
    writers: dict[tuple[str, int], list[int]] = defaultdict(list)
    readers: dict[tuple[str, int], list[int]] = defaultdict(list)
    for it in iteration_order:
        state = lanes.get(it)
        if state is None:
            continue
        seen_w: set[tuple[str, int]] = set()
        for rec in state.writes:
            key = (rec.array, rec.flat)
            if key not in seen_w:
                seen_w.add(key)
                writers[key].append(it)
        seen_r: set[tuple[str, int]] = set()
        for rec in state.reads:
            key = (rec.array, rec.flat)
            if key not in seen_r:
                seen_r.add(key)
                readers[key].append(it)

    for lst in writers.values():
        lst.sort(key=order_pos.__getitem__)
    for lst in readers.values():
        lst.sort(key=order_pos.__getitem__)

    profile = DependencyProfile(iterations=n)
    td_targets: set[int] = set()
    fd_targets: set[int] = set()

    def warp_of_iter(it: int) -> int:
        return order_pos[it] // warp_size

    # --- true dependencies: an upward-exposed read hitting an earlier write
    for key, reads in readers.items():
        ws = writers.get(key)
        if not ws:
            continue
        w_positions = [order_pos[w] for w in ws]
        for r in reads:
            rp = order_pos[r]
            k = bisect_left(w_positions, rp)
            if k == 0:
                continue  # no earlier writer
            src = ws[k - 1]
            if src == r:
                continue
            profile.td_pairs += 1
            td_targets.add(r)
            profile.td_arrays.add(key[0])
            profile.td_warps.add(warp_of_iter(r))
            dist = rp - order_pos[src]
            profile.td_distances[dist] = profile.td_distances.get(dist, 0) + 1
            same = classify_same_warp(order_pos[src], rp, warp_size)
            if same:
                profile.intra_warp_td += 1
            else:
                profile.inter_warp_td += 1
            if len(profile.sample_pairs) < SAMPLE_CAP:
                profile.sample_pairs.append(
                    DepPair(key[0], src, r, "true", same)
                )

    # --- false dependencies: WAW between distinct writers, WAR read->write
    for key, ws in writers.items():
        if len(ws) > 1:
            for a, b in zip(ws, ws[1:]):
                profile.fd_pairs += 1
                fd_targets.add(b)
                profile.fd_arrays.add(key[0])
                if len(profile.sample_pairs) < SAMPLE_CAP:
                    profile.sample_pairs.append(
                        DepPair(
                            key[0],
                            a,
                            b,
                            "output",
                            classify_same_warp(
                                order_pos[a], order_pos[b], warp_size
                            ),
                        )
                    )
        reads = readers.get(key)
        if not reads:
            continue
        w_positions = [order_pos[w] for w in ws]
        for r in reads:
            rp = order_pos[r]
            k = bisect_left(w_positions, rp + 1)
            if k >= len(ws):
                continue  # no later writer
            later_writer = ws[k]
            if later_writer == r:
                continue
            profile.fd_pairs += 1
            fd_targets.add(later_writer)
            profile.fd_arrays.add(key[0])
            if len(profile.sample_pairs) < SAMPLE_CAP:
                profile.sample_pairs.append(
                    DepPair(
                        key[0],
                        r,
                        later_writer,
                        "anti",
                        classify_same_warp(rp, order_pos[later_writer], warp_size),
                    )
                )

    denom = max(1, n - 1)
    profile.td_density = len(td_targets) / denom
    profile.fd_density = len(fd_targets - td_targets) / denom
    profile.uniform_write_arrays = _uniform_write_arrays(
        lanes, iteration_order
    )
    return profile


def _uniform_write_arrays(
    lanes: Mapping[int, LaneSpecState],
    iteration_order: Sequence[int],
) -> set[str]:
    """Arrays whose per-iteration write-cell sets are all identical."""
    reference: dict[str, frozenset[int]] = {}
    writers_count: dict[str, int] = defaultdict(int)
    non_uniform: set[str] = set()
    total = 0
    for it in iteration_order:
        state = lanes.get(it)
        if state is None:
            continue
        total += 1
        per_array: dict[str, set[int]] = defaultdict(set)
        for rec in state.writes:
            per_array[rec.array].add(rec.flat)
        for name, cells in per_array.items():
            writers_count[name] += 1
            frozen = frozenset(cells)
            if name not in reference:
                reference[name] = frozen
            elif reference[name] != frozen:
                non_uniform.add(name)
    # an iteration that skips the array breaks "the last one overwrites
    # everything", so uniformity also requires every iteration to write it
    return {
        name
        for name in reference
        if name not in non_uniform and writers_count[name] == total
    }
