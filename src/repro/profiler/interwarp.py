"""Inter-warp analysis: TD reachability across warps.

Used by the mode-B (GPU-TLS) recovery path: after a violation in warp
``w*``, the scheduler asks whether the *following* warps contain true
dependencies according to the profile; if not, it relaunches the kernel
on the GPU from ``w*``, otherwise those warps run sequentially on the CPU
first (paper §V-A).
"""

from __future__ import annotations

from typing import Iterable

from .report import DependencyProfile


def warps_with_td(profile: DependencyProfile) -> set[int]:
    """Warp ids (by lane position) containing at least one TD target."""
    return set(profile.td_warps)


def next_warps_clear(
    profile: DependencyProfile,
    from_warp: int,
    lookahead: int,
) -> bool:
    """True when warps ``from_warp .. from_warp+lookahead-1`` have no TD.

    ``lookahead`` is the "following several warps" window the paper's
    scheduler inspects before handing control back to the GPU.
    """
    window = range(from_warp, from_warp + max(lookahead, 1))
    return not any(w in profile.td_warps for w in window)


def td_free_prefix(profile: DependencyProfile, warps: Iterable[int]) -> int:
    """Length of the leading run of TD-free warps in ``warps``."""
    count = 0
    for w in warps:
        if w in profile.td_warps:
            break
        count += 1
    return count
