"""Intra-warp dependence classification.

Within a warp, lanes execute in lock-step SIMD, so the profiler separates
dependencies whose endpoints share a warp from those crossing warps: the
mode-B recovery logic restarts execution at warp granularity, and the
GPU-TLS dependency-checking phase organizes its metadata scans the same
way.
"""

from __future__ import annotations


def classify_same_warp(pos_a: int, pos_b: int, warp_size: int = 32) -> bool:
    """True when lane positions ``pos_a`` and ``pos_b`` share a warp."""
    return pos_a // warp_size == pos_b // warp_size


def warp_span(warp_id: int, warp_size: int = 32) -> tuple[int, int]:
    """Lane-position span [start, stop) of a warp."""
    return warp_id * warp_size, (warp_id + 1) * warp_size
