"""Profile report: the dependency-density summary the scheduler consumes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Default threshold N of the workflow diagram ("(Density > N) ? High : Low").
DEFAULT_DD_THRESHOLD = 0.30


@dataclass(frozen=True)
class DepPair:
    """One observed cross-iteration dependence (src writes, dst touches)."""

    array: str
    src_iter: int
    dst_iter: int
    kind: str  # 'true' | 'anti' | 'output'
    same_warp: bool

    @property
    def distance(self) -> int:
        return self.dst_iter - self.src_iter


@dataclass
class DependencyProfile:
    """Dynamic dependency profile of one loop (paper §II, Profiler).

    ``td_density`` follows the quantitative model of von Praun et al.:
    the fraction of iterations that carry at least one incoming true
    (flow) dependence.  ``fd_density`` is the analogue over false
    (anti/output) dependencies that are not also true dependencies.
    """

    iterations: int
    td_density: float = 0.0
    fd_density: float = 0.0
    td_pairs: int = 0
    fd_pairs: int = 0
    intra_warp_td: int = 0
    inter_warp_td: int = 0
    #: iteration distance histogram for true dependencies (capped)
    td_distances: dict[int, int] = field(default_factory=dict)
    #: warp ids (by lane position) containing at least one TD target
    td_warps: set[int] = field(default_factory=set)
    #: arrays carrying TDs / FDs
    td_arrays: set[str] = field(default_factory=set)
    fd_arrays: set[str] = field(default_factory=set)
    #: arrays whose write-cell set is identical in every iteration
    #: (enables the renamed-privatization fast path: the last iteration
    #: overwrites every cell any iteration wrote)
    uniform_write_arrays: set[str] = field(default_factory=set)
    #: sampled dependence pairs for diagnostics (capped)
    sample_pairs: list[DepPair] = field(default_factory=list)
    #: effective memory coalescing estimated from the address traces
    coalescing: float = 1.0
    #: SD3-style stride compression ratio of the access logs (raw
    #: entries / compressed patterns); quantifies profiling memory cost
    compression_ratio: float = 1.0
    #: simulated seconds spent profiling (instrumented run + analysis)
    profile_time_s: float = 0.0

    @property
    def has_true(self) -> bool:
        return self.td_pairs > 0

    @property
    def has_false(self) -> bool:
        return self.fd_pairs > 0

    def density_class(self, threshold: float = DEFAULT_DD_THRESHOLD) -> str:
        """'zero' | 'low' | 'high' classification of the TD density."""
        if not self.has_true:
            return "zero"
        return "high" if self.td_density > threshold else "low"

    @property
    def privatizable_arrays(self) -> set[str]:
        """Arrays safe to privatize: carry FDs but no TDs."""
        return self.fd_arrays - self.td_arrays

    @property
    def privatizable(self) -> bool:
        """True when every dependence-carrying array is privatizable."""
        return self.has_false and not self.has_true
