"""Stride-compressed access traces (after Prospector / SD3).

The paper's related work singles out SD3 [Kim et al., MICRO-43]: memory
profiles are kept tractable by storing *stride patterns* instead of raw
address lists.  This module provides that representation for our
profiler's traces: a lane's accesses to an array compress to
``(base, stride, count)`` runs, dependence intersection tests run
directly on the compressed form (a bounded-diophantine check), and the
profiler reports the achieved compression ratio.

For the regular affine kernels of the suite the ratio is enormous (one
pattern per access site); irregular kernels (BFS, CFD) degrade
gracefully toward one pattern per access — exactly the trade-off the
SD3 paper describes for strided vs. non-strided behavior.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class StridePattern:
    """Addresses ``base, base+stride, ..., base+(count-1)*stride``.

    ``stride`` may be 0 (a repeated address) only with ``count == 1``
    after normalization; zero-stride runs collapse to a single entry.
    """

    base: int
    stride: int
    count: int

    @property
    def last(self) -> int:
        return self.base + (self.count - 1) * self.stride

    @property
    def lo(self) -> int:
        return min(self.base, self.last)

    @property
    def hi(self) -> int:
        return max(self.base, self.last)

    def addresses(self) -> list[int]:
        return [self.base + k * self.stride for k in range(self.count)]

    def contains(self, addr: int) -> bool:
        if self.count == 1:
            return addr == self.base
        offset = addr - self.base
        if offset % self.stride != 0:
            return False
        k = offset // self.stride
        return 0 <= k < self.count


def compress_addresses(addrs: Sequence[int]) -> list[StridePattern]:
    """Greedy run-length stride compression of an address sequence.

    Consecutive addresses with a common difference fold into one
    pattern; repeated addresses collapse (a profile is a *set* of
    touched cells per iteration, duplicates carry no extra dependence
    information).
    """
    out: list[StridePattern] = []
    i = 0
    n = len(addrs)
    while i < n:
        base = addrs[i]
        if i + 1 >= n:
            out.append(StridePattern(base, 0, 1))
            break
        stride = addrs[i + 1] - base
        if stride == 0:
            # skip duplicates of base
            j = i + 1
            while j < n and addrs[j] == base:
                j += 1
            out.append(StridePattern(base, 0, 1))
            i = j
            continue
        count = 2
        j = i + 2
        while j < n and addrs[j] - addrs[j - 1] == stride:
            count += 1
            j += 1
        out.append(StridePattern(base, stride, count))
        i = j
    return _merge_singletons(out)


def _merge_singletons(patterns: list[StridePattern]) -> list[StridePattern]:
    """Collapse exact-duplicate singleton patterns."""
    seen: set[tuple[int, int, int]] = set()
    out = []
    for p in patterns:
        key = (p.base, p.stride, p.count)
        if key in seen:
            continue
        seen.add(key)
        out.append(p)
    return out


def patterns_intersect(a: StridePattern, b: StridePattern) -> bool:
    """Do two patterns share an address?  Solved without expansion.

    Find integer k1 in [0, a.count), k2 in [0, b.count) with
    ``a.base + k1*a.stride == b.base + k2*b.stride`` — a bounded linear
    diophantine equation: solvable only when gcd(a.stride, b.stride)
    divides the base difference, then checked over the smaller
    pattern's residue-aligned range.
    """
    if a.hi < b.lo or b.hi < a.lo:
        return False  # disjoint bounding boxes
    if a.count == 1:
        return b.contains(a.base)
    if b.count == 1:
        return a.contains(b.base)
    g = math.gcd(abs(a.stride), abs(b.stride))
    if (b.base - a.base) % g != 0:
        return False
    # walk the sparser pattern (fewer elements) and membership-test the
    # other; the gcd filter keeps this from being the common case
    small, large = (a, b) if a.count <= b.count else (b, a)
    step = abs(large.stride) // g if large.stride else 1
    # only every `step`-th element of `small` can be congruent
    for k in range(small.count):
        addr = small.base + k * small.stride
        if large.contains(addr):
            return True
    return False


def any_intersection(
    writes: Iterable[StridePattern], reads: Iterable[StridePattern]
) -> bool:
    """Do any write pattern and read pattern overlap?"""
    writes = list(writes)
    for r in reads:
        for w in writes:
            if patterns_intersect(w, r):
                return True
    return False


@dataclass
class CompressedTrace:
    """Stride-compressed read/write sets of one iteration on one array."""

    reads: list[StridePattern]
    writes: list[StridePattern]

    @property
    def entries(self) -> int:
        return len(self.reads) + len(self.writes)


def compress_lane(
    read_addrs: Sequence[int], write_addrs: Sequence[int]
) -> CompressedTrace:
    return CompressedTrace(
        reads=compress_addresses(read_addrs),
        writes=compress_addresses(write_addrs),
    )


def compression_ratio(lanes, sample: int = 512) -> float:
    """Raw trace entries / compressed entries over (a sample of) lanes.

    ``lanes`` maps iteration -> LaneSpecState (the profiler's SE logs).
    1.0 = nothing gained (fully irregular); large = strided accesses.
    """
    from ..ir.columnar import ColumnarLanes

    if isinstance(lanes, ColumnarLanes):
        return _compression_ratio_columnar(lanes, sample)
    return compression_ratio_scalar(lanes, sample)


def _compression_ratio_columnar(col, sample: int) -> float:
    """Columnar twin: per-lane log slices come straight off the sorted
    (pos, op) columns, already in log order."""
    import numpy as np

    if col._states is not None:
        # wrapped scalar logs: sample in dict (insertion) order exactly
        # like the oracle — the record lists are already materialized
        return compression_ratio_scalar(col._states, sample)
    raw = 0
    compressed = 0
    lanes_pos = np.nonzero(col.present)[0][:sample]
    r_lo = np.searchsorted(col.r_pos, lanes_pos)
    r_hi = np.searchsorted(col.r_pos, lanes_pos + 1)
    w_lo = np.searchsorted(col.w_pos, lanes_pos)
    w_hi = np.searchsorted(col.w_pos, lanes_pos + 1)
    for k in range(len(lanes_pos)):
        ra = col.r_arr[r_lo[k]:r_hi[k]]
        rf = col.r_flat[r_lo[k]:r_hi[k]]
        wa = col.w_arr[w_lo[k]:w_hi[k]]
        wf = col.w_flat[w_lo[k]:w_hi[k]]
        for a in np.unique(np.concatenate([ra, wa])):
            reads = rf[ra == a]
            writes = wf[wa == a]
            raw += len(reads) + len(writes)
            compressed += compress_lane(
                reads.tolist(), writes.tolist()
            ).entries
    if compressed == 0:
        return 1.0
    return raw / compressed


def compression_ratio_scalar(lanes, sample: int = 512) -> float:
    """Reference (per-record) implementation (the cross-check oracle)."""
    raw = 0
    compressed = 0
    for k, (_it, state) in enumerate(lanes.items()):
        if k >= sample:
            break
        per_array: dict[str, tuple[list[int], list[int]]] = {}
        for rec in state.reads:
            per_array.setdefault(rec.array, ([], []))[0].append(rec.flat)
        for rec in state.writes:
            per_array.setdefault(rec.array, ([], []))[1].append(rec.flat)
        for reads, writes in per_array.values():
            raw += len(reads) + len(writes)
            compressed += compress_lane(reads, writes).entries
    if compressed == 0:
        return 1.0
    return raw / compressed
