"""Profiling runs: execute instrumented kernels on the GPU simulator.

The profiler executes the loops "marked by the code translator on GPU in
parallel" with SE-style instrumentation: writes are buffered (so program
state is not perturbed) and upward-exposed reads are logged.  The logs
feed the density analysis; the run itself is charged to the simulated
clock with an instrumentation slowdown factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..gpusim.device import GpuDevice
from ..ir.instructions import IRFunction
from ..ir.interpreter import ArrayStorage
from .coalesce import estimate_coalescing
from .density import analyze_lanes
from .report import DependencyProfile

#: Cost multiplier of the instrumented kernel vs. the plain kernel.
INSTRUMENTATION_FACTOR = 2.5
#: Modelled per-logged-access analysis cost (seconds) for the DD pass.
ANALYSIS_COST_PER_ACCESS = 2e-9


@dataclass
class ProfilingRun:
    """Raw profiling artifacts, kept for diagnostics and tests."""

    profile: DependencyProfile
    sampled_iterations: int


def profile_loop(
    device: GpuDevice,
    fn: IRFunction,
    indices: Sequence[int],
    scalar_env: dict[str, object],
    storage: ArrayStorage,
    max_sample: Optional[int] = None,
    warp_size: Optional[int] = None,
) -> ProfilingRun:
    """Profile one loop on the simulated GPU.

    ``max_sample`` caps the number of iterations actually instrumented
    (a prefix — dependence distances observed in a prefix generalize for
    the stationary patterns the benchmarks exhibit); densities are
    computed over the sampled window.
    """
    # slice lazily: ranges (the common case) slice without materializing
    # the full index sequence, so a 256Ki-iteration loop profiled with a
    # 2Ki sample never allocates 256Ki ints
    if max_sample is not None:
        try:
            sample = indices[: max(1, max_sample)]
        except TypeError:  # a Sequence without slice support
            sample = list(indices)[: max(1, max_sample)]
    elif isinstance(indices, (list, tuple, range)):
        sample = indices
    else:
        sample = list(indices)
    wsize = warp_size if warp_size is not None else device.spec.warp_size

    launch = device.launch(
        fn,
        sample,
        scalar_env,
        storage,
        mode="buffered",
        check_allocations=False,
    )
    profile = analyze_lanes(launch.lanes, sample, warp_size=wsize)
    profile.coalescing = estimate_coalescing(launch.lanes, sample, wsize)
    from .strides import compression_ratio

    profile.compression_ratio = compression_ratio(launch.lanes)

    from ..ir.columnar import ColumnarLanes

    if isinstance(launch.lanes, ColumnarLanes):
        logged = launch.lanes.logged_accesses()
    else:
        logged = sum(
            len(state.reads) + len(state.writes)
            for state in launch.lanes.values()
        )
    profile.profile_time_s = (
        launch.sim_time_s * INSTRUMENTATION_FACTOR
        + logged * ANALYSIS_COST_PER_ACCESS
    )
    return ProfilingRun(profile=profile, sampled_iterations=len(sample))
