"""Runtime substrate: platform model, simulated clock, cost model."""

from .clock import LANE_CPU, LANE_DMA, LANE_GPU, Event, Timeline
from .costmodel import CostModel, TransferRequest, weighted_ops
from .platform import (
    CpuSpec,
    GpuSpec,
    InterconnectSpec,
    Platform,
    paper_platform,
    symmetric_platform,
)
from .result import ExecutionResult, verify_same_results

__all__ = [
    "CostModel",
    "CpuSpec",
    "Event",
    "ExecutionResult",
    "GpuSpec",
    "InterconnectSpec",
    "LANE_CPU",
    "LANE_DMA",
    "LANE_GPU",
    "Platform",
    "Timeline",
    "TransferRequest",
    "paper_platform",
    "symmetric_platform",
    "verify_same_results",
    "weighted_ops",
]
