"""Discrete-event timeline for simulated wall-clock accounting.

Execution plans are composed of operations on resource *lanes* (the GPU
compute engine, the DMA engine, the CPU thread pool).  An operation starts
when its lane is free **and** all its dependencies have finished; the
timeline's makespan is the simulated wall-clock time of the plan.  This is
how the model captures the paper's key scheduling effects: asynchronous
pre-fetch overlapping kernel execution, serialized cyclic transfers, and
CPU/GPU sides finishing at different times.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

# Conventional lane names.
LANE_GPU = "gpu"
LANE_DMA = "dma"
LANE_CPU = "cpu"

_LANE_SUFFIX = re.compile(r"^(.*?)(\d+)$")


def natural_lane_key(lane: str) -> tuple[str, int]:
    """Sort key ordering lanes by base name, then numeric suffix.

    Lexicographic ordering puts ``gpu10`` before ``gpu2`` on large device
    pools; this key splits the trailing device number off so lanes order
    ``cpu, dma, dma1, ..., gpu, gpu2, gpu10``.  Device 0's bare ``gpu`` /
    ``dma`` lanes sort ahead of every numbered sibling.
    """
    m = _LANE_SUFFIX.match(lane)
    if m:
        return (m.group(1), int(m.group(2)))
    return (lane, -1)


def gpu_lane(device_id: int) -> str:
    """Compute lane of pool device ``k`` (device 0 keeps the classic
    ``gpu`` name so single-device timelines are unchanged)."""
    return LANE_GPU if device_id == 0 else f"{LANE_GPU}{device_id}"


def dma_lane(device_id: int) -> str:
    """DMA lane of pool device ``k`` (each device owns a copy engine)."""
    return LANE_DMA if device_id == 0 else f"{LANE_DMA}{device_id}"


@dataclass(frozen=True)
class Event:
    """A completed scheduling decision: [start, end) on a lane."""

    id: int
    lane: str
    start: float
    end: float
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """Tracks per-lane availability and records scheduled events.

    ``makespan`` and ``lane_busy`` are maintained incrementally by
    :meth:`schedule` (schedulers poll them after every operation, so they
    must stay O(1)); the recorded ``events`` list remains the source of
    truth for exporters and for the equivalence tests.
    """

    events: list[Event] = field(default_factory=list)
    _lane_free: dict[str, float] = field(default_factory=dict)
    _next_id: int = 0
    _makespan: float = 0.0
    _lane_busy: dict[str, float] = field(default_factory=dict)

    def schedule(
        self,
        lane: str,
        duration: float,
        after: Iterable[Event] = (),
        label: str = "",
        not_before: float = 0.0,
    ) -> Event:
        """Append an operation to ``lane``.

        The operation starts at the latest of: the lane's free time, the
        end of every event in ``after``, and ``not_before``.
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration} for {label!r}")
        deps = tuple(after)
        start = max(
            self._lane_free.get(lane, 0.0),
            not_before,
            *(e.end for e in deps),
        )
        event = Event(self._next_id, lane, start, start + duration, label)
        self._next_id += 1
        self._lane_free[lane] = event.end
        self.events.append(event)
        if event.end > self._makespan:
            self._makespan = event.end
        # accumulate event.duration (end - start), not the requested
        # duration: the two differ at ULP level in float arithmetic, and
        # the scan oracle sums event durations
        self._lane_busy[lane] = (
            self._lane_busy.get(lane, 0.0) + event.duration
        )
        return event

    def barrier(self, lanes: Optional[Iterable[str]] = None) -> float:
        """Time when all (or the given) lanes become idle."""
        if lanes is None:
            values = self._lane_free.values()
        else:
            values = [self._lane_free.get(lane, 0.0) for lane in lanes]
        return max(values, default=0.0)

    @property
    def makespan(self) -> float:
        """End time of the latest event (O(1), maintained by schedule)."""
        return self._makespan

    def lane_busy(self, lane: str) -> float:
        """Total busy time accumulated on a lane (O(1))."""
        return self._lane_busy.get(lane, 0.0)

    def scan_makespan(self) -> float:
        """Makespan by full event scan (the incremental value's oracle)."""
        return max((e.end for e in self.events), default=0.0)

    def scan_lane_busy(self, lane: str) -> float:
        """Lane busy time by full event scan (the incremental oracle)."""
        return sum(e.duration for e in self.events if e.lane == lane)

    def lane_events(self, lane: str) -> list[Event]:
        return [e for e in self.events if e.lane == lane]

    def lanes(self) -> list[str]:
        """Lanes with at least one event, in natural order (gpu2 < gpu10)."""
        return sorted({e.lane for e in self.events}, key=natural_lane_key)
