"""Roofline cost model: dynamic work counts -> simulated device time.

Every execution engine runs kernels *functionally* through the IR
interpreter (or its vectorized fast path) and collects
:class:`~repro.ir.interpreter.Counts`.  This module converts those counts
into seconds on a modelled device:

``time = max(compute_time, memory_time)``

where compute time weights special-function ops (divide, sqrt, exp, ...)
more heavily and memory time is bytes over sustained bandwidth, degraded
on the GPU by a coalescing factor derived from the kernel's access
pattern (stride-1 = 1.0, irregular ~ 1/8).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.interpreter import Counts
from .platform import Platform

#: Cycle weights for op categories on the CPU.
CPU_WEIGHTS = {
    "int_ops": 1.0,
    "float_ops": 1.0,
    "special_ops": 12.0,
    "loads": 1.0,
    "stores": 1.0,
    "branches": 1.0,
    "intrinsics": 20.0,
}

#: Cycle weights on the GPU (special units are relatively slower per lane).
GPU_WEIGHTS = {
    "int_ops": 1.0,
    "float_ops": 1.0,
    "special_ops": 8.0,
    "loads": 1.0,
    "stores": 1.0,
    "branches": 1.0,
    "intrinsics": 12.0,
}


def weighted_ops(counts: Counts, weights: dict[str, float]) -> float:
    """Total weighted scalar operations represented by ``counts``."""
    return sum(getattr(counts, name) * w for name, w in weights.items())


@dataclass(frozen=True)
class TransferRequest:
    """One host<->device movement: bytes and direction ('h2d' or 'd2h')."""

    nbytes: int
    direction: str
    label: str = ""


class CostModel:
    """Converts work counts and transfer requests into simulated seconds.

    The scale factors implement *paper-scale projection*: workloads run
    functionally at reduced sizes (the interpreter must execute every
    iteration), and the model extrapolates each component to the paper's
    problem size — dynamic work by ``work_scale``, transferred/streamed
    bytes by ``byte_scale``, device thread count (occupancy) by
    ``iter_scale`` — while fixed costs (kernel launch, DMA latency,
    fork/join) stay constant.  This preserves the compute:transfer
    balance that determines who wins at the sizes the paper evaluates.
    """

    def __init__(
        self,
        platform: Platform,
        work_scale: float = 1.0,
        byte_scale: float = 1.0,
        iter_scale: float = 1.0,
        link_scale: float = 1.0,
    ):
        self.platform = platform
        self.work_scale = work_scale
        self.byte_scale = byte_scale
        self.iter_scale = iter_scale
        #: per-application effective-link multiplier: the JNI marshalling
        #: cost the paper's numbers imply varies by application (array
        #: element type, transfer sizes, pinning); EXPERIMENTS.md records
        #: the fitted value per workload
        self.link_scale = link_scale

    # -- CPU -----------------------------------------------------------------

    def cpu_time(
        self,
        counts: Counts,
        threads: int = 1,
        elem_bytes: float = 8.0,
    ) -> float:
        """Time for ``threads`` CPU workers to execute ``counts`` of work.

        Parallel efficiency: work is divided evenly; threads beyond the
        physical core count add no compute throughput (SMT on the X5650
        buys little for these loop kernels) but do share memory bandwidth.
        """
        cpu = self.platform.cpu
        effective = min(max(threads, 1), cpu.cores)
        ops = weighted_ops(counts, CPU_WEIGHTS) * self.work_scale
        compute = ops / (cpu.scalar_ops_per_sec * effective)
        nbytes = counts.mem_ops * elem_bytes * self.byte_scale
        memory = nbytes / (cpu.mem_bandwidth_gbps * 1e9)
        base = max(compute, memory)
        if threads > 1:
            base += cpu.fork_join_overhead_s
        return base

    def cpu_serial_time(self, counts: Counts, elem_bytes: float = 8.0) -> float:
        """Best serial (1-thread) execution time."""
        return self.cpu_time(counts, threads=1, elem_bytes=elem_bytes)

    # -- GPU ---------------------------------------------------------------

    def gpu_kernel_time(
        self,
        counts: Counts,
        n_threads: int,
        coalescing: float = 1.0,
        elem_bytes: float = 8.0,
        include_launch: bool = True,
        divergence: float = 1.0,
    ) -> float:
        """Time for one kernel executing ``counts`` over ``n_threads``.

        ``coalescing`` in (0, 1] scales effective memory bandwidth; the
        profiler derives it from the kernel's access strides.
        ``divergence`` >= 1 scales compute for lock-step SIMD waste (a
        warp is busy as long as its slowest lane).  When fewer threads
        than cores are launched, only ``n_threads`` lanes contribute
        throughput.
        """
        if n_threads <= 0:
            return self.platform.gpu.launch_overhead_s if include_launch else 0.0
        gpu = self.platform.gpu
        occupancy = min(1.0, n_threads * self.iter_scale / gpu.cores)
        ops = weighted_ops(counts, GPU_WEIGHTS) * self.work_scale
        compute = ops * max(divergence, 1.0) / (
            gpu.scalar_ops_per_sec_total * occupancy
        )
        nbytes = counts.mem_ops * elem_bytes * self.byte_scale
        memory = nbytes / (gpu.mem_bandwidth_gbps * 1e9 * max(coalescing, 1e-3))
        time = max(compute, memory)
        if include_launch:
            time += gpu.launch_overhead_s
        return time

    # -- Transfers -------------------------------------------------------

    def transfer_time(self, nbytes: float, asynchronous: bool) -> float:
        """One host<->device copy; async = pinned-staging pre-fetch path."""
        link = self.platform.link
        scaled = nbytes * self.byte_scale
        gbps = (link.async_gbps if asynchronous else link.sync_gbps)
        gbps *= self.link_scale
        return link.latency_s + scaled / (gbps * 1e9)

    def cyclic_bytes(self, nbytes: float) -> float:
        """Bytes the GPU-alone build actually moves (cyclic communication)."""
        return nbytes * self.platform.link.cyclic_factor
