"""Wall-clock deadlines threaded through the pipeline.

A :class:`Deadline` is a budget against a monotonic wall clock, created
once per request (the serve plane stamps it at admission) and carried on
the :class:`~repro.scheduler.context.ExecutionContext`.  Pipeline phases
call :meth:`Deadline.check` at their *boundaries* — before profiling,
before each loop dispatch — so cancellation is always clean: an expired
request raises :class:`~repro.errors.DeadlineExceeded` before the next
phase starts, and array state is exactly what the last completed phase
left.

The clock is injectable so tests drive expiry deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..errors import DeadlineExceeded


class Deadline:
    """A wall-clock budget with phase-boundary checks."""

    __slots__ = ("budget_s", "started_at", "expires_at", "_clock")

    def __init__(
        self,
        budget_s: float,
        clock: Callable[[], float] = time.monotonic,
        started_at: Optional[float] = None,
    ):
        if budget_s <= 0:
            raise ValueError(f"deadline budget must be > 0, got {budget_s}")
        self._clock = clock
        self.budget_s = float(budget_s)
        self.started_at = clock() if started_at is None else started_at
        self.expires_at = self.started_at + self.budget_s

    @classmethod
    def after(
        cls, budget_s: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        return cls(budget_s, clock=clock)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, phase: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget ran out.

        Called at phase boundaries only; ``phase`` names the phase that
        was *about* to start (it never ran).
        """
        left = self.remaining()
        if left <= 0.0:
            raise DeadlineExceeded(
                f"deadline of {self.budget_s * 1e3:.0f}ms exceeded "
                f"{-left * 1e3:.0f}ms before phase {phase!r}",
                phase=phase,
                budget_s=self.budget_s,
                overrun_s=-left,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(budget={self.budget_s:.3f}s, "
            f"remaining={self.remaining():.3f}s)"
        )
