"""Host-side AST interpreter.

The dual executable keeps all non-annotated code on the host JVM: driver
loops, convergence checks, scalar bookkeeping.  This evaluator executes
that glue directly over the host array storage with Java numeric
semantics, and hands every annotated ``for`` loop to a dispatch hook (the
strategy executor installed by the API layer).

It is also the fallback executor for annotated loops that cannot be
lowered to kernels (scalar live-outs): mode C runs them here
sequentially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from ..errors import JaponicaError, TypeCheckError
from ..ir import java_ops
from ..ir.instructions import INTRINSICS, JType, jtype_of_prim
from ..ir.interpreter import ArrayStorage, Counts
from ..ir.lower import promote
from ..lang import ast_nodes as A

#: Dispatch hook: (loop, stmts_after_in_block) -> number of extra
#: statements consumed (for batching consecutive annotated loops).
LoopDispatch = Callable[[A.For, list[A.Stmt]], int]


@dataclass
class HostCost:
    """Work executed on the host (charged as serial CPU time)."""

    ops: int = 0

    def as_counts(self) -> Counts:
        return Counts(int_ops=self.ops, instructions=self.ops)


class HostEvaluator:
    """Executes mini-Java statements against host state."""

    def __init__(
        self,
        types: Mapping[str, A.Type],
        storage: ArrayStorage,
        scalars: dict[str, object],
        dispatch: Optional[LoopDispatch] = None,
    ):
        self.types = dict(types)
        self.storage = storage
        self.scalars = scalars
        self.dispatch = dispatch
        self.cost = HostCost()

    # -- types ----------------------------------------------------------

    def _scalar_type(self, name: str) -> JType:
        t = self.types.get(name)
        if t is None or isinstance(t, A.ArrayType):
            raise JaponicaError(f"{name!r} is not a host scalar")
        return jtype_of_prim(t.name)

    def _elem_type(self, name: str) -> JType:
        t = self.types.get(name)
        if not isinstance(t, A.ArrayType):
            raise JaponicaError(f"{name!r} is not an array")
        return jtype_of_prim(t.elem.name)

    # -- expressions ------------------------------------------------------

    def eval(self, e: A.Expr) -> tuple[object, JType]:
        """Evaluate an expression; returns (value, type)."""
        self.cost.ops += 1
        if isinstance(e, A.IntLit):
            return java_ops.wrap_int(e.value), JType.INT
        if isinstance(e, A.LongLit):
            return java_ops.wrap_long(e.value), JType.LONG
        if isinstance(e, A.DoubleLit):
            return float(e.value), JType.DOUBLE
        if isinstance(e, A.FloatLit):
            return java_ops.cast(e.value, JType.DOUBLE, JType.FLOAT), JType.FLOAT
        if isinstance(e, A.BoolLit):
            return bool(e.value), JType.BOOL
        if isinstance(e, A.VarRef):
            if e.name not in self.scalars:
                raise JaponicaError(f"unbound host scalar {e.name!r}")
            return self.scalars[e.name], self._scalar_type(e.name)
        if isinstance(e, A.Length):
            shape = self.storage.shapes[e.array.name]
            return int(shape[e.axis]), JType.INT
        if isinstance(e, A.ArrayRef):
            idx = tuple(self._eval_index(ix) for ix in e.indices)
            flat = self.storage.flat(e.base.name, idx)
            return (
                self.storage.read_flat(e.base.name, flat),
                self._elem_type(e.base.name),
            )
        if isinstance(e, A.Cast):
            value, vt = self.eval(e.operand)
            to = jtype_of_prim(e.target.name)
            return java_ops.cast(value, vt, to), to
        if isinstance(e, A.Unary):
            value, vt = self.eval(e.operand)
            if e.op == "!":
                return (not value), JType.BOOL
            return java_ops.unop(e.op, value, vt), vt
        if isinstance(e, A.Binary):
            return self._binary(e)
        if isinstance(e, A.Ternary):
            cond, ct = self.eval(e.cond)
            if ct is not JType.BOOL:
                raise TypeCheckError(f"?: needs a boolean at {e.pos}")
            return self.eval(e.then if cond else e.other)
        if isinstance(e, A.Call):
            if e.name not in INTRINSICS:
                raise JaponicaError(f"unknown intrinsic {e.name!r}")
            args = [self.eval(a) for a in e.args]
            if e.name in ("Math.abs", "Math.min", "Math.max"):
                out = args[0][1]
                for _, t in args[1:]:
                    out = promote(out, t)
            else:
                out = JType.DOUBLE
            values = [
                java_ops.cast(v, t, out if out.is_floating else t)
                for v, t in args
            ]
            return java_ops.intrinsic(e.name, values, out), out
        raise JaponicaError(f"cannot evaluate {type(e).__name__} on the host")

    def _eval_index(self, e: A.Expr) -> int:
        value, vt = self.eval(e)
        if vt is JType.BOOL or vt.is_floating:
            raise TypeCheckError("array index must be integral")
        return int(value)

    def _binary(self, e: A.Binary) -> tuple[object, JType]:
        if e.op == "&&":
            a, _ = self.eval(e.left)
            if not a:
                return False, JType.BOOL
            b, _ = self.eval(e.right)
            return bool(b), JType.BOOL
        if e.op == "||":
            a, _ = self.eval(e.left)
            if a:
                return True, JType.BOOL
            b, _ = self.eval(e.right)
            return bool(b), JType.BOOL
        a, at = self.eval(e.left)
        b, bt = self.eval(e.right)
        if e.op in ("<", "<=", ">", ">=", "==", "!="):
            common = at if at is JType.BOOL else promote(at, bt)
            return java_ops.binop(e.op, a, b, common), JType.BOOL
        if at is JType.BOOL and bt is JType.BOOL:
            return java_ops.binop(e.op, a, b, JType.BOOL), JType.BOOL
        if e.op in ("<<", ">>", ">>>"):
            return java_ops.binop(e.op, a, int(b), at), at
        common = promote(at, bt)
        a = java_ops.cast(a, at, common)
        b = java_ops.cast(b, bt, common)
        return java_ops.binop(e.op, a, b, common), common

    # -- statements -------------------------------------------------------

    def exec_block_stmts(self, stmts: list[A.Stmt]) -> None:
        k = 0
        while k < len(stmts):
            s = stmts[k]
            if (
                isinstance(s, A.For)
                and s.annotation is not None
                and self.dispatch is not None
            ):
                consumed = self.dispatch(s, stmts[k + 1 :])
                k += 1 + consumed
                continue
            self.exec_stmt(s)
            k += 1

    def exec_stmt(self, s: A.Stmt) -> None:
        self.cost.ops += 1
        if isinstance(s, A.Block):
            self.exec_block_stmts(s.stmts)
            return
        if isinstance(s, A.VarDecl):
            if isinstance(s.type, A.ArrayType):
                raise JaponicaError(
                    f"host array declarations are not supported at {s.pos}; "
                    f"pass arrays as method parameters"
                )
            self.types[s.name] = s.type
            jt = jtype_of_prim(s.type.name)
            if s.init is not None:
                value, vt = self.eval(s.init)
                self.scalars[s.name] = java_ops.cast(value, vt, jt)
            else:
                self.scalars[s.name] = java_ops.default_value(jt)
            return
        if isinstance(s, A.Assign):
            self._assign(s)
            return
        if isinstance(s, A.IncDec):
            one = A.IntLit(s.pos, 1)
            self._assign(
                A.Assign(s.pos, s.target, "+" if s.op == "++" else "-", one)
            )
            return
        if isinstance(s, A.ExprStmt):
            self.eval(s.expr)
            return
        if isinstance(s, A.If):
            cond, _ = self.eval(s.cond)
            if cond:
                self.exec_stmt(s.then)
            elif s.els is not None:
                self.exec_stmt(s.els)
            return
        if isinstance(s, A.While):
            while True:
                cond, _ = self.eval(s.cond)
                if not cond:
                    return
                self.exec_stmt(s.body)
        if isinstance(s, A.For):
            if s.annotation is not None and self.dispatch is not None:
                self.dispatch(s, [])
                return
            if s.init is not None:
                self.exec_stmt(s.init)
            while True:
                if s.cond is not None:
                    cond, _ = self.eval(s.cond)
                    if not cond:
                        return
                self.exec_stmt(s.body)
                if s.update is not None:
                    self.exec_stmt(s.update)
        if isinstance(s, A.Return):
            raise _ReturnSignal()
        return

    def _assign(self, s: A.Assign) -> None:
        if isinstance(s.target, A.VarRef):
            name = s.target.name
            jt = self._scalar_type(name)
            value = self._combined_value(
                s, jt, lambda: (self.scalars[name], jt)
            )
            self.scalars[name] = value
            return
        target = s.target
        idx = tuple(self._eval_index(ix) for ix in target.indices)
        flat = self.storage.flat(target.base.name, idx)
        elem = self._elem_type(target.base.name)
        value = self._combined_value(
            s,
            elem,
            lambda: (self.storage.read_flat(target.base.name, flat), elem),
        )
        self.storage.write_flat(target.base.name, flat, value)

    def _combined_value(self, s: A.Assign, target_type: JType, current):
        value, vt = self.eval(s.value)
        if s.op:
            old, ot = current()
            if s.op in ("<<", ">>", ">>>"):
                result = java_ops.binop(s.op, old, int(value), ot)
                return java_ops.cast(result, ot, target_type)
            common = promote(ot, vt) if ot is not JType.BOOL else JType.BOOL
            a = java_ops.cast(old, ot, common)
            b = java_ops.cast(value, vt, common)
            result = java_ops.binop(s.op, a, b, common)
            return java_ops.cast(result, common, target_type)
        return java_ops.cast(value, vt, target_type)


class _ReturnSignal(Exception):
    pass


def run_method_host(
    method: A.Method,
    storage: ArrayStorage,
    scalars: dict[str, object],
    dispatch: Optional[LoopDispatch] = None,
) -> HostCost:
    """Execute a whole method body on the host."""
    types: dict[str, A.Type] = {p.name: p.type for p in method.params}
    ev = HostEvaluator(types, storage, scalars, dispatch)
    try:
        ev.exec_stmt(method.body)
    except _ReturnSignal:
        pass
    return ev.cost


def run_loop_sequential_host(
    loop,
    storage: ArrayStorage,
    scalar_env: dict[str, object],
    cost_model,
) -> tuple[Counts, float]:
    """Mode-C fallback for loops that could not be lowered (scalar
    live-outs): execute the loop AST sequentially on the host.

    Mutates ``scalar_env`` in place with updated scalar live-outs.
    Returns (counts, simulated seconds).
    """
    analysis = loop.analysis
    ev = HostEvaluator(analysis.outer_types, storage, scalar_env)
    node = analysis.info.loop
    # run the For statement itself (init/cond/update + body)
    saved_ann, node.annotation = node.annotation, None
    try:
        ev.exec_stmt(node)
    finally:
        node.annotation = saved_ann
    counts = ev.cost.as_counts()
    return counts, cost_model.cpu_serial_time(counts)
