"""Hardware platform model.

The paper's testbed is two Intel Xeon X5650 CPUs (12 cores @ 2.66 GHz, 16
worker threads plus 2 management threads) and one Nvidia Fermi M2050 (448
CUDA cores across 14 SMs @ 1.15 GHz), JDK 1.6 + CUDA 3.2 over PCIe gen2.

We model each device with a small set of interpretable throughput
parameters.  The defaults below are *calibrated*: starting from physical
values (core counts, frequencies, bandwidths), the efficiency and overhead
factors were fitted so the simulated benchmark suite reproduces the
speedup ratios the paper reports (see EXPERIMENTS.md for the fit).  The
dominant effects are faithful to the paper's explanation: JIT-compiled
Java sustains a small fraction of peak on the CPU, the JNI-managed
synchronous transfer path of the GPU-alone build is far slower than the
asynchronous pre-fetch path the task-sharing runtime uses, and the
GPU-alone build pays cyclic communication (re-transfers per kernel)
that the sharing runtime removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CpuSpec:
    """CPU-side throughput model."""

    cores: int = 12
    freq_ghz: float = 2.66
    worker_threads: int = 16
    ipc: float = 2.0
    #: Fraction of peak issue rate that JIT-compiled Java loop code sustains.
    java_efficiency: float = 0.006
    #: Sustained memory bandwidth (GB/s) across the two sockets.
    mem_bandwidth_gbps: float = 8.0
    #: Per-parallel-region overhead (thread pool dispatch), seconds.
    fork_join_overhead_s: float = 30e-6

    @property
    def scalar_ops_per_sec(self) -> float:
        """Sustained scalar op throughput of one worker thread."""
        return self.freq_ghz * 1e9 * self.ipc * self.java_efficiency


@dataclass(frozen=True)
class GpuSpec:
    """GPU-side throughput model (Fermi M2050 class)."""

    cores: int = 448
    sms: int = 14
    warp_size: int = 32
    freq_ghz: float = 1.15
    ipc: float = 1.0
    #: Fraction of peak the translated kernels sustain.  Fitted to the
    #: paper's figures: the JavaR->CUDA kernels are naive (one iteration
    #: per thread, no tiling, double precision on Fermi), and the paper's
    #: own GEMM numbers imply roughly 1-2 GFLOP/s achieved.
    kernel_efficiency: float = 0.015
    #: Device global-memory bandwidth (GB/s).
    mem_bandwidth_gbps: float = 12.0
    #: Kernel launch + JNI invocation overhead, seconds.
    launch_overhead_s: float = 10e-6
    #: Extra cost multiplier for special-function ops (div, sqrt, exp...).
    special_cost: float = 8.0

    @property
    def scalar_ops_per_sec_total(self) -> float:
        """Aggregate scalar op throughput across all cores."""
        return self.cores * self.freq_ghz * 1e9 * self.ipc * self.kernel_efficiency


@dataclass(frozen=True)
class InterconnectSpec:
    """Host<->device transfer model.

    ``sync_gbps`` is the JNI-managed synchronous path (Java heap array ->
    JNI copy -> cudaMemcpy), the only path the GPU-alone build uses.
    ``async_gbps`` is the pinned-staging asynchronous path used by the
    task-sharing runtime's pre-fetcher.  ``cyclic_factor`` multiplies the
    bytes the GPU-alone build moves, modelling the cyclic communication
    (per-kernel re-transfers) that the paper's communication optimizer
    removes [Jablin et al., ref 6].
    """

    sync_gbps: float = 0.2
    async_gbps: float = 0.5
    latency_s: float = 15e-6
    cyclic_factor: float = 1.0

    def sync_time(self, nbytes: float) -> float:
        return self.latency_s + nbytes / (self.sync_gbps * 1e9)

    def async_time(self, nbytes: float) -> float:
        return self.latency_s + nbytes / (self.async_gbps * 1e9)


@dataclass(frozen=True)
class Platform:
    """A heterogeneous CPU+GPU platform."""

    cpu: CpuSpec = field(default_factory=CpuSpec)
    gpu: GpuSpec = field(default_factory=GpuSpec)
    link: InterconnectSpec = field(default_factory=InterconnectSpec)

    def sharing_boundary(self) -> float:
        """Paper's boundary value ``Cg*Fg / (Cg*Fg + Cc*Fc)``.

        The fraction of the iteration space preferentially executed on the
        GPU under the task-sharing scheme.
        """
        cg_fg = self.gpu.cores * self.gpu.freq_ghz
        cc_fc = self.cpu.cores * self.cpu.freq_ghz
        return cg_fg / (cg_fg + cc_fc)

    def with_(self, **kwargs) -> "Platform":
        """Return a platform with selected sub-specs replaced."""
        return replace(self, **kwargs)


def paper_platform() -> Platform:
    """The calibrated model of the paper's evaluation platform."""
    return Platform()


def symmetric_platform() -> Platform:
    """A platform where CPU and GPU have equal aggregate throughput.

    Used by scheduler unit tests to make boundary arithmetic predictable
    (boundary = 1/2).
    """
    return Platform(
        cpu=CpuSpec(cores=8, freq_ghz=1.0, worker_threads=8, ipc=1.0,
                    java_efficiency=1.0, mem_bandwidth_gbps=50.0),
        gpu=GpuSpec(cores=8, sms=1, freq_ghz=1.0, kernel_efficiency=1.0,
                    mem_bandwidth_gbps=50.0),
    )
