"""Execution results: functional outputs plus simulated-time accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..faults.resilience import ResilienceReport
from ..ir.interpreter import Counts
from .clock import Timeline


@dataclass
class ExecutionResult:
    """Outcome of running one loop (or a whole application plan).

    ``arrays`` holds the final host state of every array the execution
    touched.  ``sim_time_s`` is the simulated wall-clock time, including
    host<->device transfers, exactly as the paper measures ("we take all
    the wall-clock time into consideration, which includes the time taken
    to transfer data").
    """

    arrays: dict[str, np.ndarray]
    sim_time_s: float
    counts: Counts = field(default_factory=Counts)
    timeline: Optional[Timeline] = None
    mode: str = ""
    detail: dict = field(default_factory=dict)
    #: what the resilience layer did during this execution (fault
    #: injection only; None when no fault plane was active)
    resilience: Optional["ResilienceReport"] = None

    @property
    def sim_time_ms(self) -> float:
        return self.sim_time_s * 1e3

    def speedup_over(self, other: "ExecutionResult") -> float:
        """other.time / self.time — how much faster this result is."""
        if self.sim_time_s <= 0:
            return float("inf")
        return other.sim_time_s / self.sim_time_s


def verify_same_results(
    got: dict[str, np.ndarray],
    expected: dict[str, np.ndarray],
    rtol: float = 0.0,
    atol: float = 0.0,
) -> None:
    """Assert two array-state dicts are (bitwise, by default) identical.

    Raises AssertionError naming the first differing array.
    """
    for name in sorted(expected):
        if name not in got:
            raise AssertionError(f"missing array {name!r} in result")
        a, b = got[name], expected[name]
        if a.shape != b.shape:
            raise AssertionError(
                f"array {name!r}: shape {a.shape} != expected {b.shape}"
            )
        if rtol == 0.0 and atol == 0.0:
            same = np.array_equal(a, b, equal_nan=True)
        else:
            same = np.allclose(a, b, rtol=rtol, atol=atol, equal_nan=True)
        if not same:
            diff = np.argwhere(
                ~np.isclose(a, b, rtol=rtol, atol=atol, equal_nan=True)
            )
            where = tuple(diff[0]) if len(diff) else "?"
            raise AssertionError(
                f"array {name!r} differs from sequential reference "
                f"(first difference at {where})"
            )
