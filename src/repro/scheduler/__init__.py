"""Profile-guided task scheduling: sharing, stealing, baselines."""

from .baselines import (
    CooperativeExecutor,
    CpuParallelExecutor,
    GpuOnlyExecutor,
    SerialExecutor,
)
from .boundary import boundary_fraction, split_at_boundary
from .context import ExecutionContext, JaponicaConfig
from .modes import ExecMode, decide_mode
from .queues import WorkerQueue
from .select import effective_scheme, recommend_scheme
from .sharing import TaskSharingScheduler
from .stealing import Placement, StealingStats, TaskStealingScheduler
from .task import Task

__all__ = [
    "CooperativeExecutor",
    "CpuParallelExecutor",
    "ExecMode",
    "ExecutionContext",
    "GpuOnlyExecutor",
    "JaponicaConfig",
    "Placement",
    "SerialExecutor",
    "StealingStats",
    "Task",
    "TaskSharingScheduler",
    "TaskStealingScheduler",
    "WorkerQueue",
    "boundary_fraction",
    "decide_mode",
    "effective_scheme",
    "recommend_scheme",
    "split_at_boundary",
]
