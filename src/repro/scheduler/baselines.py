"""Baseline executors the paper compares against.

* best serial (1-thread CPU),
* CPU-alone multithreaded (16 threads),
* GPU-alone (JNI-managed synchronous transfers with cyclic
  communication; TLS-alone for loops carrying true dependencies),
* simple cooperative 50 % / 50 % split.

Functional results of every baseline are identical to sequential
execution; only the simulated time differs.
"""

from __future__ import annotations

from typing import Optional

from ..errors import RuntimeFaultError, UnrecoverableFaultError, WorkerFault
from ..faults.plane import SITE_TRANSFER_D2H, SITE_TRANSFER_H2D
from ..faults.resilience import (
    is_recoverable_fault,
    restore_arrays,
    snapshot_arrays,
)
from ..ir.interpreter import ArrayStorage
from ..profiler.report import DependencyProfile
from ..runtime.clock import LANE_CPU, LANE_DMA, LANE_GPU, Timeline
from ..runtime.result import ExecutionResult
from ..tls.engine import GpuTlsEngine, TlsConfig
from ..translate.translator import TranslatedLoop
from .context import ExecutionContext
from .task import Task


class SerialExecutor:
    """Best serial version: every loop on one CPU thread, in order."""

    name = "serial"

    def __init__(self, ctx: ExecutionContext):
        self.ctx = ctx

    def execute(
        self, task: Task, storage: ArrayStorage, scalar_env: dict[str, object]
    ) -> ExecutionResult:
        loop = task.loop
        tl = Timeline()
        if loop.fn is not None:
            try:
                run = self.ctx.cpu.run_serial(
                    loop.fn, storage, scalar_env, task.indices(scalar_env),
                    elem_bytes=loop.elem_bytes,
                )
            except WorkerFault as err:
                if not err.injected:
                    raise
                # serial CPU is the bottom of every degradation ladder:
                # if it cannot complete, nothing can
                raise UnrecoverableFaultError(
                    f"serial execution failed: {err}",
                    site=err.site,
                    at_s=err.at_s,
                    retries=err.retries,
                )
            counts, time_s = run.counts, run.sim_time_s
        else:
            from ..runtime.hosteval import run_loop_sequential_host

            counts, time_s = run_loop_sequential_host(
                loop, storage, scalar_env, self.ctx.cost
            )
        tl.schedule(LANE_CPU, time_s, label="serial")
        return ExecutionResult(
            arrays=storage.arrays, sim_time_s=tl.makespan, counts=counts,
            timeline=tl, mode="serial",
        )


class CpuParallelExecutor:
    """CPU-alone: multithreaded where safe, sequential for TD loops.

    The hand-written CPU version privatizes FD-only loops (thread-local
    temporaries), so anything without a true dependence runs on all
    worker threads.
    """

    name = "cpu"

    def __init__(self, ctx: ExecutionContext, threads: Optional[int] = None):
        self.ctx = ctx
        self.threads = threads

    def execute(
        self, task: Task, storage: ArrayStorage, scalar_env: dict[str, object]
    ) -> ExecutionResult:
        loop = task.loop
        indices = task.indices(scalar_env)
        tl = Timeline()
        threads = self.threads or self.ctx.config.cpu_threads

        if loop.fn is None or self._has_true_dep(loop, indices, scalar_env, storage):
            serial = SerialExecutor(self.ctx)
            result = serial.execute(task, storage, scalar_env)
            result.mode = "cpu-seq"
            return result

        # FD-only loops are parallel-safe via thread-private copies, but
        # the vectorized fast path has no privatization: interpret them
        # in ascending order (sequential semantics) instead.
        profile = self.ctx.profiles.get(loop.id)
        fd_only = profile is not None and profile.has_false
        try:
            run = self.ctx.cpu.run_parallel(
                loop.fn, storage, scalar_env, indices, threads=threads,
                elem_bytes=loop.elem_bytes,
                allow_vectorized=not fd_only,
            )
        except WorkerFault as err:
            if not err.injected:
                raise
            # the executor restored array state before giving up; retry
            # the whole loop on the sequential last resort
            self.ctx.faults.degraded(
                err.site, "cpu-mt->cpu-seq", detail=str(err)
            )
            result = SerialExecutor(self.ctx).execute(task, storage, scalar_env)
            result.mode = "cpu-mt->cpu-seq"
            return result
        tl.schedule(LANE_CPU, run.sim_time_s, label=f"cpu-{threads}t")
        return ExecutionResult(
            arrays=storage.arrays, sim_time_s=tl.makespan, counts=run.counts,
            timeline=tl, mode="cpu-mt",
        )

    def _has_true_dep(
        self, loop: TranslatedLoop, indices, scalar_env, storage
    ) -> bool:
        if loop.is_static_doall:
            return False
        if loop.analysis.has_static_true:
            return True
        try:
            profile = self.ctx.ensure_profile(loop, indices, scalar_env, storage)
        except RuntimeFaultError as err:
            if not is_recoverable_fault(err):
                raise
            self.ctx.faults.degraded(
                err.site, "profile->assume-td",
                detail="profiling failed; assuming a true dependence",
            )
            return True
        return profile.has_true


class GpuOnlyExecutor:
    """GPU-alone: whole loop on the device.

    Transfers use the synchronous JNI path and pay the cyclic-
    communication factor (the naive round-trips the paper's optimizer
    removes).  Loops with true dependencies fall back to TLS-alone:
    speculation with pure GPU relaunch recovery, never borrowing the CPU.
    """

    name = "gpu"

    def __init__(self, ctx: ExecutionContext):
        self.ctx = ctx

    def execute(
        self, task: Task, storage: ArrayStorage, scalar_env: dict[str, object]
    ) -> ExecutionResult:
        loop = task.loop
        if loop.fn is None:
            # not expressible as a kernel: the honest GPU-alone equivalent
            # is host execution (the paper has no such benchmark)
            result = SerialExecutor(self.ctx).execute(task, storage, scalar_env)
            result.mode = "gpu-fallback-serial"
            return result

        faults = self.ctx.faults
        if not faults.enabled:
            return self._execute_gpu(task, storage, scalar_env)
        written = loop.analysis.arrays_written()
        snapshot = snapshot_arrays(storage, written)
        try:
            return self._execute_gpu(task, storage, scalar_env)
        except RuntimeFaultError as err:
            if not is_recoverable_fault(err):
                raise
            restore_arrays(storage, snapshot)
            mem = self.ctx.device.memory
            for name in written:
                alloc = mem.allocations.get(name)
                if alloc is not None:
                    alloc.stale_fraction = 1.0
            faults.degraded(err.site, "gpu-only->serial", detail=str(err))
            result = SerialExecutor(self.ctx).execute(task, storage, scalar_env)
            result.mode = "gpu-only->serial"
            return result

    def _execute_gpu(
        self, task: Task, storage: ArrayStorage, scalar_env: dict[str, object]
    ) -> ExecutionResult:
        loop = task.loop
        indices = task.indices(scalar_env)
        tl = Timeline()
        # A hand-written GPU port keeps arrays resident for the whole
        # program (nothing else touches them), so only stale data moves.
        b_in, b_out = self._register_resident(loop, storage, scalar_env)
        cyc = self.ctx.cost.cyclic_bytes  # GPU-alone moves extra bytes

        has_td = self._has_true_dep(loop, indices, scalar_env, storage)
        coalescing = self._coalescing(loop)

        dma_in = tl.schedule(
            LANE_DMA,
            self.ctx.cost.transfer_time(cyc(b_in), asynchronous=False),
            label="h2d-sync",
        )
        tl.schedule(LANE_GPU, 0.0, after=[dma_in])

        profile = self.ctx.profiles.get(loop.id)
        if has_td:
            # TLS-alone: optimistic relaunches, no CPU handoff.  Small
            # sub-loops bound the wasted speculative work when the loop
            # violates densely (a high-TD loop commits ~1 iteration per
            # relaunch either way).
            round_trip = self.ctx.cost.transfer_time(
                cyc(b_in), asynchronous=False
            ) + self.ctx.cost.transfer_time(cyc(b_out), asynchronous=False)
            engine = GpuTlsEngine(
                self.ctx.device,
                self.ctx.cpu,
                TlsConfig(
                    warps_per_subloop=1,
                    lookahead_warps=self.ctx.config.tls.lookahead_warps,
                    relaunch_transfer_s=round_trip,
                ),
                obs=self.ctx.obs,
            )
            tls = engine.execute(
                loop.fn, indices, scalar_env, storage,
                profile=None,  # no profiling in the GPU-alone build
                coalescing=coalescing,
                elem_bytes=loop.elem_bytes,
                timeline=tl,
            )
            counts = tls.counts
        elif profile is not None and profile.has_false:
            # a hand-written GPU port privatizes the FD-carrying scratch
            from ..tls.privatize import run_privatized

            priv = run_privatized(
                self.ctx.device, loop.fn, indices, scalar_env, storage,
                coalescing=coalescing, elem_bytes=loop.elem_bytes,
                profile=profile,
            )
            tl.schedule(
                LANE_GPU, priv.kernel_time_s + priv.commit_time_s,
                label="pe(v)",
            )
            counts = priv.counts
        else:
            # dependence-free: plain parallel kernel, direct stores
            launch = self.ctx.device.launch(
                loop.fn, indices, scalar_env, storage,
                mode="direct",
                coalescing=coalescing,
                elem_bytes=loop.elem_bytes,
                block_size=loop.annotation.threads,
            )
            tl.schedule(LANE_GPU, launch.sim_time_s, label="kernel")
            counts = launch.counts

        out_bytes = self.ctx.faults.charge_transfer(
            SITE_TRANSFER_D2H, cyc(b_out)
        )
        if out_bytes:
            m = self.ctx.obs.metrics
            m.counter("transfer.d2h.bytes").inc(out_bytes)
            m.counter("transfer.d2h.count").inc()
        tl.schedule(
            LANE_DMA,
            self.ctx.cost.transfer_time(out_bytes, asynchronous=False),
            not_before=tl.barrier([LANE_GPU]),
            label="d2h-sync",
        )
        return ExecutionResult(
            arrays=storage.arrays, sim_time_s=tl.makespan, counts=counts,
            timeline=tl, mode="gpu-only",
        )

    def _register_resident(
        self,
        loop: TranslatedLoop,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
    ) -> tuple[float, float]:
        """Allocate device copies; return (stale in-bytes, out-bytes)."""
        mem = self.ctx.device.memory
        b_in = 0.0
        for move in loop.data_plan.copyin:
            arr = storage.arrays[move.array]
            alloc = mem.allocations.get(move.array)
            nbytes = move.nbytes(scalar_env, arr)
            if alloc is None:
                # copyin's return already includes fault re-issues
                b_in += mem.copyin(move.array, arr.shape, arr.dtype, nbytes)
                alloc = mem.allocations[move.array]
            else:
                refreshed = self.ctx.faults.charge_transfer(
                    SITE_TRANSFER_H2D, nbytes * alloc.stale_fraction
                )
                b_in += refreshed
                if refreshed:
                    m = self.ctx.obs.metrics
                    m.counter("transfer.h2d.bytes").inc(refreshed)
                    m.counter("transfer.h2d.count").inc()
                alloc.valid = True
            alloc.stale_fraction = 0.0
        for move in loop.data_plan.create + loop.data_plan.copyout:
            arr = storage.arrays[move.array]
            if move.array not in mem.allocations:
                mem.alloc(move.array, arr.shape, arr.dtype)
        b_out = float(
            loop.data_plan.total_out_bytes(scalar_env, storage.arrays)
        )
        return b_in, b_out

    def _has_true_dep(self, loop, indices, scalar_env, storage) -> bool:
        if loop.is_static_doall:
            return False
        if loop.analysis.has_static_true:
            return True
        try:
            profile = self.ctx.ensure_profile(loop, indices, scalar_env, storage)
        except RuntimeFaultError as err:
            if not is_recoverable_fault(err):
                raise
            self.ctx.faults.degraded(
                err.site, "profile->assume-td",
                detail="profiling failed; assuming a true dependence",
            )
            return True
        return profile.has_true

    def _coalescing(self, loop: TranslatedLoop) -> float:
        profile = self.ctx.profiles.get(loop.id)
        return profile.coalescing if profile else loop.static_coalescing


class CooperativeExecutor:
    """Simple cooperative version: a fixed split, no prefetch pipeline."""

    name = "coop50"

    def __init__(self, ctx: ExecutionContext, split: float = 0.5):
        self.ctx = ctx
        self.split = split

    def execute(
        self, task: Task, storage: ArrayStorage, scalar_env: dict[str, object]
    ) -> ExecutionResult:
        from .sharing import TaskSharingScheduler

        saved_boundary = self.ctx.config.boundary_override
        saved_prefetch = self.ctx.config.async_prefetch
        self.ctx.config.boundary_override = self.split
        self.ctx.config.async_prefetch = False
        try:
            result = TaskSharingScheduler(self.ctx).execute(
                task, storage, scalar_env
            )
        finally:
            self.ctx.config.boundary_override = saved_boundary
            self.ctx.config.async_prefetch = saved_prefetch
        result.mode = f"coop{int(self.split * 100)}"
        return result
