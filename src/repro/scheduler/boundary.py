"""The sharing-scheme boundary: Cg*Fg / (Cg*Fg + Cc*Fc).

"Iterations before the boundary are preferential to be executed on GPU
... the iterations beyond the boundary are more suited to the CPU."
"""

from __future__ import annotations

from typing import Sequence

from ..runtime.platform import Platform


def boundary_fraction(platform: Platform) -> float:
    """The paper's boundary value in (0, 1)."""
    return platform.sharing_boundary()


def split_at_boundary(
    indices: Sequence[int], fraction: float
) -> tuple[list[int], list[int]]:
    """Split an iteration list: ``[0, k)`` to GPU (ascending), ``[k, n)``
    to CPU (to be walked in descending order)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"boundary fraction {fraction} out of [0, 1]")
    n = len(indices)
    k = int(round(n * fraction))
    gpu = list(indices[:k])
    cpu = list(indices[k:])
    return gpu, cpu
