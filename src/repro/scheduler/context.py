"""Execution context: devices, cost model, configuration, profile cache."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cache.artifacts import ArtifactCache, profile_key
from ..cpusim.executor import CpuExecutor
from ..faults.resilience import FaultRuntime
from ..gpusim.device import GpuDevice
from ..gpusim.pool import DevicePool
from ..ir.interpreter import ArrayStorage
from ..ir.native import KernelDispatcher
from ..obs.metrics import NULL_INSTRUMENTATION, Instrumentation
from ..obs.tracer import PHASE_PROFILE
from ..profiler.report import DEFAULT_DD_THRESHOLD, DependencyProfile
from ..profiler.trace import profile_loop
from ..runtime.costmodel import CostModel
from ..runtime.deadline import Deadline
from ..runtime.platform import Platform, paper_platform
from ..tls.engine import TlsConfig
from ..translate.translator import TranslatedLoop


@dataclass
class JaponicaConfig:
    """Runtime tuning knobs."""

    #: threshold N of the workflow diagram: TD density above N is 'high'
    dd_threshold: float = DEFAULT_DD_THRESHOLD
    #: CPU worker threads ("we set the number of threads as 16")
    cpu_threads: int = 16
    #: GPU chunks the sharing scheme pipelines ("uniform chunks of
    #: moderate size ... executed on GPU in an ascending order")
    sharing_chunks: int = 4
    #: TLS engine configuration (mode B)
    tls: TlsConfig = field(default_factory=lambda: TlsConfig(warps_per_subloop=32))
    #: iterations the profiler instruments (prefix sample)
    profile_sample: int = 8192
    #: charge profiling time to the simulated clock
    include_profile_time: bool = True
    #: override the sharing boundary (None = paper formula)
    boundary_override: Optional[float] = None
    #: disable the async-prefetch pipeline (ablation)
    async_prefetch: bool = True
    #: paper-scale projection factors (see runtime.costmodel.CostModel)
    work_scale: float = 1.0
    byte_scale: float = 1.0
    iter_scale: float = 1.0
    link_scale: float = 1.0
    #: simulated GPUs in the device pool (1 = the seed single-GPU path)
    devices: int = 1
    #: tiered native kernel backend: promote hot kernels from the
    #: interpreter to generated type-specialized source (and numba where
    #: importable).  Semantics are bit-identical by construction; turn
    #: off to force the interpreter everywhere.
    native: bool = True
    #: run every native launch twice — native on scratch storage, the
    #: interpreter on the real storage — and raise NativeMismatch on any
    #: divergence (arrays, counters, per-lane fuel, lane states)
    native_crosscheck: bool = False


class ExecutionContext:
    """Everything an execution strategy needs, plus the profile cache.

    Profiles are cached per loop id: the paper profiles a loop once and
    reuses the dependency information across scheduling decisions.
    """

    def __init__(
        self,
        platform: Optional[Platform] = None,
        config: Optional[JaponicaConfig] = None,
        faults: Optional[FaultRuntime] = None,
        obs: Optional[Instrumentation] = None,
        cache: Optional[ArtifactCache] = None,
    ):
        self.platform = platform or paper_platform()
        self.config = config or JaponicaConfig()
        self.cost = CostModel(
            self.platform,
            work_scale=self.config.work_scale,
            byte_scale=self.config.byte_scale,
            iter_scale=self.config.iter_scale,
            link_scale=self.config.link_scale,
        )
        # one FaultRuntime shared by every component so a schedule
        # installed through it is seen everywhere at once
        self.faults = faults or FaultRuntime()
        # one Instrumentation bundle likewise shared by every component;
        # the default is the no-op plane (zero overhead, no state)
        self.obs = obs or NULL_INSTRUMENTATION
        # one kernel dispatcher shared by every executor of the context:
        # devices and CPU hit the same process-wide compile cache, so an
        # N-device pool compiles each kernel once, not N times
        self.kernels = KernelDispatcher(
            obs=self.obs,
            native=self.config.native,
            crosscheck=self.config.native_crosscheck,
        )
        self.device = GpuDevice(
            self.platform.gpu, self.cost, faults=self.faults, obs=self.obs,
            kernels=self.kernels,
        )
        # the pool wraps the primary device; pool size 1 adds no devices
        # and no behaviour, so the seed single-GPU path is untouched
        self.pool = DevicePool(
            self.device,
            self.cost,
            self.platform,
            size=max(1, self.config.devices),
            faults=self.faults,
            obs=self.obs,
            kernels=self.kernels,
        )
        self.cpu = CpuExecutor(
            self.platform.cpu, self.cost, faults=self.faults, obs=self.obs,
            kernels=self.kernels,
        )
        self.profiles: dict[str, DependencyProfile] = {}
        # optional wall-clock budget of the current request (serve plane);
        # checked at phase boundaries so cancellation is always clean
        self.deadline: Optional[Deadline] = None
        # optional cross-context artifact cache (content-keyed); the
        # per-loop-id dict above stays the first-level cache within a run
        self.cache = cache
        # pool topology is part of the signature only beyond one device,
        # so seed-era cache entries stay valid for single-GPU runs
        pool_sig = self.pool.signature() if self.pool.size > 1 else None
        self._platform_sig = repr((
            self.platform,
            self.config.work_scale,
            self.config.byte_scale,
            self.config.iter_scale,
            self.config.link_scale,
        ) + ((pool_sig,) if pool_sig is not None else ())
          # the execution tier is part of the signature: artifacts
          # produced by the native backend never serve an interpreter-only
          # run (and vice versa), even though both are bit-identical
          + (("native-v1",) if self.config.native else ()))

    @property
    def scheduler_seed(self) -> int:
        """Seed for deterministic scheduler tie-breaks.

        Follows the installed fault schedule's seed so a chaos failure
        replayed with the same ``--fault-seed`` reproduces the identical
        placement decisions.
        """
        schedule = self.faults.plane.schedule
        return schedule.seed if schedule is not None else 0

    def reset_device(self) -> None:
        """Fresh device memory pool-wide (new application run)."""
        self.pool.reset_memory()

    def check_deadline(self, phase: str) -> None:
        """Enforce the request deadline at a phase boundary (if any)."""
        if self.deadline is not None:
            self.deadline.check(phase)

    def boundary(self) -> float:
        if self.config.boundary_override is not None:
            return self.config.boundary_override
        if self.pool.size > 1:
            return self.pool.sharing_boundary()
        return self.platform.sharing_boundary()

    def ensure_profile(
        self,
        loop: TranslatedLoop,
        indices,
        scalar_env: dict[str, object],
        storage: ArrayStorage,
    ) -> DependencyProfile:
        """Profile the loop on the GPU (once), caching the result."""
        if loop.id in self.profiles:
            return self.profiles[loop.id]
        self.check_deadline(f"profile:{loop.id}")
        if loop.fn is None:
            raise ValueError(f"loop {loop.id} cannot run on the GPU")
        # second-level content-keyed cache across contexts/processes.
        # Bypassed under fault injection: profiling launches consume
        # fault-schedule probes, and a cache hit would skip those draws
        # and desynchronise the deterministic schedule.
        key = None
        if self.cache is not None and not self.faults.enabled:
            try:
                sample = indices[: max(1, self.config.profile_sample)]
            except TypeError:
                sample = list(indices)[: max(1, self.config.profile_sample)]
            key = profile_key(
                loop.fn,
                sample,
                scalar_env,
                storage,
                self.device.spec.warp_size,
                self._platform_sig,
            )
            cached = self.cache.get(
                key, "profile", obs=self.obs, copy_value=True
            )
            if cached is not None:
                self.profiles[loop.id] = cached
                return cached
        with self.obs.tracer.span(
            f"profile:{loop.id}", PHASE_PROFILE, loop=loop.id
        ) as sp:
            run = profile_loop(
                self.device,
                loop.fn,
                indices,
                scalar_env,
                storage,
                max_sample=self.config.profile_sample,
            )
            profile = run.profile
            sp.annotate(
                sampled=run.sampled_iterations,
                td_density=profile.td_density,
                fd_density=profile.fd_density,
            )
            sp.set_sim(0.0, profile.profile_time_s)
        m = self.obs.metrics
        m.counter("profile.runs").inc()
        m.counter("profile.time_s").inc(profile.profile_time_s)
        m.histogram("profile.td_density").observe(profile.td_density)
        m.histogram("profile.fd_density").observe(profile.fd_density)
        self.profiles[loop.id] = profile
        if key is not None:
            self.cache.put(key, profile)
        return profile
