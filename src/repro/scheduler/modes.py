"""Execution-mode dispatch: the workflow diagram of Figure 2(b).

::

    Loops --- Determined DOALL? --yes--> A
                |no
                v (profile)
            True dependence?
                |yes: density > N ? --high--> C
                |                  --low---> B
                |no
                v
            Any false dependence? --yes--> D
                                  --no---> D'

Mode A: boundary split, GPU parallel + CPU multithreaded.
Mode B: GPU-TLS with CPU handoff on violations.
Mode C: CPU sequential.
Mode D: GPU privatized PE(V) + CPU *sequential* part (lock-step TD checks
        on the GPU cannot rule out TDs under CPU-parallel interleavings).
Mode D': like A (no dependencies materialized at runtime).
"""

from __future__ import annotations

import enum
from typing import Optional

from ..profiler.report import DependencyProfile
from ..translate.translator import TranslatedLoop


class ExecMode(enum.Enum):
    A = "A"  # DOALL: GPU PE + CPU MT
    B = "B"  # low TD density: GPU-TLS
    C = "C"  # high TD density (or unloweable): CPU sequential
    D = "D"  # FD only: GPU privatized + CPU sequential part
    D_PRIME = "D'"  # profiled clean: parallel everywhere


def decide_mode(
    loop: TranslatedLoop,
    profile: Optional[DependencyProfile],
    dd_threshold: float,
) -> ExecMode:
    """Apply the Figure-2(b) decision procedure.

    ``profile`` must be provided for every loop that is not statically
    DOALL and not CPU-only.
    """
    if loop.cpu_only:
        return ExecMode.C
    if loop.is_static_doall:
        return ExecMode.A
    if profile is None:
        raise ValueError(
            f"loop {loop.id} is not statically DOALL; a dependency profile "
            f"is required to choose its execution mode"
        )
    if profile.has_true:
        if profile.td_density > dd_threshold:
            return ExecMode.C
        return ExecMode.B
    if profile.has_false:
        return ExecMode.D
    return ExecMode.D_PRIME


def shardable(mode: ExecMode) -> bool:
    """True when a mode's GPU side may be sharded across a device pool.

    Only the independent modes qualify: A (static DOALL) and D' (profiled
    clean).  The speculative (B) and privatized (D) modes keep their
    dependency machinery — TLS sub-loops, PE(V) commit order — on a
    single device, as cross-device conflict detection would need the
    inter-GPU coherence the paper's runtime does not have.
    """
    return mode in (ExecMode.A, ExecMode.D_PRIME)


#: Degradation-ladder rungs below the native modes.
RUNG_CPU_MT = "cpu-mt"    # all iterations on the CPU thread pool
RUNG_CPU_SEQ = "cpu-seq"  # sequential CPU: the always-correct last resort


def downgrade_ladder(mode: ExecMode) -> list[str]:
    """Fallback rungs for a mode, safest last.

    The first rung is the mode itself (the native plan); each later rung
    trades performance for independence from the failing component.  A
    GPU+CPU-MT mode can drop the GPU and still run multithreaded; the
    speculative and privatized modes cannot (their CPU halves rely on
    GPU-side dependency machinery), so they fall straight to sequential.
    Sequential CPU execution is always correct for any loop, hence it
    terminates every ladder.
    """
    if mode in (ExecMode.A, ExecMode.D_PRIME):
        return [mode.value, RUNG_CPU_MT, RUNG_CPU_SEQ]
    if mode in (ExecMode.B, ExecMode.D):
        return [mode.value, RUNG_CPU_SEQ]
    return [RUNG_CPU_SEQ]
