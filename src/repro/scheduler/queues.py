"""Worker queues with preferential stealing for the task-stealing scheme."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from .task import Task


@dataclass
class WorkerQueue:
    """FIFO task queue for one worker (CPU or GPU)."""

    name: str
    tasks: deque = field(default_factory=deque)

    def push(self, task: Task) -> None:
        self.tasks.append(task)

    def pop(self) -> Optional[Task]:
        return self.tasks.popleft() if self.tasks else None

    def steal(self, prefer: Callable[[Task], bool]) -> Optional[Task]:
        """Remove and return a preferential task, if any; else any task.

        ``prefer`` ranks tasks the *stealing* worker runs well; when no
        task satisfies it, the oldest task is taken (classic work
        stealing), unless the queue is empty.
        """
        for k, task in enumerate(self.tasks):
            if prefer(task):
                del self.tasks[k]
                return task
        return self.pop()

    def steal_only_if(self, allowed: Callable[[Task], bool]) -> Optional[Task]:
        """Steal the first task satisfying ``allowed``; never settle."""
        for k, task in enumerate(self.tasks):
            if allowed(task):
                del self.tasks[k]
                return task
        return None

    def __len__(self) -> int:
        return len(self.tasks)

    def __bool__(self) -> bool:
        return bool(self.tasks)
