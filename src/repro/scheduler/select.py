"""Scheme selection heuristic (paper §V-C).

"Task sharing is preferable for applications with heavy computations
centralized in only one or few loops while task stealing is more suitable
for those with computations evenly distributed across several
data-independent loops."
"""

from __future__ import annotations

from typing import Sequence

from ..translate.translator import TranslatedLoop


def recommend_scheme(
    loops: Sequence[TranslatedLoop],
    min_independent: int = 2,
) -> str:
    """'sharing' or 'stealing' for a method's annotated loops.

    Stealing is recommended when the first PDG batch contains at least
    ``min_independent`` data-independent loops (several peers to spread
    over the two queues); otherwise sharing.
    """
    if len(loops) < 2:
        return "sharing"
    first_batch = 0
    for k, loop in enumerate(loops):
        reads = loop.analysis.arrays_read()
        writes = loop.analysis.arrays_written()
        independent = True
        for earlier in loops[:k]:
            e_w = earlier.analysis.arrays_written()
            e_r = earlier.analysis.arrays_read()
            if (e_w & (reads | writes)) or (e_r & writes):
                independent = False
                break
        if independent:
            first_batch += 1
    return "stealing" if first_batch >= min_independent else "sharing"


def effective_scheme(
    loops: Sequence[TranslatedLoop], override: str | None = None
) -> str:
    """The scheme to use: explicit override > annotation > heuristic."""
    if override in ("sharing", "stealing"):
        return override
    for loop in loops:
        if loop.annotation.scheme_explicit:
            return loop.annotation.scheme
    return recommend_scheme(loops)
