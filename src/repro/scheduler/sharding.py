"""Sharded scheduling across the multi-GPU device pool.

The sharing scheme's GPU side is one contiguous block of the iteration
space.  With a device pool that block is further *sharded*: partitioned
across the alive devices in proportion to their relative throughput
(``C_k * F_k``, the same convention as the paper's CPU/GPU boundary),
each shard running its own chunked DMA/kernel pipeline on the device's
private ``gpu{k}``/``dma{k}`` timeline lanes.

Sharding never changes functional results: DOALL / profiled-clean loops
(the only shardable modes, see :func:`repro.scheduler.modes.shardable`)
execute each index exactly once no matter which device runs it, so the
multi-device output is bit-identical to the single-device output.

Fault handling: a device whose launches exhaust the retry budget is
marked dead in the pool and its unexecuted shard *drains* to the
surviving devices (injected launch faults fire strictly before any lane
executes, so a failed shard leaves no partial writes and re-running it
elsewhere is safe).  When every device is dead the leftover drains to
the CPU thread pool — the same rung the single-device degradation
ladder would use.

Placement ties (equal-cost devices) break deterministically through a
seed derived from the installed fault schedule, so a chaos failure
replays bit-for-bit under the same ``--fault-seed``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

from ..cpusim.threads import block_partition, descending
from ..errors import RuntimeFaultError
from ..faults.plane import (
    SITE_GPU_LAUNCH,
    SITE_TRANSFER_D2H,
    SITE_TRANSFER_H2D,
)
from ..faults.resilience import is_recoverable_fault
from ..ir.interpreter import ArrayStorage, Counts, N_COUNTERS
from ..runtime.clock import LANE_CPU, Timeline, dma_lane, gpu_lane
from ..runtime.result import ExecutionResult
from ..translate.translator import TranslatedLoop
from .boundary import split_at_boundary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .sharing import TaskSharingScheduler


def seeded_pick(seed: int, key: object, n: int) -> int:
    """Deterministic index in ``[0, n)`` for tie-breaking.

    A pure function of ``(seed, key)`` through a digest (``hash()`` is
    randomized per process), so equal-cost placement decisions replay
    identically under the same scheduler seed.
    """
    if n <= 1:
        return 0
    text = repr((seed, key)).encode()
    digest = hashlib.sha256(text).digest()
    return int.from_bytes(digest[:8], "big") % n


def partition_weighted(
    items: Sequence[int], weights: Sequence[float]
) -> list[list[int]]:
    """Split ``items`` into ``len(weights)`` contiguous shards by weight.

    Shard boundaries are ``round(n * cum_weight / total)``; the rounded
    cumulative sums are monotone, so the shards are an *exact* partition
    of the input — no index lost, none duplicated — which the property
    suite locks down.  Zero total weight degenerates to everything in
    shard 0.
    """
    if not weights:
        raise ValueError("partition_weighted needs at least one weight")
    if any(w < 0 for w in weights):
        raise ValueError(f"negative shard weight in {weights!r}")
    n = len(items)
    total = sum(weights)
    if total <= 0:
        return [list(items)] + [[] for _ in weights[1:]]
    shards: list[list[int]] = []
    cum = 0.0
    lo = 0
    for w in weights:
        cum += w
        hi = int(round(n * cum / total))
        shards.append(list(items[lo:hi]))
        lo = hi
    return shards


@dataclass
class ShardOutcome:
    """Bookkeeping of one sharded dispatch (tests, reports, traces)."""

    #: iterations executed per device id
    per_device: dict[int, int] = field(default_factory=dict)
    #: iterations drained off dead devices and re-run elsewhere
    drained: int = 0
    #: iterations that ended on the CPU because every device died
    drained_to_cpu: int = 0
    #: devices marked dead during this dispatch
    dead_devices: list[int] = field(default_factory=list)


def register_device_data(
    sched: "TaskSharingScheduler",
    device,
    loop: TranslatedLoop,
    storage: ArrayStorage,
    scalar_env: dict[str, object],
) -> tuple[float, int]:
    """Per-device twin of the sharing scheduler's data registration.

    Allocates/refreshes the loop's operands in ``device``'s allocation
    table (each pool device tracks its own residency and stale
    fractions) and returns ``(in_bytes, out_bytes)`` for that device.
    """
    mem = device.memory
    faults = sched.ctx.faults
    b_in = 0.0
    for move in loop.data_plan.copyin:
        arr = storage.arrays[move.array]
        alloc = mem.allocations.get(move.array)
        if alloc is None:
            nbytes = move.nbytes(scalar_env, arr)
            b_in += mem.copyin(move.array, arr.shape, arr.dtype, nbytes)
            alloc = mem.allocations[move.array]
        else:
            nbytes = move.nbytes(scalar_env, arr)
            refreshed = faults.charge_transfer(
                SITE_TRANSFER_H2D,
                nbytes * alloc.stale_fraction,
                device.device_id,
            )
            b_in += refreshed
            if refreshed:
                m = sched.ctx.obs.metrics
                m.counter("transfer.h2d.bytes").inc(refreshed)
                m.counter("transfer.h2d.count").inc()
            alloc.valid = True
        alloc.stale_fraction = 0.0
    for move in loop.data_plan.create:
        arr = storage.arrays[move.array]
        if move.array not in mem.allocations:
            mem.alloc(move.array, arr.shape, arr.dtype)
    b_out = 0
    for move in loop.data_plan.copyout:
        arr = storage.arrays[move.array]
        if move.array not in mem.allocations:
            mem.alloc(move.array, arr.shape, arr.dtype)
        b_out += move.nbytes(scalar_env, arr)
    return b_in, b_out


def _run_device_shard(
    sched: "TaskSharingScheduler",
    device_id: int,
    shard: list[int],
    n_total: int,
    loop: TranslatedLoop,
    scalar_env: dict[str, object],
    storage: ArrayStorage,
    tl: Timeline,
    coalescing: float,
    buffered: bool,
    raw: list[int],
    tag: str = "",
) -> list[int]:
    """Run one shard on one device; returns indices left unexecuted.

    An empty return means the whole shard ran.  A non-empty return means
    the device died mid-shard (it is already marked dead in the pool and
    the degradation event recorded); because launch faults fire before
    any lane executes, the returned indices carry no partial writes.
    """
    ctx = sched.ctx
    cfg = ctx.config
    pool = ctx.pool
    dev = pool.device(device_id)
    cost = pool.cost_of(device_id)
    faults = ctx.faults

    b_in, b_out = register_device_data(sched, dev, loop, storage, scalar_env)
    frac = len(shard) / max(1, n_total)

    nchunks = max(1, min(cfg.sharing_chunks, len(shard)))
    chunks = [c for c in block_partition(shard, nchunks) if c]
    glane, dlane = gpu_lane(device_id), dma_lane(device_id)
    asynchronous = cfg.async_prefetch

    executed = 0
    kernel_events = []
    if asynchronous:
        per_chunk_in = (b_in * frac) / max(1, len(chunks))
    else:
        # no prefetch: one synchronous transfer for the whole shard
        tl.schedule(
            dlane,
            cost.transfer_time(b_in * frac, asynchronous=False),
            label=f"h2d-sync{tag}",
        )
    for k, chunk in enumerate(chunks):
        if asynchronous:
            dma = tl.schedule(
                dlane,
                cost.transfer_time(per_chunk_in, asynchronous=True),
                label=f"h2d#{k}{tag}",
            )
            deps = [dma]
        else:
            deps = []
        try:
            launch = dev.launch(
                loop.fn,
                chunk,
                scalar_env,
                storage,
                mode="buffered" if buffered else "direct",
                coalescing=coalescing,
                elem_bytes=loop.elem_bytes,
                block_size=loop.annotation.threads,
            )
        except RuntimeFaultError as err:
            if not is_recoverable_fault(err):
                raise
            pool.mark_dead(device_id)
            faults.recorder.clock_s = tl.makespan
            leftover = [i for c in chunks[k:] for i in c]
            faults.degraded(
                err.site,
                f"gpu{device_id}->drain",
                detail=(
                    f"device {device_id} died with {len(leftover)} "
                    f"iterations pending: {err}"
                ),
            )
            self_frac = executed / max(1, n_total)
            _shard_epilogue(
                sched, dev, cost, tl, dlane, kernel_events,
                b_out, self_frac, asynchronous, tag,
            )
            return leftover
        if buffered:
            dev.commit_lanes(launch.lanes, storage, chunk)
        launch.counts.add_to_raw(raw)
        executed += len(chunk)
        kernel_events.append(
            tl.schedule(
                glane, launch.sim_time_s, after=deps,
                label=f"kernel#{k}{tag}",
            )
        )
    _shard_epilogue(
        sched, dev, cost, tl, dlane, kernel_events,
        b_out, frac, asynchronous, tag,
    )
    return []


def _shard_epilogue(
    sched, dev, cost, tl, dlane, kernel_events, b_out, frac, asynchronous, tag
):
    """Copy the executed fraction's outputs back after the last kernel."""
    if not kernel_events or b_out * frac <= 0:
        return
    out_bytes = sched.ctx.faults.charge_transfer(
        SITE_TRANSFER_D2H, b_out * frac, dev.device_id
    )
    sched._count_d2h(out_bytes)
    tl.schedule(
        dlane,
        cost.transfer_time(out_bytes, asynchronous=asynchronous),
        after=[kernel_events[-1]],
        label=f"d2h{tag}",
    )


def run_sharded_mode_a(
    sched: "TaskSharingScheduler",
    loop: TranslatedLoop,
    indices: list[int],
    scalar_env: dict[str, object],
    storage: ArrayStorage,
    tl: Timeline,
    coalescing: float,
    buffered: bool = False,
) -> ExecutionResult:
    """Mode A / D' across the device pool: sharded PE + CPU MT.

    The CPU/GPU boundary uses the pool-generalized formula
    ``sum(Ci*Fi) / (sum(Ci*Fi) + Cc*Fc)``; the GPU part is then
    weight-partitioned across the alive devices.
    """
    ctx = sched.ctx
    cfg = ctx.config
    pool = ctx.pool
    gpu_idx, cpu_idx = split_at_boundary(indices, ctx.boundary())
    n_total = max(1, len(indices))
    frac_gpu = len(gpu_idx) / n_total

    raw = [0] * N_COUNTERS
    outcome = ShardOutcome()
    drained: list[int] = []
    alive = pool.alive_ids()
    if alive:
        shards = partition_weighted(gpu_idx, [pool.weight(k) for k in alive])
    else:
        # the whole pool died in an earlier dispatch of this run: any
        # GPU-side iterations go straight to the CPU drain below
        shards = []
        drained = list(gpu_idx)
    for pos, k in enumerate(alive):
        shard = shards[pos]
        if not shard:
            continue
        leftover = _run_device_shard(
            sched, k, shard, n_total, loop, scalar_env, storage, tl,
            coalescing, buffered, raw,
        )
        if leftover:
            outcome.dead_devices.append(k)
            drained.extend(leftover)
        outcome.per_device[k] = outcome.per_device.get(k, 0) + (
            len(shard) - len(leftover)
        )

    # drain dead devices' shards to survivors (seeded tie-break between
    # devices whose compute lanes free up at the same instant)
    attempt = 0
    while drained and pool.alive_ids():
        survivors = pool.alive_ids()
        free = {k: tl.barrier([gpu_lane(k)]) for k in survivors}
        best = min(free.values())
        ties = [k for k in survivors if free[k] == best]
        k = ties[
            seeded_pick(ctx.scheduler_seed, ("drain", loop.id, attempt),
                        len(ties))
        ]
        batch, drained = list(drained), []
        leftover = _run_device_shard(
            sched, k, batch, n_total, loop, scalar_env, storage, tl,
            coalescing, buffered, raw, tag=f"-drain{attempt}",
        )
        if leftover:
            outcome.dead_devices.append(k)
            drained = leftover
        outcome.drained += len(batch) - len(leftover)
        outcome.per_device[k] = outcome.per_device.get(k, 0) + (
            len(batch) - len(leftover)
        )
        attempt += 1

    if drained:
        # every device is dead: the leftover runs on the CPU thread pool
        # (the same rung the single-device ladder degrades to)
        ctx.faults.degraded(
            SITE_GPU_LAUNCH,
            "pool->cpu-mt",
            detail=f"all devices dead; {len(drained)} iterations to CPU",
        )
        run = ctx.cpu.run_parallel(
            loop.fn,
            storage,
            scalar_env,
            drained,
            threads=cfg.cpu_threads,
            elem_bytes=loop.elem_bytes,
        )
        run.counts.add_to_raw(raw)
        tl.schedule(LANE_CPU, run.sim_time_s, label="cpu-mt-drain")
        sched._cpu_wrote(loop, len(drained) / n_total)
        outcome.drained_to_cpu = len(drained)

    # CPU side: the right part, multithreaded, walked descending
    if cpu_idx:
        cpu_run = ctx.cpu.run_parallel(
            loop.fn,
            storage,
            scalar_env,
            descending(cpu_idx),
            threads=cfg.cpu_threads,
            elem_bytes=loop.elem_bytes,
        )
        cpu_run.counts.add_to_raw(raw)
        tl.schedule(LANE_CPU, cpu_run.sim_time_s, label="cpu-mt")
        sched._cpu_wrote(loop, 1.0 - frac_gpu)

    m = ctx.obs.metrics
    for k, n_iter in outcome.per_device.items():
        m.counter(f"scheduler.shard.iterations.d{k}").inc(n_iter)
    if outcome.drained:
        m.counter("scheduler.shard.drained").inc(outcome.drained)
    if attempt:
        # drain rounds run under fault recovery; the insight plane's
        # bucket attribution keys off the "-drainN" event labels and this
        # counter reconciles the two views
        m.counter("scheduler.shard.drain_batches").inc(attempt)
    if outcome.drained_to_cpu:
        m.counter("scheduler.shard.drained_to_cpu").inc(
            outcome.drained_to_cpu
        )

    return ExecutionResult(
        arrays=storage.arrays,
        sim_time_s=tl.makespan,
        counts=Counts.from_raw(raw),
        timeline=tl,
        detail={
            "gpu_iterations": len(gpu_idx) - outcome.drained_to_cpu,
            "cpu_iterations": len(cpu_idx) + outcome.drained_to_cpu,
            "shards": outcome,
        },
    )
