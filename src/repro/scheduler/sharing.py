"""The task-sharing scheme (paper §V-A).

One loop's iteration space is split at the global boundary
``Cg*Fg / (Cg*Fg + Cc*Fc)``: the left part runs on the GPU in ascending
uniform chunks with data prefetched "in advance and asynchronously with
the kernel execution to avoid cyclic communication and to hide some
latency"; the right part runs on the CPU in descending order.  The
execution mode (A/B/C/D/D') decides what "runs on" means on each side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cpusim.threads import block_partition, descending
from ..errors import RuntimeFaultError, UnrecoverableFaultError
from ..faults.plane import SITE_TRANSFER_D2H, SITE_TRANSFER_H2D
from ..faults.resilience import (
    is_recoverable_fault,
    restore_arrays,
    snapshot_arrays,
)
from ..ir.interpreter import N_COUNTERS, ArrayStorage, Counts
from ..obs.tracer import PHASE_SCHEDULE
from ..profiler.report import DependencyProfile
from ..runtime.clock import LANE_CPU, LANE_DMA, LANE_GPU, Timeline
from ..runtime.result import ExecutionResult
from ..tls.engine import GpuTlsEngine
from ..tls.privatize import run_privatized
from ..translate.translator import TranslatedLoop
from .boundary import split_at_boundary
from .context import ExecutionContext
from .modes import RUNG_CPU_MT, RUNG_CPU_SEQ, ExecMode, decide_mode, downgrade_ladder
from .task import Task


@dataclass
class ShareOutcome:
    """Per-side bookkeeping of a shared execution (for tests/reports)."""

    mode: ExecMode
    gpu_iterations: int
    cpu_iterations: int
    profile: Optional[DependencyProfile]


class TaskSharingScheduler:
    """Executes one task cooperatively across the CPU-GPU border."""

    def __init__(self, ctx: ExecutionContext):
        self.ctx = ctx

    # -- public API ----------------------------------------------------------

    def execute(
        self,
        task: Task,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
        timeline: Optional[Timeline] = None,
    ) -> ExecutionResult:
        loop = task.loop
        indices = task.indices(scalar_env)
        tl = timeline if timeline is not None else Timeline()
        faults = self.ctx.faults
        mark = faults.recorder.mark()
        obs = self.ctx.obs

        with obs.tracer.span(
            f"share:{loop.id}", PHASE_SCHEDULE,
            loop=loop.id, iterations=len(indices),
        ) as sp:
            profile, mode = self._plan(loop, indices, scalar_env, storage, tl)
            coalescing = (
                profile.coalescing if profile else loop.static_coalescing
            )

            result, label = self._run_ladder(
                mode, loop, indices, scalar_env, storage, tl, profile,
                coalescing,
            )
            sp.annotate(mode=label)
            sp.set_sim(0.0, result.sim_time_s)
        m = obs.metrics
        m.counter("scheduler.sharing.dispatches").inc()
        m.gauge("scheduler.boundary").set(self.ctx.boundary())
        m.counter("scheduler.gpu_iterations").inc(
            result.detail.get("gpu_iterations", 0)
        )
        m.counter("scheduler.cpu_iterations").inc(
            result.detail.get("cpu_iterations", 0)
        )
        result.mode = label
        result.detail["profile"] = profile
        if faults.enabled:
            result.resilience = faults.recorder.report(since=mark)
        return result

    def _plan(
        self,
        loop: TranslatedLoop,
        indices: list[int],
        scalar_env: dict[str, object],
        storage: ArrayStorage,
        tl: Timeline,
    ) -> tuple[Optional[DependencyProfile], ExecMode]:
        """Profile (when needed) and pick the execution mode.

        A profiling run killed by injected faults degrades straight to
        mode C: with no dependency information the only safe plan is
        sequential CPU execution.  (Profiling runs against scratch
        memory, so a dead profile leaves no state to roll back.)
        """
        profile: Optional[DependencyProfile] = None
        if not loop.is_static_doall and not loop.cpu_only:
            try:
                profile = self.ctx.ensure_profile(
                    loop, indices, scalar_env, storage
                )
            except RuntimeFaultError as err:
                if not is_recoverable_fault(err):
                    raise
                self.ctx.faults.degraded(
                    err.site, "profile->cpu-seq",
                    detail="profiling failed; falling back to sequential",
                )
                return None, ExecMode.C
            if self.ctx.config.include_profile_time:
                tl.schedule(LANE_GPU, profile.profile_time_s, label="profiling")
        return profile, decide_mode(loop, profile, self.ctx.config.dd_threshold)

    # -- degradation ladder ------------------------------------------------

    def _run_ladder(
        self,
        mode: ExecMode,
        loop: TranslatedLoop,
        indices: list[int],
        scalar_env: dict[str, object],
        storage: ArrayStorage,
        tl: Timeline,
        profile: Optional[DependencyProfile],
        coalescing: float,
    ) -> tuple[ExecutionResult, str]:
        """Run the mode, degrading rung-by-rung on recoverable faults.

        Each failed rung's partial writes are rolled back from a
        pre-rung snapshot (device copies of rolled-back arrays become
        fully stale), so every rung starts from clean state.  Simulated
        time already scheduled by the failed attempt stays on the
        timeline — failure costs time, never correctness.  Returns the
        result plus its mode label (``"A"`` natively, ``"A->cpu-mt"``
        degraded); raises :class:`UnrecoverableFaultError` when even the
        sequential last resort keeps dying.
        """
        faults = self.ctx.faults
        rungs = downgrade_ladder(mode)
        if not faults.enabled:
            # fault-free fast path: no snapshots, no ladder
            result = self._run_rung(
                rungs[0], loop, indices, scalar_env, storage, tl,
                profile, coalescing,
            )
            return result, mode.value
        written = loop.analysis.arrays_written()
        last_err: Optional[RuntimeFaultError] = None
        for pos, rung in enumerate(rungs):
            snapshot = snapshot_arrays(storage, written)
            try:
                result = self._run_rung(
                    rung, loop, indices, scalar_env, storage, tl,
                    profile, coalescing,
                )
                if pos > 0 and rung == RUNG_CPU_SEQ:
                    # a degraded sequential run rewrote the outputs on
                    # the host; any device copy is now fully stale
                    self._cpu_wrote(loop, 1.0)
                label = mode.value if pos == 0 else f"{mode.value}->{rung}"
                return result, label
            except RuntimeFaultError as err:
                if not is_recoverable_fault(err):
                    raise
                restore_arrays(storage, snapshot)
                self._invalidate_device(written)
                faults.recorder.clock_s = tl.makespan
                last_err = err
                nxt = rungs[pos + 1] if pos + 1 < len(rungs) else None
                if nxt is not None:
                    faults.degraded(err.site, f"{rung}->{nxt}", detail=str(err))
        raise UnrecoverableFaultError(
            f"degradation ladder exhausted for loop {loop.id!r}: {last_err}",
            site=last_err.site if last_err else "",
            at_s=faults.recorder.clock_s,
        )

    def _run_rung(
        self,
        rung: str,
        loop: TranslatedLoop,
        indices: list[int],
        scalar_env: dict[str, object],
        storage: ArrayStorage,
        tl: Timeline,
        profile: Optional[DependencyProfile],
        coalescing: float,
    ) -> ExecutionResult:
        if rung == RUNG_CPU_SEQ:
            return self._mode_c(loop, indices, scalar_env, storage, tl)
        if rung == RUNG_CPU_MT:
            return self._mode_cpu_mt(
                loop, indices, scalar_env, storage, tl, profile
            )
        mode = ExecMode(rung)
        if mode is ExecMode.B:
            return self._mode_b(
                loop, indices, scalar_env, storage, tl, profile, coalescing
            )
        if mode is ExecMode.D:
            return self._mode_d(
                loop, indices, scalar_env, storage, tl, coalescing
            )
        # A and D' both run fully parallel on both sides; the profile
        # (for D') or static analysis (for A) guarantees direct
        # stores cannot conflict
        return self._mode_a(
            loop, indices, scalar_env, storage, tl, coalescing
        )

    def _invalidate_device(self, names) -> None:
        """After a rollback the host is authoritative again: any device
        copy of a rolled-back array (on any pool device) is fully stale."""
        for dev in self.ctx.pool.devices:
            mem = dev.memory
            for name in names:
                alloc = mem.allocations.get(name)
                if alloc is not None:
                    alloc.stale_fraction = 1.0

    # -- transfer helpers -------------------------------------------------

    def _register_device_data(
        self,
        loop: TranslatedLoop,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
    ) -> tuple[float, int]:
        """Allocate/refresh device copies; return (in_bytes, out_bytes).

        The communication optimizer keeps arrays resident across loop
        dispatches: only the *stale fraction* of each copyin operand is
        actually moved (stale = never transferred, or partially
        overwritten by the CPU side of an earlier dispatch).  This is the
        paper's cyclic-communication removal; the GPU-alone baseline has
        no such tracking and re-pays full transfers every time.
        """
        mem = self.ctx.device.memory
        faults = self.ctx.faults
        b_in = 0.0
        for move in loop.data_plan.copyin:
            arr = storage.arrays[move.array]
            alloc = mem.allocations.get(move.array)
            if alloc is None:
                nbytes = move.nbytes(scalar_env, arr)
                # copyin's return already includes any fault re-issues
                b_in += mem.copyin(move.array, arr.shape, arr.dtype, nbytes)
                alloc = mem.allocations[move.array]
            else:
                nbytes = move.nbytes(scalar_env, arr)
                refreshed = faults.charge_transfer(
                    SITE_TRANSFER_H2D, nbytes * alloc.stale_fraction
                )
                b_in += refreshed
                if refreshed:
                    m = self.ctx.obs.metrics
                    m.counter("transfer.h2d.bytes").inc(refreshed)
                    m.counter("transfer.h2d.count").inc()
                alloc.valid = True
            alloc.stale_fraction = 0.0
        for move in loop.data_plan.create:
            arr = storage.arrays[move.array]
            if move.array not in mem.allocations:
                mem.alloc(move.array, arr.shape, arr.dtype)
        b_out = 0
        for move in loop.data_plan.copyout:
            arr = storage.arrays[move.array]
            if move.array not in mem.allocations:
                mem.alloc(move.array, arr.shape, arr.dtype)
            b_out += move.nbytes(scalar_env, arr)
        return b_in, b_out

    def _count_d2h(self, nbytes: float) -> None:
        """Device->host bytes leave through charge_transfer here (not
        DeviceMemory.copyout), so mirror them into the metrics."""
        if nbytes:
            m = self.ctx.obs.metrics
            m.counter("transfer.d2h.bytes").inc(nbytes)
            m.counter("transfer.d2h.count").inc()

    def _cpu_wrote(self, loop: TranslatedLoop, fraction: float) -> None:
        """The CPU side wrote ``fraction`` of the loop's output arrays:
        that share of any device copy (on any pool device) is now stale."""
        if fraction <= 0:
            return
        for dev in self.ctx.pool.devices:
            mem = dev.memory
            for name in loop.analysis.arrays_written():
                alloc = mem.allocations.get(name)
                if alloc is not None:
                    alloc.stale_fraction = min(
                        1.0, alloc.stale_fraction + fraction
                    )

    # -- mode implementations ----------------------------------------------

    def _mode_a(
        self,
        loop: TranslatedLoop,
        indices: list[int],
        scalar_env: dict[str, object],
        storage: ArrayStorage,
        tl: Timeline,
        coalescing: float,
        buffered: bool = False,
    ) -> ExecutionResult:
        """DOALL (A) and profiled-clean (D'): PE on GPU + MT on CPU."""
        if self.ctx.pool.size > 1:
            from .sharding import run_sharded_mode_a

            return run_sharded_mode_a(
                self, loop, indices, scalar_env, storage, tl, coalescing,
                buffered=buffered,
            )
        cfg = self.ctx.config
        gpu_idx, cpu_idx = split_at_boundary(indices, self.ctx.boundary())
        b_in, b_out = self._register_device_data(loop, storage, scalar_env)
        frac_gpu = len(gpu_idx) / max(1, len(indices))

        raw = [0] * N_COUNTERS  # hot loop: accumulate raw, fold at the end
        nchunks = max(1, min(cfg.sharing_chunks, len(gpu_idx)))
        chunks = [c for c in block_partition(gpu_idx, nchunks) if c]

        if cfg.async_prefetch:
            # pipeline: DMA chunk k+1 overlaps kernel chunk k
            per_chunk_in = (b_in * frac_gpu) / max(1, len(chunks))
            kernel_events = []
            for k, chunk in enumerate(chunks):
                dma = tl.schedule(
                    LANE_DMA,
                    self.ctx.cost.transfer_time(per_chunk_in, asynchronous=True),
                    label=f"h2d#{k}",
                )
                launch = self.ctx.device.launch(
                    loop.fn,
                    chunk,
                    scalar_env,
                    storage,
                    mode="buffered" if buffered else "direct",
                    coalescing=coalescing,
                    elem_bytes=loop.elem_bytes,
                    block_size=loop.annotation.threads,
                )
                if buffered:
                    self.ctx.device.commit_lanes(launch.lanes, storage, chunk)
                launch.counts.add_to_raw(raw)
                kernel_events.append(
                    tl.schedule(
                        LANE_GPU, launch.sim_time_s, after=[dma],
                        label=f"kernel#{k}",
                    )
                )
            if kernel_events:
                out_bytes = self.ctx.faults.charge_transfer(
                    SITE_TRANSFER_D2H, b_out * frac_gpu
                )
                self._count_d2h(out_bytes)
                tl.schedule(
                    LANE_DMA,
                    self.ctx.cost.transfer_time(out_bytes, asynchronous=True),
                    after=[kernel_events[-1]],
                    label="d2h",
                )
        else:
            # no prefetch: one synchronous in, kernels, synchronous out
            dma_in = tl.schedule(
                LANE_DMA,
                self.ctx.cost.transfer_time(b_in * frac_gpu, asynchronous=False),
                label="h2d-sync",
            )
            last = dma_in
            for k, chunk in enumerate(chunks):
                launch = self.ctx.device.launch(
                    loop.fn,
                    chunk,
                    scalar_env,
                    storage,
                    mode="buffered" if buffered else "direct",
                    coalescing=coalescing,
                    elem_bytes=loop.elem_bytes,
                    block_size=loop.annotation.threads,
                )
                if buffered:
                    self.ctx.device.commit_lanes(launch.lanes, storage, chunk)
                launch.counts.add_to_raw(raw)
                last = tl.schedule(
                    LANE_GPU, launch.sim_time_s, after=[last],
                    label=f"kernel#{k}",
                )
            out_bytes = self.ctx.faults.charge_transfer(
                SITE_TRANSFER_D2H, b_out * frac_gpu
            )
            self._count_d2h(out_bytes)
            tl.schedule(
                LANE_DMA,
                self.ctx.cost.transfer_time(out_bytes, asynchronous=False),
                after=[last],
                label="d2h-sync",
            )

        # CPU side: the right part, multithreaded, walked descending
        if cpu_idx:
            cpu_run = self.ctx.cpu.run_parallel(
                loop.fn,
                storage,
                scalar_env,
                descending(cpu_idx),
                threads=cfg.cpu_threads,
                elem_bytes=loop.elem_bytes,
            )
            cpu_run.counts.add_to_raw(raw)
            tl.schedule(LANE_CPU, cpu_run.sim_time_s, label="cpu-mt")
            self._cpu_wrote(loop, 1.0 - frac_gpu)

        return ExecutionResult(
            arrays=storage.arrays,
            sim_time_s=tl.makespan,
            counts=Counts.from_raw(raw),
            timeline=tl,
            detail={
                "gpu_iterations": len(gpu_idx),
                "cpu_iterations": len(cpu_idx),
            },
        )

    def _mode_b(
        self,
        loop: TranslatedLoop,
        indices: list[int],
        scalar_env: dict[str, object],
        storage: ArrayStorage,
        tl: Timeline,
        profile: Optional[DependencyProfile],
        coalescing: float,
    ) -> ExecutionResult:
        """Low TD density: GPU-TLS across the loop, CPU handles violations."""
        b_in, b_out = self._register_device_data(loop, storage, scalar_env)
        dma_in = tl.schedule(
            LANE_DMA,
            self.ctx.cost.transfer_time(b_in, asynchronous=True),
            label="h2d",
        )
        tl.schedule(LANE_GPU, 0.0, after=[dma_in])

        engine = GpuTlsEngine(
            self.ctx.device, self.ctx.cpu, self.ctx.config.tls,
            obs=self.ctx.obs,
        )
        tls = engine.execute(
            loop.fn,
            indices,
            scalar_env,
            storage,
            profile=profile,
            coalescing=coalescing,
            elem_bytes=loop.elem_bytes,
            timeline=tl,
        )
        out_bytes = self.ctx.faults.charge_transfer(SITE_TRANSFER_D2H, b_out)
        self._count_d2h(out_bytes)
        tl.schedule(
            LANE_DMA,
            self.ctx.cost.transfer_time(out_bytes, asynchronous=True),
            not_before=tl.barrier([LANE_GPU, LANE_CPU]),
            label="d2h",
        )
        return ExecutionResult(
            arrays=storage.arrays,
            sim_time_s=tl.makespan,
            counts=tls.counts,
            timeline=tl,
            detail={"tls": tls.stats},
        )

    def _mode_cpu_mt(
        self,
        loop: TranslatedLoop,
        indices: list[int],
        scalar_env: dict[str, object],
        storage: ArrayStorage,
        tl: Timeline,
        profile: Optional[DependencyProfile],
    ) -> ExecutionResult:
        """Degraded rung below A/D': every iteration on the CPU pool.

        Only reachable for loops with no true dependency (statically
        DOALL or profiled clean), so a thread-pool run is always
        correct; vectorization is withheld if the profile saw false
        dependencies, to keep write ordering deterministic.
        """
        run = self.ctx.cpu.run_parallel(
            loop.fn,
            storage,
            scalar_env,
            indices,
            threads=self.ctx.config.cpu_threads,
            elem_bytes=loop.elem_bytes,
            allow_vectorized=not (profile is not None and profile.has_false),
        )
        tl.schedule(LANE_CPU, run.sim_time_s, label="cpu-mt-degraded")
        self._cpu_wrote(loop, 1.0)
        return ExecutionResult(
            arrays=storage.arrays,
            sim_time_s=tl.makespan,
            counts=run.counts,
            timeline=tl,
        )

    def _mode_c(
        self,
        loop: TranslatedLoop,
        indices: list[int],
        scalar_env: dict[str, object],
        storage: ArrayStorage,
        tl: Timeline,
    ) -> ExecutionResult:
        """High TD density (or unloweable loop): CPU sequential."""
        if loop.fn is not None:
            run = self.ctx.cpu.run_serial(
                loop.fn, storage, scalar_env, indices,
                elem_bytes=loop.elem_bytes,
            )
            counts, time_s = run.counts, run.sim_time_s
        else:
            from ..runtime.hosteval import run_loop_sequential_host

            counts, time_s = run_loop_sequential_host(
                loop, storage, scalar_env, self.ctx.cost
            )
        tl.schedule(LANE_CPU, time_s, label="cpu-seq")
        return ExecutionResult(
            arrays=storage.arrays,
            sim_time_s=tl.makespan,
            counts=counts,
            timeline=tl,
        )

    def _mode_d(
        self,
        loop: TranslatedLoop,
        indices: list[int],
        scalar_env: dict[str, object],
        storage: ArrayStorage,
        tl: Timeline,
        coalescing: float,
    ) -> ExecutionResult:
        """FD only: GPU privatized PE(V); CPU part sequential.

        The GPU's buffers commit before the CPU part executes so the
        privatized variables end with the sequentially-last values.
        """
        gpu_idx, cpu_idx = split_at_boundary(indices, self.ctx.boundary())
        b_in, b_out = self._register_device_data(loop, storage, scalar_env)
        frac_gpu = len(gpu_idx) / max(1, len(indices))

        dma_in = tl.schedule(
            LANE_DMA,
            self.ctx.cost.transfer_time(b_in * frac_gpu, asynchronous=True),
            label="h2d",
        )
        profile = self.ctx.profiles.get(loop.id)
        priv = run_privatized(
            self.ctx.device,
            loop.fn,
            gpu_idx,
            scalar_env,
            storage,
            coalescing=coalescing,
            elem_bytes=loop.elem_bytes,
            profile=profile,
        )
        kernel_evt = tl.schedule(
            LANE_GPU, priv.kernel_time_s, after=[dma_in], label="pe(v)"
        )
        tl.schedule(LANE_GPU, priv.commit_time_s, label="commit")
        out_bytes = self.ctx.faults.charge_transfer(
            SITE_TRANSFER_D2H, b_out * frac_gpu
        )
        self._count_d2h(out_bytes)
        tl.schedule(
            LANE_DMA,
            self.ctx.cost.transfer_time(out_bytes, asynchronous=True),
            after=[kernel_evt],
            label="d2h",
        )

        total = priv.counts
        if cpu_idx:
            # sequential (ascending) so privatized cells end sequentially-last
            cpu_run = self.ctx.cpu.run_serial(
                loop.fn, storage, scalar_env, cpu_idx,
                elem_bytes=loop.elem_bytes,
            )
            total = total + cpu_run.counts
            tl.schedule(LANE_CPU, cpu_run.sim_time_s, label="cpu-seq")
            self._cpu_wrote(loop, 1.0 - frac_gpu)

        return ExecutionResult(
            arrays=storage.arrays,
            sim_time_s=tl.makespan,
            counts=total,
            timeline=tl,
            detail={
                "gpu_iterations": len(gpu_idx),
                "cpu_iterations": len(cpu_idx),
                "privatized_cells": priv.cells_committed,
            },
        )
