"""The task-stealing scheme (paper §V-B, Algorithm 1).

Inter-loop dependencies compose the PDG; the scheduler repeatedly pulls a
batch of data-independent tasks (topological sort), distributes them to
the CPU and GPU queues by the rule table, and lets the worker that drains
its queue first steal preferential tasks from the other queue.  A barrier
closes each batch ("wait until all tasks in taskSet are done").

Distribution rules: loops with high TD density and loops without TD after
profiling are *obligated* to CPU and GPU respectively; loops with
moderate TD density are suited to CPU; loops determined DOALL at compile
time are suited to GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import RuntimeFaultError, SchedulerError, UnrecoverableFaultError
from ..faults.plane import SITE_TRANSFER_D2H
from ..faults.resilience import (
    is_recoverable_fault,
    restore_arrays,
    snapshot_arrays,
)
from ..ir.interpreter import ArrayStorage
from ..obs.tracer import PHASE_SCHEDULE
from ..pdg.graph import ProgramDependenceGraph
from ..pdg.toposort import JobPool
from ..runtime.clock import LANE_CPU, LANE_GPU, Timeline
from ..runtime.result import ExecutionResult
from ..tls.engine import GpuTlsEngine
from ..translate.translator import TranslatedLoop
from .context import ExecutionContext
from .queues import WorkerQueue
from .task import Task

#: Modelled per-batch synchronization overhead (barrier + dispatch).
BATCH_SYNC_OVERHEAD_S = 20e-6


def _task_sections(
    task: Task, storage: ArrayStorage, scalar_env: dict[str, object]
) -> dict[str, dict[str, list[tuple[int, int]]]]:
    """Accessed flat-address sections per array: {'R'|'W': {array: [(lo, hi)]}}.

    Affine accesses are evaluated at the task's index-range endpoints
    (linear forms are monotone in the index); anything unresolvable
    covers the whole array.
    """
    out: dict[str, dict[str, list[tuple[int, int]]]] = {"R": {}, "W": {}}
    indices = task.indices(scalar_env)
    if not indices:
        return out
    i_lo, i_hi = min(indices), max(indices)
    for acc in task.loop.analysis.accesses:
        shape = storage.shapes.get(acc.array)
        if shape is None:
            continue
        size = 1
        for d in shape:
            size *= d
        interval = _access_interval(acc, i_lo, i_hi, shape, scalar_env)
        if interval is None:
            interval = (0, size - 1)
        out[acc.kind].setdefault(acc.array, []).append(interval)
    return out


def _access_interval(acc, i_lo, i_hi, shape, env):
    """Flat-address interval of one affine access, or None."""
    if not acc.affine:
        return None
    dims = []
    for form in acc.forms:
        base = form.const
        for name, k in form.syms:
            value = env.get(name)
            if value is None:
                return None
            base += k * int(value)
        lo = form.coeff * i_lo + base
        hi = form.coeff * i_hi + base
        dims.append((min(lo, hi), max(lo, hi)))
    if len(dims) == 1:
        return dims[0]
    ncols = shape[1]
    return (dims[0][0] * ncols + dims[1][0], dims[0][1] * ncols + dims[1][1])


def _section_conflicts(a_sec, b_sec) -> list[str]:
    """Dependence kinds implied by intersecting sections of two tasks."""
    kinds = []
    if _intersects(a_sec["W"], b_sec["R"]):
        kinds.append("flow")
    if _intersects(a_sec["W"], b_sec["W"]):
        kinds.append("output")
    if _intersects(a_sec["R"], b_sec["W"]):
        kinds.append("anti")
    return kinds


def _intersects(a_map, b_map) -> bool:
    for array, a_ivs in a_map.items():
        b_ivs = b_map.get(array)
        if not b_ivs:
            continue
        for alo, ahi in a_ivs:
            for blo, bhi in b_ivs:
                if alo <= bhi and blo <= ahi:
                    return True
    return False


@dataclass
class Placement:
    """Where a task ran and for how long (for tests and Figure 5a)."""

    task_id: str
    worker: str  # 'cpu' | 'gpu'
    start_s: float
    duration_s: float
    stolen: bool = False


@dataclass
class StealingStats:
    placements: list[Placement] = field(default_factory=list)
    steals: int = 0
    batches: int = 0

    def share(self, worker: str) -> float:
        """Fraction of tasks executed by a worker."""
        if not self.placements:
            return 0.0
        mine = sum(1 for p in self.placements if p.worker == worker)
        return mine / len(self.placements)


class TaskStealingScheduler:
    """Executes a set of loop tasks with per-device queues and stealing."""

    def __init__(self, ctx: ExecutionContext):
        self.ctx = ctx

    # -- PDG over tasks ---------------------------------------------------

    def build_task_pdg(
        self,
        tasks: list[Task],
        storage: ArrayStorage,
        scalar_env: dict[str, object],
    ) -> ProgramDependenceGraph:
        """Dependence graph at task granularity with array sections.

        Two tasks conflict only when their accessed array *sections*
        intersect; sections come from the affine subscript forms
        evaluated over each task's index range.  This is what lets the
        paper's source-level sub-loop splitting (BICG's 2x4 sub-loops,
        Crypt's 16) yield genuinely independent tasks: the sub-loops
        touch the same arrays but disjoint element ranges.  Irresolvable
        accesses conservatively cover the whole array.
        """
        pdg = ProgramDependenceGraph()
        sections: dict[str, dict[str, dict[str, list[tuple[int, int]]]]] = {}
        for task in tasks:
            analysis = task.loop.analysis
            pdg.add_task(
                task.id,
                analysis.arrays_read(),
                analysis.arrays_written(),
                label=task.id,
            )
            sections[task.id] = _task_sections(task, storage, scalar_env)

        for i, a in enumerate(tasks):
            for b in tasks[i + 1 :]:
                kinds = _section_conflicts(sections[a.id], sections[b.id])
                if kinds:
                    pdg.add_edge(a.id, b.id, "+".join(kinds))
        pdg.check_acyclic()
        return pdg

    # -- distribution rules -----------------------------------------------

    def _dd_class(
        self, task: Task, storage: ArrayStorage, scalar_env
    ) -> str:
        """'doall' | 'zero' | 'low' | 'high' for the rule table."""
        loop = task.loop
        if loop.cpu_only:
            return "high"
        if loop.is_static_doall:
            return "doall"
        try:
            profile = self.ctx.ensure_profile(
                loop, task.indices(scalar_env), scalar_env, storage
            )
        except RuntimeFaultError as err:
            if not is_recoverable_fault(err):
                raise
            # no dependency information: classify conservatively so the
            # task is pinned to the (always-correct) sequential CPU path
            self.ctx.faults.degraded(
                err.site, "profile->cpu-obligatory",
                detail=f"task {task.id}: profiling failed",
            )
            return "high"
        return profile.density_class(self.ctx.config.dd_threshold)

    @staticmethod
    def _gpu_obligatory(dd: str) -> bool:
        return dd == "zero"

    @staticmethod
    def _cpu_obligatory(dd: str) -> bool:
        return dd == "high"

    # -- the scheduling loop ------------------------------------------------

    def execute(
        self,
        tasks: list[Task],
        storage: ArrayStorage,
        scalar_env: dict[str, object],
    ) -> ExecutionResult:
        if not tasks:
            raise SchedulerError("empty task set")
        mark = self.ctx.faults.recorder.mark()
        obs = self.ctx.obs
        sp = obs.tracer.span(
            "steal", PHASE_SCHEDULE, tasks=len(tasks),
        )
        pdg = self.build_task_pdg(tasks, storage, scalar_env)
        pool = JobPool(pdg)
        by_id = {t.id: t for t in tasks}
        stats = StealingStats()
        tl = Timeline()

        t_cpu = 0.0
        t_gpu = 0.0
        from ..ir.interpreter import N_COUNTERS, Counts

        raw = [0] * N_COUNTERS  # hot loop: accumulate raw, fold at the end

        while pool:
            batch_ids = pool.get_tasks()
            stats.batches += 1
            gpu_q = WorkerQueue("gpu")
            cpu_q = WorkerQueue("cpu")
            dd_of: dict[str, str] = {}
            for tid in batch_ids:
                task = by_id[tid]
                dd = self._dd_class(task, storage, scalar_env)
                dd_of[tid] = dd
                if self._cpu_obligatory(dd) or dd == "low":
                    cpu_q.push(task)
                else:  # 'zero' obligatory GPU, 'doall' suited to GPU
                    gpu_q.push(task)

            # Algorithm 1 lines 7-10: prime an empty queue by stealing
            self._prime_empty_queue(gpu_q, cpu_q, dd_of)

            # run the batch with dynamic stealing
            while gpu_q or cpu_q:
                worker = "gpu" if t_gpu <= t_cpu else "cpu"
                task, stolen = self._next_task(worker, gpu_q, cpu_q, dd_of)
                if task is None:
                    # nothing this worker may run; let the other worker go
                    worker = "cpu" if worker == "gpu" else "gpu"
                    task, stolen = self._next_task(worker, gpu_q, cpu_q, dd_of)
                    if task is None:
                        raise SchedulerError("no runnable task in batch")
                start = t_gpu if worker == "gpu" else t_cpu
                duration, counts = self._run_on(
                    worker, task, storage, scalar_env, dd_of[task.id]
                )
                counts.add_to_raw(raw)
                if worker == "gpu":
                    t_gpu = start + duration
                else:
                    t_cpu = start + duration
                if stolen:
                    stats.steals += 1
                stats.placements.append(
                    Placement(task.id, worker, start, duration, stolen)
                )
                tl.schedule(
                    LANE_GPU if worker == "gpu" else LANE_CPU,
                    duration,
                    not_before=start,
                    label=task.id + ("*" if stolen else ""),
                )

            # batch barrier
            t_cpu = t_gpu = max(t_cpu, t_gpu) + BATCH_SYNC_OVERHEAD_S
            pool.mark_done(batch_ids)

        makespan = max(t_cpu, t_gpu)
        sp.annotate(batches=stats.batches, steals=stats.steals)
        sp.set_sim(0.0, makespan)
        sp.close()
        m = obs.metrics
        m.counter("scheduler.stealing.dispatches").inc()
        m.counter("scheduler.stealing.batches").inc(stats.batches)
        m.counter("scheduler.stealing.steals").inc(stats.steals)
        m.counter("scheduler.stealing.tasks").inc(len(stats.placements))
        return ExecutionResult(
            arrays=storage.arrays,
            sim_time_s=makespan,
            counts=Counts.from_raw(raw),
            mode="stealing",
            timeline=tl,
            detail={"stats": stats},
            resilience=(
                self.ctx.faults.recorder.report(since=mark)
                if self.ctx.faults.enabled
                else None
            ),
        )

    def _prime_empty_queue(self, gpu_q, cpu_q, dd_of) -> None:
        if not gpu_q and cpu_q:
            task = cpu_q.steal_only_if(
                lambda t: not self._cpu_obligatory(dd_of[t.id])
            )
            if task is not None:
                gpu_q.push(task)
        if not cpu_q and gpu_q:
            # the CPU can run anything; prefer tasks not pinned to the GPU
            task = gpu_q.steal(
                lambda t: not self._gpu_obligatory(dd_of[t.id])
            )
            if task is not None:
                cpu_q.push(task)

    def _next_task(
        self, worker: str, gpu_q: WorkerQueue, cpu_q: WorkerQueue, dd_of
    ) -> tuple[Optional[Task], bool]:
        own, other = (gpu_q, cpu_q) if worker == "gpu" else (cpu_q, gpu_q)
        task = own.pop()
        if task is not None:
            return task, False
        if worker == "gpu":
            # the GPU steals parallel-friendly tasks only
            stolen = other.steal_only_if(
                lambda t: not self._cpu_obligatory(dd_of[t.id])
            )
        else:
            # the CPU can run anything; prefer the tasks suited to it
            stolen = other.steal(
                lambda t: dd_of[t.id] in ("low", "high")
            )
        return stolen, stolen is not None

    # -- per-worker execution -----------------------------------------------

    def _run_on(
        self,
        worker: str,
        task: Task,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
        dd: str,
    ):
        """Run one task on a worker, degrading on injected faults.

        Fault-free this is a straight call through to the raw runner.
        Under injection, a recoverable fault rolls the task's written
        arrays back to a pre-task snapshot, marks their device copies
        invalid, and re-runs the task on the next-safer plan: GPU task ->
        CPU (with its native dd class), then CPU-sequential as the last
        resort.  When even sequential execution keeps dying the fault is
        unrecoverable.
        """
        faults = self.ctx.faults
        if not faults.enabled:
            return self._run_on_raw(worker, task, storage, scalar_env, dd)
        plans = [(worker, dd)]
        if worker == "gpu":
            plans.append(("cpu", dd))
        if plans[-1] != ("cpu", "high"):
            plans.append(("cpu", "high"))  # forces the serial CPU path
        written = task.loop.analysis.arrays_written()
        last_err: Optional[RuntimeFaultError] = None
        for pos, (w, d) in enumerate(plans):
            snapshot = snapshot_arrays(storage, written)
            try:
                return self._run_on_raw(w, task, storage, scalar_env, d)
            except RuntimeFaultError as err:
                if not is_recoverable_fault(err):
                    raise
                restore_arrays(storage, snapshot)
                for name in written:
                    alloc = self.ctx.device.memory.allocations.get(name)
                    if alloc is not None:
                        alloc.valid = False
                last_err = err
                if pos + 1 < len(plans):
                    nxt = plans[pos + 1]
                    faults.degraded(
                        err.site, f"{w}->{nxt[0]}",
                        detail=f"task {task.id}: {err}",
                    )
        raise UnrecoverableFaultError(
            f"task {task.id} failed on every worker: {last_err}",
            site=last_err.site if last_err else "",
            at_s=faults.recorder.clock_s,
        )

    def _run_on_raw(
        self,
        worker: str,
        task: Task,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
        dd: str,
    ):
        loop = task.loop
        indices = task.indices(scalar_env)
        frac = len(indices) / max(1, loop.analysis.info.trip_count(scalar_env))
        if worker == "cpu":
            if dd in ("high", "low") or loop.fn is None:
                if loop.fn is None:
                    from ..runtime.hosteval import run_loop_sequential_host

                    counts, time_s = run_loop_sequential_host(
                        loop, storage, scalar_env, self.ctx.cost
                    )
                    return time_s, counts
                run = self.ctx.cpu.run_serial(
                    loop.fn, storage, scalar_env, indices,
                    elem_bytes=loop.elem_bytes,
                )
            else:
                run = self.ctx.cpu.run_parallel(
                    loop.fn, storage, scalar_env, indices,
                    threads=self.ctx.config.cpu_threads,
                    elem_bytes=loop.elem_bytes,
                )
            # a CPU write invalidates any device copy of the array
            for name in loop.analysis.arrays_written():
                alloc = self.ctx.device.memory.allocations.get(name)
                if alloc is not None:
                    alloc.valid = False
            return run.sim_time_s, run.counts

        # GPU worker
        time_s = 0.0
        mem = self.ctx.device.memory
        for move in loop.data_plan.copyin:
            arr = storage.arrays[move.array]
            alloc = mem.allocations.get(move.array)
            if alloc is None or not alloc.valid:
                nbytes = move.nbytes(scalar_env, arr)
                # copyin's return already includes fault re-issues
                moved = mem.copyin(move.array, arr.shape, arr.dtype, nbytes)
                time_s += self.ctx.cost.transfer_time(moved, asynchronous=True)
        for move in loop.data_plan.create:
            arr = storage.arrays[move.array]
            if move.array not in mem.allocations:
                mem.alloc(move.array, arr.shape, arr.dtype)
        for move in loop.data_plan.copyout:
            arr = storage.arrays[move.array]
            if move.array not in mem.allocations:
                mem.alloc(move.array, arr.shape, arr.dtype)

        profile = self.ctx.profiles.get(loop.id)
        coalescing = profile.coalescing if profile else loop.static_coalescing

        if dd == "low":
            engine = GpuTlsEngine(
                self.ctx.device, self.ctx.cpu, self.ctx.config.tls,
                obs=self.ctx.obs,
            )
            tls = engine.execute(
                loop.fn, indices, scalar_env, storage,
                profile=profile, coalescing=coalescing,
                elem_bytes=loop.elem_bytes,
            )
            time_s += tls.sim_time_s
            counts = tls.counts
        elif profile is not None and profile.has_false:
            from ..tls.privatize import run_privatized

            priv = run_privatized(
                self.ctx.device, loop.fn, indices, scalar_env, storage,
                coalescing=coalescing, elem_bytes=loop.elem_bytes,
                profile=profile,
            )
            time_s += priv.sim_time_s
            counts = priv.counts
        else:
            launch = self.ctx.device.launch(
                loop.fn, indices, scalar_env, storage,
                mode="direct", coalescing=coalescing,
                elem_bytes=loop.elem_bytes,
            )
            time_s += launch.sim_time_s
            counts = launch.counts

        out_bytes = self.ctx.faults.charge_transfer(
            SITE_TRANSFER_D2H,
            loop.data_plan.total_out_bytes(scalar_env, storage.arrays) * frac,
        )
        if out_bytes:
            m = self.ctx.obs.metrics
            m.counter("transfer.d2h.bytes").inc(out_bytes)
            m.counter("transfer.d2h.count").inc()
        time_s += self.ctx.cost.transfer_time(out_bytes, asynchronous=True)
        for move in loop.data_plan.copyout:
            mem.mark_written(move.array)
        return time_s, counts
