"""The task-stealing scheme (paper §V-B, Algorithm 1).

Inter-loop dependencies compose the PDG; the scheduler repeatedly pulls a
batch of data-independent tasks (topological sort), distributes them to
the CPU and GPU queues by the rule table, and lets the worker that drains
its queue first steal preferential tasks from the other queue.  A barrier
closes each batch ("wait until all tasks in taskSet are done").

Distribution rules: loops with high TD density and loops without TD after
profiling are *obligated* to CPU and GPU respectively; loops with
moderate TD density are suited to CPU; loops determined DOALL at compile
time are suited to GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import RuntimeFaultError, SchedulerError, UnrecoverableFaultError
from ..faults.plane import SITE_TRANSFER_D2H
from ..faults.resilience import (
    is_recoverable_fault,
    restore_arrays,
    snapshot_arrays,
)
from ..ir.interpreter import ArrayStorage
from ..obs.tracer import PHASE_SCHEDULE
from ..pdg.graph import ProgramDependenceGraph
from ..pdg.toposort import JobPool
from ..runtime.clock import LANE_CPU, Timeline, gpu_lane
from ..runtime.result import ExecutionResult
from ..tls.engine import GpuTlsEngine
from ..translate.translator import TranslatedLoop
from .context import ExecutionContext
from .queues import WorkerQueue
from .sharding import seeded_pick
from .task import Task

#: Modelled per-batch synchronization overhead (barrier + dispatch).
BATCH_SYNC_OVERHEAD_S = 20e-6


def _task_sections(
    task: Task, storage: ArrayStorage, scalar_env: dict[str, object]
) -> dict[str, dict[str, list[tuple[int, int]]]]:
    """Accessed flat-address sections per array: {'R'|'W': {array: [(lo, hi)]}}.

    Affine accesses are evaluated at the task's index-range endpoints
    (linear forms are monotone in the index); anything unresolvable
    covers the whole array.
    """
    out: dict[str, dict[str, list[tuple[int, int]]]] = {"R": {}, "W": {}}
    indices = task.indices(scalar_env)
    if not indices:
        return out
    i_lo, i_hi = min(indices), max(indices)
    for acc in task.loop.analysis.accesses:
        shape = storage.shapes.get(acc.array)
        if shape is None:
            continue
        size = 1
        for d in shape:
            size *= d
        interval = _access_interval(acc, i_lo, i_hi, shape, scalar_env)
        if interval is None:
            interval = (0, size - 1)
        out[acc.kind].setdefault(acc.array, []).append(interval)
    return out


def _access_interval(acc, i_lo, i_hi, shape, env):
    """Flat-address interval of one affine access, or None."""
    if not acc.affine:
        return None
    dims = []
    for form in acc.forms:
        base = form.const
        for name, k in form.syms:
            value = env.get(name)
            if value is None:
                return None
            base += k * int(value)
        lo = form.coeff * i_lo + base
        hi = form.coeff * i_hi + base
        dims.append((min(lo, hi), max(lo, hi)))
    if len(dims) == 1:
        return dims[0]
    ncols = shape[1]
    return (dims[0][0] * ncols + dims[1][0], dims[0][1] * ncols + dims[1][1])


def _section_conflicts(a_sec, b_sec) -> list[str]:
    """Dependence kinds implied by intersecting sections of two tasks."""
    kinds = []
    if _intersects(a_sec["W"], b_sec["R"]):
        kinds.append("flow")
    if _intersects(a_sec["W"], b_sec["W"]):
        kinds.append("output")
    if _intersects(a_sec["R"], b_sec["W"]):
        kinds.append("anti")
    return kinds


def _intersects(a_map, b_map) -> bool:
    for array, a_ivs in a_map.items():
        b_ivs = b_map.get(array)
        if not b_ivs:
            continue
        for alo, ahi in a_ivs:
            for blo, bhi in b_ivs:
                if alo <= bhi and blo <= ahi:
                    return True
    return False


@dataclass
class Placement:
    """Where a task ran and for how long (for tests and Figure 5a)."""

    task_id: str
    worker: str  # 'cpu' | 'gpu'
    start_s: float
    duration_s: float
    stolen: bool = False
    #: pool device the task was placed on (meaningful when worker='gpu')
    device: int = 0

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass
class StealingStats:
    placements: list[Placement] = field(default_factory=list)
    steals: int = 0
    batches: int = 0
    #: simulated busy time of stolen tasks (steal-efficiency reports)
    steal_time_s: float = 0.0

    def share(self, worker: str) -> float:
        """Fraction of tasks executed by a worker."""
        if not self.placements:
            return 0.0
        mine = sum(1 for p in self.placements if p.worker == worker)
        return mine / len(self.placements)


class TaskStealingScheduler:
    """Executes a set of loop tasks with per-device queues and stealing."""

    def __init__(self, ctx: ExecutionContext):
        self.ctx = ctx
        #: array sections per task id, filled by :meth:`build_task_pdg`
        self._sections: dict[str, dict] = {}

    # -- PDG over tasks ---------------------------------------------------

    def build_task_pdg(
        self,
        tasks: list[Task],
        storage: ArrayStorage,
        scalar_env: dict[str, object],
    ) -> ProgramDependenceGraph:
        """Dependence graph at task granularity with array sections.

        Two tasks conflict only when their accessed array *sections*
        intersect; sections come from the affine subscript forms
        evaluated over each task's index range.  This is what lets the
        paper's source-level sub-loop splitting (BICG's 2x4 sub-loops,
        Crypt's 16) yield genuinely independent tasks: the sub-loops
        touch the same arrays but disjoint element ranges.  Irresolvable
        accesses conservatively cover the whole array.
        """
        pdg = ProgramDependenceGraph()
        sections: dict[str, dict[str, dict[str, list[tuple[int, int]]]]] = {}
        for task in tasks:
            analysis = task.loop.analysis
            pdg.add_task(
                task.id,
                analysis.arrays_read(),
                analysis.arrays_written(),
                label=task.id,
            )
            sections[task.id] = _task_sections(task, storage, scalar_env)

        for i, a in enumerate(tasks):
            for b in tasks[i + 1 :]:
                kinds = _section_conflicts(sections[a.id], sections[b.id])
                if kinds:
                    pdg.add_edge(a.id, b.id, "+".join(kinds))
        pdg.check_acyclic()
        # kept for the cross-device steal guard: a steal must not place a
        # task whose sections conflict with a concurrently running task
        self._sections = sections
        return pdg

    # -- distribution rules -----------------------------------------------

    def _dd_class(
        self, task: Task, storage: ArrayStorage, scalar_env
    ) -> str:
        """'doall' | 'zero' | 'low' | 'high' for the rule table."""
        loop = task.loop
        if loop.cpu_only:
            return "high"
        if loop.is_static_doall:
            return "doall"
        try:
            profile = self.ctx.ensure_profile(
                loop, task.indices(scalar_env), scalar_env, storage
            )
        except RuntimeFaultError as err:
            if not is_recoverable_fault(err):
                raise
            # no dependency information: classify conservatively so the
            # task is pinned to the (always-correct) sequential CPU path
            self.ctx.faults.degraded(
                err.site, "profile->cpu-obligatory",
                detail=f"task {task.id}: profiling failed",
            )
            return "high"
        return profile.density_class(self.ctx.config.dd_threshold)

    @staticmethod
    def _gpu_obligatory(dd: str) -> bool:
        return dd == "zero"

    @staticmethod
    def _cpu_obligatory(dd: str) -> bool:
        return dd == "high"

    # -- pool workers ------------------------------------------------------
    # Worker names: 'gpu' is pool device 0 (the seed single-GPU worker),
    # 'gpu1'..'gpuN' the extra pool devices, 'cpu' the thread pool.

    @staticmethod
    def _worker_name(device_id: int) -> str:
        return "gpu" if device_id == 0 else f"gpu{device_id}"

    @staticmethod
    def _worker_device(worker: str) -> Optional[int]:
        if worker == "cpu":
            return None
        return 0 if worker == "gpu" else int(worker[3:])

    @staticmethod
    def _rank(worker: str) -> int:
        """Tie order on equal clocks: gpu0 < gpu1 < ... < cpu (reproduces
        the seed rule 'gpu wins ties' at pool size 1)."""
        if worker == "cpu":
            return 1 << 30
        return 0 if worker == "gpu" else int(worker[3:])

    def _may_run(self, worker: str, dd: str) -> bool:
        """Placement legality: TLS ('low') sub-loops stay on device 0 or
        the CPU; the CPU may run anything."""
        dev = self._worker_device(worker)
        if dev is None:
            return True
        return dd != "low" or dev == 0

    def _steal_safe(
        self,
        task: Task,
        worker: str,
        times: dict[str, float],
        placed: list[Placement],
    ) -> bool:
        """A steal may not place a task whose array sections conflict
        with a task still running on another worker.

        Batches are PDG antichains (conflicting tasks never share a
        batch), so this guard should never fire — it is the enforced
        form of that invariant, and the property suite checks it.
        """
        now = times[worker]
        mine = self._sections.get(task.id)
        if mine is None:
            return True
        for p in placed:
            if p.end_s <= now:
                continue
            p_name = (
                "cpu" if p.worker == "cpu" else self._worker_name(p.device)
            )
            if p_name == worker:
                continue
            other = self._sections.get(p.task_id)
            if other is not None and _section_conflicts(mine, other):
                return False
        return True

    # -- the scheduling loop ------------------------------------------------

    def execute(
        self,
        tasks: list[Task],
        storage: ArrayStorage,
        scalar_env: dict[str, object],
    ) -> ExecutionResult:
        if not tasks:
            raise SchedulerError("empty task set")
        mark = self.ctx.faults.recorder.mark()
        obs = self.ctx.obs
        sp = obs.tracer.span(
            "steal", PHASE_SCHEDULE, tasks=len(tasks),
        )
        pdg = self.build_task_pdg(tasks, storage, scalar_env)
        pool = JobPool(pdg)
        by_id = {t.id: t for t in tasks}
        stats = StealingStats()
        tl = Timeline()
        dpool = self.ctx.pool

        times: dict[str, float] = {"cpu": 0.0}
        for k in dpool.alive_ids():
            times[self._worker_name(k)] = 0.0
        from ..ir.interpreter import N_COUNTERS, Counts

        raw = [0] * N_COUNTERS  # hot loop: accumulate raw, fold at the end

        while pool:
            batch_ids = pool.get_tasks()
            stats.batches += 1
            gpu_workers = [
                self._worker_name(k) for k in dpool.alive_ids()
            ]
            queues = {w: WorkerQueue(w) for w in gpu_workers + ["cpu"]}
            dd_of: dict[str, str] = {}
            for tid in batch_ids:
                task = by_id[tid]
                dd = self._dd_class(task, storage, scalar_env)
                dd_of[tid] = dd
                if self._cpu_obligatory(dd) or dd == "low" or not gpu_workers:
                    queues["cpu"].push(task)
                else:  # 'zero' obligatory GPU, 'doall' suited to GPU
                    w = self._pick_gpu_queue(
                        queues, gpu_workers, stats.batches, tid
                    )
                    queues[w].push(task)

            # Algorithm 1 lines 7-10: prime an empty queue by stealing
            self._prime_empty_queues(queues, gpu_workers, dd_of)

            # run the batch with dynamic stealing
            placed: list[Placement] = []
            while any(queues.values()):
                # a device killed mid-batch drops out; its queue rehomes
                gpu_workers = self._drop_dead_workers(
                    queues, gpu_workers, dd_of
                )
                order = sorted(
                    ["cpu"] + gpu_workers,
                    key=lambda w: (times[w], self._rank(w)),
                )
                task, stolen, worker = None, False, ""
                for w in order:
                    task, stolen = self._next_task(
                        w, queues, gpu_workers, dd_of, times, placed
                    )
                    if task is not None:
                        worker = w
                        break
                if task is None:
                    raise SchedulerError("no runnable task in batch")
                start = times[worker]
                duration, counts = self._run_on(
                    worker, task, storage, scalar_env, dd_of[task.id]
                )
                counts.add_to_raw(raw)
                times[worker] = start + duration
                if stolen:
                    stats.steals += 1
                    stats.steal_time_s += duration
                dev = self._worker_device(worker)
                placement = Placement(
                    task.id,
                    "cpu" if dev is None else "gpu",
                    start,
                    duration,
                    stolen,
                    device=dev if dev is not None else 0,
                )
                placed.append(placement)
                stats.placements.append(placement)
                tl.schedule(
                    LANE_CPU if dev is None else gpu_lane(dev),
                    duration,
                    not_before=start,
                    label=task.id + ("*" if stolen else ""),
                )

            # batch barrier
            barrier = max(times.values()) + BATCH_SYNC_OVERHEAD_S
            times = {w: barrier for w in times}
            pool.mark_done(batch_ids)

        makespan = max(times.values())
        sp.annotate(
            batches=stats.batches,
            steals=stats.steals,
            steal_time_s=stats.steal_time_s,
        )
        sp.set_sim(0.0, makespan)
        sp.close()
        m = obs.metrics
        m.counter("scheduler.stealing.dispatches").inc()
        m.counter("scheduler.stealing.batches").inc(stats.batches)
        m.counter("scheduler.stealing.steals").inc(stats.steals)
        m.counter("scheduler.stealing.tasks").inc(len(stats.placements))
        m.counter("scheduler.stealing.steal_time_s").inc(stats.steal_time_s)
        return ExecutionResult(
            arrays=storage.arrays,
            sim_time_s=makespan,
            counts=Counts.from_raw(raw),
            mode="stealing",
            timeline=tl,
            detail={"stats": stats},
            resilience=(
                self.ctx.faults.recorder.report(since=mark)
                if self.ctx.faults.enabled
                else None
            ),
        )

    def _pick_gpu_queue(
        self,
        queues: dict[str, WorkerQueue],
        gpu_workers: list[str],
        batch_no: int,
        task_id: str,
    ) -> str:
        """Least-loaded device queue; equal-length ties break through the
        scheduler seed so placements replay under ``--fault-seed``."""
        shortest = min(len(queues[w]) for w in gpu_workers)
        ties = [w for w in gpu_workers if len(queues[w]) == shortest]
        if len(ties) == 1:
            return ties[0]
        return ties[
            seeded_pick(
                self.ctx.scheduler_seed, ("dist", batch_no, task_id),
                len(ties),
            )
        ]

    def _prime_empty_queues(
        self,
        queues: dict[str, WorkerQueue],
        gpu_workers: list[str],
        dd_of: dict[str, str],
    ) -> None:
        if gpu_workers and not any(queues[w] for w in gpu_workers):
            # prime the first device's queue (device 0 when alive, which
            # is the only device that may take a TLS task)
            w0 = gpu_workers[0]
            task = queues["cpu"].steal_only_if(
                lambda t: not self._cpu_obligatory(dd_of[t.id])
                and self._may_run(w0, dd_of[t.id])
            )
            if task is not None:
                queues[w0].push(task)
        if not queues["cpu"] and any(queues[w] for w in gpu_workers):
            # the CPU can run anything; prefer tasks not pinned to the GPU
            victim = max(gpu_workers, key=lambda w: len(queues[w]))
            task = queues[victim].steal(
                lambda t: not self._gpu_obligatory(dd_of[t.id])
            )
            if task is not None:
                queues["cpu"].push(task)

    def _next_task(
        self,
        worker: str,
        queues: dict[str, WorkerQueue],
        gpu_workers: list[str],
        dd_of: dict[str, str],
        times: dict[str, float],
        placed: list[Placement],
    ) -> tuple[Optional[Task], bool]:
        own = queues[worker]
        task = own.pop()
        if task is not None:
            return task, False
        dev = self._worker_device(worker)
        if dev is None:
            # the CPU can run anything; prefer the tasks suited to it,
            # raiding the fullest device queue first
            victims = sorted(
                (w for w in gpu_workers if queues[w]),
                key=lambda w: (-len(queues[w]), self._rank(w)),
            )
            for w in victims:
                stolen = queues[w].steal_only_if(
                    lambda t: dd_of[t.id] in ("low", "high")
                    and self._steal_safe(t, worker, times, placed)
                )
                if stolen is not None:
                    return stolen, True
            for w in victims:
                stolen = queues[w].steal_only_if(
                    lambda t: self._steal_safe(t, worker, times, placed)
                )
                if stolen is not None:
                    return stolen, True
            return None, False
        # a GPU device steals parallel-friendly tasks only: from its
        # sibling devices first (cross-device steal), then from the CPU
        def allowed(t: Task) -> bool:
            return (
                not self._cpu_obligatory(dd_of[t.id])
                and self._may_run(worker, dd_of[t.id])
                and self._steal_safe(t, worker, times, placed)
            )

        victims = sorted(
            (w for w in gpu_workers if w != worker and queues[w]),
            key=lambda w: (-len(queues[w]), self._rank(w)),
        )
        for w in victims:
            stolen = queues[w].steal_only_if(allowed)
            if stolen is not None:
                return stolen, True
        stolen = queues["cpu"].steal_only_if(allowed)
        return stolen, stolen is not None

    def _drop_dead_workers(
        self,
        queues: dict[str, WorkerQueue],
        gpu_workers: list[str],
        dd_of: dict[str, str],
    ) -> list[str]:
        """Remove mid-batch casualties; rehome their queued tasks.

        A device the fault plane killed (see :meth:`_run_on`) stops being
        schedulable immediately; tasks still sitting in its queue move to
        the least-loaded surviving device (or the CPU when none remain,
        or for TLS tasks, which only device 0 may take).
        """
        alive = [
            w
            for w in gpu_workers
            if self.ctx.pool.is_alive(self._worker_device(w))
        ]
        if len(alive) == len(gpu_workers):
            return gpu_workers
        for w in gpu_workers:
            if w in alive:
                continue
            while True:
                task = queues[w].pop()
                if task is None:
                    break
                dd = dd_of[task.id]
                homes = [w2 for w2 in alive if self._may_run(w2, dd)]
                if homes:
                    tgt = min(
                        homes,
                        key=lambda w2: (len(queues[w2]), self._rank(w2)),
                    )
                    queues[tgt].push(task)
                else:
                    queues["cpu"].push(task)
        return alive

    # -- per-worker execution -----------------------------------------------

    def _run_on(
        self,
        worker: str,
        task: Task,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
        dd: str,
    ):
        """Run one task on a worker, degrading on injected faults.

        Fault-free this is a straight call through to the raw runner.
        Under injection, a recoverable fault rolls the task's written
        arrays back to a pre-task snapshot, marks their device copies
        invalid, and re-runs the task on the next-safer plan: GPU task ->
        CPU (with its native dd class), then CPU-sequential as the last
        resort.  When even sequential execution keeps dying the fault is
        unrecoverable.
        """
        faults = self.ctx.faults
        if not faults.enabled:
            return self._run_on_raw(worker, task, storage, scalar_env, dd)
        plans = [(worker, dd)]
        if worker != "cpu":
            plans.append(("cpu", dd))
        if plans[-1] != ("cpu", "high"):
            plans.append(("cpu", "high"))  # forces the serial CPU path
        written = task.loop.analysis.arrays_written()
        last_err: Optional[RuntimeFaultError] = None
        for pos, (w, d) in enumerate(plans):
            snapshot = snapshot_arrays(storage, written)
            try:
                return self._run_on_raw(w, task, storage, scalar_env, d)
            except RuntimeFaultError as err:
                if not is_recoverable_fault(err):
                    raise
                restore_arrays(storage, snapshot)
                for dev in self.ctx.pool.devices:
                    for name in written:
                        alloc = dev.memory.allocations.get(name)
                        if alloc is not None:
                            alloc.valid = False
                dev_id = self._worker_device(w)
                if dev_id is not None and self.ctx.pool.size > 1:
                    # a pool device that exhausted its retry budget is
                    # dead for the rest of the run; its queued tasks
                    # rehome at the next scheduling step
                    self.ctx.pool.mark_dead(dev_id)
                last_err = err
                if pos + 1 < len(plans):
                    nxt = plans[pos + 1]
                    faults.degraded(
                        err.site, f"{w}->{nxt[0]}",
                        detail=f"task {task.id}: {err}",
                    )
        raise UnrecoverableFaultError(
            f"task {task.id} failed on every worker: {last_err}",
            site=last_err.site if last_err else "",
            at_s=faults.recorder.clock_s,
        )

    def _run_on_raw(
        self,
        worker: str,
        task: Task,
        storage: ArrayStorage,
        scalar_env: dict[str, object],
        dd: str,
    ):
        loop = task.loop
        indices = task.indices(scalar_env)
        frac = len(indices) / max(1, loop.analysis.info.trip_count(scalar_env))
        if worker == "cpu":
            if dd in ("high", "low") or loop.fn is None:
                if loop.fn is None:
                    from ..runtime.hosteval import run_loop_sequential_host

                    counts, time_s = run_loop_sequential_host(
                        loop, storage, scalar_env, self.ctx.cost
                    )
                    return time_s, counts
                run = self.ctx.cpu.run_serial(
                    loop.fn, storage, scalar_env, indices,
                    elem_bytes=loop.elem_bytes,
                )
            else:
                run = self.ctx.cpu.run_parallel(
                    loop.fn, storage, scalar_env, indices,
                    threads=self.ctx.config.cpu_threads,
                    elem_bytes=loop.elem_bytes,
                )
            # a CPU write invalidates every pool device's copy of the array
            for dev in self.ctx.pool.devices:
                for name in loop.analysis.arrays_written():
                    alloc = dev.memory.allocations.get(name)
                    if alloc is not None:
                        alloc.valid = False
            return run.sim_time_s, run.counts

        # GPU worker: the pool device behind this worker name
        dev_id = self._worker_device(worker)
        device = self.ctx.pool.device(dev_id)
        cost = self.ctx.pool.cost_of(dev_id)
        time_s = 0.0
        mem = device.memory
        for move in loop.data_plan.copyin:
            arr = storage.arrays[move.array]
            alloc = mem.allocations.get(move.array)
            if alloc is None or not alloc.valid:
                nbytes = move.nbytes(scalar_env, arr)
                # copyin's return already includes fault re-issues
                moved = mem.copyin(move.array, arr.shape, arr.dtype, nbytes)
                time_s += cost.transfer_time(moved, asynchronous=True)
        for move in loop.data_plan.create:
            arr = storage.arrays[move.array]
            if move.array not in mem.allocations:
                mem.alloc(move.array, arr.shape, arr.dtype)
        for move in loop.data_plan.copyout:
            arr = storage.arrays[move.array]
            if move.array not in mem.allocations:
                mem.alloc(move.array, arr.shape, arr.dtype)

        profile = self.ctx.profiles.get(loop.id)
        coalescing = profile.coalescing if profile else loop.static_coalescing

        if dd == "low":
            engine = GpuTlsEngine(
                self.ctx.device, self.ctx.cpu, self.ctx.config.tls,
                obs=self.ctx.obs,
            )
            tls = engine.execute(
                loop.fn, indices, scalar_env, storage,
                profile=profile, coalescing=coalescing,
                elem_bytes=loop.elem_bytes,
            )
            time_s += tls.sim_time_s
            counts = tls.counts
        elif profile is not None and profile.has_false:
            from ..tls.privatize import run_privatized

            priv = run_privatized(
                device, loop.fn, indices, scalar_env, storage,
                coalescing=coalescing, elem_bytes=loop.elem_bytes,
                profile=profile,
            )
            time_s += priv.sim_time_s
            counts = priv.counts
        else:
            launch = device.launch(
                loop.fn, indices, scalar_env, storage,
                mode="direct", coalescing=coalescing,
                elem_bytes=loop.elem_bytes,
            )
            time_s += launch.sim_time_s
            counts = launch.counts

        out_bytes = self.ctx.faults.charge_transfer(
            SITE_TRANSFER_D2H,
            loop.data_plan.total_out_bytes(scalar_env, storage.arrays) * frac,
            dev_id,
        )
        if out_bytes:
            m = self.ctx.obs.metrics
            m.counter("transfer.d2h.bytes").inc(out_bytes)
            m.counter("transfer.d2h.count").inc()
        time_s += cost.transfer_time(out_bytes, asynchronous=True)
        for move in loop.data_plan.copyout:
            mem.mark_written(move.array)
        return time_s, counts
