"""Task model: a schedulable unit of loop work.

"Here a task or job refers to a loop."  A task wraps a translated loop
(optionally restricted to an index sub-range, for the sub-loop splitting
the paper applies to BICG and Crypt) plus the dynamic dependency class
used by the distribution rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..translate.translator import TranslatedLoop


@dataclass
class Task:
    """One schedulable loop (or loop sub-range)."""

    loop: TranslatedLoop
    #: explicit index list; None = the loop's full iteration space
    index_override: Optional[tuple[int, ...]] = None
    suffix: str = ""

    @property
    def id(self) -> str:
        return self.loop.id + self.suffix

    def indices(self, env: Mapping[str, object]) -> list[int]:
        if self.index_override is not None:
            return list(self.index_override)
        return list(self.loop.analysis.info.indices(env))

    def split(self, parts: int, env: Mapping[str, object]) -> list["Task"]:
        """Divide the task into ``parts`` contiguous sub-loop tasks."""
        from ..cpusim.threads import block_partition

        blocks = block_partition(self.indices(env), parts)
        return [
            Task(self.loop, tuple(block), suffix=f"{self.suffix}/{k}")
            for k, block in enumerate(blocks)
            if block
        ]

    # -- distribution hints (paper §V-B rules) -----------------------------

    @property
    def is_static_doall(self) -> bool:
        return self.loop.is_static_doall

    @property
    def cpu_only(self) -> bool:
        return self.loop.cpu_only
