"""Compilation service: a long-lived, multi-tenant front end.

``repro serve`` wraps the Japonica pipeline in an asyncio service that
accepts compile/run jobs over a local HTTP socket and executes them on a
pool of workers holding pooled, reusable :class:`ExecutionContext`\\ s.
Robustness is the headline:

* **admission control** — per-tenant token buckets and a bounded queue;
  overload is answered with *reject-plus-retry-after*, never unbounded
  buffering (:mod:`repro.serve.admission`);
* **deadlines** — a wall-clock budget stamped at admission and threaded
  through the :class:`ExecutionContext`, cancelling cleanly at pipeline
  phase boundaries (:mod:`repro.runtime.deadline`);
* **retries** — seeded-jitter exponential backoff around transient
  worker deaths, deterministic under a ``--fault-seed``;
* **circuit breakers** — per-tenant, tripping on consecutive failures
  and half-opening on a timer (:mod:`repro.serve.breaker`);
* **degradation ladder** — under load the service first drops report
  generation, then serves cache-only answers, then sheds the
  lowest-priority tenants (:mod:`repro.serve.degrade`).

The PR-3 content-keyed artifact cache is shared across tenants (it keys
on source hash + platform signature, so cross-tenant hits are safe) and
PR-5 RunReport sections stream back as results.
"""

from .admission import AdmissionController, TenantQuota, TokenBucket
from .breaker import BreakerBoard, CircuitBreaker
from .degrade import (
    LEVEL_CACHE_ONLY,
    LEVEL_DROP_REPORT,
    LEVEL_FULL,
    LEVEL_SHED_LOW,
    DegradationLadder,
)
from .jobs import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    JobLedger,
    JobResult,
    JobSpec,
)
from .client import ServeClient
from .pool import WorkerPool
from .server import ServeServer
from .service import CompilationService, ServeConfig
from .worker import WorkerRuntime

__all__ = [
    "AdmissionController",
    "BreakerBoard",
    "CircuitBreaker",
    "CompilationService",
    "DegradationLadder",
    "JobLedger",
    "JobResult",
    "JobSpec",
    "LEVEL_CACHE_ONLY",
    "LEVEL_DROP_REPORT",
    "LEVEL_FULL",
    "LEVEL_SHED_LOW",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "ServeClient",
    "ServeConfig",
    "ServeServer",
    "TenantQuota",
    "TokenBucket",
    "WorkerPool",
    "WorkerRuntime",
]
