"""Admission control: token buckets, per-tenant quotas, bounded queue.

The service never buffers without bound.  Every request passes two
gates before it may enter the dispatch queue:

1. a **per-tenant token bucket** (rate + burst; unknown tenants get the
   default quota) — the multi-tenant fairness gate;
2. the **bounded queue** — a global backpressure gate sized to what the
   worker pool can drain.

A refused request is answered immediately with a ``retry_after_s`` hint
(time until the tenant's bucket refills, or a queue-drain estimate), so
well-behaved clients back off instead of hammering.  The clock is
injectable: tests drive refill deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

#: Refusal reasons.
REASON_QUOTA = "quota"          #: tenant token bucket empty
REASON_QUEUE_FULL = "queue_full"  #: bounded queue at capacity


@dataclass
class TenantQuota:
    """Sustained rate (tokens/s) and burst capacity for one tenant."""

    rate: float = 10.0
    burst: float = 8.0


class TokenBucket:
    """Classic token bucket against an injectable monotonic clock."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0 or burst <= 0:
            raise ValueError("token bucket needs rate > 0 and burst > 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_take(self, amount: float = 1.0) -> bool:
        now = self._clock()
        self._refill(now)
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    def retry_after(self, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens will be available."""
        now = self._clock()
        self._refill(now)
        deficit = amount - self._tokens
        return max(0.0, deficit / self.rate)

    @property
    def tokens(self) -> float:
        self._refill(self._clock())
        return self._tokens


@dataclass
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str = ""
    retry_after_s: float = 0.0


class AdmissionController:
    """Per-tenant token buckets in front of a bounded queue."""

    def __init__(
        self,
        default_quota: Optional[TenantQuota] = None,
        tenant_quotas: Optional[dict[str, TenantQuota]] = None,
        max_queue: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.default_quota = default_quota or TenantQuota()
        self.tenant_quotas = dict(tenant_quotas or {})
        self.max_queue = max_queue
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self.admitted = 0
        self.rejected: dict[str, int] = {REASON_QUOTA: 0, REASON_QUEUE_FULL: 0}

    def bucket(self, tenant: str) -> TokenBucket:
        b = self._buckets.get(tenant)
        if b is None:
            q = self.tenant_quotas.get(tenant, self.default_quota)
            b = TokenBucket(q.rate, q.burst, clock=self._clock)
            self._buckets[tenant] = b
        return b

    def admit(self, tenant: str, queue_depth: int) -> AdmissionDecision:
        """Admit or refuse one request from ``tenant``.

        Order matters: the queue gate runs first (no token is burned on
        a request the queue cannot hold), then the tenant bucket.
        """
        if queue_depth >= self.max_queue:
            self.rejected[REASON_QUEUE_FULL] += 1
            # drain estimate: assume the slowest tenant rate clears the
            # backlog; clients with jitter will spread their retries
            slowest = min(
                [self.default_quota.rate]
                + [q.rate for q in self.tenant_quotas.values()]
            )
            return AdmissionDecision(
                False,
                reason=REASON_QUEUE_FULL,
                retry_after_s=max(0.05, queue_depth / max(slowest, 1e-9) / 4),
            )
        bucket = self.bucket(tenant)
        if not bucket.try_take():
            self.rejected[REASON_QUOTA] += 1
            return AdmissionDecision(
                False, reason=REASON_QUOTA,
                retry_after_s=max(1e-3, bucket.retry_after()),
            )
        self.admitted += 1
        return AdmissionDecision(True)

    def stats(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected_quota": self.rejected[REASON_QUOTA],
            "rejected_queue_full": self.rejected[REASON_QUEUE_FULL],
            "tenants": sorted(self._buckets),
            "max_queue": self.max_queue,
        }
