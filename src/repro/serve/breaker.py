"""Per-tenant circuit breakers.

A tenant whose jobs keep failing (bad source, poisoned fault spec, a
workload that always exhausts its retries) must not keep burning worker
slots that healthy tenants need.  Each tenant gets a classic three-state
breaker:

* **closed** — requests flow; ``failure_threshold`` *consecutive*
  failures trip it open;
* **open** — requests are refused instantly with a retry-after hint;
  after ``recovery_time_s`` the breaker half-opens;
* **half-open** — up to ``half_open_max`` probe requests pass through;
  one success closes the breaker, one failure re-opens it (and restarts
  the recovery timer).

The clock is injectable so tests drive the timer deterministically.
"""

from __future__ import annotations

import time
from typing import Callable

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitBreaker:
    """One tenant's breaker."""

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_time_s: float = 5.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self.half_open_max = max(1, half_open_max)
        self._clock = clock
        self.state = STATE_CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.half_open_inflight = 0
        self.trips = 0
        self.recoveries = 0

    def _maybe_half_open(self, now: float) -> None:
        if (
            self.state == STATE_OPEN
            and now - self.opened_at >= self.recovery_time_s
        ):
            self.state = STATE_HALF_OPEN
            self.half_open_inflight = 0

    def allow(self) -> bool:
        """May a request from this tenant proceed right now?"""
        now = self._clock()
        self._maybe_half_open(now)
        if self.state == STATE_CLOSED:
            return True
        if self.state == STATE_HALF_OPEN:
            if self.half_open_inflight < self.half_open_max:
                self.half_open_inflight += 1
                return True
            return False
        return False

    def retry_after(self) -> float:
        """Seconds until the breaker will half-open (0 if not open)."""
        if self.state != STATE_OPEN:
            return 0.0
        return max(
            0.0, self.recovery_time_s - (self._clock() - self.opened_at)
        )

    def release(self) -> None:
        """Release a probe slot taken by :meth:`allow` without a verdict.

        A request that passed the breaker can still be refused at a
        later gate (shed, admission) or settle with a neutral status
        (``deadline``) that is neither success nor failure.  Those
        outcomes must hand the half-open probe slot back, otherwise a
        ``half_open_max=1`` breaker would stay half-open with its one
        slot leaked — ``allow()`` false, ``retry_after()`` zero —
        permanently locking the tenant out.
        """
        if self.state == STATE_HALF_OPEN and self.half_open_inflight > 0:
            self.half_open_inflight -= 1

    def record_success(self) -> None:
        if self.state == STATE_HALF_OPEN:
            self.recoveries += 1
        self.state = STATE_CLOSED
        self.consecutive_failures = 0
        self.half_open_inflight = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == STATE_HALF_OPEN or (
            self.state == STATE_CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = STATE_OPEN
            self.opened_at = self._clock()
            self.half_open_inflight = 0
            self.trips += 1


class BreakerBoard:
    """Lazily-created breaker per tenant, sharing one configuration."""

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_time_s: float = 5.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self.half_open_max = half_open_max
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, tenant: str) -> CircuitBreaker:
        b = self._breakers.get(tenant)
        if b is None:
            b = CircuitBreaker(
                self.failure_threshold,
                self.recovery_time_s,
                self.half_open_max,
                clock=self._clock,
            )
            self._breakers[tenant] = b
        return b

    @property
    def trips(self) -> int:
        return sum(b.trips for b in self._breakers.values())

    @property
    def recoveries(self) -> int:
        return sum(b.recoveries for b in self._breakers.values())

    def stats(self) -> dict:
        return {
            tenant: {
                "state": b.state,
                "consecutive_failures": b.consecutive_failures,
                "trips": b.trips,
                "recoveries": b.recoveries,
            }
            for tenant, b in sorted(self._breakers.items())
        }
