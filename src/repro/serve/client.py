"""Blocking stdlib client for the ``repro serve`` HTTP API.

Thin on purpose: ``http.client`` only, one connection per call (the
server speaks ``Connection: close``).  Returns parsed JSON documents;
:meth:`ServeClient.submit` returns ``(http_status, result_doc)`` so
callers — the bench load generator, the chaos suite, user scripts — can
react to 429/503 back-pressure without exception gymnastics.
"""

from __future__ import annotations

import http.client
import json
from typing import Optional

from ..errors import JaponicaError


class ServeClient:
    """Talk to a running compilation service."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ---------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> tuple[int, dict]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                doc = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                doc = {"error": raw.decode("utf-8", "replace")}
            return response.status, doc
        finally:
            conn.close()

    # -- API --------------------------------------------------------------

    def submit(self, job: dict) -> tuple[int, dict]:
        """POST one job; returns ``(http_status, result_document)``."""
        return self._request("POST", "/v1/jobs", body=job)

    def submit_ok(self, job: dict) -> dict:
        """Submit and insist on success (raises on any non-200)."""
        status, doc = self.submit(job)
        if status != 200:
            raise JaponicaError(
                f"job refused: HTTP {status}: {doc.get('error', doc)}"
            )
        return doc

    def health(self) -> dict:
        status, doc = self._request("GET", "/healthz")
        if status != 200:
            raise JaponicaError(f"unhealthy: HTTP {status}: {doc}")
        return doc

    def stats(self) -> dict:
        status, doc = self._request("GET", "/v1/stats")
        if status != 200:
            raise JaponicaError(f"stats failed: HTTP {status}: {doc}")
        return doc

    def metrics(self) -> dict:
        """The merged ``repro.servemetrics/v1`` JSON document."""
        status, doc = self._request("GET", "/v1/metrics?format=json")
        if status != 200:
            raise JaponicaError(f"metrics failed: HTTP {status}: {doc}")
        return doc

    def metrics_text(self) -> str:
        """The Prometheus text exposition of ``/v1/metrics``."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", "/v1/metrics")
            response = conn.getresponse()
            raw = response.read()
            if response.status != 200:
                raise JaponicaError(
                    f"metrics failed: HTTP {response.status}"
                )
            return raw.decode("utf-8")
        finally:
            conn.close()

    def trace(self, job_id: str) -> dict:
        """One traced job's Chrome-trace document."""
        status, doc = self._request("GET", f"/v1/trace/{job_id}")
        if status != 200:
            raise JaponicaError(
                f"trace failed: HTTP {status}: {doc.get('error', doc)}"
            )
        return doc

    def flight(self) -> Optional[dict]:
        """The latest flight dump, or None if no trigger has fired."""
        status, doc = self._request("GET", "/v1/flight")
        if status == 404:
            return None
        if status != 200:
            raise JaponicaError(f"flight failed: HTTP {status}: {doc}")
        return doc
