"""Load-shedding degradation ladder.

Mirrors the PR-1 scheduler ladders (GPU → CPU-MT → serial): instead of
failing outright under overload, the service gives up features in a
fixed, documented order.  Levels are cumulative:

* ``LEVEL_FULL`` (0) — everything on;
* ``LEVEL_DROP_REPORT`` (1) — PR-5 insight/HTML report generation is
  dropped from results (the most expensive optional work goes first);
* ``LEVEL_CACHE_ONLY`` (2) — only requests whose answer is already in
  the completed-results cache are served; fresh work is shed;
* ``LEVEL_SHED_LOW`` (3) — lowest-priority tenants are shed outright,
  even before the cache lookup.

The ladder is driven by queue pressure (depth / capacity) with
hysteresis: escalation thresholds are higher than the corresponding
relaxation thresholds, so the level cannot flap on every enqueue/
dequeue pair.
"""

from __future__ import annotations

LEVEL_FULL = 0
LEVEL_DROP_REPORT = 1
LEVEL_CACHE_ONLY = 2
LEVEL_SHED_LOW = 3

LEVEL_NAMES = {
    LEVEL_FULL: "full",
    LEVEL_DROP_REPORT: "drop_report",
    LEVEL_CACHE_ONLY: "cache_only",
    LEVEL_SHED_LOW: "shed_low_priority",
}

#: (escalate_at, relax_below) load fractions per level transition.
DEFAULT_THRESHOLDS = (
    (0.50, 0.35),  # FULL        <-> DROP_REPORT
    (0.75, 0.55),  # DROP_REPORT <-> CACHE_ONLY
    (0.90, 0.70),  # CACHE_ONLY  <-> SHED_LOW
)


class DegradationLadder:
    """Hysteretic mapping from queue pressure to a degradation level."""

    def __init__(self, thresholds=DEFAULT_THRESHOLDS):
        if len(thresholds) != 3:
            raise ValueError("ladder needs exactly 3 threshold pairs")
        for up, down in thresholds:
            if not 0.0 <= down <= up <= 1.0:
                raise ValueError(
                    f"bad threshold pair ({up}, {down}): need "
                    f"0 <= relax <= escalate <= 1"
                )
        self.thresholds = tuple(thresholds)
        self.level = LEVEL_FULL
        #: how many times each level was entered (escalations only)
        self.escalations = [0, 0, 0]

    def observe(self, load: float) -> int:
        """Update the level from the current load fraction; returns it."""
        load = max(0.0, float(load))
        # escalate as far as the load justifies
        while self.level < LEVEL_SHED_LOW:
            up, _ = self.thresholds[self.level]
            if load >= up:
                self.level += 1
                self.escalations[self.level - 1] += 1
            else:
                break
        # relax one rung at a time, only once below the lower threshold
        while self.level > LEVEL_FULL:
            _, down = self.thresholds[self.level - 1]
            if load < down:
                self.level -= 1
            else:
                break
        return self.level

    @property
    def name(self) -> str:
        return LEVEL_NAMES[self.level]

    def stats(self) -> dict:
        return {
            "level": self.level,
            "name": self.name,
            "escalations": {
                LEVEL_NAMES[i + 1]: n
                for i, n in enumerate(self.escalations)
            },
        }
