"""Job model of the compilation service.

A :class:`JobSpec` is what a tenant submits (over HTTP or directly to
the service): either a ``compile`` job carrying annotated mini-Java
source, or a ``run`` job naming a Table-II workload with its parameters.
Both travel as plain dicts so the HTTP layer and the process-pool
transport share one wire format.

A :class:`JobResult` is the terminal answer.  Every job ends in exactly
one of the :data:`TERMINAL_STATUSES`; the :class:`JobLedger` enforces
that an *admitted* job settles exactly once — the invariant the chaos
suite reconciles after driving the server through worker deaths.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import asdict, dataclass, field
from typing import Optional

from ..errors import JaponicaError

#: Job priorities (lower number = more important).
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2
PRIORITIES = (PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW)

#: Terminal job statuses.
STATUS_OK = "ok"                  #: completed; payload attached
STATUS_FAILED = "failed"          #: pipeline error / retries exhausted
STATUS_REJECTED = "rejected"      #: admission control said no (retry later)
STATUS_SHED = "shed"              #: degradation ladder dropped the job
STATUS_DEADLINE = "deadline"      #: wall-clock budget ran out
STATUS_BREAKER_OPEN = "breaker_open"  #: tenant circuit breaker is open

TERMINAL_STATUSES = (
    STATUS_OK,
    STATUS_FAILED,
    STATUS_REJECTED,
    STATUS_SHED,
    STATUS_DEADLINE,
    STATUS_BREAKER_OPEN,
)

_seq = itertools.count(1)


@dataclass
class JobSpec:
    """One tenant request."""

    tenant: str
    kind: str = "run"  # "run" | "compile"
    #: run jobs: Table-II workload name + parameters
    workload: Optional[str] = None
    n: int = 1
    seed: int = 0
    strategy: str = "japonica"
    scheme: Optional[str] = None
    devices: int = 1
    #: compile jobs: annotated mini-Java source
    source: Optional[str] = None
    #: scheduling priority (0 high .. 2 low); the shedding ladder drops
    #: priority-2 jobs first
    priority: int = PRIORITY_NORMAL
    #: wall-clock budget in milliseconds (None = service default)
    deadline_ms: Optional[float] = None
    #: request a PR-5 insight report section with the result (dropped
    #: first by the degradation ladder)
    report: bool = False
    #: per-job fault-injection spec (chaos testing through the service)
    faults: Optional[str] = None
    fault_seed: int = 0
    #: check run results against the workload's NumPy reference
    verify: bool = False
    #: assigned by the service at submission
    job_id: str = ""

    def __post_init__(self):
        if not self.job_id:
            self.job_id = f"job-{next(_seq)}"

    def validate(self) -> None:
        """Raise :class:`JaponicaError` on a malformed spec."""
        if not self.tenant or not isinstance(self.tenant, str):
            raise JaponicaError("job needs a non-empty tenant")
        if self.kind not in ("run", "compile"):
            raise JaponicaError(
                f"unknown job kind {self.kind!r}; expected 'run' or 'compile'"
            )
        if self.kind == "run" and not self.workload:
            raise JaponicaError("run jobs need a workload name")
        if self.kind == "compile" and not self.source:
            raise JaponicaError("compile jobs need annotated source text")
        if self.priority not in PRIORITIES:
            raise JaponicaError(
                f"priority must be one of {PRIORITIES}, got {self.priority}"
            )
        if self.devices < 1:
            raise JaponicaError(f"devices must be >= 1, got {self.devices}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise JaponicaError(
                f"deadline_ms must be > 0, got {self.deadline_ms}"
            )
        if self.faults is not None:
            # validate the spec grammar up front: a malformed --faults
            # string must be a pointed 400, never a mid-run traceback
            from ..faults.schedule import FaultSchedule

            FaultSchedule.parse(self.faults, seed=self.fault_seed)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "JobSpec":
        if not isinstance(doc, dict):
            raise JaponicaError("job document must be a JSON object")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(doc) - known
        if unknown:
            raise JaponicaError(f"unknown job fields {sorted(unknown)}")
        return cls(**doc)

    #: content key for the cache-only degradation rung: two identical
    #: requests (any tenant) may share one completed answer
    def result_key(self) -> str:
        if self.kind == "compile":
            digest = hashlib.sha256((self.source or "").encode()).hexdigest()
            return f"compile/{digest}"
        return (
            f"run/{self.workload}/{self.n}/{self.seed}/{self.strategy}/"
            f"{self.scheme}/{self.devices}/{self.faults}/{self.fault_seed}"
        )


@dataclass
class JobResult:
    """Terminal answer for one job."""

    job_id: str
    tenant: str
    status: str
    kind: str = "run"
    #: simulated + host wall time of the pipeline (run jobs)
    sim_time_ms: float = 0.0
    host_time_ms: float = 0.0
    #: execution modes the scheduler chose, one per loop
    modes: list[str] = field(default_factory=list)
    #: compile jobs: per-loop analysis verdicts
    compile: Optional[dict] = None
    #: PR-5 insight report section (None when dropped by the ladder)
    report: Optional[dict] = None
    #: resilience summary when fault injection was on
    resilience: Optional[dict] = None
    #: degradation level the job was served under + what was dropped
    degrade_level: int = 0
    degraded: list[str] = field(default_factory=list)
    #: scheduling metadata
    attempts: int = 1
    retry_after_s: Optional[float] = None
    served_from_cache: bool = False
    wall_ms: float = 0.0
    error: Optional[str] = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "JobResult":
        return cls(**doc)


class JobLedger:
    """Exactly-once settlement accounting for admitted jobs.

    ``admit`` registers a job; ``settle`` records its single terminal
    status and raises on a duplicate.  After a chaos run the suite
    asserts ``unsettled()`` is empty (no lost jobs) and
    ``duplicate_settlements == 0`` (no double answers).
    """

    def __init__(self):
        self.admitted: dict[str, Optional[str]] = {}
        self.refused: dict[str, str] = {}
        #: per-settled-job context record (tenant, trace id, attempts):
        #: parallel to ``admitted`` so post-mortems can name whose job a
        #: settlement was without changing the status-keyed view the
        #: chaos suite reconciles
        self.records: dict[str, dict] = {}
        self.duplicate_settlements = 0

    def admit(self, job: JobSpec) -> None:
        if job.job_id in self.admitted:
            raise JaponicaError(f"job {job.job_id} admitted twice")
        self.admitted[job.job_id] = None

    def refuse(self, job: JobSpec, status: str) -> None:
        """Record a pre-admission refusal (reject/shed/breaker)."""
        self.refused[job.job_id] = status

    def settle(self, job_id: str, status: str, tenant: str = "",
               trace_id: str = "", attempts: int = 0) -> None:
        if status not in TERMINAL_STATUSES:
            raise JaponicaError(f"not a terminal status: {status!r}")
        if job_id not in self.admitted:
            raise JaponicaError(f"job {job_id} settled without admission")
        if self.admitted[job_id] is not None:
            self.duplicate_settlements += 1
            raise JaponicaError(f"job {job_id} settled twice")
        self.admitted[job_id] = status
        self.records[job_id] = {
            "status": status,
            "tenant": tenant,
            "trace_id": trace_id,
            "attempts": attempts,
        }

    def unsettled(self) -> list[str]:
        return [jid for jid, st in self.admitted.items() if st is None]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for status in self.admitted.values():
            if status is not None:
                out[status] = out.get(status, 0) + 1
        for status in self.refused.values():
            out[status] = out.get(status, 0) + 1
        return out
