"""Worker pool: thread or process workers around :class:`WorkerRuntime`.

Two backends share one contract — ``await pool.run(job, ...)`` returns a
terminal :class:`JobResult` or raises :class:`WorkerDied`:

* ``thread`` (default) — a thread pool in-process; each thread owns a
  :class:`WorkerRuntime` and all threads share one thread-safe
  :class:`ArtifactCache`.  Deterministic and cheap: the backend used by
  the test and bench planes.
* ``process`` — real child processes (fork where available), each with
  its own runtime; the artifact cache is shared through the crash-safe
  on-disk layer (``cache_dir``).  A worker killed mid-job is detected by
  liveness polling, replaced, and the job surfaces as
  :class:`WorkerDied` for the service to retry.

Worker-death injection (site ``serve.worker``) is decided *in the event
loop* before dispatch, keyed to the pool's fault schedule by the global
dispatch index — so a chaos run replayed with the same ``--fault-seed``
kills the same jobs' workers regardless of thread/process timing.

When the pool is built with ``trace=True`` each runtime records spans
and metrics; the trace context crosses the process pipe as a plain dict
next to the job document, and the worker's span slice plus registry
snapshot ride back on the result document.  :class:`WorkerDied` raised
here always carries the lost job's identity (job id, tenant, trace id)
so death messages in logs and flight dumps are never anonymous.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..cache.artifacts import ArtifactCache
from ..errors import JaponicaError, WorkerDied
from ..faults.plane import SITE_SERVE_WORKER
from ..faults.resilience import FaultRuntime
from ..obs.distrib import TraceContext
from ..runtime.deadline import Deadline
from .jobs import JobResult, JobSpec
from .worker import WorkerRuntime

BACKENDS = ("thread", "process")

#: Liveness poll interval while waiting on a process worker (seconds).
_POLL_S = 0.02

#: Result-doc keys that are pool transport, not client answer fields.
_SIDE_CHANNEL_KEYS = ("trace_spans", "worker_metrics", "worker_name")


def _process_worker_main(conn, cache_dir: Optional[str],
                         name: str = "serve-w", trace: bool = False) -> None:
    """Child-process loop: recv (job, level, deadline, trace) -> result."""
    runtime = WorkerRuntime(cache_dir=cache_dir, trace=trace, name=name)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if msg is None:
            break
        job_doc, degrade_level, deadline_remaining_s, trace_doc = msg
        try:
            out = runtime.execute_dict(
                job_doc, degrade_level, deadline_remaining_s,
                trace_doc=trace_doc,
            )
        except BaseException as exc:  # the loop itself must never die
            out = JobResult(
                job_doc.get("job_id", ""), job_doc.get("tenant", ""),
                "failed", kind=job_doc.get("kind", "run"),
                error=f"worker loop: {exc!r}",
            ).to_dict()
            out["cache_delta"] = {"hits": 0, "misses": 0}
        try:
            conn.send(out)
        except (BrokenPipeError, OSError):
            break


class _ProcWorker:
    """Handle on one child process + its pipe."""

    def __init__(self, mp_ctx, cache_dir: Optional[str], name: str,
                 trace: bool = False):
        parent, child = mp_ctx.Pipe()
        self.conn = parent
        self.name = name
        self.process = mp_ctx.Process(
            target=_process_worker_main, args=(child, cache_dir, name, trace),
            name=name, daemon=True,
        )
        self.process.start()
        child.close()

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        if self.process.pid is not None and self.alive():
            os.kill(self.process.pid, signal.SIGKILL)
        self.process.join(timeout=5.0)

    def shutdown(self) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=2.0)
        if self.alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=2.0)
        self.conn.close()


class WorkerPool:
    """N workers executing jobs on pooled runtimes."""

    def __init__(
        self,
        workers: int = 2,
        backend: str = "thread",
        cache_dir: Optional[str] = None,
        faults: Optional[FaultRuntime] = None,
        trace: bool = False,
    ):
        if workers < 1:
            raise JaponicaError(f"pool needs >= 1 worker, got {workers}")
        if backend not in BACKENDS:
            raise JaponicaError(
                f"unknown pool backend {backend!r}; expected one of {BACKENDS}"
            )
        self.workers = workers
        self.backend = backend
        self.cache_dir = cache_dir
        self.trace = bool(trace)
        #: fault runtime probed at ``serve.worker`` per dispatch
        self.faults = faults or FaultRuntime()
        self.worker_deaths = 0
        self.workers_spawned = 0
        # thread backend state
        self.cache = ArtifactCache(cache_dir=cache_dir)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._runtimes: dict[int, WorkerRuntime] = {}
        self._runtimes_lock = threading.Lock()
        self._thread_seq = 0
        # process backend state
        self._mp_ctx = None
        self._free: Optional[asyncio.Queue] = None
        self._procs: list[_ProcWorker] = []
        self._started = False

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        if self.backend == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-serve",
            )
        else:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
            self._mp_ctx = multiprocessing.get_context(method)
            self._free = asyncio.Queue()
            for _ in range(self.workers):
                self._free.put_nowait(self._spawn())
        self._started = True

    def _spawn(self) -> _ProcWorker:
        self.workers_spawned += 1
        w = _ProcWorker(
            self._mp_ctx, self.cache_dir, f"serve-w{self.workers_spawned}",
            trace=self.trace,
        )
        # track every live handle: stop() must reach workers that are
        # checked out of the free queue (a run() in flight), not only
        # the idle ones
        self._procs.append(w)
        return w

    async def stop(self) -> None:
        if not self._started:
            return
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for w in self._procs:
            w.shutdown()
        self._procs = []
        if self._free is not None:
            # free-queue entries are all tracked in _procs and already
            # shut down above; just drop the references
            while not self._free.empty():
                self._free.get_nowait()
            self._free = None
        self._started = False

    # -- dispatch ---------------------------------------------------------

    async def run(
        self,
        job: JobSpec,
        degrade_level: int = 0,
        deadline: Optional[Deadline] = None,
        trace_ctx: Optional[TraceContext] = None,
    ) -> JobResult:
        """Execute ``job``; raises :class:`WorkerDied` on a lost worker."""
        if not self._started:
            await self.start()
        # decide worker death here, in the event loop, so the injection
        # sequence is a pure function of (seed, dispatch index)
        directive = (
            self.faults.probe(SITE_SERVE_WORKER)
            if self.faults.enabled
            else None
        )
        if self.backend == "thread":
            return await self._run_thread(job, degrade_level, deadline,
                                          die=directive is not None,
                                          trace_ctx=trace_ctx)
        return await self._run_process(job, degrade_level, deadline,
                                       die=directive is not None,
                                       trace_ctx=trace_ctx)

    def _died(self, message: str, worker: str, job: JobSpec,
              trace_ctx: Optional[TraceContext]) -> WorkerDied:
        return WorkerDied(
            f"{message} [job={job.job_id} tenant={job.tenant}"
            + (f" trace={trace_ctx.trace_id}" if trace_ctx else "") + "]",
            worker=worker, job_id=job.job_id, tenant=job.tenant,
            trace_id=trace_ctx.trace_id if trace_ctx else "",
        )

    # -- thread backend ---------------------------------------------------

    def _thread_runtime(self) -> WorkerRuntime:
        ident = threading.get_ident()
        with self._runtimes_lock:
            runtime = self._runtimes.get(ident)
            if runtime is None:
                self._thread_seq += 1
                runtime = WorkerRuntime(
                    cache=self.cache, trace=self.trace,
                    name=f"thread-w{self._thread_seq}",
                )
                self._runtimes[ident] = runtime
        return runtime

    async def _run_thread(
        self, job: JobSpec, degrade_level: int,
        deadline: Optional[Deadline], die: bool,
        trace_ctx: Optional[TraceContext] = None,
    ) -> JobResult:
        if die:
            # the worker dies before acknowledging: its in-memory pools
            # are lost (one runtime dropped), the job is never acked
            self.worker_deaths += 1
            name = "thread"
            with self._runtimes_lock:
                if self._runtimes:
                    dropped = self._runtimes.pop(next(iter(self._runtimes)))
                    name = dropped.name
            raise self._died(
                f"injected worker death before job {job.job_id}",
                worker=name, job=job, trace_ctx=trace_ctx,
            )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor,
            lambda: self._thread_runtime().execute(
                job, degrade_level, deadline, trace=trace_ctx
            ),
        )

    # -- process backend --------------------------------------------------

    @staticmethod
    def _exchange(w: _ProcWorker, payload) -> dict:
        """Blocking send/recv with liveness polling (executor thread)."""
        try:
            w.conn.send(payload)
        except (BrokenPipeError, OSError):
            raise WorkerDied(f"worker {w.name} died before send",
                             worker=w.name) from None
        while True:
            try:
                if w.conn.poll(_POLL_S):
                    return w.conn.recv()
            except (EOFError, OSError):
                raise WorkerDied(f"worker {w.name} died mid-job",
                                 worker=w.name) from None
            if not w.alive():
                raise WorkerDied(f"worker {w.name} died mid-job",
                                 worker=w.name)

    async def _run_process(
        self, job: JobSpec, degrade_level: int,
        deadline: Optional[Deadline], die: bool,
        trace_ctx: Optional[TraceContext] = None,
    ) -> JobResult:
        w: _ProcWorker = await self._free.get()
        replaced = False
        try:
            if die:
                w.kill()  # real SIGKILL: the dispatch below must recover
            remaining = deadline.remaining() if deadline is not None else None
            loop = asyncio.get_running_loop()
            payload = (
                job.to_dict(), degrade_level, remaining,
                trace_ctx.to_doc() if trace_ctx is not None else None,
            )
            try:
                doc = await loop.run_in_executor(
                    None, self._exchange, w, payload
                )
            except WorkerDied as exc:
                self.worker_deaths += 1
                replaced = True
                try:
                    w.conn.close()
                except OSError:
                    pass
                w.process.join(timeout=1.0)
                if w in self._procs:
                    self._procs.remove(w)
                self._free.put_nowait(self._spawn())
                raise self._died(
                    str(exc), worker=w.name, job=job, trace_ctx=trace_ctx,
                ) from None
            cache_delta = doc.pop("cache_delta", {"hits": 0, "misses": 0})
            side = {
                key: doc.pop(key) for key in _SIDE_CHANNEL_KEYS if key in doc
            }
            result = JobResult.from_dict(doc)
            result.__dict__["cache_delta"] = cache_delta
            result.__dict__.update(side)
            return result
        finally:
            if not replaced:
                self._free.put_nowait(w)

    def stats(self) -> dict:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "worker_deaths": self.worker_deaths,
            "workers_spawned": self.workers_spawned,
            "cache": self.cache.stats() if self.backend == "thread" else None,
        }
