"""Minimal asyncio HTTP/1.1 front end over :class:`CompilationService`.

Deliberately stdlib-only (``asyncio.start_server`` + hand-rolled
HTTP/1.1): the service is a local control plane, not a public web
server.  One connection carries one request (``Connection: close``).

Routes
------
* ``POST /v1/jobs`` — submit a :class:`JobSpec` as JSON; the terminal
  :class:`JobResult` comes back with a load-aware status code:

  ========================  ====  =========================
  job status                HTTP  extra header
  ========================  ====  =========================
  ``ok``                    200
  malformed spec            400
  ``rejected``              429   ``Retry-After``
  ``shed``/``breaker_open``  503   ``Retry-After``
  ``deadline``              504
  ``failed``                500
  ========================  ====  =========================

* ``GET /healthz`` — liveness + current degradation level.
* ``GET /v1/stats`` — full :meth:`CompilationService.stats` document.
* ``GET /v1/metrics`` — live merged metrics: Prometheus text 0.0.4 by
  default, the deterministic ``repro.servemetrics/v1`` JSON document
  with ``?format=json``.
* ``GET /v1/trace/<job_id>`` — one traced job's Chrome-trace document
  (404 unless the service runs with tracing and the job is known).
* ``GET /v1/flight`` — the latest flight-recorder dump (404 until a
  trigger — worker death, breaker trip, shed — has fired).

When tracing is on, ``POST /v1/jobs`` opens the request's root span
(``http:POST /v1/jobs`` — the HTTP-accept edge of the trace tree) and
the response body gains a ``trace_id`` field.  With tracing off the
body is byte-identical to the untraced server.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Optional

from ..errors import JaponicaError
from ..obs.distrib import JobTrace, TraceContext
from .jobs import (
    STATUS_BREAKER_OPEN,
    STATUS_DEADLINE,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_SHED,
    JobSpec,
)
from .service import CompilationService, ServeConfig

#: JobResult.status -> HTTP status code.
STATUS_CODES = {
    STATUS_OK: 200,
    STATUS_REJECTED: 429,
    STATUS_SHED: 503,
    STATUS_BREAKER_OPEN: 503,
    STATUS_DEADLINE: 504,
}

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: Submission bodies above this are refused (anti-footgun, not security).
MAX_BODY = 1 << 20


class ServeServer:
    """The ``repro serve`` listener."""

    def __init__(
        self,
        service: Optional[CompilationService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service or CompilationService(ServeConfig())
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        # resolve port 0 to the bound port
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- one request per connection ---------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload, headers = await self._dispatch(reader)
        except Exception as exc:  # the listener must never die
            status, headers = 500, {}
            payload = {"error": f"{type(exc).__name__}: {exc}"}
        try:
            self._write_response(writer, status, payload, headers)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, reader) -> tuple:
        request = await reader.readline()
        parts = request.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}, {}
        method, path = parts[0].upper(), parts[1]

        # headers: only Content-Length matters to us
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}, {}
                if length < 0:
                    return 400, {"error": "bad Content-Length"}, {}
        if length > MAX_BODY:
            return 413, {"error": f"body over {MAX_BODY} bytes"}, {}
        body = await reader.readexactly(length) if length else b""

        if method == "GET" and path == "/healthz":
            return 200, {
                "status": "ok",
                "degrade_level": self.service.ladder.level,
                "degrade_mode": self.service.ladder.name,
                "queue_depth": self.service._queue.qsize(),
            }, {}
        if method == "GET" and path == "/v1/stats":
            return 200, self.service.stats(), {}
        if method == "GET" and path.split("?", 1)[0] == "/v1/metrics":
            if path.endswith("?format=json"):
                return 200, self.service.metrics_document(), {}
            return 200, self.service.metrics_prometheus(), {}
        if method == "GET" and path.startswith("/v1/trace/"):
            job_id = path[len("/v1/trace/"):]
            doc = self.service.trace_document(job_id)
            if doc is None:
                return 404, {"error": f"no trace for job {job_id!r}"}, {}
            return 200, doc, {}
        if method == "GET" and path == "/v1/flight":
            dump = self.service.flight_latest()
            if dump is None:
                return 404, {"error": "no flight dump recorded yet"}, {}
            return 200, dump, {}
        if path == "/v1/jobs":
            if method != "POST":
                return 405, {"error": "use POST /v1/jobs"}, {}
            return await self._submit(body)
        return 404, {"error": f"no route {method} {path}"}, {}

    async def _submit(self, body: bytes) -> tuple:
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": f"bad JSON body: {exc}"}, {}
        try:
            job = JobSpec.from_dict(doc)
            trace = None
            if self.service.config.trace:
                # the HTTP edge mints the trace: its root span is the
                # accept event the whole request tree hangs under
                trace = JobTrace(TraceContext.mint(job.tenant, job.job_id))
                trace.open_root(
                    "http:POST /v1/jobs", "serve.http",
                    job_id=job.job_id, tenant=job.tenant,
                )
            result = await self.service.submit(job, trace=trace)
        except JaponicaError as exc:
            # malformed spec (including a bad --faults grammar): pointed
            # message, 400, never a traceback
            return 400, {"error": str(exc)}, {}
        status = STATUS_CODES.get(result.status, 500)
        headers = {}
        if result.retry_after_s is not None and status in (429, 503):
            # RFC 9110 Retry-After is integer delta-seconds; the precise
            # float stays in the body's retry_after_s field
            headers["Retry-After"] = str(
                max(1, math.ceil(result.retry_after_s))
            )
        doc = result.to_dict()
        if trace is not None:
            doc["trace_id"] = trace.context.trace_id
        return status, doc, headers

    @staticmethod
    def _write_response(writer, status: int, payload,
                        headers: dict) -> None:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            ctype = "application/json"
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head.extend(f"{k}: {v}" for k, v in headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
