"""The compilation service: admission → deadline → breaker → shedding.

:class:`CompilationService` is the transport-independent core — the HTTP
layer (:mod:`repro.serve.server`) is a thin adapter over
:meth:`CompilationService.submit`.  One submission flows through the
gates in a fixed order:

1. **validate** — malformed specs (including bad ``faults`` grammar)
   are refused with a pointed message, never a mid-run traceback;
2. **circuit breaker** — a tenant with too many consecutive failures is
   refused instantly until the breaker half-opens;
3. **degradation ladder** — under queue pressure the service drops
   report generation, then serves cache-only answers, then sheds
   lowest-priority jobs outright;
4. **admission control** — per-tenant token bucket + bounded queue;
   refusals carry a ``retry_after_s`` hint;
5. **dispatch** — a deadline is stamped, the job enters the priority
   queue, and a dispatcher drives it through the worker pool with
   seeded-jitter retries around worker deaths.

Every admitted job settles in the :class:`JobLedger` exactly once; the
chaos suite reconciles that invariant after killing workers mid-run.

**Observability** (``trace=True`` in :class:`ServeConfig`): every job
carries a :class:`~repro.obs.distrib.JobTrace` whose tracer records one
span per gate verdict and dispatch attempt; worker-side pipeline spans
ship back with the result and are grafted under the attempt that
produced them, so one job exports one Chrome-trace tree from HTTP accept
to settlement.  Worker registries ride back the same way and fold into
the service's own metrics with the commutative merge behind
``/v1/metrics``.  A bounded flight recorder runs regardless of tracing
and dumps a ``repro.flight/v1`` post-mortem bundle on worker death,
breaker trip, or (with ``dump_on_shed``) a shed.  With tracing off, the
null tracer makes every span call a shared no-op and results carry no
extra fields: responses are byte-identical to the untraced service.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import JaponicaError, WorkerDied
from ..faults.resilience import FaultRuntime, ResiliencePolicy
from ..faults.schedule import FaultSchedule
from ..obs.export import chrome_trace
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER
from ..obs.distrib import (
    LANE_SERVICE,
    FlightRecorder,
    JobTrace,
    TraceContext,
    adopt_spans,
    close_open_spans,
    merge_states,
    open_span_docs,
    registry_state,
    render_prometheus,
    slo_summary,
    state_histogram_summary,
    tenant_latency_summary,
    write_flight_dump,
)
from ..runtime.deadline import Deadline
from .admission import AdmissionController, TenantQuota
from .breaker import BreakerBoard
from .degrade import (
    LEVEL_CACHE_ONLY,
    LEVEL_SHED_LOW,
    DEFAULT_THRESHOLDS,
    DegradationLadder,
)
from .jobs import (
    PRIORITY_LOW,
    STATUS_BREAKER_OPEN,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_SHED,
    JobLedger,
    JobResult,
    JobSpec,
)
from .pool import WorkerPool

#: Schema tag of the ``/v1/metrics`` JSON document.
METRICS_DOC_SCHEMA = "repro.servemetrics/v1"


@dataclass
class ServeConfig:
    """Tuning knobs of the compilation service."""

    #: worker pool
    workers: int = 2
    backend: str = "thread"  # "thread" | "process"
    cache_dir: Optional[str] = None
    #: admission control
    max_queue: int = 32
    quota_rate: float = 50.0      #: default tokens/s per tenant
    quota_burst: float = 16.0     #: default burst per tenant
    tenant_quotas: dict[str, TenantQuota] = field(default_factory=dict)
    #: deadlines
    default_deadline_s: float = 30.0
    #: circuit breaker
    breaker_failures: int = 3
    breaker_recovery_s: float = 2.0
    breaker_half_open_max: int = 1
    #: worker-death retries (real seconds, seeded-jitter exponential)
    max_retries: int = 3
    retry_base_s: float = 0.002
    retry_cap_s: float = 0.25
    #: degradation ladder thresholds ((escalate, relax) per rung)
    thresholds: tuple = DEFAULT_THRESHOLDS
    #: serve-level fault schedule (``serve.worker`` site) for chaos runs
    faults: Optional[str] = None
    fault_seed: int = 0
    #: completed-results cache (the cache-only degradation rung)
    results_cache_entries: int = 256
    #: request tracing + worker metric shipping (PR 10); off by default
    #: so the untraced serve plane stays byte-identical
    trace: bool = False
    #: settled job traces retained for ``GET /v1/trace/<job_id>`` (LRU)
    trace_keep: int = 64
    #: flight-recorder ring capacity (events per lane)
    flight_events: int = 64
    #: in-memory flight dumps retained
    flight_keep: int = 8
    #: also dump the flight recorder when a job is shed
    dump_on_shed: bool = False
    #: directory for flight-dump files (None = in-memory only)
    dump_dir: Optional[str] = None
    #: latency SLO target feeding the good/bad burn-rate counters
    slo_wall_ms: float = 30000.0


class CompilationService:
    """Long-lived multi-tenant front end over the Japonica pipeline."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or ServeConfig()
        self.clock = clock
        self.metrics = MetricsRegistry()
        cfg = self.config
        self.admission = AdmissionController(
            default_quota=TenantQuota(cfg.quota_rate, cfg.quota_burst),
            tenant_quotas=cfg.tenant_quotas,
            max_queue=cfg.max_queue,
            clock=clock,
        )
        self.breakers = BreakerBoard(
            failure_threshold=cfg.breaker_failures,
            recovery_time_s=cfg.breaker_recovery_s,
            half_open_max=cfg.breaker_half_open_max,
            clock=clock,
        )
        self.ladder = DegradationLadder(cfg.thresholds)
        self.faults = FaultRuntime(policy=ResiliencePolicy(
            max_retries=cfg.max_retries,
            backoff_base_s=cfg.retry_base_s,
        ))
        if cfg.faults:
            self.faults.install(
                FaultSchedule.parse(cfg.faults, seed=cfg.fault_seed)
            )
        self.pool = WorkerPool(
            workers=cfg.workers,
            backend=cfg.backend,
            cache_dir=cfg.cache_dir,
            faults=self.faults,
            trace=cfg.trace,
        )
        self.ledger = JobLedger()
        self.flight = FlightRecorder(capacity=cfg.flight_events)
        self._flight_dumps: deque = deque(maxlen=cfg.flight_keep)
        #: latest registry snapshot per worker (cumulative, so keeping
        #: only the newest per worker makes the fold exact)
        self._worker_metrics: dict[str, dict] = {}
        #: job traces: in flight, then an LRU of settled ones
        self._active_traces: dict[str, JobTrace] = {}
        self._traces: OrderedDict[str, JobTrace] = OrderedDict()
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._qseq = itertools.count()
        self._dispatchers: list[asyncio.Task] = []
        self._results_cache: OrderedDict[str, dict] = OrderedDict()
        self._started = False

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        await self.pool.start()
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(), name=f"dispatch-{i}")
            for i in range(self.config.workers)
        ]
        self._started = True

    async def stop(self, drain: bool = True) -> None:
        if not self._started:
            return
        if drain:
            await self._queue.join()
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._dispatchers = []
        await self.pool.stop()
        self._started = False

    # -- tracing helpers --------------------------------------------------

    def _mint_trace(self, job: JobSpec) -> Optional[JobTrace]:
        if not self.config.trace:
            return None
        trace = JobTrace(TraceContext.mint(job.tenant, job.job_id))
        trace.open_root(
            "serve.job", "serve", job_id=job.job_id, tenant=job.tenant,
        )
        self._active_traces[job.job_id] = trace
        return trace

    def _finish_trace(self, job: JobSpec, trace: Optional[JobTrace],
                      result: JobResult) -> None:
        """Close the root, sweep stragglers, retire the trace to the LRU."""
        if trace is None:
            return
        if trace.root is not None and trace.root.span.open:
            trace.root.annotate(status=result.status,
                                attempts=result.attempts)
            trace.root.close()
        close_open_spans(trace.tracer, status="abandoned")
        self._active_traces.pop(job.job_id, None)
        self._traces[job.job_id] = trace
        self._traces.move_to_end(job.job_id)
        while len(self._traces) > self.config.trace_keep:
            self._traces.popitem(last=False)

    def _flight_dump(self, reason: str, **attrs) -> dict:
        open_spans = []
        for job_id in sorted(self._active_traces):
            open_spans.extend(
                open_span_docs(self._active_traces[job_id].tracer)
            )
        state = {
            "queue_depth": self._queue.qsize(),
            "degradation": self.ladder.stats(),
            "breakers": {
                "trips": self.breakers.trips,
                "recoveries": self.breakers.recoveries,
            },
            "pool": {
                "backend": self.pool.backend,
                "workers": self.pool.workers,
                "worker_deaths": self.pool.worker_deaths,
                "workers_spawned": self.pool.workers_spawned,
            },
            "ledger": self.ledger.counts(),
        }
        doc = self.flight.dump(
            reason, open_spans=open_spans, state=state, **attrs
        )
        self._flight_dumps.append(doc)
        if self.config.dump_dir:
            os.makedirs(self.config.dump_dir, exist_ok=True)
            write_flight_dump(
                os.path.join(
                    self.config.dump_dir,
                    f"flight-{doc['dump_seq']:04d}-{reason}.json",
                ),
                doc,
            )
        return doc

    def flight_latest(self) -> Optional[dict]:
        """The most recent flight dump, if any trigger has fired."""
        return self._flight_dumps[-1] if self._flight_dumps else None

    def trace_document(self, job_id: str) -> Optional[dict]:
        """One settled (or in-flight) job's Chrome-trace document."""
        trace = self._traces.get(job_id) or self._active_traces.get(job_id)
        if trace is None:
            return None
        return chrome_trace(
            trace.tracer.spans,
            metadata={"trace_id": trace.context.trace_id, "job_id": job_id},
        )

    # -- metrics merge ----------------------------------------------------

    def metrics_state(self) -> dict:
        """Service registry folded with every worker's latest snapshot."""
        state = registry_state(self.metrics)
        for name in sorted(self._worker_metrics):
            state = merge_states(state, self._worker_metrics[name])
        return state

    def metrics_prometheus(self) -> str:
        return render_prometheus(self.metrics_state())

    def metrics_document(self) -> dict:
        """The deterministic JSON view behind ``/v1/metrics?format=json``."""
        state = self.metrics_state()
        counters = state["counters"]
        admitted = counters.get("serve.admitted", 0.0)
        refused = sum(
            v for k, v in counters.items()
            if k in (f"serve.{STATUS_REJECTED}", f"serve.{STATUS_SHED}",
                     f"serve.{STATUS_BREAKER_OPEN}")
        )
        submitted = admitted + refused
        return {
            "schema": METRICS_DOC_SCHEMA,
            "workers_reporting": sorted(self._worker_metrics),
            "counters": counters,
            "gauges": state["gauges"],
            "histograms": {
                name: state_histogram_summary(h)
                for name, h in state["histograms"].items()
            },
            "tenants": tenant_latency_summary(state),
            "slo": slo_summary(state, self.config.slo_wall_ms),
            "rates": {
                "shed": (
                    counters.get(f"serve.{STATUS_SHED}", 0.0) / submitted
                    if submitted else 0.0
                ),
                "rejected": (
                    counters.get(f"serve.{STATUS_REJECTED}", 0.0) / submitted
                    if submitted else 0.0
                ),
                "retry": (
                    counters.get("serve.retry.attempts", 0.0) / admitted
                    if admitted else 0.0
                ),
            },
        }

    # -- submission path --------------------------------------------------

    def _load(self) -> float:
        return self._queue.qsize() / self.config.max_queue

    def _refuse(self, job: JobSpec, status: str, retry_after_s: float,
                error: str, trace: Optional[JobTrace] = None) -> JobResult:
        self.ledger.refuse(job, status)
        self.metrics.counter(f"serve.{status}").inc()
        self.flight.record(
            LANE_SERVICE, "job.refused", job_id=job.job_id,
            tenant=job.tenant, status=status,
        )
        result = JobResult(
            job.job_id, job.tenant, status, kind=job.kind,
            retry_after_s=retry_after_s or None, error=error,
        )
        self._finish_trace(job, trace, result)
        if status == STATUS_SHED and self.config.dump_on_shed:
            self._flight_dump("shed", job_id=job.job_id, tenant=job.tenant)
        return result

    def _cached_answer(self, job: JobSpec) -> Optional[JobResult]:
        doc = self._results_cache.get(job.result_key())
        if doc is None:
            return None
        self._results_cache.move_to_end(job.result_key())
        result = JobResult.from_dict(dict(doc))
        result.job_id = job.job_id
        result.tenant = job.tenant
        result.served_from_cache = True
        result.degrade_level = self.ladder.level
        return result

    def _store_answer(self, job: JobSpec, result: JobResult) -> None:
        if result.status != STATUS_OK:
            return
        self._results_cache[job.result_key()] = result.to_dict()
        self._results_cache.move_to_end(job.result_key())
        while len(self._results_cache) > self.config.results_cache_entries:
            self._results_cache.popitem(last=False)

    async def submit(self, job: JobSpec,
                     trace: Optional[JobTrace] = None) -> JobResult:
        """Drive one job through every gate to a terminal result.

        Raises :class:`JaponicaError` only for *malformed* specs (the
        HTTP layer maps that to 400); every load-dependent refusal is a
        terminal :class:`JobResult`, so callers can always distinguish
        "you sent garbage" from "come back later".

        ``trace`` lets the accepting edge (the HTTP layer) hand in a
        :class:`JobTrace` whose root span it already opened; with
        tracing on and no trace given, the service mints one rooted at
        ``serve.job``.
        """
        if not self._started:
            await self.start()
        job.validate()
        if trace is None:
            trace = self._mint_trace(job)
        elif self.config.trace:
            self._active_traces[job.job_id] = trace
        tr = trace.tracer if trace is not None else NULL_TRACER
        self.flight.record(
            LANE_SERVICE, "job.submit", job_id=job.job_id, tenant=job.tenant,
            job_kind=job.kind, priority=job.priority,
            trace_id=trace.context.trace_id if trace else None,
        )

        # 2. circuit breaker
        breaker = self.breakers.breaker(job.tenant)
        with tr.span("gate:breaker", "serve", tenant=job.tenant) as sp:
            allowed = breaker.allow()
            sp.annotate(outcome="allow" if allowed else "open",
                        state=breaker.state)
        if not allowed:
            self.metrics.counter("serve.breaker.refused").inc()
            return self._refuse(
                job, STATUS_BREAKER_OPEN,
                retry_after_s=max(breaker.retry_after(), 1e-3),
                error=f"circuit breaker open for tenant {job.tenant!r}",
                trace=trace,
            )

        # 3. degradation ladder (cumulative rungs); any refusal past the
        # breaker must hand back the half-open probe slot allow() took
        with tr.span("gate:ladder", "serve") as sp:
            level = self.ladder.observe(self._load())
            sp.annotate(outcome=level)
        self.metrics.gauge("serve.degrade.level").set(level)
        if level >= LEVEL_SHED_LOW and job.priority >= PRIORITY_LOW:
            breaker.release()
            self.metrics.counter("serve.shed.priority").inc()
            return self._refuse(
                job, STATUS_SHED, retry_after_s=0.1,
                error="shedding lowest-priority jobs under overload",
                trace=trace,
            )
        if level >= LEVEL_CACHE_ONLY:
            breaker.release()
            cached = self._cached_answer(job)
            if cached is not None:
                self.metrics.counter("serve.cache_only.hit").inc()
                self.ledger.refuse(job, STATUS_OK)
                self._finish_trace(job, trace, cached)
                return cached
            self.metrics.counter("serve.shed.cache_only").inc()
            return self._refuse(
                job, STATUS_SHED, retry_after_s=0.1,
                error="cache-only mode under overload and no cached answer",
                trace=trace,
            )

        # 4. admission control (queue depth, then the tenant's tokens)
        with tr.span("gate:admission", "serve", tenant=job.tenant) as sp:
            decision = self.admission.admit(job.tenant, self._queue.qsize())
            sp.annotate(
                outcome="admit" if decision.admitted else decision.reason
            )
        if not decision.admitted:
            breaker.release()
            self.metrics.counter(
                f"serve.rejected.{decision.reason}"
            ).inc()
            return self._refuse(
                job, STATUS_REJECTED,
                retry_after_s=decision.retry_after_s,
                error=f"admission refused ({decision.reason})",
                trace=trace,
            )

        # 5. admitted: stamp the deadline, queue, await settlement
        self.metrics.counter("serve.admitted").inc()
        self.ledger.admit(job)
        budget_s = (
            job.deadline_ms / 1e3
            if job.deadline_ms is not None
            else self.config.default_deadline_s
        )
        with tr.span("gate:deadline", "serve") as sp:
            deadline = Deadline(budget_s, clock=self.clock)
            sp.annotate(outcome="stamped", budget_s=budget_s)
        self.flight.record(
            LANE_SERVICE, "job.admitted", job_id=job.job_id,
            tenant=job.tenant, budget_s=budget_s,
        )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait(
            (job.priority, next(self._qseq), job, future, deadline, trace)
        )
        self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())
        return await future

    # -- dispatch path ----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            _prio, _seq, job, future, deadline, trace = await self._queue.get()
            try:
                level = self.ladder.observe(self._load())
                result = await self._execute(job, level, deadline, trace)
                breaker = self.breakers.breaker(job.tenant)
                trips_before = breaker.trips
                if result.status == STATUS_OK:
                    breaker.record_success()
                elif result.status == STATUS_FAILED:
                    breaker.record_failure()
                    if breaker.trips > trips_before:
                        self.metrics.counter("serve.breaker.trips").inc()
                        self.flight.record(
                            LANE_SERVICE, "breaker.trip",
                            tenant=job.tenant, job_id=job.job_id,
                        )
                        self._flight_dump(
                            "breaker_trip", tenant=job.tenant,
                            job_id=job.job_id,
                        )
                else:
                    # neutral outcome (e.g. deadline): no verdict on the
                    # tenant's health, but the half-open probe slot that
                    # allow() took must be handed back
                    breaker.release()
                self._store_answer(job, result)
                self.ledger.settle(
                    job.job_id, result.status, tenant=job.tenant,
                    trace_id=trace.context.trace_id if trace else "",
                    attempts=result.attempts,
                )
                self.metrics.counter(f"serve.{result.status}").inc()
                self.metrics.histogram("serve.wall_ms").observe(
                    result.wall_ms
                )
                self.metrics.histogram(
                    f"serve.tenant.{job.tenant}.wall_ms"
                ).observe(result.wall_ms)
                slo_ok = (
                    result.status == STATUS_OK
                    and result.wall_ms <= self.config.slo_wall_ms
                )
                self.metrics.counter(
                    "serve.slo.good" if slo_ok else "serve.slo.bad"
                ).inc()
                self.flight.record(
                    LANE_SERVICE, "job.settle", job_id=job.job_id,
                    tenant=job.tenant, status=result.status,
                    attempts=result.attempts,
                )
                self._finish_trace(job, trace, result)
                if not future.done():
                    future.set_result(result)
            except Exception as exc:  # dispatcher must never die
                # the every-admitted-job-settles-exactly-once invariant
                # holds even for unexpected dispatch errors
                if self.ledger.admitted.get(job.job_id) is None:
                    self.breakers.breaker(job.tenant).record_failure()
                    try:
                        self.ledger.settle(
                            job.job_id, STATUS_FAILED, tenant=job.tenant,
                            trace_id=(
                                trace.context.trace_id if trace else ""
                            ),
                        )
                    except JaponicaError:  # pragma: no cover - raced settle
                        pass
                    self.metrics.counter(f"serve.{STATUS_FAILED}").inc()
                if not future.done():
                    future.set_exception(exc)
            finally:
                self._queue.task_done()

    async def _execute(
        self, job: JobSpec, level: int, deadline: Deadline,
        trace: Optional[JobTrace] = None,
    ) -> JobResult:
        """Run with seeded-jitter retries around transient worker deaths."""
        policy = self.faults.policy
        seed = self.config.fault_seed
        tr = trace.tracer if trace is not None else NULL_TRACER
        attempt = 0
        while True:
            handle = tr.span(
                "attempt:%d" % (attempt + 1), "serve",
                job_id=job.job_id, attempt=attempt + 1,
            )
            trace_ctx = (
                trace.context.child(handle.span.id)
                if trace is not None else None
            )
            try:
                result = await self.pool.run(
                    job, level, deadline, trace_ctx=trace_ctx
                )
                result.attempts = attempt + 1
                self._account_cache(result)
                self._adopt_result(result, trace, handle)
                handle.annotate(outcome=result.status)
                handle.close()
                return result
            except WorkerDied as exc:
                # the liveness reaper detected a killed worker: the
                # attempt span it left open closes here, marked killed
                handle.annotate(outcome="worker_died", status="killed",
                                worker=exc.worker)
                handle.close()
                self.metrics.counter("serve.worker.deaths").inc()
                self.flight.record(
                    LANE_SERVICE, "worker.death", job_id=job.job_id,
                    tenant=job.tenant, worker=exc.worker,
                    trace_id=exc.trace_id or None, attempt=attempt + 1,
                )
                self._flight_dump(
                    "worker_death", job_id=job.job_id, worker=exc.worker,
                )
                if attempt >= policy.max_retries:
                    return JobResult(
                        job.job_id, job.tenant, STATUS_FAILED, kind=job.kind,
                        attempts=attempt + 1,
                        error=f"worker died {attempt + 1} times: {exc}",
                    )
                backoff = min(
                    policy.jittered_backoff(
                        attempt, seed, "serve.retry", job.job_id
                    ),
                    self.config.retry_cap_s,
                )
                self.metrics.counter("serve.retry.attempts").inc()
                self.metrics.counter("serve.retry.backoff_s").inc(backoff)
                self.flight.record(
                    LANE_SERVICE, "job.retry", job_id=job.job_id,
                    tenant=job.tenant, attempt=attempt + 1,
                    backoff_ms=round(backoff * 1e3, 3),
                )
                await asyncio.sleep(backoff)
                attempt += 1

    def _adopt_result(self, result: JobResult, trace: Optional[JobTrace],
                      handle) -> None:
        """Graft shipped worker spans; fold the worker's registry."""
        docs = result.__dict__.pop("trace_spans", None)
        worker_state = result.__dict__.pop("worker_metrics", None)
        worker_name = result.__dict__.pop("worker_name", None)
        if trace is not None and docs:
            adopt_spans(trace.tracer, docs, parent_id=handle.span.id)
        if worker_name and worker_state is not None:
            self._worker_metrics[worker_name] = worker_state

    def _account_cache(self, result: JobResult) -> None:
        delta = result.__dict__.get("cache_delta")
        if delta:
            self.metrics.counter("serve.cache.hits").inc(delta["hits"])
            self.metrics.counter("serve.cache.misses").inc(delta["misses"])

    # -- introspection ----------------------------------------------------

    def cache_hit_rate(self) -> float:
        hits = self.metrics.counter("serve.cache.hits").value
        misses = self.metrics.counter("serve.cache.misses").value
        total = hits + misses
        return hits / total if total else 0.0

    def stats(self) -> dict:
        counts = self.ledger.counts()
        return {
            "schema": "repro.serve/v1",
            "queue_depth": self._queue.qsize(),
            "ledger": {
                "admitted": len(self.ledger.admitted),
                "unsettled": len(self.ledger.unsettled()),
                "duplicate_settlements": self.ledger.duplicate_settlements,
                "counts": counts,
            },
            "admission": self.admission.stats(),
            "breakers": {
                "trips": self.breakers.trips,
                "recoveries": self.breakers.recoveries,
                "tenants": self.breakers.stats(),
            },
            "degradation": self.ladder.stats(),
            "pool": self.pool.stats(),
            "cache_hit_rate": self.cache_hit_rate(),
        }
