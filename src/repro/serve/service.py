"""The compilation service: admission → deadline → breaker → shedding.

:class:`CompilationService` is the transport-independent core — the HTTP
layer (:mod:`repro.serve.server`) is a thin adapter over
:meth:`CompilationService.submit`.  One submission flows through the
gates in a fixed order:

1. **validate** — malformed specs (including bad ``faults`` grammar)
   are refused with a pointed message, never a mid-run traceback;
2. **circuit breaker** — a tenant with too many consecutive failures is
   refused instantly until the breaker half-opens;
3. **degradation ladder** — under queue pressure the service drops
   report generation, then serves cache-only answers, then sheds
   lowest-priority jobs outright;
4. **admission control** — per-tenant token bucket + bounded queue;
   refusals carry a ``retry_after_s`` hint;
5. **dispatch** — a deadline is stamped, the job enters the priority
   queue, and a dispatcher drives it through the worker pool with
   seeded-jitter retries around worker deaths.

Every admitted job settles in the :class:`JobLedger` exactly once; the
chaos suite reconciles that invariant after killing workers mid-run.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import JaponicaError, WorkerDied
from ..faults.resilience import FaultRuntime, ResiliencePolicy
from ..faults.schedule import FaultSchedule
from ..obs.metrics import MetricsRegistry
from ..runtime.deadline import Deadline
from .admission import AdmissionController, TenantQuota
from .breaker import BreakerBoard
from .degrade import (
    LEVEL_CACHE_ONLY,
    LEVEL_SHED_LOW,
    DEFAULT_THRESHOLDS,
    DegradationLadder,
)
from .jobs import (
    PRIORITY_LOW,
    STATUS_BREAKER_OPEN,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_SHED,
    JobLedger,
    JobResult,
    JobSpec,
)
from .pool import WorkerPool


@dataclass
class ServeConfig:
    """Tuning knobs of the compilation service."""

    #: worker pool
    workers: int = 2
    backend: str = "thread"  # "thread" | "process"
    cache_dir: Optional[str] = None
    #: admission control
    max_queue: int = 32
    quota_rate: float = 50.0      #: default tokens/s per tenant
    quota_burst: float = 16.0     #: default burst per tenant
    tenant_quotas: dict[str, TenantQuota] = field(default_factory=dict)
    #: deadlines
    default_deadline_s: float = 30.0
    #: circuit breaker
    breaker_failures: int = 3
    breaker_recovery_s: float = 2.0
    breaker_half_open_max: int = 1
    #: worker-death retries (real seconds, seeded-jitter exponential)
    max_retries: int = 3
    retry_base_s: float = 0.002
    retry_cap_s: float = 0.25
    #: degradation ladder thresholds ((escalate, relax) per rung)
    thresholds: tuple = DEFAULT_THRESHOLDS
    #: serve-level fault schedule (``serve.worker`` site) for chaos runs
    faults: Optional[str] = None
    fault_seed: int = 0
    #: completed-results cache (the cache-only degradation rung)
    results_cache_entries: int = 256


class CompilationService:
    """Long-lived multi-tenant front end over the Japonica pipeline."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or ServeConfig()
        self.clock = clock
        self.metrics = MetricsRegistry()
        cfg = self.config
        self.admission = AdmissionController(
            default_quota=TenantQuota(cfg.quota_rate, cfg.quota_burst),
            tenant_quotas=cfg.tenant_quotas,
            max_queue=cfg.max_queue,
            clock=clock,
        )
        self.breakers = BreakerBoard(
            failure_threshold=cfg.breaker_failures,
            recovery_time_s=cfg.breaker_recovery_s,
            half_open_max=cfg.breaker_half_open_max,
            clock=clock,
        )
        self.ladder = DegradationLadder(cfg.thresholds)
        self.faults = FaultRuntime(policy=ResiliencePolicy(
            max_retries=cfg.max_retries,
            backoff_base_s=cfg.retry_base_s,
        ))
        if cfg.faults:
            self.faults.install(
                FaultSchedule.parse(cfg.faults, seed=cfg.fault_seed)
            )
        self.pool = WorkerPool(
            workers=cfg.workers,
            backend=cfg.backend,
            cache_dir=cfg.cache_dir,
            faults=self.faults,
        )
        self.ledger = JobLedger()
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._qseq = itertools.count()
        self._dispatchers: list[asyncio.Task] = []
        self._results_cache: OrderedDict[str, dict] = OrderedDict()
        self._started = False

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        await self.pool.start()
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(), name=f"dispatch-{i}")
            for i in range(self.config.workers)
        ]
        self._started = True

    async def stop(self, drain: bool = True) -> None:
        if not self._started:
            return
        if drain:
            await self._queue.join()
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._dispatchers = []
        await self.pool.stop()
        self._started = False

    # -- submission path --------------------------------------------------

    def _load(self) -> float:
        return self._queue.qsize() / self.config.max_queue

    def _refuse(self, job: JobSpec, status: str, retry_after_s: float,
                error: str) -> JobResult:
        self.ledger.refuse(job, status)
        self.metrics.counter(f"serve.{status}").inc()
        return JobResult(
            job.job_id, job.tenant, status, kind=job.kind,
            retry_after_s=retry_after_s or None, error=error,
        )

    def _cached_answer(self, job: JobSpec) -> Optional[JobResult]:
        doc = self._results_cache.get(job.result_key())
        if doc is None:
            return None
        self._results_cache.move_to_end(job.result_key())
        result = JobResult.from_dict(dict(doc))
        result.job_id = job.job_id
        result.tenant = job.tenant
        result.served_from_cache = True
        result.degrade_level = self.ladder.level
        return result

    def _store_answer(self, job: JobSpec, result: JobResult) -> None:
        if result.status != STATUS_OK:
            return
        self._results_cache[job.result_key()] = result.to_dict()
        self._results_cache.move_to_end(job.result_key())
        while len(self._results_cache) > self.config.results_cache_entries:
            self._results_cache.popitem(last=False)

    async def submit(self, job: JobSpec) -> JobResult:
        """Drive one job through every gate to a terminal result.

        Raises :class:`JaponicaError` only for *malformed* specs (the
        HTTP layer maps that to 400); every load-dependent refusal is a
        terminal :class:`JobResult`, so callers can always distinguish
        "you sent garbage" from "come back later".
        """
        if not self._started:
            await self.start()
        job.validate()

        # 2. circuit breaker
        breaker = self.breakers.breaker(job.tenant)
        if not breaker.allow():
            self.metrics.counter("serve.breaker.refused").inc()
            return self._refuse(
                job, STATUS_BREAKER_OPEN,
                retry_after_s=max(breaker.retry_after(), 1e-3),
                error=f"circuit breaker open for tenant {job.tenant!r}",
            )

        # 3. degradation ladder (cumulative rungs); any refusal past the
        # breaker must hand back the half-open probe slot allow() took
        level = self.ladder.observe(self._load())
        self.metrics.gauge("serve.degrade.level").set(level)
        if level >= LEVEL_SHED_LOW and job.priority >= PRIORITY_LOW:
            breaker.release()
            self.metrics.counter("serve.shed.priority").inc()
            return self._refuse(
                job, STATUS_SHED, retry_after_s=0.1,
                error="shedding lowest-priority jobs under overload",
            )
        if level >= LEVEL_CACHE_ONLY:
            breaker.release()
            cached = self._cached_answer(job)
            if cached is not None:
                self.metrics.counter("serve.cache_only.hit").inc()
                self.ledger.refuse(job, STATUS_OK)
                return cached
            self.metrics.counter("serve.shed.cache_only").inc()
            return self._refuse(
                job, STATUS_SHED, retry_after_s=0.1,
                error="cache-only mode under overload and no cached answer",
            )

        # 4. admission control
        decision = self.admission.admit(job.tenant, self._queue.qsize())
        if not decision.admitted:
            breaker.release()
            self.metrics.counter(
                f"serve.rejected.{decision.reason}"
            ).inc()
            return self._refuse(
                job, STATUS_REJECTED,
                retry_after_s=decision.retry_after_s,
                error=f"admission refused ({decision.reason})",
            )

        # 5. admitted: stamp the deadline, queue, await settlement
        self.metrics.counter("serve.admitted").inc()
        self.ledger.admit(job)
        budget_s = (
            job.deadline_ms / 1e3
            if job.deadline_ms is not None
            else self.config.default_deadline_s
        )
        deadline = Deadline(budget_s, clock=self.clock)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait(
            (job.priority, next(self._qseq), job, future, deadline)
        )
        self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())
        return await future

    # -- dispatch path ----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            _prio, _seq, job, future, deadline = await self._queue.get()
            try:
                level = self.ladder.observe(self._load())
                result = await self._execute(job, level, deadline)
                breaker = self.breakers.breaker(job.tenant)
                trips_before = breaker.trips
                if result.status == STATUS_OK:
                    breaker.record_success()
                elif result.status == STATUS_FAILED:
                    breaker.record_failure()
                    if breaker.trips > trips_before:
                        self.metrics.counter("serve.breaker.trips").inc()
                else:
                    # neutral outcome (e.g. deadline): no verdict on the
                    # tenant's health, but the half-open probe slot that
                    # allow() took must be handed back
                    breaker.release()
                self._store_answer(job, result)
                self.ledger.settle(job.job_id, result.status)
                self.metrics.counter(f"serve.{result.status}").inc()
                self.metrics.histogram("serve.wall_ms").observe(
                    result.wall_ms
                )
                if not future.done():
                    future.set_result(result)
            except Exception as exc:  # dispatcher must never die
                # the every-admitted-job-settles-exactly-once invariant
                # holds even for unexpected dispatch errors
                if self.ledger.admitted.get(job.job_id) is None:
                    self.breakers.breaker(job.tenant).record_failure()
                    try:
                        self.ledger.settle(job.job_id, STATUS_FAILED)
                    except JaponicaError:  # pragma: no cover - raced settle
                        pass
                    self.metrics.counter(f"serve.{STATUS_FAILED}").inc()
                if not future.done():
                    future.set_exception(exc)
            finally:
                self._queue.task_done()

    async def _execute(
        self, job: JobSpec, level: int, deadline: Deadline
    ) -> JobResult:
        """Run with seeded-jitter retries around transient worker deaths."""
        policy = self.faults.policy
        seed = self.config.fault_seed
        attempt = 0
        while True:
            try:
                result = await self.pool.run(job, level, deadline)
                result.attempts = attempt + 1
                self._account_cache(result)
                return result
            except WorkerDied as exc:
                self.metrics.counter("serve.worker.deaths").inc()
                if attempt >= policy.max_retries:
                    return JobResult(
                        job.job_id, job.tenant, STATUS_FAILED, kind=job.kind,
                        attempts=attempt + 1,
                        error=f"worker died {attempt + 1} times: {exc}",
                    )
                backoff = min(
                    policy.jittered_backoff(
                        attempt, seed, "serve.retry", job.job_id
                    ),
                    self.config.retry_cap_s,
                )
                self.metrics.counter("serve.retry.attempts").inc()
                self.metrics.counter("serve.retry.backoff_s").inc(backoff)
                await asyncio.sleep(backoff)
                attempt += 1

    def _account_cache(self, result: JobResult) -> None:
        delta = result.__dict__.get("cache_delta")
        if delta:
            self.metrics.counter("serve.cache.hits").inc(delta["hits"])
            self.metrics.counter("serve.cache.misses").inc(delta["misses"])

    # -- introspection ----------------------------------------------------

    def cache_hit_rate(self) -> float:
        hits = self.metrics.counter("serve.cache.hits").value
        misses = self.metrics.counter("serve.cache.misses").value
        total = hits + misses
        return hits / total if total else 0.0

    def stats(self) -> dict:
        counts = self.ledger.counts()
        return {
            "schema": "repro.serve/v1",
            "queue_depth": self._queue.qsize(),
            "ledger": {
                "admitted": len(self.ledger.admitted),
                "unsettled": len(self.ledger.unsettled()),
                "duplicate_settlements": self.ledger.duplicate_settlements,
                "counts": counts,
            },
            "admission": self.admission.stats(),
            "breakers": {
                "trips": self.breakers.trips,
                "recoveries": self.breakers.recoveries,
                "tenants": self.breakers.stats(),
            },
            "degradation": self.ladder.stats(),
            "pool": self.pool.stats(),
            "cache_hit_rate": self.cache_hit_rate(),
        }
