"""Worker runtime: executes one job on pooled, reusable contexts.

This is the refactor ROADMAP item 1 forces: instead of building a fresh
:class:`ExecutionContext` per call (the seed behaviour), each worker —
thread slot or child process — owns a :class:`WorkerRuntime` holding

* one :class:`Japonica` front end over the shared content-keyed
  :class:`ArtifactCache` (cross-tenant compile/profile hits),
* an LRU pool of :class:`ExecutionContext`\\ s keyed by the run
  configuration ``(workload, n, seed, devices)``, so a repeated request
  reuses the context's warm per-loop profile cache.

Jobs are *pure*: all results travel in-band, so a runtime that dies
mid-job leaves nothing behind and the service may retry the job on
another worker without risking duplicated side effects.

Fault-injected jobs always run on a fresh, un-pooled context: fault
probes are counted per context, and a pooled context's probe history
would desynchronise the deterministic schedule.

**Distributed tracing** (``trace=True``): the runtime owns one
long-lived recording :class:`Instrumentation` shared by its front end
and every pooled context.  Each traced job is wrapped in a
``worker:job`` span; the job's slice of the span list plus a snapshot of
the runtime's metrics registry travel back *in-band* on the result (as
transport side-channel fields, exactly like ``cache_delta``), where the
service grafts the spans into the per-job trace tree and folds the
registry into the ``/v1/metrics`` merge.  With tracing off the bundle is
``NULL_INSTRUMENTATION`` and nothing is shipped — the result documents
are byte-identical to the untraced serve plane.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Optional

from ..api import Japonica
from ..cache.artifacts import ArtifactCache
from ..errors import DeadlineExceeded, JaponicaError, RuntimeFaultError
from ..obs import Instrumentation
from ..obs.distrib import (
    TraceContext,
    merge_span_docs,
    registry_state,
    span_doc,
)
from ..runtime.deadline import Deadline
from .degrade import LEVEL_DROP_REPORT
from .jobs import (
    STATUS_DEADLINE,
    STATUS_FAILED,
    STATUS_OK,
    JobResult,
    JobSpec,
)

#: Pooled contexts kept per runtime (LRU beyond this).
MAX_POOLED_CONTEXTS = 16


class WorkerRuntime:
    """One worker's long-lived pipeline state."""

    def __init__(
        self,
        cache: Optional[ArtifactCache] = None,
        cache_dir: Optional[str] = None,
        trace: bool = False,
        name: str = "worker",
    ):
        self.cache = cache if cache is not None else ArtifactCache(
            cache_dir=cache_dir
        )
        self.name = name
        self.traced = bool(trace)
        #: one recording bundle for the runtime's whole life when traced;
        #: the null bundle (no state, no overhead) otherwise
        self.obs = (
            Instrumentation.recording() if self.traced
            else Instrumentation.disabled()
        )
        self.japonica = Japonica(
            cache=self.cache, obs=self.obs if self.traced else None
        )
        self._contexts: OrderedDict[tuple, object] = OrderedDict()
        self.jobs_executed = 0
        self.contexts_reused = 0
        #: isolated per-report instrumentation of the last traced job
        #: (report jobs need their own bundle so the insight report only
        #: sees that run; its spans are still shipped with the result)
        self._report_obs: Optional[Instrumentation] = None

    # -- context pool -----------------------------------------------------

    def _pooled_context(self, workload, job: JobSpec):
        key = (workload.name, job.n, job.seed, job.devices)
        ctx = self._contexts.get(key)
        if ctx is not None:
            self._contexts.move_to_end(key)
            self.contexts_reused += 1
            self.obs.metrics.counter("serve.worker.context_reuse").inc()
            return ctx
        ctx = workload.make_context(
            cache=self.cache, devices=job.devices,
            obs=self.obs if self.traced else None,
        )
        self._contexts[key] = ctx
        while len(self._contexts) > MAX_POOLED_CONTEXTS:
            self._contexts.popitem(last=False)
        return ctx

    # -- execution --------------------------------------------------------

    def execute(
        self,
        job: JobSpec,
        degrade_level: int = 0,
        deadline: Optional[Deadline] = None,
        trace: Optional[TraceContext] = None,
    ) -> JobResult:
        """Run one job to a terminal :class:`JobResult` (never raises).

        When the runtime is traced and a :class:`TraceContext` arrives
        with the job, the execution is wrapped in a ``worker:job`` span
        and the job's spans plus a registry snapshot ship back on the
        result's transport side channel.
        """
        if not (self.traced and trace is not None):
            return self._execute(job, degrade_level, deadline)

        tracer = self.obs.tracer
        base = len(tracer.spans)
        self._report_obs = None
        with tracer.span(
            "worker:job", "serve.worker",
            job_id=job.job_id, tenant=job.tenant,
            trace_id=trace.trace_id, worker=self.name,
        ) as sp:
            result = self._execute(job, degrade_level, deadline)
            sp.annotate(status=result.status)
        docs = [span_doc(s) for s in tracer.spans[base:]]
        if self._report_obs is not None:
            docs = merge_span_docs(
                docs,
                [span_doc(s) for s in self._report_obs.tracer.spans],
                attach_to=docs[0]["id"],
            )
            self._report_obs = None
        m = self.obs.metrics
        m.counter("serve.worker.jobs").inc()
        m.counter(f"serve.worker.status.{result.status}").inc()
        m.histogram("serve.worker.wall_ms").observe(result.wall_ms)
        result.__dict__["trace_spans"] = docs
        result.__dict__["worker_metrics"] = registry_state(self.obs.metrics)
        result.__dict__["worker_name"] = self.name
        return result

    def _execute(
        self,
        job: JobSpec,
        degrade_level: int = 0,
        deadline: Optional[Deadline] = None,
    ) -> JobResult:
        t0 = time.perf_counter()
        hits0, misses0 = self.cache.hits, self.cache.misses
        try:
            if job.kind == "compile":
                result = self._execute_compile(job, deadline)
            else:
                result = self._execute_run(job, degrade_level, deadline)
        except DeadlineExceeded as exc:
            result = JobResult(
                job.job_id, job.tenant, STATUS_DEADLINE, kind=job.kind,
                error=str(exc),
            )
        except (RuntimeFaultError, JaponicaError) as exc:
            result = JobResult(
                job.job_id, job.tenant, STATUS_FAILED, kind=job.kind,
                error=f"{type(exc).__name__}: {exc}",
            )
        except Exception as exc:
            # unexpected pipeline error (e.g. a numpy TypeError): the
            # "never raises" contract still holds — surface it as a
            # terminal failure so the service settles the job
            result = JobResult(
                job.job_id, job.tenant, STATUS_FAILED, kind=job.kind,
                error=f"unexpected {type(exc).__name__}: {exc}",
            )
        self.jobs_executed += 1
        result.wall_ms = (time.perf_counter() - t0) * 1e3
        result.degrade_level = degrade_level
        # stash the per-job artifact-cache delta for the service's
        # aggregate hit-rate metric (not a dataclass field: it is
        # transport metadata, not part of the client-facing answer)
        result.__dict__["cache_delta"] = {
            "hits": self.cache.hits - hits0,
            "misses": self.cache.misses - misses0,
        }
        return result

    def execute_dict(self, doc: dict, degrade_level: int = 0,
                     deadline_remaining_s: Optional[float] = None,
                     trace_doc: Optional[dict] = None) -> dict:
        """Process-transport entry: dict in, dict out (picklable)."""
        job = JobSpec.from_dict(doc)
        trace = (
            TraceContext.from_doc(trace_doc) if trace_doc is not None
            else None
        )
        deadline = (
            Deadline(deadline_remaining_s)
            if deadline_remaining_s is not None and deadline_remaining_s > 0
            else None
        )
        if deadline_remaining_s is not None and deadline_remaining_s <= 0:
            return JobResult(
                job.job_id, job.tenant, STATUS_DEADLINE, kind=job.kind,
                error="deadline expired before the worker started",
            ).to_dict()
        result = self.execute(job, degrade_level, deadline, trace=trace)
        doc = result.to_dict()
        doc["cache_delta"] = result.__dict__.get(
            "cache_delta", {"hits": 0, "misses": 0}
        )
        # the trace/metrics side channel crosses the pipe explicitly;
        # the pool pops it back off before the client ever sees the doc
        for key in ("trace_spans", "worker_metrics", "worker_name"):
            if key in result.__dict__:
                doc[key] = result.__dict__[key]
        return doc

    def _execute_compile(
        self, job: JobSpec, deadline: Optional[Deadline]
    ) -> JobResult:
        if deadline is not None:
            deadline.check("compile")
        program = self.japonica.compile(job.source)
        loops = []
        for method, mt in program.unit.methods.items():
            for tl in mt.loops:
                loops.append({
                    "method": method,
                    "loop": tl.id,
                    "status": tl.analysis.status.value,
                    "cpu_only": tl.cpu_only,
                })
        return JobResult(
            job.job_id, job.tenant, STATUS_OK, kind="compile",
            compile={"methods": program.methods, "loops": loops},
        )

    def _execute_run(
        self, job: JobSpec, degrade_level: int, deadline: Optional[Deadline]
    ) -> JobResult:
        from ..workloads import get

        try:
            workload = get(job.workload)
        except KeyError as exc:
            raise JaponicaError(str(exc)) from None
        if deadline is not None:
            deadline.check("compile")

        want_report = job.report and degrade_level < LEVEL_DROP_REPORT
        degraded = []
        if job.report and not want_report:
            degraded.append("report_dropped")

        obs = None
        if want_report:
            # the traced path needs a recording Instrumentation threaded
            # through compile and context, so it cannot use the pools
            obs = Instrumentation.recording()
            self._report_obs = obs
            program = Japonica(obs=obs, cache=self.cache).compile(
                workload.source
            )
            ctx = workload.make_context(
                obs=obs, cache=self.cache, devices=job.devices
            )
        elif job.faults:
            program = self.japonica.compile(workload.source)
            ctx = workload.make_context(
                cache=self.cache, devices=job.devices,
                obs=self.obs if self.traced else None,
            )
        else:
            program = self.japonica.compile(workload.source)
            ctx = self._pooled_context(workload, job)

        binds = workload.bindings(n=job.n, seed=job.seed)
        ctx.deadline = deadline
        try:
            result = program.run(
                workload.method,
                strategy=job.strategy,
                scheme=job.scheme or workload.scheme,
                context=ctx,
                faults=job.faults,
                fault_seed=job.fault_seed,
                **binds,
            )
        finally:
            ctx.deadline = None
            if job.faults:
                # never leave a schedule armed on a context (pooled
                # contexts are never used for faulted jobs, but the
                # schedule must not outlive its job either way)
                ctx.faults.install(None)

        if job.verify and workload.reference is not None:
            try:
                workload.verify(result, binds)
            except AssertionError as exc:
                raise JaponicaError(f"verification failed: {exc}") from None

        report_section = None
        if want_report and obs is not None:
            from ..obs.insight import analyze_run

            timelines = [
                (f"{job.strategy}:{lid}", res.timeline)
                for lid, res in result.loop_results
                if res.timeline is not None
            ]
            report_section = analyze_run(
                timelines, metrics=obs.metrics, tracer=obs.tracer,
                sim_time_s=result.sim_time_s,
            )

        resilience = None
        if result.resilience is not None:
            r = result.resilience
            resilience = {
                "faults_seen": r.faults_seen,
                "recoveries": r.recoveries,
                "degradations": r.degradations,
                "penalty_ms": r.penalty_s * 1e3,
            }

        return JobResult(
            job.job_id, job.tenant, STATUS_OK, kind="run",
            sim_time_ms=result.sim_time_ms,
            host_time_ms=result.host_time_s * 1e3,
            modes=sorted({res.mode for _, res in result.loop_results}),
            report=report_section,
            resilience=resilience,
            degraded=degraded,
        )
