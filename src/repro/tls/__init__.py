"""GPU-TLS: speculative loop execution and privatization."""

from .buffers import buffered_bytes, buffered_cells, metadata_entries
from .commit import commit_iterations
from .depcheck import DcResult, Violation, check_subloop
from .engine import DC_COST_PER_ENTRY, GpuTlsEngine, TlsConfig, TlsResult, TlsStats
from .privatize import PRIVATIZATION_OVERHEAD, PrivatizeResult, run_privatized
from .recovery import (
    DEFAULT_LOOKAHEAD_WARPS,
    RecoveryAction,
    RecoveryDecision,
    decide_recovery,
)
from .speculate import SE_OVERHEAD, SeResult, speculative_run

__all__ = [
    "DC_COST_PER_ENTRY",
    "DEFAULT_LOOKAHEAD_WARPS",
    "DcResult",
    "GpuTlsEngine",
    "PRIVATIZATION_OVERHEAD",
    "PrivatizeResult",
    "RecoveryAction",
    "RecoveryDecision",
    "SE_OVERHEAD",
    "SeResult",
    "TlsConfig",
    "TlsResult",
    "TlsStats",
    "Violation",
    "buffered_bytes",
    "buffered_cells",
    "check_subloop",
    "commit_iterations",
    "decide_recovery",
    "metadata_entries",
    "run_privatized",
    "speculative_run",
]
