"""Write-buffer utilities for the TLS engine."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..ir.interpreter import ArrayStorage, LaneSpecState


def buffered_cells(lanes: Mapping[int, LaneSpecState]) -> int:
    """Total buffered cells across lanes (commit-volume metric)."""
    from ..ir.columnar import ColumnarLanes

    if isinstance(lanes, ColumnarLanes):
        return lanes.buffered_cells()
    return sum(len(state.buffer) for state in lanes.values())


def buffered_bytes(
    lanes: Mapping[int, LaneSpecState],
    storage: ArrayStorage,
    iterations: Sequence[int] | None = None,
) -> int:
    """Bytes the commit phase must move for the given iterations."""
    from ..ir.columnar import ColumnarLanes

    if isinstance(lanes, ColumnarLanes):
        return lanes.buffered_bytes(storage, iterations)
    total = 0
    wanted = None if iterations is None else set(iterations)
    for it, state in lanes.items():
        if wanted is not None and it not in wanted:
            continue
        for (name, _flat) in state.buffer:
            total += storage.arrays[name].dtype.itemsize
    return total


def metadata_entries(
    lanes: Mapping[int, LaneSpecState],
    iterations: Sequence[int] | None = None,
) -> int:
    """Logged accesses the dependency-checking phase must scan."""
    from ..ir.columnar import ColumnarLanes

    if isinstance(lanes, ColumnarLanes):
        return lanes.metadata_entries(iterations)
    total = 0
    wanted = None if iterations is None else set(iterations)
    for it, state in lanes.items():
        if wanted is not None and it not in wanted:
            continue
        total += len(state.reads) + len(state.writes)
    return total
