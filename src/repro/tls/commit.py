"""Commit phase: apply clean speculative buffers to memory.

Buffers are applied in iteration order so overlapping writes resolve to
the sequentially-last writer.  Only the clean *prefix* of a sub-loop (all
iterations before the earliest violation) commits; the paper commits "those
threads not found to have violations", and a non-violating thread that
follows a violating one stays safe here too because it is simply
re-executed after recovery — a strictly conservative refinement that keeps
re-executed writes from invalidating already-committed state.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..ir.interpreter import ArrayStorage, LaneSpecState


def commit_iterations(
    lanes: Mapping[int, LaneSpecState],
    storage: ArrayStorage,
    iterations: Sequence[int],
) -> tuple[int, int]:
    """Apply the buffers of ``iterations`` (in the given sequential order).

    Returns ``(cells_written, bytes_written)``.
    """
    from ..ir.columnar import ColumnarLanes

    if isinstance(lanes, ColumnarLanes):
        return lanes.commit(storage, iterations)
    cells = 0
    nbytes = 0
    for it in iterations:
        state = lanes.get(it)
        if state is None:
            continue
        for (name, flat), value in state.buffer.items():
            storage.write_flat(name, flat, value)
            cells += 1
            nbytes += storage.arrays[name].dtype.itemsize
    return cells, nbytes
