"""Dependency-checking (DC) phase of GPU-TLS.

After speculative execution of a sub-loop, the DC phase scans the access
metadata to find RAW violations: an iteration whose upward-exposed read
touched a cell that a *sequentially earlier* iteration of the same
sub-loop wrote.  (WAR needs no check — buffered reads always see pre-
sub-loop state, which is the sequentially correct value for a read that
precedes the write.  WAW needs no check — commit applies buffers in
iteration order, so the last writer wins as in sequential execution.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from ..ir.columnar import ColumnarLanes, cell_keys, dedup_first
from ..ir.interpreter import LaneSpecState


@dataclass
class Violation:
    """One RAW violation found by the DC phase."""

    iteration: int  # the violating (reading) iteration
    src_iteration: int  # the earlier writer
    array: str
    flat: int


@dataclass
class DcResult:
    """Outcome of the DC phase over one sub-loop."""

    violations: list[Violation] = field(default_factory=list)
    #: position (within the sub-loop order) of the earliest violator
    first_violation_pos: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def violating_iterations(self) -> set[int]:
        return {v.iteration for v in self.violations}


def check_subloop(
    lanes: Mapping[int, LaneSpecState],
    order: Sequence[int],
) -> DcResult:
    """Find RAW violations among the sub-loop's iterations.

    ``order`` is the sequential iteration order of the sub-loop (the
    launch's index list).
    """
    if isinstance(lanes, ColumnarLanes) and lanes.matches_order(order):
        return _check_columnar(lanes)
    return check_subloop_scalar(lanes, order)


def _check_columnar(col: ColumnarLanes) -> DcResult:
    """Vectorized RAW check: latest strictly-earlier writer per deduped
    read via one searchsorted over (cell, position)-sorted writes, then
    the first violating read per iteration (logs are (pos, op)-sorted,
    and a cell's violation status is op-independent, so first-occurrence
    dedup preserves which read reports the violation)."""
    result = DcResult()
    r_keys, w_keys, m = cell_keys(col)
    rp, _ro, rk = dedup_first(col.r_pos, col.r_op, r_keys)
    if len(rp) == 0 or len(col.w_pos) == 0:
        return result
    ws_ord = np.lexsort((col.w_pos, w_keys))
    Wk, Wp = w_keys[ws_ord], col.w_pos[ws_ord]
    n = col.n_positions
    idx = np.searchsorted(Wk * (n + 1) + Wp, rk * (n + 1) + rp, side="left")
    cand = np.maximum(idx - 1, 0)
    valid = (idx > 0) & (Wk[cand] == rk)
    if not valid.any():
        return result
    vp, vk, vsrc = rp[valid], rk[valid], Wp[cand][valid]
    first = np.ones(len(vp), dtype=bool)
    first[1:] = vp[1:] != vp[:-1]
    order_arr = col.order
    for p, k, src in zip(vp[first], vk[first], vsrc[first]):
        result.violations.append(
            Violation(
                int(order_arr[p]),
                int(order_arr[src]),
                col.names[int(k) // m],
                int(k) % m,
            )
        )
    result.first_violation_pos = int(vp[0])
    return result


def check_subloop_scalar(
    lanes: Mapping[int, LaneSpecState],
    order: Sequence[int],
) -> DcResult:
    """Reference (per-record) implementation (the cross-check oracle)."""
    pos = {it: p for p, it in enumerate(order)}
    # cell -> earliest writer position (the first write wins for "is there
    # an earlier writer" queries against readers)
    writer_pos: dict[tuple[str, int], list[tuple[int, int]]] = {}
    for it in order:
        state = lanes.get(it)
        if state is None:
            continue
        p = pos[it]
        for rec in state.writes:
            writer_pos.setdefault((rec.array, rec.flat), []).append((p, it))

    result = DcResult()
    for it in order:
        state = lanes.get(it)
        if state is None:
            continue
        p = pos[it]
        for rec in state.reads:
            writers = writer_pos.get((rec.array, rec.flat))
            if not writers:
                continue
            # any earlier writer? (writers are in ascending position order)
            src = None
            for wp, wit in writers:
                if wp >= p:
                    break
                src = wit
            if src is not None:
                result.violations.append(
                    Violation(it, src, rec.array, rec.flat)
                )
                if (
                    result.first_violation_pos is None
                    or p < result.first_violation_pos
                ):
                    result.first_violation_pos = p
                break  # one violation per iteration is enough to squash it
    return result
